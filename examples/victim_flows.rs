//! Victim flows under head-of-line blocking: compares the four detection
//! schemes of the paper's Table 3 on one command line.
//!
//! S0's flows to R0 share upstream links with S1's flows into a congested
//! receiver; they are pure victims of congestion spreading and should
//! never be marked CE. Binary detectors (ECN, FECN) blame them anyway;
//! TCD marks them UE instead.
//!
//! Run with: `cargo run --release --example victim_flows`

use tcd_repro::scenarios::victim::{run, Options};
use tcd_repro::scenarios::Network;

fn main() {
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10}",
        "scheme", "victims", "CE-flagged", "UE-flagged", "mean FCT"
    );
    for (network, use_tcd, label) in [
        (Network::Cee, false, "ECN (CEE)"),
        (Network::Cee, true, "TCD (CEE)"),
        (Network::Ib, false, "FECN (IB)"),
        (Network::Ib, true, "TCD (IB)"),
    ] {
        let mut opt = Options {
            network,
            use_tcd,
            ..Default::default()
        };
        if network == Network::Ib {
            opt.load = 0.3;
            opt.burst_gap = tcd_repro::flowctl::SimDuration::from_us(700);
        }
        let r = run(opt);
        let ce = r
            .victims
            .iter()
            .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ce > 0)
            .count();
        let ue = r
            .victims
            .iter()
            .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ue > 0)
            .count();
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>8.1}us",
            label,
            r.victims.len(),
            ce,
            ue,
            r.victim_mean_fct().unwrap_or(0.0) * 1e6
        );
        if use_tcd {
            assert_eq!(ce, 0, "TCD must not flag victims as congested");
        }
    }
    println!("\nok: binary detectors blame victims; TCD reports them undetermined");
}
