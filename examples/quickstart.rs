//! Quickstart: build a tiny lossless network, run two competing flows
//! through a TCD-equipped switch, and read the ternary detection results.
//!
//! Run with: `cargo run --release --example quickstart`

use tcd_repro::flowctl::{Rate, SimDuration, SimTime};
use tcd_repro::netsim::cchooks::FixedRate;
use tcd_repro::netsim::routing::RouteSelect;
use tcd_repro::netsim::topology::figure2;
use tcd_repro::netsim::Simulator;
use tcd_repro::scenarios::{default_config, Cc, CcAlgo, Network};

fn main() {
    // 1. A topology: the paper's Figure-2 chain (S-hosts, T0..T3, burst
    //    senders, receivers) at 40 Gbps with 4 µs links.
    let fig = figure2(Default::default());

    // 2. A configuration: CEE (PFC) with the TCD detector on every egress.
    //    `default_config` wires the paper's recommended parameters:
    //    max(T_on) from the ON-OFF model, K_max = 200 KB, RED marking in
    //    determined states.
    let mut cfg = default_config(Network::Cee, true, SimTime::from_ms(6));
    let cc = Cc {
        algo: CcAlgo::Dcqcn,
        tcd: true,
    };
    cfg.feedback = cc.feedback();
    cfg.trace_interval = Some(SimDuration::from_us(10));
    cfg.sample_ports = vec![(fig.p2.0, fig.p2.1, cfg.data_prio)];

    let mut sim = Simulator::new(fig.topo.clone(), cfg, RouteSelect::Ecmp);

    // 3. Traffic: a DCQCN+TCD-controlled long-lived flow S1 -> R1 plus an
    //    incast of 15 bursters onto R1 — the §3 congestion-spreading
    //    pattern. F0 crosses the same chain but exits to R0: a victim.
    let f1 = sim.add_flow(fig.s1, fig.r1, 20_000_000, SimTime::ZERO, cc.controller());
    for &a in &fig.bursters {
        sim.add_flow(
            a,
            fig.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    let f0 = sim.add_flow(
        fig.s0,
        fig.r0,
        5_000_000,
        SimTime::from_us(200),
        Box::new(FixedRate::new(Rate::from_gbps(5))),
    );

    // 4. Run and inspect.
    sim.run();

    let d0 = sim.trace.flows[f0.0 as usize].delivered;
    let d1 = sim.trace.flows[f1.0 as usize].delivered;
    println!(
        "F0 (victim):    {} pkts, {} CE, {} UE",
        d0.pkts, d0.ce, d0.ue
    );
    println!(
        "F1 (congested): {} pkts, {} CE, {} UE",
        d1.pkts, d1.ce, d1.ue
    );
    assert_eq!(d0.ce, 0, "TCD never blames the victim");
    assert!(
        d0.ue > 0,
        "the victim is told it crossed undetermined ports"
    );
    assert!(d1.ce > 0, "the congested flow is marked CE");

    // The sampled port P2 went through the undetermined state while
    // congestion spread from P3.
    let undet = sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.state.is_undetermined())
        .count();
    println!(
        "P2 sampled undetermined in {undet} of {} samples",
        sim.trace.port_samples.len()
    );
    println!("PAUSE frames exchanged: {}", sim.trace.pause_frames);
    println!("ok: ternary congestion detection separates culprits from victims");
}
