//! End-to-end congestion control comparison on one incast: DCQCN, TIMELY
//! and IB CC, each with and without TCD awareness, on the same victim
//! scenario — the §5.2 case-study matrix in one run.
//!
//! Run with: `cargo run --release --example incast_cc_comparison`

use tcd_repro::flowctl::SimDuration;
use tcd_repro::scenarios::victim::{run, Options};
use tcd_repro::scenarios::{Cc, CcAlgo, Network};

fn main() {
    println!(
        "{:<12} {:>9} {:>12} {:>14} {:>12}",
        "controller", "victims", "mean FCT us", "UE-flagged", "CE-flagged"
    );
    for algo in [CcAlgo::Dcqcn, CcAlgo::Timely, CcAlgo::IbCc] {
        for tcd in [false, true] {
            let cc = Cc { algo, tcd };
            let network = match algo {
                CcAlgo::IbCc => Network::Ib,
                _ => Network::Cee,
            };
            let mut opt = Options {
                network,
                use_tcd: tcd,
                cc: Some(cc),
                burst_bytes: 100 * 1024,
                burst_gap: SimDuration::from_us(450),
                load: 0.5,
                ..Default::default()
            };
            if network == Network::Ib {
                opt.load = 0.3;
                opt.burst_gap = SimDuration::from_us(700);
            }
            let r = run(opt);
            let flagged = |ce: bool| {
                r.victims
                    .iter()
                    .filter(|f| {
                        let d = r.sim.trace.flows[f.0 as usize].delivered;
                        if ce {
                            d.ce > 0
                        } else {
                            d.ue > 0
                        }
                    })
                    .count()
            };
            println!(
                "{:<12} {:>9} {:>12.1} {:>14} {:>12}",
                cc.name(),
                r.victims.len(),
                r.victim_mean_fct().unwrap_or(0.0) * 1e6,
                flagged(false),
                flagged(true),
            );
        }
    }
    println!("\nok: each controller ran with and without ternary awareness");
}
