//! Congestion trees and ternary state transitions (paper §3.2.2, Fig. 5):
//! watches a *covered* congestion root emerge.
//!
//! While A0–A14 incast R1, port P3 is the root of a deep congestion tree
//! whose leaves (P2, P1, P0) are undetermined. With F0/F2 at 25 Gbps each,
//! P2 is itself the root of a second, covered tree: once the deep tree
//! dissolves, TCD detects P2's transition undetermined → congestion (⑤).
//!
//! Run with: `cargo run --release --example congestion_tree`

use tcd_repro::scenarios::observation::{run, Options};
use tcd_repro::scenarios::Network;
use tcd_repro::tcd::tree;
use tcd_repro::tcd::TernaryState;

fn main() {
    let r = run(Options {
        network: Network::Cee,
        multi_cp: true, // F0/F2 at 25 Gbps: P2 is a covered root
        use_tcd: true,
        ..Default::default()
    });
    let prio = r.sim.config().data_prio;

    // Reconstruct the congestion trees from the final network snapshot
    // (tcd_core::tree turns per-port states + pause edges into the
    // paper's Fig. 5 pictures; Simulator::run_until allows taking these
    // mid-run as well).
    let snap = r.sim.congestion_snapshot(prio);
    let trees = tree::trees(&snap);
    println!("congestion trees in the final snapshot: {}", trees.len());
    for t in &trees {
        println!(
            "  root node {} port {} with {} leaves (depth {})",
            t.root >> 16,
            t.root & 0xffff,
            t.leaves.len(),
            t.depth(&snap)
        );
    }

    // Walk P2's sampled state and print every transition.
    let mut last = TernaryState::NonCongestion;
    println!("port P2 state transitions:");
    for s in r
        .sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.node == r.fig.p2.0 && s.port == r.fig.p2.1 && s.prio == prio)
    {
        if s.state != last {
            println!(
                "  {:>8.3} ms: {} -> {}",
                s.t.as_ms_f64(),
                last.symbol(),
                s.state.symbol()
            );
            last = s.state;
        }
    }

    // The covered root must have been undetermined first, then congested.
    let states: Vec<TernaryState> = r
        .sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.node == r.fig.p2.0 && s.port == r.fig.p2.1 && s.prio == prio)
        .map(|s| s.state)
        .collect();
    let first_undet = states.iter().position(|s| s.is_undetermined());
    let first_cong_after = first_undet.and_then(|i| {
        states[i..]
            .iter()
            .position(|s| *s == TernaryState::Congestion)
            .map(|j| i + j)
    });
    assert!(
        first_undet.is_some(),
        "P2 must pass through the undetermined state"
    );
    assert!(
        first_cong_after.is_some(),
        "the covered root must emerge as a congestion port (transition 5)"
    );
    println!("\nok: covered congestion root detected via the undetermined state");
}
