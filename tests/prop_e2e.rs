//! Property-based end-to-end tests: random topologies and random flow
//! sets must always satisfy the network's global invariants — lossless
//! delivery, byte conservation, causal completion times — under both flow
//! controls and all detectors.

use proptest::prelude::*;
use tcd_repro::flowctl::{Rate, SimDuration, SimTime};
use tcd_repro::netsim::cchooks::FixedRate;
use tcd_repro::netsim::config::DetectorKind;
use tcd_repro::netsim::routing::RouteSelect;
use tcd_repro::netsim::topology::leaf_spine;
use tcd_repro::netsim::Simulator;
use tcd_repro::scenarios::{default_config, Network};

#[derive(Debug, Clone)]
struct FlowPlan {
    src: usize,
    dst: usize,
    size: u64,
    start_us: u64,
    rate_mbps: u64,
}

fn flow_plan(n_hosts: usize) -> impl Strategy<Value = FlowPlan> {
    (
        0..n_hosts,
        0..n_hosts,
        1_000u64..400_000,
        0u64..500,
        100u64..40_000,
    )
        .prop_map(|(src, dst, size, start_us, rate_mbps)| FlowPlan {
            src,
            dst,
            size,
            start_us,
            rate_mbps,
        })
}

fn run_plan(network: Network, use_tcd: bool, plans: &[FlowPlan]) -> Simulator {
    let ls = leaf_spine(3, 2, 4, Rate::from_gbps(40), SimDuration::from_us(2));
    let cfg = default_config(network, use_tcd, SimTime::from_ms(60));
    let mut sim = Simulator::new(ls.topo.clone(), cfg, network.routing());
    for p in plans {
        let src = ls.hosts[p.src % ls.hosts.len()];
        let mut dst = ls.hosts[p.dst % ls.hosts.len()];
        if dst == src {
            dst = ls.hosts[(p.dst + 1) % ls.hosts.len()];
        }
        sim.add_flow(
            src,
            dst,
            p.size,
            SimTime::from_us(p.start_us),
            Box::new(FixedRate::new(Rate::from_mbps(p.rate_mbps))),
        );
    }
    sim.run_until_all_complete();
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cee_random_flows_are_lossless_and_complete(
        plans in proptest::collection::vec(flow_plan(12), 1..14)
    ) {
        let sim = run_plan(Network::Cee, false, &plans);
        for rec in sim.trace.flows.iter() {
            prop_assert!(rec.end.is_some(), "flow {:?} did not complete", rec.flow);
            prop_assert_eq!(rec.delivered.bytes, rec.size, "byte conservation");
            // Completion cannot beat physics: serialization at 40G plus
            // one propagation delay.
            let min = Rate::from_gbps(40).serialize_time(rec.size).as_ps() + 2_000_000;
            prop_assert!(rec.fct().unwrap().as_ps() >= min, "FCT beats light speed");
        }
    }

    #[test]
    fn ib_random_flows_are_lossless_and_complete(
        plans in proptest::collection::vec(flow_plan(12), 1..10)
    ) {
        let sim = run_plan(Network::Ib, false, &plans);
        for rec in sim.trace.flows.iter() {
            prop_assert!(rec.end.is_some(), "flow {:?} did not complete", rec.flow);
            prop_assert_eq!(rec.delivered.bytes, rec.size);
        }
    }

    #[test]
    fn tcd_marks_are_a_subset_of_deliveries(
        plans in proptest::collection::vec(flow_plan(12), 1..10)
    ) {
        let sim = run_plan(Network::Cee, true, &plans);
        for rec in sim.trace.flows.iter() {
            prop_assert!(rec.delivered.ce + rec.delivered.ue <= rec.delivered.pkts,
                "a packet carries at most one final code point");
        }
    }

    #[test]
    fn detector_choice_never_breaks_losslessness(
        plans in proptest::collection::vec(flow_plan(8), 1..8),
        det in 0u8..3
    ) {
        let ls = leaf_spine(2, 2, 4, Rate::from_gbps(40), SimDuration::from_us(2));
        let mut cfg = default_config(Network::Cee, det == 2, SimTime::from_ms(60));
        if det == 0 {
            cfg.detector = DetectorKind::None;
        }
        let mut sim = Simulator::new(ls.topo.clone(), cfg, RouteSelect::Ecmp);
        for p in &plans {
            let src = ls.hosts[p.src % ls.hosts.len()];
            let mut dst = ls.hosts[p.dst % ls.hosts.len()];
            if dst == src {
                dst = ls.hosts[(p.dst + 1) % ls.hosts.len()];
            }
            sim.add_flow(
                src,
                dst,
                p.size,
                SimTime::from_us(p.start_us),
                Box::new(FixedRate::new(Rate::from_mbps(p.rate_mbps))),
            );
        }
        sim.run_until_all_complete();
        for rec in sim.trace.flows.iter() {
            prop_assert!(rec.end.is_some());
            prop_assert_eq!(rec.delivered.bytes, rec.size);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lossy mode: drops may happen, but go-back-N delivers every byte of
    /// every flow exactly once, for arbitrary flow sets.
    #[test]
    fn lossy_random_flows_conserve_bytes(
        plans in proptest::collection::vec(flow_plan(8), 1..8)
    ) {
        use tcd_repro::netsim::config::SimConfig;
        let ls = leaf_spine(2, 2, 4, Rate::from_gbps(40), SimDuration::from_us(2));
        let cfg = SimConfig::lossy_baseline(SimTime::from_ms(200), 100 * 1024);
        let mut sim = Simulator::new(ls.topo.clone(), cfg, RouteSelect::Ecmp);
        for p in &plans {
            let src = ls.hosts[p.src % ls.hosts.len()];
            let mut dst = ls.hosts[p.dst % ls.hosts.len()];
            if dst == src {
                dst = ls.hosts[(p.dst + 1) % ls.hosts.len()];
            }
            sim.add_flow(
                src,
                dst,
                p.size,
                SimTime::from_us(p.start_us),
                Box::new(FixedRate::new(Rate::from_mbps(p.rate_mbps))),
            );
        }
        sim.run_until_all_complete();
        for rec in sim.trace.flows.iter() {
            prop_assert!(rec.end.is_some(), "flow {:?} never completed", rec.flow);
            prop_assert_eq!(rec.delivered.bytes, rec.size, "exactly-once delivery");
        }
    }
}
