//! Static topology analysis (`tcdsim lint --topo`) over the committed
//! scenario registry: every committed spec must analyze clean, the seeded
//! deliberately-broken specs must fail with the exact diagnostics the lint
//! promises, and the static verdicts must agree with the runtime
//! pause-deadlock regressions in `paper_phenomena.rs`.

use simlint::{analyze, Severity};
use tcd_repro::lintspec;

/// Every committed scenario — the golden-trace set plus all other
/// experiment topologies — must carry zero static errors. This is the same
/// set the `tcdsim lint` CI gate runs.
#[test]
fn all_committed_scenarios_analyze_clean() {
    for name in lintspec::COMMITTED {
        let spec = lintspec::build(name).expect("committed name builds");
        let report = analyze(&spec);
        assert!(
            !report.has_errors(),
            "{name} must analyze clean:\n{}",
            report
                .diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.channels > 0, "{name} should have channels");
        assert!(report.dependencies > 0, "{name} should have dependencies");
    }
}

/// The seeded triangle routes every host pair "the long way round" the
/// ring, creating the canonical cyclic buffer dependency. The analyzer
/// must report the cycle as an error and name all three switch hops.
#[test]
fn seeded_triangle_reports_the_exact_cycle() {
    let spec = lintspec::build("seeded-cyclic-triangle").expect("seeded spec builds");
    let report = analyze(&spec);
    assert!(report.has_errors(), "the triangle must fail analysis");
    let cycles: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.check == "deadlock-cycle")
        .collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle: {:?}", report.diags);
    let msg = &cycles[0].message;
    for hop in ["s0[", "s1[", "s2["] {
        assert!(msg.contains(hop), "cycle must name hop {hop}: {msg}");
    }
    assert_eq!(cycles[0].severity, Severity::Error);
}

/// 100 Gbps over 100 µs links needs megabytes of PAUSE headroom — far more
/// than the 96 KiB the audit layer provisions. The analyzer must flag it.
#[test]
fn seeded_headroom_starved_dumbbell_fails() {
    let spec = lintspec::build("seeded-headroom-starved").expect("seeded spec builds");
    let report = analyze(&spec);
    assert!(report.has_errors());
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.check == "pfc-headroom" && d.severity == Severity::Error),
        "expected a pfc-headroom error: {:?}",
        report.diags
    );
    // Starved headroom is a sizing bug, not a routing bug: no cycles.
    assert!(
        report.diags.iter().all(|d| d.check != "deadlock-cycle"),
        "{:?}",
        report.diags
    );
}

/// The seeded fault-route-swap ring is the inverse of the triangle: its
/// *baseline* ECMP routes are clean, and only composing the fault plan's
/// `route_sets[0]` onto the tables exposes the cycle. The analyzer must
/// keep the baseline clean, flag exactly one fault-route-cycle error with
/// structured hops, and name the route set that causes it.
#[test]
fn seeded_fault_route_swap_is_caught_by_the_fault_plan_pass() {
    let spec = lintspec::build("seeded-fault-route-swap").expect("seeded spec builds");
    let report = analyze(&spec);
    assert!(
        report.diags.iter().all(|d| d.check != "deadlock-cycle"),
        "the baseline routes must be acyclic: {:?}",
        report.diags
    );
    let cycles: Vec<_> = report
        .diags
        .iter()
        .filter(|d| d.check == "fault-route-cycle")
        .collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle: {:?}", report.diags);
    let diag = cycles[0];
    assert_eq!(diag.severity, Severity::Error);
    assert!(
        diag.message.contains("route set 0"),
        "must name the offending set: {}",
        diag.message
    );
    let nodes: Vec<&str> = diag.cycle.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = nodes.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, ["s0", "s1", "s2"], "hops: {:?}", diag.cycle);
}

/// Cross-check against the runtime: `paper_phenomena.rs` asserts that the
/// CEE figure-2 pause storm dissolves with no pause deadlock. The static
/// analyzer must agree that the very topology that run executes on is free
/// of cyclic buffer dependencies — the storm is transient congestion
/// spreading, not a structural deadlock.
#[test]
fn static_verdict_matches_runtime_pause_deadlock_regression() {
    let spec = lintspec::build("cee-single-cp").expect("spec builds");
    let report = analyze(&spec);
    assert!(
        report.diags.iter().all(|d| d.check != "deadlock-cycle"),
        "runtime shows the pause storm dissolving, so the static graph \
         must be acyclic: {:?}",
        report.diags
    );
}

/// The analyzer must notice unreachable host pairs (a wiring bug no
/// simulation run would surface until a flow silently stalls).
#[test]
fn disconnected_topology_is_reported() {
    use lossless_flowctl::{Rate, SimDuration, SimTime};
    use lossless_netsim::routing::RouteSelect;
    use lossless_netsim::topology::Topology;
    use simlint::TopoSpec;
    use tcd_repro::scenarios::{default_config, Network};

    let mut b = Topology::builder();
    let r = Rate::from_gbps(40);
    let d = SimDuration::from_us(4);
    let s0 = b.switch("s0");
    let s1 = b.switch("s1");
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    b.link(h0, s0, r, d);
    b.link(h1, s1, r, d);
    // s0 and s1 are never linked: the hosts cannot reach each other.
    let spec = TopoSpec::new(
        "disconnected",
        b.build(),
        default_config(Network::Cee, false, SimTime::from_ms(1)),
        RouteSelect::Ecmp,
    );
    let report = analyze(&spec);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.check == "unreachable" && d.severity == Severity::Error),
        "{:?}",
        report.diags
    );
}
