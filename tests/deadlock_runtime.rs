//! Static-vs-runtime deadlock cross-check, DCFIT-style: every topology
//! the static analyzer flags as CDC-cyclic must *actually* deadlock at
//! runtime under the constructed ring workload — with the auditor's
//! stalled-progress watchdog reporting exactly the statically predicted
//! channel cycle — and every committed (clean) topology must never trip
//! the watchdog, no matter how hard it is driven.

use std::collections::BTreeSet;

use lossless_flowctl::SimTime;
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::topology::NodeId;
use lossless_netsim::{AuditMode, InvariantFamily, Simulator};
use simlint::analyze;
use tcd_repro::lintspec;
use tcd_repro::scenarios::fault;

/// The seeded CDC-cyclic lint specs and the ring size that reproduces
/// each at runtime ([`fault::deadlock_ring`] builds the identical
/// topology, so node names and port numbers line up with the lint spec).
fn ring_size(name: &str) -> Option<usize> {
    match name {
        "seeded-cyclic-triangle" => Some(3),
        "seeded-cyclic-square" => Some(4),
        _ => None,
    }
}

/// Drive one ring to (attempted) deadlock and return the simulator.
fn run_ring(n: usize, revert_at: Option<SimTime>) -> fault::DeadlockRing {
    let mut run = fault::deadlock_ring(n, SimTime::from_ms(5), revert_at);
    run.sim.audit_mut().config_mut().mode = AuditMode::Record;
    run.sim.audit_mut().config_mut().checkpoint_every = 256;
    run.sim.run();
    run
}

#[test]
fn statically_flagged_cycles_deadlock_at_runtime() {
    for name in lintspec::SEEDED_BAD {
        let Some(n) = ring_size(name) else { continue };

        // Static verdict: the analyzer flags exactly one channel cycle.
        let spec = lintspec::build(name).expect("seeded spec builds");
        let report = analyze(&spec);
        let diag = report
            .diags
            .iter()
            .find(|d| d.check == "deadlock-cycle")
            .unwrap_or_else(|| panic!("{name} must be flagged statically"));

        // Runtime verdict: the same ring, actually driven, wedges — and
        // the watchdog names the cycle.
        let run = run_ring(n, None);
        let audit = run.sim.audit();
        let cycle = audit
            .deadlock_cycle()
            .unwrap_or_else(|| panic!("{name}: the watchdog must trip"));
        assert!(
            audit
                .violations()
                .iter()
                .any(|v| v.family == InvariantFamily::Liveness),
            "{name}: the deadlock must surface as a Liveness violation"
        );

        // The runtime cycle is exactly the ring's channel set...
        let got: BTreeSet<(NodeId, u16)> = cycle.iter().copied().collect();
        let want: BTreeSet<(NodeId, u16)> = (0..n)
            .map(|i| (run.switches[i], run.ring_ports[i]))
            .collect();
        assert_eq!(got, want, "{name}: watchdog cycle != ring channels");

        // ...and every hop the watchdog names appears verbatim in the
        // static diagnostic (same construction order → same names/ports).
        for i in 0..n {
            let hop = format!("s{i}[{}]", run.ring_ports[i]);
            assert!(
                diag.message.contains(&hop),
                "{name}: static diag must name runtime hop {hop}: {}",
                diag.message
            );
        }

        // A deadlock means progress genuinely stopped: no deliveries past
        // the wedge, queues still holding bytes.
        assert!(
            audit.checks(InvariantFamily::Liveness) > 0,
            "{name}: liveness must have been checked"
        );
    }
}

#[test]
fn fault_plan_static_cycle_matches_the_runtime_watchdog_hop_for_hop() {
    // Static verdict: the seeded-fault-route-swap spec is clean under its
    // baseline ECMP routes; only the fault-plan composition pass names the
    // post-swap channel cycle, with structured (node, port) hops.
    let spec = lintspec::build("seeded-fault-route-swap").expect("seeded spec builds");
    let report = analyze(&spec);
    assert!(
        report.diags.iter().all(|d| d.check != "deadlock-cycle"),
        "baseline routes must be acyclic: {:?}",
        report.diags
    );
    let diag = report
        .diags
        .iter()
        .find(|d| d.check == "fault-route-cycle")
        .expect("the fault plan pass must flag the swap");

    // Runtime verdict: `deadlock_ring(3)` executes that exact RouteChange
    // (same topology construction, same route set) and wedges.
    let run = run_ring(3, None);
    let audit = run.sim.audit();
    let cycle = audit.deadlock_cycle().expect("the watchdog must trip");

    // Hop for hop: the statically predicted cycle is the runtime one.
    let got: BTreeSet<(String, u16)> = cycle
        .iter()
        .map(|&(node, port)| (run.sim.topology().name(node).to_string(), port))
        .collect();
    let want: BTreeSet<(String, u16)> = diag.cycle.iter().cloned().collect();
    assert_eq!(
        got, want,
        "static fault-plan cycle != runtime watchdog cycle"
    );
    assert_eq!(
        got.len(),
        3,
        "the ring wedges on all three inter-switch links"
    );
}

#[test]
fn reverting_routes_before_the_wedge_recovers() {
    // Same triangle, but the cyclic routes swap back to shortest paths
    // early: congestion forms, TCD reacts, and the fabric drains instead
    // of deadlocking. The watchdog must stay silent.
    let run = run_ring(3, Some(SimTime::from_us(40)));
    let audit = run.sim.audit();
    assert!(
        audit.deadlock_cycle().is_none(),
        "recovered run must not deadlock: {:?}",
        audit.violations()
    );
    assert!(
        audit.is_clean(),
        "recovered run must stay invariant-clean: {:?}",
        audit.violations()
    );
    assert!(audit.checks(InvariantFamily::Liveness) > 0);
    // Forward progress resumed after the revert: the run keeps
    // delivering until the end of the horizon.
    let delivered: u64 = run.sim.trace.flows.iter().map(|f| f.delivered.pkts).sum();
    assert!(delivered > 0, "recovered run must deliver");
    assert_eq!(run.sim.trace.drops, 0, "lossless recovery must not drop");
}

#[test]
fn committed_topologies_never_trip_the_watchdog() {
    // Every committed (statically clean) scenario topology, driven with a
    // saturating incast at dense checkpoints: the watchdog must run and
    // must never report a deadlock.
    for name in lintspec::COMMITTED {
        let spec = lintspec::build(name).expect("committed name builds");
        assert!(
            !analyze(&spec).has_errors(),
            "{name} must be statically clean"
        );

        let mut sim = Simulator::new(spec.topo.clone(), spec.config.clone(), spec.select);
        sim.audit_mut().config_mut().mode = AuditMode::Record;
        sim.audit_mut().config_mut().checkpoint_every = 1024;
        let hosts = sim.topology().hosts();
        let victim = hosts[0];
        for (i, &src) in hosts.iter().enumerate().skip(1) {
            sim.add_flow(
                src,
                victim,
                100_000,
                SimTime::from_us(i as u64 % 7),
                Box::new(FixedRate::line_rate()),
            );
        }
        sim.run();

        let audit = sim.audit();
        assert!(
            audit.checks(InvariantFamily::Liveness) > 0,
            "{name}: the watchdog must have run"
        );
        assert!(
            !audit
                .violations()
                .iter()
                .any(|v| v.family == InvariantFamily::Liveness),
            "{name}: clean topology tripped the watchdog: {:?}",
            audit.violations()
        );
        assert!(
            audit.deadlock_cycle().is_none(),
            "{name}: clean topology reported a deadlock cycle"
        );
    }
}
