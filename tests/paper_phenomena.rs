//! Integration tests asserting the paper's §3/§5.1 phenomena end-to-end:
//! congestion spreading, improper binary marking, and TCD's ternary
//! detection. These drive the same scenario builders as the experiment
//! binaries, with shortened horizons to stay test-friendly.

use tcd_repro::flowctl::SimTime;
use tcd_repro::scenarios::observation::{run, Options};
use tcd_repro::scenarios::Network;
use tcd_repro::tcd::TernaryState;

fn short(network: Network, multi_cp: bool, use_tcd: bool, end_ms: u64) -> Options {
    Options {
        network,
        multi_cp,
        use_tcd,
        end: SimTime::from_ms(end_ms),
        ..Default::default()
    }
}

#[test]
fn cee_ecn_improperly_marks_victims() {
    // §3.1.2: with plain ECN, the victim flows F0/F2 are marked CE at the
    // pause-affected chain ports.
    let r = run(short(Network::Cee, false, false, 4));
    let d0 = r.sim.trace.flows[r.f0.0 as usize].delivered;
    let d2 = r.sim.trace.flows[r.f2.0 as usize].delivered;
    assert!(d0.pkts > 50 && d2.pkts > 50, "cross flows must run");
    assert!(d0.ce > 0, "ECN blames victim F0 (got {} CE)", d0.ce);
    assert!(d2.ce > 0, "ECN blames victim F2");
    assert!(
        r.sim.trace.pause_frames > 0,
        "congestion must spread via PFC"
    );
}

#[test]
fn cee_tcd_protects_victims_and_marks_culprits() {
    // §5.1.2 / Fig. 12: with TCD, the victims get UE only; the congested
    // flow still gets CE.
    let r = run(short(Network::Cee, false, true, 3));
    let d0 = r.sim.trace.flows[r.f0.0 as usize].delivered;
    let d1 = r.sim.trace.flows[r.f1.0 as usize].delivered;
    let d2 = r.sim.trace.flows[r.f2.0 as usize].delivered;
    assert_eq!(d0.ce, 0, "TCD must not CE-mark victim F0");
    assert_eq!(d2.ce, 0, "TCD must not CE-mark victim F2");
    assert!(
        d0.ue > 0,
        "victim F0 must be told it crossed undetermined ports"
    );
    assert!(d1.ce > 0, "congested F1 must be CE-marked");
}

#[test]
fn cee_single_cp_p2_ends_non_congested() {
    // Fig. 12: P2 transitions undetermined -> non-congestion after the
    // bursts drain.
    let r = run(short(Network::Cee, false, true, 6));
    let prio = r.sim.config().data_prio;
    let states: Vec<TernaryState> = r
        .sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.node == r.fig.p2.0 && s.port == r.fig.p2.1 && s.prio == prio)
        .map(|s| s.state)
        .collect();
    assert!(
        states.iter().any(|s| s.is_undetermined()),
        "P2 must visit undetermined"
    );
    assert_eq!(
        *states.last().unwrap(),
        TernaryState::NonCongestion,
        "P2 must end at 0"
    );
}

#[test]
fn cee_multi_cp_covered_root_emerges() {
    // Fig. 13: with F0/F2 at 25 Gbps, P2 is a covered root that TCD
    // detects as congestion (transition 5) after the deep tree dissolves.
    let r = run(short(Network::Cee, true, true, 6));
    let prio = r.sim.config().data_prio;
    let states: Vec<TernaryState> = r
        .sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.node == r.fig.p2.0 && s.port == r.fig.p2.1 && s.prio == prio)
        .map(|s| s.state)
        .collect();
    let undet_at = states
        .iter()
        .position(|s| s.is_undetermined())
        .expect("P2 undetermined");
    assert!(
        states[undet_at..].contains(&TernaryState::Congestion),
        "the covered root must transition undetermined -> congestion"
    );
    // F0/F2 genuinely congest P2 in this scenario: CE expected eventually.
    let d0 = r.sim.trace.flows[r.f0.0 as usize].delivered;
    assert!(d0.ce > 0, "F0 is a culprit at P2 here and must see CE");
}

#[test]
fn ib_multi_cp_covered_root_emerges() {
    // Fig. 13 (InfiniBand): the covered root at P2 must also emerge under
    // CBFC, where the queue saturates flat at the input-buffer equilibrium
    // — the case that exercises the credit-constrained back-pressure
    // signal and the MTU-wobble trend slack.
    let r = run(short(Network::Ib, true, true, 6));
    let prio = r.sim.config().data_prio;
    let states: Vec<TernaryState> = r
        .sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.node == r.fig.p2.0 && s.port == r.fig.p2.1 && s.prio == prio)
        .map(|s| s.state)
        .collect();
    let undet_at = states
        .iter()
        .position(|s| s.is_undetermined())
        .expect("P2 undetermined");
    assert!(
        states[undet_at..].contains(&TernaryState::Congestion),
        "the IB covered root must transition undetermined -> congestion"
    );
    let d0 = r.sim.trace.flows[r.f0.0 as usize].delivered;
    assert!(d0.ce > 0, "F0 is a culprit at P2 here and must see CE");
}

#[test]
fn ib_fecn_improperly_marks_victims() {
    // §3.1.2 (InfiniBand): the periodicity of credits confuses FECN.
    let r = run(short(Network::Ib, false, false, 3));
    let d0 = r.sim.trace.flows[r.f0.0 as usize].delivered;
    let d2 = r.sim.trace.flows[r.f2.0 as usize].delivered;
    assert!(d0.ce + d2.ce > 0, "FECN should blame some victim packets");
}

#[test]
fn ib_tcd_protects_victims() {
    let r = run(short(Network::Ib, false, true, 4));
    let d0 = r.sim.trace.flows[r.f0.0 as usize].delivered;
    let d2 = r.sim.trace.flows[r.f2.0 as usize].delivered;
    assert_eq!(d0.ce, 0, "TCD-IB must not CE-mark victim F0");
    assert_eq!(d2.ce, 0, "TCD-IB must not CE-mark victim F2");
    assert!(d0.ue > 0, "victim must carry UE");
}

#[test]
fn pauses_spread_upstream_through_the_chain() {
    // §3.1: congestion at P3 propagates pauses to P2 (and further).
    let r = run(short(Network::Cee, false, false, 3));
    let prio = r.sim.config().data_prio;
    let paused_p2 = r
        .sim
        .trace
        .port_samples
        .iter()
        .any(|s| s.node == r.fig.p2.0 && s.port == r.fig.p2.1 && s.prio == prio && s.paused);
    assert!(paused_p2, "P2 must be paused by congestion spreading");
}

#[test]
fn pause_storm_dissolves_into_a_classified_tree() {
    // The congestion-tree pathology end-to-end: the burst incast congests
    // P3 (the root/culprit), the PFC storm spreads up the chain turning
    // P2..P0 into pause-affected victims, and once the bursts drain the
    // storm must dissolve — no drops ever, no pause deadlock, victims
    // resolving `/` -> `0`, and the culprit having stood in `1`.
    let r = run(short(Network::Cee, false, true, 6));
    let t = &r.sim.trace;
    let prio = r.sim.config().data_prio;

    // Losslessness: a pause storm must never cost a byte.
    assert_eq!(t.drops, 0, "lossless fabric dropped packets");
    assert!(t.pause_frames > 0, "the scenario must actually storm");

    let samples_of = |(node, port): (tcd_repro::netsim::topology::NodeId, u16)| {
        t.port_samples
            .iter()
            .filter(|s| s.node == node && s.port == port && s.prio == prio)
            .collect::<Vec<_>>()
    };

    // Victim chain ports: pause-affected during the storm, `/` while the
    // OFF periods make their state unknowable, back to `0` at the end.
    for (label, p) in [("P1", r.fig.p1), ("P2", r.fig.p2)] {
        let samples = samples_of(p);
        assert!(
            samples.iter().any(|s| s.paused),
            "{label} must be paused at some point during the storm"
        );
        assert!(
            samples.iter().any(|s| s.state.is_undetermined()),
            "{label} must pass through undetermined"
        );
        assert_eq!(
            samples.last().expect("sampled").state,
            TernaryState::NonCongestion,
            "{label} must resolve to 0 after the storm"
        );
    }

    // The culprit port at the tree root is genuinely congested.
    let p3 = samples_of(r.fig.p3);
    assert!(
        p3.iter().any(|s| s.state == TernaryState::Congestion),
        "P3 (the root) must stand in 1 during the storm"
    );

    // No pause deadlock: the storm is over well before the horizon — in
    // the final stretch of the run nothing is paused any more and the
    // sampled queues have drained.
    let horizon = t.port_samples.last().expect("samples").t;
    let tail_from = SimTime::from_ps(horizon.as_ps().saturating_sub(SimTime::from_ms(1).as_ps()));
    let tail: Vec<_> = t.port_samples.iter().filter(|s| s.t >= tail_from).collect();
    assert!(!tail.is_empty(), "the tail window must contain samples");
    assert!(
        tail.iter().all(|s| !s.paused),
        "pause deadlock: ports still paused at the end of the run"
    );
}

#[test]
fn lossless_delivery_in_all_observation_scenarios() {
    // The defining property of the network: nothing is ever dropped.
    for network in [Network::Cee, Network::Ib] {
        for multi in [false, true] {
            let r = run(short(network, multi, true, 3));
            for rec in r.sim.trace.flows.iter() {
                assert!(
                    rec.delivered.bytes <= rec.size,
                    "delivered more than sent for {:?}",
                    rec.flow
                );
                if rec.end.is_some() {
                    assert_eq!(rec.delivered.bytes, rec.size, "completed flow lost bytes");
                }
            }
        }
    }
}
