//! Observability determinism suite.
//!
//! * merged metrics registries are bit-identical at any harness thread
//!   count;
//! * run-level registry and flight-recorder fingerprints reproduce
//!   exactly across repeated runs;
//! * both are pinned against a committed golden (`tests/golden/
//!   obs_fig03.txt`). Test builds always audit (the dev-dependency turns
//!   the `audit` feature on), while CI re-derives the same fingerprint
//!   from the unaudited release binary's `tcdsim metrics` output — so a
//!   match on both sides proves the audit layer does not perturb
//!   observability. Re-bless with `TCD_REGEN_GOLDEN=1`.
//! * an audit violation surfacing mid-run dumps the flight-recorder
//!   window next to the violation snapshot.

use std::path::PathBuf;

use lossless_flowctl::SimTime;
use tcd_repro::harness::{self, Sweep};
use tcd_repro::obs_export;

fn fig03(end_us: u64) -> tcd_repro::netsim::Simulator {
    obs_export::run_scenario("fig03", SimTime::from_us(end_us))
        .expect("known scenario")
        .sim
}

#[test]
fn merged_registry_bit_identical_across_thread_counts() {
    let build = || {
        let mut sweep = Sweep::new();
        for name in ["fig03", "fig12", "ib"] {
            sweep.add(name, move || {
                let r = obs_export::run_scenario(name, SimTime::from_us(400)).unwrap();
                harness::outcome_of(&r.sim, Vec::new())
            });
        }
        sweep
    };
    let r1 = build().run(1).merged_registry();
    let r2 = build().run(2).merged_registry();
    let r8 = build().run(8).merged_registry();
    assert_eq!(r1.fingerprint(), r2.fingerprint());
    assert_eq!(r1.fingerprint(), r8.fingerprint());
    assert_eq!(
        r1.to_json(),
        r8.to_json(),
        "registry dumps must be bit-identical"
    );
}

#[test]
fn registry_and_recorder_reproduce_across_runs() {
    let a = fig03(400);
    let b = fig03(400);
    assert_eq!(
        a.obs_registry().fingerprint(),
        b.obs_registry().fingerprint()
    );
    assert_eq!(a.obs.rec.fingerprint(), b.obs.rec.fingerprint());
    assert_eq!(a.obs.rec.total(), b.obs.rec.total());
    assert!(a.obs.rec.total() > 0, "fig03 must exercise the recorder");
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_fig03.txt")
}

#[test]
fn obs_fingerprints_match_committed_golden() {
    let sim = fig03(600);
    let actual = format!(
        "registry_fingerprint {:016x}\nrecorder_fingerprint {:016x}\nrecorder_total {}\n",
        sim.obs_registry().fingerprint(),
        sim.obs.rec.fingerprint(),
        sim.obs.rec.total()
    );
    let path = golden_path();
    if std::env::var("TCD_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing obs golden {}: {e}\nregenerate with TCD_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "observability fingerprints diverged from the committed golden \
         (audit on/off mismatch or an engine/instrumentation change); \
         if intended, re-bless with TCD_REGEN_GOLDEN=1"
    );
}

#[test]
fn injected_audit_violation_dumps_flight_recorder_window() {
    use tcd_repro::netsim::audit::{AuditMode, InvariantFamily, Violation};
    use tcd_repro::netsim::cchooks::FixedRate;
    use tcd_repro::netsim::routing::RouteSelect;
    use tcd_repro::netsim::topology::figure2;
    use tcd_repro::netsim::{NodeId, Simulator};
    use tcd_repro::obs::RecordKind;
    use tcd_repro::scenarios::{self, Network};

    let fig = figure2(Default::default());
    let cfg = scenarios::default_config(Network::Cee, true, SimTime::from_ms(2));
    let mut sim = Simulator::new(fig.topo.clone(), cfg, RouteSelect::Ecmp);
    sim.add_flow(
        fig.s1,
        fig.r1,
        10_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.audit_mut().config_mut().mode = AuditMode::Record;

    sim.run_until(SimTime::from_ms(1));
    assert!(
        sim.obs.violation_dumps().is_empty(),
        "a clean run must not produce violation dumps"
    );

    // Inject a synthetic violation between checkpoints; the engine's
    // watermark must catch it at the next checkpoint and capture the
    // flight-recorder window.
    sim.audit_mut().report(Violation {
        family: InvariantFamily::Conservation,
        t: SimTime::from_ms(1),
        node: NodeId(u32::MAX),
        port: u16::MAX,
        prio: u8::MAX,
        message: "synthetic violation injected by obs_determinism".into(),
    });
    sim.run();

    let dumps = sim.obs.violation_dumps();
    assert_eq!(dumps.len(), 1, "exactly the injected violation is dumped");
    assert_eq!(dumps[0].total_violations, 1);
    assert!(!dumps[0].records.is_empty());
    assert!(
        dumps[0]
            .records
            .iter()
            .any(|r| RecordKind::from_u8(r.kind) == Some(RecordKind::Violation)),
        "the dump window carries the violation marker record"
    );
}
