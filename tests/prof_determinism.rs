//! Self-profiler non-perturbation suite.
//!
//! The wall-clock span profiler (`lossless_obs::prof`) only *reads*
//! `Instant` — it never schedules events or feeds simulation state — so
//! every deterministic artifact must be bit-identical with profiling on
//! or off:
//!
//! * run fingerprints, event counts, obs-registry and flight-recorder
//!   fingerprints of a single run;
//! * merged sweep registries and merged fingerprints at 1/2/8 worker
//!   threads;
//! * and the profiler must actually have *sampled* something in the
//!   profiled twin, so the equalities are not vacuous.
//!
//! The `#[ignore]`d overhead test times the fat-tree k=6 bench with the
//! profiler on and off and asserts the default sampling cadence costs
//! ≤ 5% throughput; CI runs it from the release binary where the timing
//! is meaningful (`cargo test --release -- --ignored`).

use lossless_flowctl::SimTime;
use lossless_obs::prof::ProfConfig;
use tcd_repro::harness::{self, Sweep};
use tcd_repro::scenarios;

/// A small un-run deadlock-ring sim: cheap enough for debug-mode test
/// runs while still exercising hosts, switches, PFC and the TCD
/// detectors.
fn ring(n: usize) -> tcd_repro::netsim::Simulator {
    scenarios::fault::deadlock_ring(n, SimTime::from_us(400), None).sim
}

/// Dense profiling so even short runs sample spans and record ticks.
fn dense() -> ProfConfig {
    ProfConfig {
        sample_every: 4,
        tick_every: 256,
        max_ticks: 1024,
    }
}

#[test]
fn single_run_artifacts_identical_profiler_on_off() {
    let mut off = ring(4);
    off.record_violations();
    off.run();

    let mut on = ring(4);
    on.record_violations();
    on.enable_profiler(dense());
    on.run();

    let p = on.profile().expect("profiler was armed");
    assert!(p.sampled > 0, "the profiled twin must sample spans");
    assert!(!p.ticks.is_empty(), "the profiled twin must record ticks");
    assert!(off.profile().is_none(), "the unprofiled twin stays silent");

    assert_eq!(
        harness::fingerprint_sim(&off),
        harness::fingerprint_sim(&on)
    );
    assert_eq!(off.trace.events, on.trace.events);
    assert_eq!(
        off.obs_registry().fingerprint(),
        on.obs_registry().fingerprint()
    );
    assert_eq!(off.obs.rec.fingerprint(), on.obs.rec.fingerprint());
    assert_eq!(
        off.obs_registry().to_json(),
        on.obs_registry().to_json(),
        "registry dumps must be bit-identical"
    );
}

fn sweep(profiled: bool) -> Sweep {
    let mut s = Sweep::new();
    for n in [3usize, 4, 5] {
        s.add(format!("ring{n}"), move || {
            let mut sim = ring(n);
            sim.record_violations();
            if profiled {
                sim.enable_profiler(dense());
            }
            sim.run();
            harness::outcome_of(&sim, Vec::new())
        });
    }
    s
}

#[test]
fn sweep_merges_identical_across_threads_and_profiling() {
    let base = sweep(false).run(1);
    for threads in [1usize, 2, 8] {
        let prof = sweep(true).run(threads);
        assert_eq!(
            base.merged_fingerprint(),
            prof.merged_fingerprint(),
            "{threads} threads"
        );
        assert_eq!(
            base.merged_registry().to_json(),
            prof.merged_registry().to_json(),
            "{threads} threads"
        );
        // Outcome equality deliberately ignores the wall-clock profile…
        for (b, p) in base.results.iter().zip(&prof.results) {
            assert_eq!(b.outcome, p.outcome, "{}", b.id);
        }
        // …which must nonetheless be present on every profiled run.
        assert!(
            prof.results
                .iter()
                .all(|r| r.outcome.perf.as_ref().is_some_and(|p| p.sampled > 0)),
            "{threads} threads: profiled sweep runs must carry a profile"
        );
    }
}

/// Release-only (CI) budget check: the default sampling cadence must not
/// cost more than 5% of fat-tree k=6 bench throughput. Debug timings are
/// meaningless, hence `#[ignore]` — run with `--release -- --ignored`.
#[test]
#[ignore = "wall-clock budget; run in release builds only"]
fn profiler_overhead_within_budget() {
    use tcd_repro::netsim::QueueKind;
    let off = harness::timed_throughput(|| scenarios::fat_tree_k6_bench(QueueKind::Wheel));
    let on = harness::timed_throughput(|| {
        let mut sim = scenarios::fat_tree_k6_bench(QueueKind::Wheel);
        sim.enable_profiler(ProfConfig::default());
        sim
    });
    assert_eq!(
        off.fingerprint, on.fingerprint,
        "profiling must not perturb"
    );
    assert_eq!(off.events, on.events);
    assert!(
        on.best_eps() >= 0.95 * off.best_eps(),
        "profiler overhead above 5% budget: {:.2}M events/s on vs {:.2}M off",
        on.best_eps() / 1e6,
        off.best_eps() / 1e6
    );
}
