//! Golden-trace conformance suite: key paper scenarios, run small-scale,
//! rendered to a canonical text form ([`harness::golden_trace`]) and
//! compared against committed goldens in `tests/golden/`. Any engine
//! change that alters observable behaviour fails here with the first
//! diverging event/sample line; deliberate changes are re-blessed with
//!
//! ```sh
//! TCD_REGEN_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! A second test replays the same scenarios through the parallel sweep
//! harness and cross-checks the committed fingerprints, so the goldens
//! also pin the harness's determinism guarantee.

use std::path::PathBuf;

use lossless_flowctl::{SimDuration, SimTime};
use lossless_netsim::Simulator;
use tcd_repro::harness::{self, golden_diff, golden_trace, Sweep};
use tcd_repro::scenarios::{fault, observation, victim, workload, Cc, CcAlgo, Network};

fn cee_single_cp() -> Simulator {
    observation::run(observation::Options {
        network: Network::Cee,
        multi_cp: false,
        use_tcd: true,
        end: SimTime::from_ms(3),
        sample_every: SimDuration::from_us(50),
    })
    .sim
}

fn cee_multi_cp() -> Simulator {
    observation::run(observation::Options {
        network: Network::Cee,
        multi_cp: true,
        use_tcd: true,
        end: SimTime::from_ms(3),
        sample_every: SimDuration::from_us(50),
    })
    .sim
}

fn ib_single_cp() -> Simulator {
    observation::run(observation::Options {
        network: Network::Ib,
        multi_cp: false,
        use_tcd: true,
        end: SimTime::from_ms(3),
        sample_every: SimDuration::from_us(50),
    })
    .sim
}

fn incast_victim() -> Simulator {
    victim::run(victim::Options {
        network: Network::Cee,
        use_tcd: true,
        end: SimTime::from_ms(10),
        ..Default::default()
    })
    .sim
}

fn fat_tree_k4() -> Simulator {
    workload::run(workload::Options {
        network: Network::Cee,
        cc: Cc {
            algo: CcAlgo::Dcqcn,
            tcd: true,
        },
        use_tcd: true,
        k: 4,
        workload: workload::Workload::Hadoop,
        load: 0.3,
        flows: 200,
        incast_fraction: 0.1,
        incast_fanin: 4,
        seed: 7,
        deadline: SimTime::from_ms(20),
    })
    .sim
}

fn fault_flap_incast() -> Simulator {
    let (mut sim, _window) = fault::flap_incast(SimTime::from_ms(4));
    sim.run();
    sim
}

fn fault_degrade() -> Simulator {
    let mut sim = fault::degrade_recovery(SimTime::from_ms(4));
    sim.run();
    sim
}

/// A named scenario builder, as committed in golden-file order.
type Scenario = (&'static str, fn() -> Simulator);

/// The committed conformance scenarios, in golden-file order.
const SCENARIOS: [Scenario; 7] = [
    ("cee-single-cp", cee_single_cp),
    ("cee-multi-cp", cee_multi_cp),
    ("ib-single-cp", ib_single_cp),
    ("incast-victim", incast_victim),
    ("fat-tree-k4", fat_tree_k4),
    ("fault-flap-incast", fault_flap_incast),
    ("fault-degrade", fault_degrade),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn regen_requested() -> bool {
    std::env::var("TCD_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn golden_traces_match_committed() {
    let regen = regen_requested();
    for (name, build) in SCENARIOS {
        let sim = build();
        let actual = golden_trace(&sim, name);
        let path = golden_dir().join(format!("{name}.txt"));
        if regen {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {}: {e}\nregenerate with TCD_REGEN_GOLDEN=1",
                path.display()
            )
        });
        if let Some(diff) = golden_diff(&expected, &actual) {
            panic!(
                "scenario `{name}` diverged from its committed golden trace\n{diff}\
                 if this change is intended, re-bless with TCD_REGEN_GOLDEN=1"
            );
        }
    }
}

#[test]
fn sweep_reproduces_golden_fingerprints() {
    if regen_requested() {
        return; // goldens are being rewritten; nothing to check against
    }
    let mut sweep = Sweep::new();
    for (name, build) in SCENARIOS {
        sweep.add(name, move || harness::outcome_of(&build(), Vec::new()));
    }
    let rep = sweep.run(2);
    for r in &rep.results {
        let path = golden_dir().join(format!("{}.txt", r.id));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {}: {e}\nregenerate with TCD_REGEN_GOLDEN=1",
                path.display()
            )
        });
        let want = text
            .lines()
            .find_map(|l| l.strip_prefix("fingerprint "))
            .expect("golden trace carries a fingerprint line");
        assert_eq!(
            format!("{:016x}", r.outcome.fingerprint),
            want,
            "sweep run `{}` does not reproduce its committed fingerprint",
            r.id
        );
    }
}
