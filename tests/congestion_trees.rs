//! Live congestion-tree reconstruction (paper §3.2.2 / Fig. 5) from
//! simulator snapshots, including the covered-root case.

use tcd_repro::flowctl::SimTime;
use tcd_repro::netsim::cchooks::FixedRate;
use tcd_repro::netsim::routing::RouteSelect;
use tcd_repro::netsim::topology::{figure2, Figure2Options};
use tcd_repro::netsim::Simulator;
use tcd_repro::scenarios::{default_config, Cc, CcAlgo, Network};
use tcd_repro::tcd::tree;

fn key(node: u32, port: u16) -> u64 {
    ((node as u64) << 16) | port as u64
}

#[test]
fn deep_tree_visible_mid_burst() {
    // During the incast, P3 (T3 -> R1) is the root; the chain ports P2,
    // P1 (and P0) are its transitive leaves.
    let fig = figure2(Figure2Options::default());
    let cc = Cc {
        algo: CcAlgo::Dcqcn,
        tcd: true,
    };
    let mut cfg = default_config(Network::Cee, true, SimTime::from_ms(6));
    cfg.feedback = cc.feedback();
    let mut sim = Simulator::new(fig.topo.clone(), cfg, RouteSelect::Ecmp);
    sim.add_flow(fig.s1, fig.r1, 40_000_000, SimTime::ZERO, cc.controller());
    for &a in &fig.bursters {
        sim.add_flow(
            a,
            fig.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }

    // Run into the middle of the burst phase, then snapshot.
    sim.run_until(SimTime::from_ms(1));
    let snap = sim.congestion_snapshot(sim.config().data_prio);
    let trees = tree::trees(&snap);
    assert!(!trees.is_empty(), "a congestion tree must exist mid-burst");

    let p3 = key(fig.p3.0 .0, fig.p3.1);
    let root_tree = trees
        .iter()
        .find(|t| t.root == p3)
        .expect("P3 must be a congestion-tree root during the incast");
    // Congestion spreading has reached at least P2 upstream.
    let p2 = key(fig.p2.0 .0, fig.p2.1);
    assert!(
        root_tree.leaves.contains(&p2),
        "P2 must be a leaf of P3's tree (leaves: {:?})",
        root_tree.leaves
    );
    assert!(root_tree.depth(&snap) >= 1);
    // Leaves are all undetermined or covered roots — never non-congestion.
    assert!(tree::inconsistent_leaves(&snap).is_empty());

    // Continue the run to completion: the engine supports interleaving.
    sim.run();
    assert!(sim.trace.completed_count > 0);
}

#[test]
fn covered_root_relation_detected_in_snapshot() {
    // Multi-congestion-point variant: after the bursts end, P2 (fed by
    // 50 Gbps of F0+F2) persists as a root of its own tree.
    let fig = figure2(Figure2Options::default());
    let cc = Cc {
        algo: CcAlgo::Dcqcn,
        tcd: true,
    };
    let mut cfg = default_config(Network::Cee, true, SimTime::from_ms(6));
    cfg.feedback = cc.feedback();
    let mut sim = Simulator::new(fig.topo.clone(), cfg, RouteSelect::Ecmp);
    sim.add_flow(fig.s1, fig.r1, 40_000_000, SimTime::ZERO, cc.controller());
    for &a in &fig.bursters {
        sim.add_flow(
            a,
            fig.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    use tcd_repro::flowctl::Rate;
    let rate = Rate::from_gbps(25);
    let bytes = rate.bytes_in(tcd_repro::flowctl::SimDuration::from_ms(6));
    sim.add_flow(
        fig.s0,
        fig.r0,
        bytes,
        SimTime::from_us(200),
        Box::new(FixedRate::new(rate)),
    );
    sim.add_flow(
        fig.s2,
        fig.r0,
        bytes,
        SimTime::from_us(200),
        Box::new(FixedRate::new(rate)),
    );

    sim.run_until(SimTime::from_ms(5));
    let snap = sim.congestion_snapshot(sim.config().data_prio);
    let trees = tree::trees(&snap);
    let p2 = key(fig.p2.0 .0, fig.p2.1);
    let t2_tree = trees.iter().find(|t| t.root == p2);
    assert!(
        t2_tree.is_some(),
        "the emerged covered root P2 must own a tree at 5 ms (trees: {trees:?})"
    );
    // Its pressure reaches upstream: P1 is its leaf.
    let p1 = key(fig.p1.0 .0, fig.p1.1);
    assert!(
        t2_tree.unwrap().leaves.contains(&p1),
        "P1 must be paused by P2's tree"
    );
}
