//! The harness's core guarantee: a sweep's results are a pure function of
//! its configuration — the same sweep run on 1, 2 and 8 worker threads
//! produces identical per-run fingerprints, identical metrics, and an
//! identical merged report.

use tcd_repro::harness::{self, Sweep, SweepReport};
use tcd_repro::scenarios::victim;
use tcd_repro::scenarios::Network;

/// The same small victim-scenario sweep every test runs: both network
/// types, both detectors, two seeds.
fn sweep() -> Sweep {
    let mut s = Sweep::new();
    for network in [Network::Cee, Network::Ib] {
        for use_tcd in [false, true] {
            for seed in [1u64, 2] {
                s.add(format!("{network:?}_{use_tcd}_{seed}"), move || {
                    let r = victim::run(victim::Options {
                        network,
                        use_tcd,
                        seed,
                        ..Default::default()
                    });
                    harness::outcome_of(
                        &r.sim,
                        vec![("ce_fraction".into(), r.victim_ce_fraction())],
                    )
                });
            }
        }
    }
    s
}

fn run_at(threads: usize) -> SweepReport {
    sweep().run(threads)
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let one = run_at(1);
    let two = run_at(2);
    let eight = run_at(8);

    for other in [&two, &eight] {
        assert_eq!(one.results.len(), other.results.len());
        for (a, b) in one.results.iter().zip(&other.results) {
            assert_eq!(
                a.id, b.id,
                "submission order must survive parallel execution"
            );
            assert_eq!(
                a.outcome, b.outcome,
                "run {} differs between thread counts",
                a.id
            );
        }
        assert_eq!(one.merged_fingerprint(), other.merged_fingerprint());
        // The deterministic report is byte-identical; only wall-clock
        // fields (confined to the bench record) may differ.
        assert_eq!(one.to_json(), other.to_json());
    }
}

#[test]
fn sweep_matches_direct_serial_execution() {
    // The harness adds nothing to the simulation: running the same
    // configurations by hand gives the same fingerprints.
    let rep = run_at(4);
    let mut i = 0;
    for network in [Network::Cee, Network::Ib] {
        for use_tcd in [false, true] {
            for seed in [1u64, 2] {
                let r = victim::run(victim::Options {
                    network,
                    use_tcd,
                    seed,
                    ..Default::default()
                });
                assert_eq!(
                    rep.results[i].outcome.fingerprint,
                    harness::fingerprint_sim(&r.sim),
                    "run {} differs from its serial twin",
                    rep.results[i].id
                );
                i += 1;
            }
        }
    }
}

#[test]
fn fingerprint_separates_different_runs() {
    // Sanity for the digest itself: different seeds / detectors in the
    // sweep above produced distinct fingerprints.
    let rep = run_at(2);
    let mut prints: Vec<u64> = rep.results.iter().map(|r| r.outcome.fingerprint).collect();
    prints.sort_unstable();
    prints.dedup();
    assert_eq!(
        prints.len(),
        rep.results.len(),
        "fingerprint collision across distinct runs"
    );
}
