//! Fault-injection suite: link flaps and rate degradations injected
//! mid-run through the deterministic fault plan.
//!
//! * A core fat-tree link flapping in the middle of a lossless incast
//!   must cost zero packets, leave every invariant family clean, and
//!   still deliver every flow (recovery to steady state).
//! * The injected faults are visible in the metrics registry under the
//!   `fault.*` counters, paired onset/recovery.
//! * Faulted runs are exactly as deterministic as fault-free ones:
//!   bit-identical sweep fingerprints across 1/2/8 harness threads.

use lossless_flowctl::SimTime;
use lossless_netsim::Simulator;
use tcd_repro::harness::{self, Sweep};
use tcd_repro::scenarios::fault;

fn end() -> SimTime {
    SimTime::from_ms(4)
}

/// Run the flap scenario to completion and hand back the simulator.
fn flap_run() -> Simulator {
    flap_run_with_window().0
}

fn flap_run_with_window() -> (Simulator, (SimTime, SimTime)) {
    let (mut sim, window) = fault::flap_incast(end());
    assert!(
        sim.run_until_all_complete(),
        "all incast flows must finish despite the flap"
    );
    (sim, window)
}

#[test]
fn core_link_flap_mid_incast_is_loss_free() {
    let (sim, (down, up)) = flap_run_with_window();

    // Lossless end to end: the dark window holds queues, it never drops.
    assert_eq!(sim.trace.drops, 0, "flap must not cost packets");
    for f in &sim.trace.flows {
        assert_eq!(
            f.delivered.bytes, 500_000,
            "every sender must recover to steady state and finish"
        );
    }
    // The fault genuinely bit: cross-edge flows cannot complete while
    // the victim edge is dark, so the last completion postdates
    // recovery — mid-incast flap, not a no-op before or after it.
    let last_end = sim
        .trace
        .flows
        .iter()
        .map(|f| f.end.expect("finished"))
        .max()
        .unwrap();
    assert!(
        last_end > up && up > down,
        "incast must straddle the dark window ({down} .. {up}), \
         finished {last_end}"
    );

    // Test builds always audit (dev-dependency feature): the flap must
    // not bend conservation, buffer accounting, or protocol legality.
    let audit = sim.audit();
    assert!(
        audit.is_clean(),
        "faulted run must stay invariant-clean: {:?}",
        audit.violations()
    );

    // Both fault edges are on the record, once per flapped uplink.
    let reg = sim.obs_registry();
    assert_eq!(reg.counter_total("fault.link_down"), 2);
    assert_eq!(reg.counter_total("fault.link_up"), 2);
    // And PFC actually worked for its living during the dark window.
    assert!(sim.trace.pause_frames > 0, "the flap must trigger PFC");
}

#[test]
fn degradation_recovers_loss_free() {
    let mut sim = fault::degrade_recovery(end());
    assert!(
        sim.run_until_all_complete(),
        "the transfer must outlast the degradation window"
    );
    assert_eq!(sim.trace.drops, 0, "degradation must not cost packets");
    assert_eq!(sim.trace.flows[0].delivered.bytes, 4_000_000);
    assert!(
        sim.audit().is_clean(),
        "degraded run must stay invariant-clean: {:?}",
        sim.audit().violations()
    );
    let reg = sim.obs_registry();
    assert_eq!(reg.counter_total("fault.degrade"), 1);
    assert_eq!(reg.counter_total("fault.restore"), 1);
    assert!(
        sim.trace.pause_frames > 0,
        "a 40G sender into a 10G window must pause"
    );
}

#[test]
fn fault_fingerprints_bit_identical_across_thread_counts() {
    let build = || {
        let mut sweep = Sweep::new();
        sweep.add("fault-flap-incast", || {
            harness::outcome_of(&flap_run(), Vec::new())
        });
        sweep.add("fault-degrade", || {
            let mut sim = fault::degrade_recovery(end());
            sim.run_until_all_complete();
            harness::outcome_of(&sim, Vec::new())
        });
        sweep.add("deadlock-triangle", || {
            let mut run = fault::deadlock_ring(3, SimTime::from_us(400), None);
            run.sim.record_violations();
            run.sim.run();
            harness::outcome_of(&run.sim, Vec::new())
        });
        sweep
    };
    let f1 = build().run(1).merged_fingerprint();
    let f2 = build().run(2).merged_fingerprint();
    let f8 = build().run(8).merged_fingerprint();
    assert_eq!(f1, f2, "faulted runs must be thread-count invariant");
    assert_eq!(f1, f8, "faulted runs must be thread-count invariant");
}
