//! Cross-crate integration of the congestion-control case studies (§5.2):
//! each controller runs end-to-end through the simulator, reacts to the
//! detector's code points, and the TCD-aware variants never throttle
//! victims.

use tcd_repro::flowctl::{SimDuration, SimTime};
use tcd_repro::scenarios::victim::{run, Options};
use tcd_repro::scenarios::{Cc, CcAlgo, Network};

fn opts(algo: CcAlgo, tcd: bool) -> Options {
    let network = match algo {
        CcAlgo::IbCc => Network::Ib,
        _ => Network::Cee,
    };
    let mut o = Options {
        network,
        use_tcd: tcd,
        cc: Some(Cc { algo, tcd }),
        burst_bytes: 100 * 1024,
        burst_gap: SimDuration::from_us(450),
        load: 0.5,
        end: SimTime::from_ms(15),
        ..Default::default()
    };
    if network == Network::Ib {
        o.load = 0.3;
        o.burst_gap = SimDuration::from_us(700);
    }
    o
}

#[test]
fn all_six_controllers_complete_their_flows() {
    for algo in [CcAlgo::Dcqcn, CcAlgo::Timely, CcAlgo::IbCc] {
        for tcd in [false, true] {
            let r = run(opts(algo, tcd));
            let completed = r.sim.trace.completed().count();
            let total = r.sim.trace.flows.len();
            assert!(
                completed as f64 >= total as f64 * 0.85,
                "{:?} tcd={tcd}: only {completed}/{total} flows completed",
                algo
            );
            // Lossless invariant holds under every controller.
            for rec in r.sim.trace.flows.iter() {
                assert!(rec.delivered.bytes <= rec.size);
            }
        }
    }
}

#[test]
fn tcd_variants_never_ce_flag_victims() {
    for algo in [CcAlgo::Dcqcn, CcAlgo::Timely, CcAlgo::IbCc] {
        let r = run(opts(algo, true));
        let flagged = r
            .victims
            .iter()
            .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ce > 0)
            .count();
        assert_eq!(
            flagged, 0,
            "{algo:?}+tcd flagged {flagged} victims as congested"
        );
    }
}

#[test]
fn baselines_do_flag_victims() {
    for algo in [CcAlgo::Dcqcn, CcAlgo::IbCc] {
        let r = run(opts(algo, false));
        let flagged = r
            .victims
            .iter()
            .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ce > 0)
            .count();
        assert!(
            flagged > 0,
            "{algo:?} baseline should mistakenly flag victims"
        );
    }
}

#[test]
fn tcd_does_not_hurt_victim_fct() {
    // The §5.2 claim in its weakest testable form: across the three
    // controllers, the TCD variant's mean victim FCT is not meaningfully
    // worse than the baseline's (and usually better).
    for algo in [CcAlgo::Dcqcn, CcAlgo::Timely, CcAlgo::IbCc] {
        let base = run(opts(algo, false)).victim_mean_fct().unwrap();
        let tcd = run(opts(algo, true)).victim_mean_fct().unwrap();
        assert!(
            tcd <= base * 1.10,
            "{algo:?}: TCD victim FCT {tcd:.6}s vs baseline {base:.6}s"
        );
    }
}

#[test]
fn ue_notifications_reach_tcd_endpoints_only() {
    // The feedback plumbing: UE CNPs are generated only when the endpoint
    // opted in (notify_ue). Baseline runs therefore never see UE holds.
    let r = run(opts(CcAlgo::Dcqcn, true));
    let ue_flagged = r
        .victims
        .iter()
        .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ue > 0)
        .count();
    assert!(
        ue_flagged > 0,
        "TCD run must deliver UE-marked packets to victims"
    );
}
