//! Full-stack determinism: identical configurations produce bit-identical
//! results across every scenario family — the property all other
//! regression tests rely on.

use tcd_repro::flowctl::{SimDuration, SimTime};
use tcd_repro::scenarios::victim;
use tcd_repro::scenarios::{Cc, CcAlgo, Network};

fn fingerprint(r: &victim::Run) -> Vec<(u64, u64, u64, Option<u64>)> {
    r.sim
        .trace
        .flows
        .iter()
        .map(|f| {
            (
                f.delivered.bytes,
                f.delivered.ce,
                f.delivered.ue,
                f.end.map(|t| t.as_ps()),
            )
        })
        .collect()
}

#[test]
fn victim_scenario_is_reproducible() {
    let mk = || {
        victim::run(victim::Options {
            network: Network::Cee,
            use_tcd: true,
            cc: Some(Cc {
                algo: CcAlgo::Dcqcn,
                tcd: true,
            }),
            end: SimTime::from_ms(10),
            seed: 42,
            ..Default::default()
        })
    };
    assert_eq!(fingerprint(&mk()), fingerprint(&mk()));
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        victim::run(victim::Options {
            network: Network::Cee,
            use_tcd: true,
            cc: Some(Cc {
                algo: CcAlgo::Dcqcn,
                tcd: true,
            }),
            end: SimTime::from_ms(10),
            seed,
            ..Default::default()
        })
    };
    assert_ne!(
        fingerprint(&mk(1)),
        fingerprint(&mk(2)),
        "seeds must matter"
    );
}

#[test]
fn ib_scenario_is_reproducible() {
    let mk = || {
        victim::run(victim::Options {
            network: Network::Ib,
            use_tcd: true,
            cc: Some(Cc {
                algo: CcAlgo::IbCc,
                tcd: true,
            }),
            load: 0.3,
            burst_gap: SimDuration::from_us(700),
            end: SimTime::from_ms(10),
            seed: 7,
            ..Default::default()
        })
    };
    assert_eq!(fingerprint(&mk()), fingerprint(&mk()));
}

#[test]
fn timely_scenario_is_reproducible() {
    // TIMELY exercises the per-packet ACK path — the most event-dense
    // feedback mode.
    let mk = || {
        victim::run(victim::Options {
            network: Network::Cee,
            use_tcd: true,
            cc: Some(Cc {
                algo: CcAlgo::Timely,
                tcd: true,
            }),
            end: SimTime::from_ms(8),
            seed: 9,
            ..Default::default()
        })
    };
    assert_eq!(fingerprint(&mk()), fingerprint(&mk()));
}

#[test]
fn heap_and_wheel_cores_are_twins() {
    // The event-queue toggle must be invisible to every observable output:
    // run the golden fat-tree workload once per core and require the full
    // canonical traces — per-flow lifecycle, markings, timings — to match
    // byte for byte.
    use tcd_repro::harness::golden_trace;
    use tcd_repro::netsim::QueueKind;
    use tcd_repro::scenarios::workload;

    let mk = |queue: QueueKind| {
        let (mut sim, _ft, _flows) = workload::build(
            workload::Options {
                network: Network::Cee,
                cc: Cc {
                    algo: CcAlgo::Dcqcn,
                    tcd: true,
                },
                use_tcd: true,
                k: 4,
                workload: workload::Workload::Hadoop,
                load: 0.3,
                flows: 200,
                incast_fraction: 0.1,
                incast_fanin: 4,
                seed: 7,
                deadline: SimTime::from_ms(20),
            },
            |cfg| cfg.queue = queue,
        );
        sim.run_until_all_complete();
        sim
    };
    let wheel = mk(QueueKind::Wheel);
    let heap = mk(QueueKind::Heap);
    assert_eq!(
        wheel.trace.events, heap.trace.events,
        "cores dispatched different event counts"
    );
    assert_eq!(
        golden_trace(&wheel, "twin"),
        golden_trace(&heap, "twin"),
        "heap and wheel cores must produce bit-identical traces"
    );
}
