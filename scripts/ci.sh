#!/usr/bin/env bash
# The full CI gate: release build, test suite, clippy (warnings are
# errors), and formatting. Run before every push; everything must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release

# Static analysis gates ahead of the test passes: code-level determinism
# rules plus the buffer-dependency analysis of every committed scenario
# topology. `tcdsim lint` exits non-zero on any finding.
echo "=== tcdsim lint ==="
./target/release/tcdsim lint

# Observability exporters, from the unaudited release binary. Both
# commands self-validate their JSON before writing; the metrics
# fingerprint must match the committed obs golden, which the audit-on
# test builds also check — together that proves the audit feature does
# not perturb observability.
echo "=== tcdsim trace / metrics (exporter gate) ==="
./target/release/tcdsim trace fig03 --end-ms 0.6 --out target/ci/trace_fig03.json
./target/release/tcdsim metrics fig03 --end-ms 0.6 --out target/ci/metrics_fig03.json
ci_fp=$(grep -o '"fingerprint": "[0-9a-f]*"' target/ci/metrics_fig03.json | grep -o '[0-9a-f]\{16\}')
golden_fp=$(grep '^registry_fingerprint ' tests/golden/obs_fig03.txt | awk '{print $2}')
if [ "$ci_fp" != "$golden_fp" ]; then
    echo "metrics fingerprint $ci_fp != committed golden $golden_fp" >&2
    exit 1
fi

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "=== cargo test --workspace --features audit -q ==="
cargo test --workspace --features audit -q

echo "=== golden fingerprints ==="
cargo test --test golden_traces -q

echo "=== cargo clippy -- -D warnings ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo clippy --features audit -- -D warnings ==="
cargo clippy --workspace --all-targets --features audit -- -D warnings

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "CI green."
