#!/usr/bin/env bash
# The full CI gate: release build, test suite, clippy (warnings are
# errors), and formatting. Run before every push; everything must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release

# Static analysis gates ahead of the test passes: the call-graph-aware
# code lint (hot-path rules, Fig. 6 spec conformance, stale-allow audit)
# plus the buffer-dependency and fault-plan analysis of every committed
# scenario topology. `tcdsim lint` exits non-zero on any finding.
echo "=== tcdsim lint ==="
./target/release/tcdsim lint

# The same gate, machine-readable: the JSON report must parse as ok and
# name a non-empty hot-function set (the reachability evidence the
# hot-path rules run on).
echo "=== tcdsim lint --json (smoke) ==="
mkdir -p target/ci
./target/release/tcdsim lint --json > target/ci/lint.json
grep -q '"ok":true' target/ci/lint.json
grep -q '"hot_functions":\[{' target/ci/lint.json

# Negative smokes: the seeded route-swap cycle and a mutated Fig. 6 table
# must both be *caught* (exit 1). A gate that cannot fail gates nothing.
echo "=== tcdsim lint (seeded negatives) ==="
if ./target/release/tcdsim lint --topo seeded-fault-route-swap > /dev/null; then
    echo "seeded-fault-route-swap was not caught" >&2
    exit 1
fi
if ./target/release/tcdsim lint --code \
    --spec-table crates/simlint/tests/fixtures/fig6_mutated.spec > /dev/null; then
    echo "mutated Fig. 6 table was not caught" >&2
    exit 1
fi

# Observability exporters, from the unaudited release binary. Both
# commands self-validate their JSON before writing; the metrics
# fingerprint must match the committed obs golden, which the audit-on
# test builds also check — together that proves the audit feature does
# not perturb observability.
echo "=== tcdsim trace / metrics (exporter gate) ==="
./target/release/tcdsim trace fig03 --end-ms 0.6 --out target/ci/trace_fig03.json
./target/release/tcdsim metrics fig03 --end-ms 0.6 --out target/ci/metrics_fig03.json
ci_fp=$(grep -o '"fingerprint": "[0-9a-f]*"' target/ci/metrics_fig03.json | grep -o '[0-9a-f]\{16\}')
golden_fp=$(grep '^registry_fingerprint ' tests/golden/obs_fig03.txt | awk '{print $2}')
if [ "$ci_fp" != "$golden_fp" ]; then
    echo "metrics fingerprint $ci_fp != committed golden $golden_fp" >&2
    exit 1
fi

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "=== cargo test --workspace --features audit -q ==="
cargo test --workspace --features audit -q

# Conservative-parallel twin: the netsim suite — including the dedicated
# parallel_determinism bit-identity tests — must pass with every
# simulation split over 4 partition workers. This runs against the
# netsim crate's default (non-audit) feature set on purpose: the root
# crate's test targets enable `audit`, which compiles the parallel
# executor out, so only the netsim-crate targets genuinely exercise it.
echo "=== parallel twin (TCD_PARTITIONS=4, netsim suite) ==="
TCD_PARTITIONS=4 cargo test -q -p lossless-netsim

# The same proof end to end through the release binary: the fig03
# metrics registry fingerprint must match the committed golden with the
# run split over 4 workers. (The flight recorder's internal seqs may
# legitimately differ under partitioning, so only the registry
# fingerprint — the cross-worker-count invariant — is compared.)
echo "=== parallel exporter gate (TCD_PARTITIONS=4) ==="
TCD_PARTITIONS=4 ./target/release/tcdsim metrics fig03 --end-ms 0.6 \
    --out target/ci/metrics_fig03_par.json
par_fp=$(grep -o '"fingerprint": "[0-9a-f]*"' target/ci/metrics_fig03_par.json | grep -o '[0-9a-f]\{16\}')
if [ "$par_fp" != "$golden_fp" ]; then
    echo "parallel metrics fingerprint $par_fp != committed golden $golden_fp" >&2
    exit 1
fi

echo "=== golden fingerprints ==="
cargo test --test golden_traces -q

# Determinism twins against the legacy heap core: the same golden,
# determinism, fault-injection and deadlock suites must pass
# bit-identically with the event queue's heap backend selected, proving
# the wheel/heap toggle is invisible to every observable output — faulted
# runs included (the in-process twin test covers wheel-vs-heap in one
# process; this covers the env-var selection path end to end).
echo "=== determinism twins (TCD_EVENT_QUEUE=heap) ==="
TCD_EVENT_QUEUE=heap cargo test -q --test determinism --test golden_traces --test harness_determinism \
    --test fault_injection --test deadlock_runtime
TCD_EVENT_QUEUE=heap cargo test -q -p lossless-netsim --features audit --test fault_order

# Sweep benchmark: refreshes the committed perf record at the repo root
# and appends this run's measurements to the append-only perf
# trajectory (BENCH_history.jsonl). The bit-identity gate stays against
# the committed record (the grid's results are part of the golden
# surface); the throughput floor moved to the history gate below.
echo "=== sweep bench (BENCH_sweep.json + BENCH_history.jsonl) ==="
TCD_COMMIT=$(git rev-parse HEAD 2>/dev/null || echo unknown)
TCD_COMMIT="$TCD_COMMIT" ./target/release/tcdsim sweep --out target/ci/sweep \
    --history BENCH_history.jsonl
fresh=target/ci/sweep/BENCH_sweep.json
committed=BENCH_sweep.json
fp_fresh=$(grep -o '"merged_fingerprint": "[0-9a-f]*"' "$fresh" | grep -o '[0-9a-f]\{16\}')
fp_committed=$(grep -o '"merged_fingerprint": "[0-9a-f]*"' "$committed" | grep -o '[0-9a-f]\{16\}')
if [ "$fp_fresh" != "$fp_committed" ]; then
    echo "sweep fingerprint $fp_fresh != committed $fp_committed" >&2
    exit 1
fi
cp "$fresh" "$committed"

# Perf-trajectory gate (replaces the old fresh-vs-committed single-number
# floor, which failed on any one lucky high-water measurement): the entry
# the sweep just appended must not fall below 0.9x the trailing median of
# comparable history — same scenario AND same bench fingerprint, window
# 8 — so the baseline is noise-tolerant and a legitimate behaviour change
# starts a fresh baseline instead of tripping the gate.
echo "=== tcdsim perf --history --gate ==="
./target/release/tcdsim perf --history BENCH_history.jsonl --gate

# Profiler smoke: the self-profiling run must emit parseable tcd-prof-v1
# JSON and a valid wall-clock Chrome trace, and the release-only ≤5%
# overhead budget must hold.
echo "=== tcdsim perf --json (smoke) ==="
./target/release/tcdsim perf --json --out target/ci/perf_fat_tree_k6.json \
    > target/ci/perf.json
grep -q '"schema": "tcd-prof-v1"' target/ci/perf.json
grep -q 'engine wall-clock profile' target/ci/perf_fat_tree_k6.json

echo "=== profiler overhead budget (release) ==="
cargo test --release -q --test prof_determinism -- --ignored

echo "=== cargo clippy -- -D warnings ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo clippy --features audit -- -D warnings ==="
cargo clippy --workspace --all-targets --features audit -- -D warnings

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "CI green."
