#!/usr/bin/env bash
# The full CI gate: release build, test suite, clippy (warnings are
# errors), and formatting. Run before every push; everything must pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release

# Static analysis gates ahead of the test passes: code-level determinism
# rules plus the buffer-dependency analysis of every committed scenario
# topology. `tcdsim lint` exits non-zero on any finding.
echo "=== tcdsim lint ==="
./target/release/tcdsim lint

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "=== cargo test --workspace --features audit -q ==="
cargo test --workspace --features audit -q

echo "=== golden fingerprints ==="
cargo test --test golden_traces -q

echo "=== cargo clippy -- -D warnings ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo clippy --features audit -- -D warnings ==="
cargo clippy --workspace --all-targets --features audit -- -D warnings

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "CI green."
