#!/usr/bin/env bash
# Regenerate every table and figure of the paper. Outputs land in results/.
# Pass --full to run the paper-scale workloads (slow); default is CI-sized.
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE_ARGS=("$@")
BINS=(
  fig00_lossless_motivation
  fig03_single_cp
  fig04_multi_cp
  fig08_ton_surface
  fig10_on_periods
  fig11_testbed
  fig12_tcd_single_cp
  fig13_tcd_multi_cp
  tab3_victim_flows
  fig14_epsilon_sensitivity
  fig15_dcqcn_victim
  fig16_dcqcn_workloads
  fig17_ibcc_mct
  fig18_timely_victim
  fig19_timely_workloads
  fig20_fairness
  abl_design_choices
)
cargo build --release -p tcd-bench
mkdir -p results
for b in "${BINS[@]}"; do
  echo "=== $b ==="
  cargo run --release -q -p tcd-bench --bin "$b" -- "${SCALE_ARGS[@]}" | tee "results/$b.txt"
done
echo "all experiment outputs written to results/"
