//! Deterministic metrics: typed counters / gauges / histograms keyed by
//! `(node, port, prio, name)` in `BTreeMap`s.
//!
//! Everything here is integer math driven by `SimTime` — never wall
//! clock — so two runs of the same scenario produce byte-identical
//! registries at any thread count, with or without the `audit` feature.
//! Aggregation across parallel sweep runs merges registries in submission
//! order (see `tcd_repro::harness`), and since merging only sums integer
//! counters the merged registry is also independent of worker count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json;

/// The `node` value used for engine-global instruments (event dispatch
/// counts, packet-pool statistics, trace drop counters) that are not tied
/// to any single node.
pub const NODE_GLOBAL: u32 = u32::MAX;

/// A metric key. Ordering (node, port, prio, name) defines the canonical
/// dump and fingerprint order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Node id, or [`NODE_GLOBAL`] for engine-wide instruments.
    pub node: u32,
    /// Port (egress port for switches, 0 for hosts/global).
    pub port: u16,
    /// Priority / virtual lane, 0 when not applicable.
    pub prio: u8,
    /// Instrument name, dot-separated (`"pfc.pause_tx"`).
    pub name: &'static str,
}

impl Key {
    /// A per-(node, port, prio) key.
    pub fn new(node: u32, port: u16, prio: u8, name: &'static str) -> Key {
        Key {
            node,
            port,
            prio,
            name,
        }
    }

    /// A per-node key (port/prio zeroed).
    pub fn node(node: u32, name: &'static str) -> Key {
        Key::new(node, 0, 0, name)
    }

    /// An engine-global key.
    pub fn global(name: &'static str) -> Key {
        Key::new(NODE_GLOBAL, 0, 0, name)
    }
}

/// Number of linear sub-bucket bits per power of two.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave (8).
const SUB: u64 = 1 << SUB_BITS;

/// A log-linear integer histogram: exact unit-width buckets for values
/// below `2 * SUB`, then `SUB` linear sub-buckets per power of two —
/// bounded relative error (< 1/SUB) with at most 496 buckets over the full
/// `u64` range, and no floating point anywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a recorded value.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB * 2 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS + 1
        let sub = (v >> (msb - SUB_BITS as u64)) - SUB;
        (SUB * 2 + (msb - SUB_BITS as u64 - 1) * SUB + sub) as usize
    }
}

/// Inclusive lower bound of a bucket (the smallest value mapping to it).
pub fn bucket_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB * 2 {
        index
    } else {
        let octave = (index - SUB * 2) / SUB;
        let sub = (index - SUB * 2) % SUB;
        (SUB + sub) << (octave + 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    // simlint: allow(hot-path-panic) -- counts is resized to idx + 1 right above the access
    pub fn observe(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs in value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
    }

    /// Lower bound of the bucket containing the `q`-quantile
    /// (`0 < q <= 1`) of recorded values, clamped to the observed
    /// `[min, max]` range. Quantiles inherit the buckets' bounded
    /// relative error (`< 1/SUB`). `None` when the histogram is empty.
    pub fn quantile_lower_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lower_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The metrics registry: deterministic maps of counters, gauges and
/// histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    histos: BTreeMap<Key, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, key: Key) {
        *self.counters.entry(key).or_insert(0) += 1;
    }

    /// Increment a counter by `by`.
    #[inline]
    pub fn add(&mut self, key: Key, by: u64) {
        *self.counters.entry(key).or_insert(0) += by;
    }

    /// Set a counter to an absolute value (idempotent — used when folding
    /// externally-maintained counters into the registry at snapshot time).
    pub fn set_counter(&mut self, key: Key, v: u64) {
        if v == 0 {
            self.counters.remove(&key);
        } else {
            self.counters.insert(key, v);
        }
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, key: Key) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, key: Key, v: i64) {
        self.gauges.insert(key, v);
    }

    /// Read a gauge.
    pub fn gauge(&self, key: Key) -> Option<i64> {
        self.gauges.get(&key).copied()
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&mut self, key: Key, v: u64) {
        self.histos.entry(key).or_default().observe(v);
    }

    /// The histogram under `key`, if any values were recorded.
    pub fn histogram(&self, key: Key) -> Option<&Histogram> {
        self.histos.get(&key)
    }

    /// All counters in canonical key order.
    pub fn counters(&self) -> impl Iterator<Item = (&Key, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Sum of all counters whose name equals `name`, across keys.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merge another registry into this one: counters and histogram
    /// buckets sum; gauges keep the *other* run's value (last-writer-wins
    /// in merge order, which the sweep harness fixes to submission order).
    pub fn merge_from(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(*k, v);
        }
        for (k, h) in &other.histos {
            self.histos.entry(*k).or_default().merge_from(h);
        }
    }

    /// FNV-1a fingerprint over the canonical (sorted) serialisation. Equal
    /// registries — same instruments, same values — have equal
    /// fingerprints regardless of insertion order.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        for (k, &v) in &self.counters {
            f.key(k);
            f.u64(v);
        }
        f.u64(0xC0);
        for (k, &v) in &self.gauges {
            f.key(k);
            f.u64(v as u64);
        }
        f.u64(0xC1);
        for (k, h) in &self.histos {
            f.key(k);
            f.u64(h.count);
            f.u64(h.sum);
            for (lo, c) in h.buckets() {
                f.u64(lo);
                f.u64(c);
            }
        }
        f.finish()
    }

    /// Self-describing JSON dump (`tcd-metrics-v1`): schema marker,
    /// fingerprint, and the three instrument families in canonical order.
    /// Histograms carry `p50`/`p90`/`p99` summaries derived from the
    /// log-linear buckets; the fingerprint stays a function of counts,
    /// sums and raw buckets only, so adding quantiles never shifts it.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"tcd-metrics-v1\",\n");
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint());
        out.push_str("  \"counters\": [");
        let mut first = true;
        for (k, &v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {{{}, \"value\": {v}}}", key_json(k));
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        first = true;
        for (k, &v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {{{}, \"value\": {v}}}", key_json(k));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        first = true;
        for (k, h) in &self.histos {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{{}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                key_json(k),
                h.count,
                h.sum,
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.quantile_lower_bound(0.50).unwrap_or(0),
                h.quantile_lower_bound(0.90).unwrap_or(0),
                h.quantile_lower_bound(0.99).unwrap_or(0),
            );
            let mut bfirst = true;
            for (lo, c) in h.buckets() {
                if !bfirst {
                    out.push_str(", ");
                }
                bfirst = false;
                let _ = write!(out, "{{\"lo\": {lo}, \"count\": {c}}}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn key_json(k: &Key) -> String {
    let node = if k.node == NODE_GLOBAL {
        "null".to_string()
    } else {
        k.node.to_string()
    };
    format!(
        "\"node\": {node}, \"port\": {}, \"prio\": {}, \"name\": {}",
        k.port,
        k.prio,
        json::escape(k.name)
    )
}

/// 64-bit FNV-1a, shared with the harness's run fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn key(&mut self, k: &Key) {
        self.u64(k.node as u64);
        self.u64(k.port as u64);
        self.u64(k.prio as u64);
        self.bytes(k.name.as_bytes());
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every value maps into exactly one bucket whose range contains it:
    /// `lower_bound(idx) <= v < lower_bound(idx + 1)`.
    #[test]
    fn bucket_boundaries_are_exact_and_contiguous() {
        // Small values get unit-width buckets.
        for v in 0..(SUB * 2) {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Probe every power of two and its neighbours across u64.
        for shift in 4..64u32 {
            let p = 1u64 << shift;
            for v in [p - 1, p, p + 1] {
                let idx = bucket_index(v);
                assert!(bucket_lower_bound(idx) <= v, "v={v} idx={idx}");
                let next_lo = bucket_lower_bound(idx + 1);
                assert!(v < next_lo, "v={v} idx={idx} next_lo={next_lo}");
            }
        }
        // Bucket index is monotone over a dense small range.
        let mut last = 0;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        // Width of any bucket is < lower_bound / SUB for log-linear range.
        for v in [100u64, 1_000, 1_000_000, u64::MAX / 2] {
            let idx = bucket_index(v);
            let lo = bucket_lower_bound(idx);
            let hi = bucket_lower_bound(idx + 1);
            assert!(hi - lo <= lo / SUB + 1, "bucket [{lo}, {hi}) too wide");
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        for v in [0u64, 1, 7, 8, 100, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 5216);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(5000));
        // 100 appears twice → its bucket holds 2.
        let b: Vec<(u64, u64)> = h.buckets().collect();
        assert!(b.iter().any(|&(lo, c)| c == 2 && lo <= 100));
    }

    #[test]
    fn histogram_quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_lower_bound(0.5), None);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        for (q, exact) in [(0.50, 500u64), (0.90, 900), (0.99, 990)] {
            let got = h.quantile_lower_bound(q).unwrap();
            assert!(got <= exact, "q={q}: {got} > {exact}");
            let err = (exact - got) as f64 / exact as f64;
            assert!(err < 2.0 / SUB as f64, "q={q}: {got} vs {exact}");
        }
        // A single value answers every quantile exactly (clamped to min/max).
        let mut one = Histogram::new();
        one.observe(100);
        assert_eq!(one.quantile_lower_bound(0.01), Some(100));
        assert_eq!(one.quantile_lower_bound(1.0), Some(100));
    }

    #[test]
    fn histogram_merge_matches_combined_observes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [1u64, 50, 900] {
            a.observe(v);
            both.observe(v);
        }
        for v in [3u64, 50, 1 << 40] {
            b.observe(v);
            both.observe(v);
        }
        a.merge_from(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn registry_counters_and_fingerprint() {
        let mut r = Registry::new();
        let k = Key::new(1, 2, 0, "pfc.pause_tx");
        r.inc(k);
        r.add(k, 2);
        assert_eq!(r.counter(k), 3);
        let fp1 = r.fingerprint();

        // Insertion order must not matter.
        let mut r2 = Registry::new();
        r2.add(Key::global("engine.dispatch.PortTx"), 5);
        r2.add(k, 3);
        let mut r1 = Registry::new();
        r1.add(k, 3);
        r1.add(Key::global("engine.dispatch.PortTx"), 5);
        assert_eq!(r1.fingerprint(), r2.fingerprint());
        assert_ne!(fp1, r1.fingerprint());
    }

    #[test]
    fn registry_merge_is_submission_order_invariant_for_counters() {
        let k = Key::node(7, "cbfc.credit_stall");
        let mut a = Registry::new();
        a.add(k, 10);
        a.observe(Key::node(7, "h"), 4);
        let mut b = Registry::new();
        b.add(k, 32);
        b.observe(Key::node(7, "h"), 90);

        let mut ab = Registry::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = Registry::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        assert_eq!(ab.counter(k), 42);
    }

    #[test]
    fn json_dump_parses_and_is_self_describing() {
        let mut r = Registry::new();
        r.add(Key::new(3, 1, 0, "mark.ce"), 17);
        r.gauge_set(Key::global("engine.events"), 1234);
        r.observe(Key::new(3, 1, 0, "pfc.xoff_residency_ns"), 42_000);
        let doc = crate::json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("tcd-metrics-v1")
        );
        let counters = doc.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("mark.ce"));
        assert_eq!(counters[0].get("value").unwrap().as_f64(), Some(17.0));
        let h = &doc.get("histograms").unwrap().as_arr().unwrap()[0];
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
        // One observation answers every quantile with the same (clamped)
        // value, and the summaries ride alongside the raw buckets.
        let p50 = h.get("p50").unwrap().as_f64().unwrap();
        assert_eq!(h.get("p99").unwrap().as_f64(), Some(p50));
        assert!(h.get("buckets").unwrap().as_arr().is_some());
    }

    #[test]
    fn set_counter_is_idempotent() {
        let mut r = Registry::new();
        let k = Key::global("pool.hit");
        r.set_counter(k, 9);
        let fp = r.fingerprint();
        r.set_counter(k, 9);
        assert_eq!(r.fingerprint(), fp);
        r.set_counter(k, 0);
        assert_eq!(r.fingerprint(), Registry::new().fingerprint());
    }
}
