//! The flight recorder: per-node fixed-capacity ring buffers of compact
//! binary records.
//!
//! Like an aircraft FDR, the recorder keeps only the most recent history —
//! old records are overwritten in place (and counted, never silently
//! lost). When the audit layer flags a violation, or on request from
//! `tcdsim`, the recorder dumps the last *N* µs of records across all
//! nodes, merged into one `(time, seq)`-ordered timeline next to the
//! violation snapshot.

use std::collections::BTreeMap;

use lossless_flowctl::{SimDuration, SimTime};

/// What a record describes. Stored as a raw `u8` in the binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Fig. 6 ternary-state transition; `a` = from-state symbol byte,
    /// `b` = to-state symbol byte.
    StateTransition = 1,
    /// PFC PAUSE frame sent; `a` = 1 for XOFF, 0 for XON.
    PfcFrame = 2,
    /// CBFC FCCL credit update sent; `a` = FCCL value.
    CbfcFccl = 3,
    /// Output blocked on credits (`a` = 1) or unblocked (`a` = 0).
    CreditStall = 4,
    /// Periodic engine checkpoint; `a` = events dispatched so far.
    Checkpoint = 5,
    /// Audit violation observed; `a` = total violations so far.
    Violation = 6,
    /// Packet marked; `a` = code-point byte, `b` = queue depth.
    Mark = 7,
    /// Fault-injection event applied (link flap, rate change, route
    /// update); `a` = 1 for onset (down/degrade), 0 for recovery.
    Fault = 8,
}

impl RecordKind {
    /// Decode from the stored byte.
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            1 => RecordKind::StateTransition,
            2 => RecordKind::PfcFrame,
            3 => RecordKind::CbfcFccl,
            4 => RecordKind::CreditStall,
            5 => RecordKind::Checkpoint,
            6 => RecordKind::Violation,
            7 => RecordKind::Mark,
            8 => RecordKind::Fault,
            _ => return None,
        })
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::StateTransition => "state_transition",
            RecordKind::PfcFrame => "pfc_frame",
            RecordKind::CbfcFccl => "cbfc_fccl",
            RecordKind::CreditStall => "credit_stall",
            RecordKind::Checkpoint => "checkpoint",
            RecordKind::Violation => "violation",
            RecordKind::Mark => "mark",
            RecordKind::Fault => "fault",
        }
    }
}

/// One flight-recorder record. 40 bytes in the compact binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulation time of the event.
    pub t: SimTime,
    /// Global sequence number (total order across all nodes).
    pub seq: u64,
    /// Node the record belongs to.
    pub node: u32,
    /// Port, 0 when not applicable.
    pub port: u16,
    /// Priority / VL, 0 when not applicable.
    pub prio: u8,
    /// Record kind byte (see [`RecordKind`]).
    pub kind: u8,
    /// First payload word (kind-specific).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

/// Size of one encoded record.
pub const RECORD_BYTES: usize = 40;

impl Record {
    /// Compact little-endian binary encoding.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..8].copy_from_slice(&self.t.as_ps().to_le_bytes());
        out[8..16].copy_from_slice(&self.seq.to_le_bytes());
        out[16..20].copy_from_slice(&self.node.to_le_bytes());
        out[20..22].copy_from_slice(&self.port.to_le_bytes());
        out[22] = self.prio;
        out[23] = self.kind;
        out[24..32].copy_from_slice(&self.a.to_le_bytes());
        out[32..40].copy_from_slice(&self.b.to_le_bytes());
        out
    }

    /// Inverse of [`Record::encode`].
    pub fn decode(buf: &[u8; RECORD_BYTES]) -> Record {
        let u64le = |r: &[u8]| u64::from_le_bytes(r.try_into().expect("8 bytes"));
        Record {
            t: SimTime::from_ps(u64le(&buf[0..8])),
            seq: u64le(&buf[8..16]),
            node: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            port: u16::from_le_bytes(buf[20..22].try_into().expect("2 bytes")),
            prio: buf[22],
            kind: buf[23],
            a: u64le(&buf[24..32]),
            b: u64le(&buf[32..40]),
        }
    }
}

/// One node's ring.
#[derive(Debug, Clone, Default)]
struct Ring {
    buf: Vec<Record>,
    /// Next write position (buf.len() < cap means not yet wrapped).
    next: usize,
    /// Total records ever pushed to this ring.
    total: u64,
}

impl Ring {
    // simlint: allow(hot-path-panic) -- next wraps modulo cap and buf.len() == cap once the else branch is reachable
    fn push(&mut self, cap: usize, r: Record) {
        if self.buf.len() < cap {
            self.buf.push(r);
        } else {
            self.buf[self.next] = r;
        }
        self.next = (self.next + 1) % cap;
        self.total += 1;
    }

    /// Records in chronological (push) order.
    fn ordered(&self) -> impl Iterator<Item = &Record> + '_ {
        // Until the first wraparound `total == len` and the buffer is
        // already chronological; afterwards the oldest record sits at
        // `next` (the slot about to be overwritten).
        let split = if self.total as usize == self.buf.len() {
            0
        } else {
            self.next % self.buf.len().max(1)
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }
}

/// The flight recorder: one bounded ring per node plus a global sequence
/// counter. Capacity 0 disables recording entirely.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<u32, Ring>,
    seq: u64,
}

impl FlightRecorder {
    /// A recorder keeping up to `capacity` records per node.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            rings: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Per-node ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Append a record. `seq` is assigned internally; the caller's value
    /// is ignored.
    pub fn push(&mut self, mut r: Record) {
        if self.capacity == 0 {
            return;
        }
        r.seq = self.seq;
        self.seq += 1;
        self.rings.entry(r.node).or_default().push(self.capacity, r);
    }

    /// Total records ever pushed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.rings.values().map(|r| r.total).sum()
    }

    /// Records lost to ring wraparound, across all nodes.
    pub fn overwritten(&self) -> u64 {
        self.rings.values().map(|r| r.overwritten()).sum()
    }

    /// All retained records whose time is within `window` of `now`,
    /// merged across nodes and sorted by `(t, seq)`.
    pub fn dump(&self, now: SimTime, window: SimDuration) -> Vec<Record> {
        let cutoff = SimTime::from_ps(now.as_ps().saturating_sub(window.as_ps()));
        let mut out: Vec<Record> = self
            .rings
            .values()
            .flat_map(|ring| ring.ordered())
            .filter(|r| r.t >= cutoff && r.t <= now)
            .copied()
            .collect();
        out.sort_by_key(|r| (r.t, r.seq));
        out
    }

    /// Re-push every record `other` retained, in `other`'s `(t, seq)`
    /// order, reassigning global sequence numbers from this recorder's
    /// counter. Used when merging per-partition recorders after a
    /// parallel run: content survives (subject to this recorder's own
    /// ring capacity) but sequence numbers — and therefore fingerprints —
    /// differ from a serial run's.
    pub fn absorb(&mut self, other: &FlightRecorder) {
        if self.capacity == 0 {
            return;
        }
        let mut records: Vec<Record> = other
            .rings
            .values()
            .flat_map(|ring| ring.ordered())
            .copied()
            .collect();
        records.sort_by_key(|r| (r.t, r.seq));
        for r in records {
            self.push(r);
        }
    }

    /// FNV-1a fingerprint over the binary encoding of a full-history dump
    /// (every retained record, ordered by `(t, seq)`).
    pub fn fingerprint(&self) -> u64 {
        let mut records: Vec<Record> = self
            .rings
            .values()
            .flat_map(|ring| ring.ordered())
            .copied()
            .collect();
        records.sort_by_key(|r| (r.t, r.seq));
        let mut h: u64 = 0xcbf29ce484222325;
        for r in &records {
            for b in r.encode() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, node: u32, kind: RecordKind, a: u64) -> Record {
        Record {
            t: SimTime::from_ns(t_ns),
            seq: 0,
            node,
            port: 1,
            prio: 0,
            kind: kind as u8,
            a,
            b: 0,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = Record {
            t: SimTime::from_us(123),
            seq: 77,
            node: 4,
            port: 2,
            prio: 3,
            kind: RecordKind::PfcFrame as u8,
            a: 1,
            b: u64::MAX,
        };
        assert_eq!(Record::decode(&r.encode()), r);
        assert_eq!(RecordKind::from_u8(r.kind), Some(RecordKind::PfcFrame));
        assert_eq!(RecordKind::from_u8(200), None);
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_losses() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.push(rec(i, 1, RecordKind::Checkpoint, i));
        }
        assert_eq!(fr.total(), 10);
        assert_eq!(fr.overwritten(), 6);
        let dump = fr.dump(SimTime::from_ms(1), SimDuration::from_ms(1));
        assert_eq!(dump.len(), 4);
        // Exactly the newest four, in order, with monotone seq.
        let a: Vec<u64> = dump.iter().map(|r| r.a).collect();
        assert_eq!(a, vec![6, 7, 8, 9]);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn wraparound_mid_ring_preserves_chronology() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.push(rec(i * 10, 2, RecordKind::Mark, i));
        }
        // Ring holds [3, 4, 2] physically; ordered() must yield 2, 3, 4.
        let dump = fr.dump(SimTime::from_ms(1), SimDuration::from_ms(1));
        let a: Vec<u64> = dump.iter().map(|r| r.a).collect();
        assert_eq!(a, vec![2, 3, 4]);
    }

    #[test]
    fn dump_window_filters_and_merges_nodes() {
        let mut fr = FlightRecorder::new(16);
        fr.push(rec(100, 1, RecordKind::PfcFrame, 1));
        fr.push(rec(5_000, 2, RecordKind::PfcFrame, 0));
        fr.push(rec(5_000, 1, RecordKind::StateTransition, 7));
        fr.push(rec(9_000, 3, RecordKind::CreditStall, 1));
        let now = SimTime::from_ns(10_000);
        let dump = fr.dump(now, SimDuration::from_ns(6_000));
        // Cutoff at 4 µs: the t=100ns record is out of window.
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].t, SimTime::from_ns(5_000));
        // Tie on t broken by global seq: node-2 record was pushed first.
        assert_eq!(dump[0].node, 2);
        assert_eq!(dump[1].node, 1);
        assert_eq!(dump[2].node, 3);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut fr = FlightRecorder::new(0);
        assert!(!fr.enabled());
        fr.push(rec(1, 1, RecordKind::Mark, 0));
        assert_eq!(fr.total(), 0);
        assert_eq!(fr.fingerprint(), FlightRecorder::new(0).fingerprint());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = FlightRecorder::new(8);
        let mut b = FlightRecorder::new(8);
        a.push(rec(1, 1, RecordKind::Mark, 5));
        b.push(rec(1, 1, RecordKind::Mark, 5));
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.push(rec(2, 1, RecordKind::Mark, 5));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
