//! `prof` — the engine's wall-clock self-profiler.
//!
//! Everything else in this crate observes *simulated* time; this module is
//! the one sanctioned window onto *wall-clock* time, so the roadmap's
//! optimization work can see where the engine's cycles actually go. It is
//! built to be **provably non-perturbing**:
//!
//! * it only ever *reads* the monotonic clock ([`std::time::Instant`]) —
//!   it never schedules events, never touches the metrics [`Registry`]
//!   (whose fingerprint is part of the golden surface), and none of its
//!   entry points return wall-clock values to the engine;
//! * the decision *whether* to sample a dispatch is a plain counter
//!   check ([`Prof::arm_span`]), so control flow in the engine is a pure
//!   function of the dispatch count — identical on every machine and
//!   with the profiler on or off;
//! * the simlint `prof-leak` rule statically checks that no profiler
//!   value flows into simulation-state code outside the sanctioned
//!   `drive()` wiring.
//!
//! The span model: every `sample_every`-th dispatch is wrapped in an
//! open/close pair ([`Prof::span_open`] / [`Prof::span_close`]) and the
//! elapsed nanoseconds are attributed twice — to the event *kind*
//! (`PacketArrival`, `PortTx`, …) and to the *node class* doing the work
//! ([`NodeClass`]: host, Ethernet switch, InfiniBand switch, or the
//! engine itself). Alongside the spans, a periodic timeline tick
//! ([`Prof::record_tick`], every `tick_every` dispatches) snapshots the
//! event-queue occupancy (pending events, staged batch, timing-wheel
//! overflow list) and the packet-pool hit/miss counters, each stamped
//! with both the simulated time and the wall-clock offset from run
//! start — so throughput and queue pressure can be plotted over either
//! axis.
//!
//! [`Registry`]: crate::Registry

use std::time::Instant;

use lossless_flowctl::SimTime;

use crate::json;

/// Upper bound on distinct event kinds, mirroring
/// [`MAX_EVENT_KINDS`](crate::MAX_EVENT_KINDS).
const MAX_KINDS: usize = crate::MAX_EVENT_KINDS;

/// Coarse attribution class for a dispatched event: which kind of network
/// element (or the engine itself) does the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// A host endpoint (sources, sinks, congestion controllers).
    Host = 0,
    /// An Ethernet (PFC) switch.
    EthSwitch = 1,
    /// An InfiniBand (CBFC) switch.
    IbSwitch = 2,
    /// Engine-level bookkeeping (trace ticks, fault events, flow starts).
    Engine = 3,
}

/// Display names for the [`NodeClass`] variants, indexed by discriminant.
pub const NODE_CLASS_NAMES: [&str; 4] = ["host", "eth_switch", "ib_switch", "engine"];

/// Profiler knobs. The defaults keep the amortized per-dispatch cost to a
/// countdown decrement (two clock reads every 64 events plus one timeline
/// tick every 64 Ki events), comfortably inside the ≤5% overhead budget.
#[derive(Debug, Clone, Copy)]
pub struct ProfConfig {
    /// Sample one dispatch span out of every `sample_every` (≥ 1).
    pub sample_every: u32,
    /// Record a timeline tick every `tick_every` dispatches (0 disables
    /// the timeline).
    pub tick_every: u64,
    /// Timeline capacity; ticks beyond it are counted, not stored, so a
    /// long run cannot grow memory without bound.
    pub max_ticks: usize,
}

impl Default for ProfConfig {
    fn default() -> Self {
        ProfConfig {
            sample_every: 64,
            tick_every: 64 * 1024,
            max_ticks: 4096,
        }
    }
}

impl ProfConfig {
    /// Read the environment: `TCD_PROF=1` enables the profiler with the
    /// defaults, `TCD_PROF_SAMPLE=N` overrides the sampling period and
    /// `TCD_PROF_TICK=N` the timeline cadence. `None` unless `TCD_PROF`
    /// is set to `1`.
    pub fn from_env() -> Option<ProfConfig> {
        if !std::env::var("TCD_PROF").is_ok_and(|v| v.trim() == "1") {
            return None;
        }
        let mut cfg = ProfConfig::default();
        if let Ok(v) = std::env::var("TCD_PROF_SAMPLE") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.sample_every = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("TCD_PROF_TICK") {
            if let Ok(n) = v.trim().parse::<u64>() {
                cfg.tick_every = n;
            }
        }
        Some(cfg)
    }
}

/// Accumulated wall-clock statistics for one attribution bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpanStat {
    samples: u64,
    total_ns: u64,
    max_ns: u64,
}

impl SpanStat {
    #[inline]
    fn record(&mut self, ns: u64) {
        self.samples += 1;
        self.total_ns += ns;
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }
}

/// One timeline sample: engine progress and queue pressure at a point in
/// the run, stamped with both clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfTick {
    /// Simulated time of the dispatch that triggered the tick.
    pub t: SimTime,
    /// Dispatches completed so far.
    pub events: u64,
    /// Wall-clock nanoseconds since the profiler was enabled.
    pub wall_ns: u64,
    /// Pending events in the queue (all cores).
    pub queue_len: u64,
    /// Events staged in the current same-timestamp batch.
    pub queue_staged: u64,
    /// Events parked on the timing wheel's overflow list (0 on the heap
    /// core).
    pub queue_overflow: u64,
    /// Packet-pool reuse hits so far.
    pub pool_hit: u64,
    /// Packet-pool allocation misses so far.
    pub pool_miss: u64,
}

/// The profiler held by the simulator. Disabled (and cost-free beyond a
/// branch per dispatch) by default; see [`Prof::enable`].
#[derive(Debug, Clone)]
pub struct Prof {
    on: bool,
    every: u32,
    left: u32,
    tick_every: u64,
    max_ticks: usize,
    started: Option<Instant>,
    open: Option<Instant>,
    events: u64,
    sampled: u64,
    per_kind: [SpanStat; MAX_KINDS],
    per_class: [SpanStat; NODE_CLASS_NAMES.len()],
    ticks: Vec<ProfTick>,
    dropped_ticks: u64,
}

impl Default for Prof {
    fn default() -> Self {
        Prof::disabled()
    }
}

impl Prof {
    /// A disabled profiler: every entry point is an early return.
    pub fn disabled() -> Prof {
        Prof {
            on: false,
            every: 1,
            left: 1,
            tick_every: 0,
            max_ticks: 0,
            started: None,
            open: None,
            events: 0,
            sampled: 0,
            per_kind: [SpanStat::default(); MAX_KINDS],
            per_class: [SpanStat::default(); NODE_CLASS_NAMES.len()],
            ticks: Vec::new(),
            dropped_ticks: 0,
        }
    }

    /// A profiler enabled iff `TCD_PROF=1` is set in the environment
    /// (see [`ProfConfig::from_env`]); disabled otherwise.
    pub fn from_env() -> Prof {
        let mut p = Prof::disabled();
        if let Some(cfg) = ProfConfig::from_env() {
            p.enable(cfg);
        }
        p
    }

    /// Arm the profiler. Resets any previously collected data and starts
    /// the wall clock.
    pub fn enable(&mut self, cfg: ProfConfig) {
        *self = Prof::disabled();
        self.on = true;
        self.every = cfg.sample_every.max(1);
        self.left = 1; // sample the very first dispatch, then every Nth
        self.tick_every = cfg.tick_every;
        self.max_ticks = cfg.max_ticks;
        self.ticks = Vec::with_capacity(cfg.max_ticks.min(4096));
        self.started = Some(Instant::now());
    }

    /// Whether the profiler is collecting.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Count one dispatch and decide whether to sample its span. This is
    /// a pure counter check — no clock is read — so the engine's control
    /// flow stays a deterministic function of the dispatch count.
    #[inline]
    pub fn arm_span(&mut self) -> bool {
        if !self.on {
            return false;
        }
        self.events += 1;
        self.left -= 1;
        if self.left > 0 {
            return false;
        }
        self.left = self.every;
        true
    }

    /// Open a sampled span: read the clock once. Only meaningful after
    /// [`Prof::arm_span`] returned `true`.
    #[inline]
    pub fn span_open(&mut self) {
        self.open = Some(Instant::now());
    }

    /// Close the span opened by [`Prof::span_open`], attributing the
    /// elapsed wall time to `kind` and `class`. A close without a
    /// matching open is a no-op.
    #[inline]
    pub fn span_close(&mut self, kind: usize, class: NodeClass) {
        let Some(t0) = self.open.take() else {
            return;
        };
        let ns = t0.elapsed().as_nanos() as u64;
        self.sampled += 1;
        if let Some(k) = self.per_kind.get_mut(kind) {
            k.record(ns);
        }
        if let Some(c) = self.per_class.get_mut(class as usize) {
            c.record(ns);
        }
    }

    /// Whether a timeline tick is due at this dispatch count — again a
    /// pure counter check, no clock read.
    #[inline]
    pub fn tick_due(&self, events: u64) -> bool {
        self.on && self.tick_every > 0 && events.is_multiple_of(self.tick_every)
    }

    /// Record a timeline tick. The queue/pool numbers are plain reads the
    /// caller took from the engine; nothing flows back.
    #[allow(clippy::too_many_arguments)] // one flat call keeps the drive() wiring branch-free
    pub fn record_tick(
        &mut self,
        t: SimTime,
        events: u64,
        queue_len: usize,
        queue_staged: usize,
        queue_overflow: usize,
        pool_hit: u64,
        pool_miss: u64,
    ) {
        let Some(start) = self.started else {
            return;
        };
        if self.ticks.len() >= self.max_ticks {
            self.dropped_ticks += 1;
            return;
        }
        self.ticks.push(ProfTick {
            t,
            events,
            wall_ns: start.elapsed().as_nanos() as u64,
            queue_len: queue_len as u64,
            queue_staged: queue_staged as u64,
            queue_overflow: queue_overflow as u64,
            pool_hit,
            pool_miss,
        });
    }

    /// A worker-side profiler for a parallel partition: same sampling
    /// configuration and its own countdown/clock, no inherited data.
    /// Disabled parent → disabled fork (free).
    pub fn fork(&self) -> Prof {
        let mut child = Prof::disabled();
        if self.on {
            child.enable(ProfConfig {
                sample_every: self.every,
                tick_every: self.tick_every,
                max_ticks: self.max_ticks,
            });
        }
        child
    }

    /// Fold a worker profiler (from [`Prof::fork`]) back in: span
    /// statistics sum (maxima take the max), sampled/event counts sum,
    /// timeline ticks append up to this profiler's own cap (excess counts
    /// as dropped). Wall-clock spans from concurrent workers overlap, so
    /// summed span time can exceed elapsed wall time — shares and means
    /// stay meaningful, absolute totals read as CPU time.
    pub fn absorb(&mut self, other: &Prof) {
        if !self.on || !other.on {
            return;
        }
        self.events += other.events;
        self.sampled += other.sampled;
        for (s, o) in self.per_kind.iter_mut().zip(other.per_kind.iter()) {
            s.samples += o.samples;
            s.total_ns += o.total_ns;
            s.max_ns = s.max_ns.max(o.max_ns);
        }
        for (s, o) in self.per_class.iter_mut().zip(other.per_class.iter()) {
            s.samples += o.samples;
            s.total_ns += o.total_ns;
            s.max_ns = s.max_ns.max(o.max_ns);
        }
        for t in &other.ticks {
            if self.ticks.len() >= self.max_ticks {
                self.dropped_ticks += 1;
            } else {
                self.ticks.push(*t);
            }
        }
        self.dropped_ticks += other.dropped_ticks;
    }

    /// Snapshot the collected profile, resolving kind indices against
    /// `kind_names` (the engine's `Event::KIND_NAMES`). `None` while the
    /// profiler is disabled — callers can unconditionally thread the
    /// result into reports.
    pub fn summary(&self, kind_names: &[&'static str]) -> Option<ProfSummary> {
        if !self.on {
            return None;
        }
        let wall_ns = self
            .started
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let mut per_kind = Vec::new();
        for (i, st) in self.per_kind.iter().enumerate() {
            if st.samples == 0 {
                continue;
            }
            let name = kind_names.get(i).copied().unwrap_or("engine.dispatch.?");
            per_kind.push(KindProfile {
                name: name.to_string(),
                samples: st.samples,
                total_ns: st.total_ns,
                max_ns: st.max_ns,
            });
        }
        let mut per_class = Vec::new();
        for (i, st) in self.per_class.iter().enumerate() {
            if st.samples == 0 {
                continue;
            }
            per_class.push(KindProfile {
                name: NODE_CLASS_NAMES[i].to_string(),
                samples: st.samples,
                total_ns: st.total_ns,
                max_ns: st.max_ns,
            });
        }
        Some(ProfSummary {
            sample_every: self.every,
            events: self.events,
            sampled: self.sampled,
            wall_ns,
            per_kind,
            per_class,
            ticks: self.ticks.clone(),
            dropped_ticks: self.dropped_ticks,
        })
    }
}

/// Wall-clock statistics for one attribution bucket (an event kind or a
/// node class) in a [`ProfSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct KindProfile {
    /// Bucket name: an `engine.dispatch.*` kind or a [`NODE_CLASS_NAMES`]
    /// entry.
    pub name: String,
    /// Sampled spans attributed to this bucket.
    pub samples: u64,
    /// Summed sampled span time, nanoseconds.
    pub total_ns: u64,
    /// Longest sampled span, nanoseconds.
    pub max_ns: u64,
}

impl KindProfile {
    /// Mean sampled span duration, nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.samples as f64
        }
    }
}

/// A finished run's wall-clock profile: sampling parameters, per-kind and
/// per-class span statistics, and the queue/pool timeline. All values are
/// wall-clock derived and therefore machine-dependent — a `ProfSummary`
/// never participates in fingerprints or deterministic reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfSummary {
    /// One span sampled out of every `sample_every` dispatches.
    pub sample_every: u32,
    /// Total dispatches the profiler saw.
    pub events: u64,
    /// Spans actually sampled.
    pub sampled: u64,
    /// Wall-clock nanoseconds from [`Prof::enable`] to the snapshot.
    pub wall_ns: u64,
    /// Per-event-kind span statistics (kinds with ≥ 1 sample).
    pub per_kind: Vec<KindProfile>,
    /// Per-node-class span statistics (classes with ≥ 1 sample).
    pub per_class: Vec<KindProfile>,
    /// The queue/pool timeline.
    pub ticks: Vec<ProfTick>,
    /// Timeline ticks dropped once `max_ticks` filled (reported so a
    /// truncated timeline is never mistaken for a complete one).
    pub dropped_ticks: u64,
}

impl ProfSummary {
    /// Overall wall-clock throughput, events per second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Summed sampled span time across every kind, nanoseconds.
    pub fn sampled_total_ns(&self) -> u64 {
        self.per_kind.iter().map(|k| k.total_ns).sum()
    }

    /// Buckets sorted by total sampled time, descending; ties broken by
    /// name so the report order is stable.
    pub fn top_kinds(&self, n: usize) -> Vec<&KindProfile> {
        let mut v: Vec<&KindProfile> = self.per_kind.iter().collect();
        v.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        v.truncate(n);
        v
    }

    /// The human-readable hot-event-kind report: top `n` kinds by sampled
    /// time with share, mean and max span durations, followed by the
    /// node-class breakdown.
    pub fn hot_report(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.sampled_total_ns().max(1);
        let _ = writeln!(
            out,
            "wall-clock profile: {} events in {:.3} s ({:.3}M events/s), \
             {} spans sampled (1/{})",
            self.events,
            self.wall_ns as f64 / 1e9,
            self.events_per_sec() / 1e6,
            self.sampled,
            self.sample_every
        );
        let _ = writeln!(
            out,
            "  {:<34} {:>7} {:>8} {:>9} {:>9}",
            "hot event kinds", "share", "samples", "mean ns", "max ns"
        );
        for k in self.top_kinds(n) {
            let _ = writeln!(
                out,
                "  {:<34} {:>6.1}% {:>8} {:>9.0} {:>9}",
                k.name,
                100.0 * k.total_ns as f64 / total as f64,
                k.samples,
                k.mean_ns(),
                k.max_ns
            );
        }
        let _ = writeln!(
            out,
            "  {:<34} {:>7} {:>8} {:>9} {:>9}",
            "node classes", "share", "samples", "mean ns", "max ns"
        );
        for c in &self.per_class {
            let _ = writeln!(
                out,
                "  {:<34} {:>6.1}% {:>8} {:>9.0} {:>9}",
                c.name,
                100.0 * c.total_ns as f64 / total as f64,
                c.samples,
                c.mean_ns(),
                c.max_ns
            );
        }
        if let (Some(first), Some(last)) = (self.ticks.first(), self.ticks.last()) {
            let _ = writeln!(
                out,
                "  timeline: {} ticks ({} dropped), queue len {} -> {}, wheel overflow {} -> {}",
                self.ticks.len(),
                self.dropped_ticks,
                first.queue_len,
                last.queue_len,
                first.queue_overflow,
                last.queue_overflow
            );
        }
        out
    }

    /// Self-describing JSON dump (`tcd-prof-v1`): sampling parameters,
    /// per-kind / per-class buckets and the timeline. Hand-rolled like
    /// every exporter in this workspace (no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"schema\": \"tcd-prof-v1\",\n");
        let _ = writeln!(out, "  \"sample_every\": {},", self.sample_every);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"sampled\": {},", self.sampled);
        let _ = writeln!(out, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(
            out,
            "  \"events_per_sec\": {},",
            json::num_f64(self.events_per_sec())
        );
        let bucket = |b: &KindProfile| {
            format!(
                "{{\"name\": {}, \"samples\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                json::escape(&b.name),
                b.samples,
                b.total_ns,
                b.max_ns
            )
        };
        let list =
            |items: &[KindProfile]| items.iter().map(bucket).collect::<Vec<_>>().join(",\n    ");
        let _ = writeln!(out, "  \"per_kind\": [\n    {}\n  ],", list(&self.per_kind));
        let _ = writeln!(
            out,
            "  \"per_class\": [\n    {}\n  ],",
            list(&self.per_class)
        );
        let _ = writeln!(out, "  \"dropped_ticks\": {},", self.dropped_ticks);
        let ticks = self
            .ticks
            .iter()
            .map(|t| {
                format!(
                    "{{\"t_ps\": {}, \"events\": {}, \"wall_ns\": {}, \"queue_len\": {}, \
                     \"queue_staged\": {}, \"queue_overflow\": {}, \"pool_hit\": {}, \
                     \"pool_miss\": {}}}",
                    t.t.as_ps(),
                    t.events,
                    t.wall_ns,
                    t.queue_len,
                    t.queue_staged,
                    t.queue_overflow,
                    t.pool_hit,
                    t.pool_miss
                )
            })
            .collect::<Vec<_>>()
            .join(",\n    ");
        if ticks.is_empty() {
            out.push_str("  \"ticks\": []\n}\n");
        } else {
            let _ = writeln!(out, "  \"ticks\": [\n    {ticks}\n  ]\n}}");
        }
        out
    }

    /// One-line profile digest for the perf-trajectory store
    /// (`BENCH_history.jsonl`): events/s plus the top three kinds by
    /// sampled share.
    pub fn compact_json(&self) -> String {
        let total = self.sampled_total_ns().max(1);
        let top = self
            .top_kinds(3)
            .iter()
            .map(|k| {
                format!(
                    "{{\"kind\": {}, \"share\": {}, \"mean_ns\": {}}}",
                    json::escape(&k.name),
                    json::num_f64((k.total_ns as f64 / total as f64 * 1000.0).round() / 1000.0),
                    json::num_f64(k.mean_ns().round())
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"sampled\": {}, \"sample_every\": {}, \"top\": [{top}]}}",
            self.sampled, self.sample_every
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let mut p = Prof::disabled();
        assert!(!p.enabled());
        for _ in 0..100 {
            assert!(!p.arm_span());
        }
        assert!(!p.tick_due(64 * 1024));
        assert!(p.summary(&["a"]).is_none());
    }

    #[test]
    fn sampling_cadence_is_exact() {
        let mut p = Prof::disabled();
        p.enable(ProfConfig {
            sample_every: 4,
            tick_every: 0,
            max_ticks: 0,
        });
        let armed: Vec<bool> = (0..9).map(|_| p.arm_span()).collect();
        // The first dispatch is sampled, then every 4th.
        assert_eq!(
            armed,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn spans_attribute_to_kind_and_class() {
        let mut p = Prof::disabled();
        p.enable(ProfConfig {
            sample_every: 1,
            tick_every: 0,
            max_ticks: 0,
        });
        for _ in 0..3 {
            assert!(p.arm_span());
            p.span_open();
            p.span_close(1, NodeClass::EthSwitch);
        }
        assert!(p.arm_span());
        p.span_open();
        p.span_close(0, NodeClass::Host);
        let s = p
            .summary(&["engine.dispatch.a", "engine.dispatch.b"])
            .unwrap();
        assert_eq!(s.sampled, 4);
        assert_eq!(s.per_kind.len(), 2);
        assert_eq!(s.per_kind[0].name, "engine.dispatch.a");
        assert_eq!(s.per_kind[0].samples, 1);
        assert_eq!(s.per_kind[1].samples, 3);
        let classes: Vec<&str> = s.per_class.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(classes, vec!["host", "eth_switch"]);
    }

    #[test]
    fn close_without_open_is_a_noop() {
        let mut p = Prof::disabled();
        p.enable(ProfConfig::default());
        p.span_close(0, NodeClass::Host);
        assert_eq!(p.summary(&["k"]).unwrap().sampled, 0);
    }

    #[test]
    fn timeline_caps_and_counts_drops() {
        let mut p = Prof::disabled();
        p.enable(ProfConfig {
            sample_every: 1,
            tick_every: 1,
            max_ticks: 2,
        });
        for ev in 1..=5u64 {
            assert!(p.tick_due(ev));
            p.record_tick(SimTime::from_ns(ev), ev, 10, 1, 0, 7, 3);
        }
        let s = p.summary(&["k"]).unwrap();
        assert_eq!(s.ticks.len(), 2);
        assert_eq!(s.dropped_ticks, 3);
        assert_eq!(s.ticks[1].pool_hit, 7);
    }

    #[test]
    fn summary_json_parses_and_self_describes() {
        let mut p = Prof::disabled();
        p.enable(ProfConfig {
            sample_every: 1,
            tick_every: 1,
            max_ticks: 8,
        });
        assert!(p.arm_span());
        p.span_open();
        p.span_close(0, NodeClass::Engine);
        p.record_tick(SimTime::from_us(1), 1, 5, 2, 1, 0, 0);
        let s = p.summary(&["engine.dispatch.k"]).unwrap();
        let doc = json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("tcd-prof-v1")
        );
        assert!(doc.get("per_kind").and_then(|v| v.as_arr()).is_some());
        assert_eq!(
            doc.get("ticks").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(1)
        );
        let compact = json::parse(&s.compact_json()).expect("valid compact JSON");
        assert!(compact.get("top").and_then(|v| v.as_arr()).is_some());
        assert!(!s.hot_report(5).is_empty());
    }

    #[test]
    fn enable_resets_previous_data() {
        let mut p = Prof::disabled();
        p.enable(ProfConfig {
            sample_every: 1,
            ..ProfConfig::default()
        });
        assert!(p.arm_span());
        p.span_open();
        p.span_close(0, NodeClass::Host);
        p.enable(ProfConfig::default());
        assert_eq!(p.summary(&["k"]).unwrap().sampled, 0);
    }
}
