//! Chrome-trace / Perfetto JSON emission.
//!
//! Emits the classic `{"traceEvents": [...]}` format, which both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! ingest directly. The builder maps simulator concepts onto the format's
//! process/thread hierarchy: one *process* per simulated node, one
//! *thread* per track (a port's queue-depth counter, its ternary-state
//! slices, its paused slices, its mark instants).
//!
//! Timestamps are microseconds (fractional values are allowed by the
//! format, so integer picoseconds divide exactly into `f64` µs for any
//! realistic simulation length).

use lossless_flowctl::SimTime;

use crate::json;

/// Builds a Chrome-trace JSON document event by event.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

fn ts_us(t: SimTime) -> String {
    json::num_f64(t.as_us_f64())
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name a process (a simulated node).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            json::escape(name)
        ));
    }

    /// Name a thread (a track within a node).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            json::escape(name)
        ));
    }

    /// Pin a thread's sort position within its process.
    pub fn thread_sort_index(&mut self, pid: u32, tid: u32, index: i64) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{index}}}}}"
        ));
    }

    /// One point of a counter track ("C" event). The counter's series name
    /// doubles as the track name.
    pub fn counter(&mut self, pid: u32, name: &str, t: SimTime, value: u64) {
        self.events.push(format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"name\":{},\"ts\":{},\"args\":{{\"value\":{value}}}}}",
            json::escape(name),
            ts_us(t)
        ));
    }

    /// A complete slice ("X" event) spanning `[start, end)` on a track.
    pub fn slice(&mut self, pid: u32, tid: u32, name: &str, start: SimTime, end: SimTime) {
        let dur = end.saturating_since(start).as_us_f64();
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{},\"dur\":{}}}",
            json::escape(name),
            ts_us(start),
            json::num_f64(dur)
        ));
    }

    /// A thread-scoped instant event ("i").
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, t: SimTime) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\"name\":{},\"ts\":{}}}",
            json::escape(name),
            ts_us(t)
        ));
    }

    /// Render the complete document.
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(self.events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
        out.push_str("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Structural schema check for a Chrome-trace document: must parse, must
/// have a `traceEvents` array, and every event must carry a valid phase
/// plus the fields that phase requires. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let has_num = |k: &str| ev.get(k).and_then(|v| v.as_f64()).is_some();
        let has_str = |k: &str| ev.get(k).and_then(|v| v.as_str()).is_some();
        if !has_num("pid") {
            return Err(format!("event {i}: missing pid"));
        }
        match ph {
            "M" => {
                if !has_str("name") || ev.get("args").is_none() {
                    return Err(format!("event {i}: bad metadata event"));
                }
            }
            "C" => {
                if !has_num("ts") || !has_str("name") {
                    return Err(format!("event {i}: bad counter event"));
                }
                let ok = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_f64())
                    .is_some();
                if !ok {
                    return Err(format!("event {i}: counter without args.value"));
                }
            }
            "X" => {
                if !has_num("ts") || !has_num("dur") || !has_num("tid") || !has_str("name") {
                    return Err(format!("event {i}: bad complete slice"));
                }
            }
            "i" => {
                if !has_num("ts") || !has_num("tid") || !has_str("name") {
                    return Err(format!("event {i}: bad instant"));
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_valid_trace() {
        let mut tb = TraceBuilder::new();
        tb.process_name(3, "node 3 (switch)");
        tb.thread_name(3, 1, "port 0 / prio 0: state");
        tb.thread_sort_index(3, 1, 1);
        tb.counter(3, "queue p0", SimTime::from_us(5), 4096);
        tb.counter(3, "queue p0", SimTime::from_us(10), 0);
        tb.slice(
            3,
            1,
            "congestion (1)",
            SimTime::from_us(5),
            SimTime::from_us(9),
        );
        tb.instant(3, 1, "mark CE", SimTime::from_us(6));
        let doc = tb.to_json();
        assert_eq!(validate_chrome_trace(&doc).unwrap(), 7);
        assert_eq!(tb.len(), 7);
    }

    #[test]
    fn validation_rejects_malformed() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"C\",\"pid\":1}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"Z\",\"pid\":1}]}").is_err());
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}").unwrap(), 0);
    }

    #[test]
    fn sub_microsecond_timestamps_are_fractional() {
        let mut tb = TraceBuilder::new();
        tb.counter(1, "q", SimTime::from_ns(1500), 7);
        assert!(tb.to_json().contains("\"ts\":1.5"));
    }
}
