//! `lossless-obs` — simulation-time observability for the TCD engine.
//!
//! Three pillars, all strictly deterministic (driven by [`SimTime`], never
//! wall clock, integer math only):
//!
//! * [`metrics`] — a typed registry of counters / gauges / log-linear
//!   histograms keyed by `(node, port, prio, name)` in `BTreeMap`s;
//! * [`recorder`] — a flight recorder: per-node fixed-capacity rings of
//!   compact binary records (state transitions, PFC/CBFC control frames,
//!   checkpoints) that can dump the last *N* µs of history when the audit
//!   layer flags a violation;
//! * [`perfetto`] — Chrome-trace / Perfetto JSON emission plus a schema
//!   check, and [`json`] — the shared emit/parse helpers.
//!
//! The [`Obs`] facade ties them together and is what the simulator engine
//! holds; instrumentation calls are no-ops at [`ObsLevel::Off`]. Nothing
//! in this crate feeds back into simulation behaviour: enabling or
//! disabling observability never changes event order, golden traces or
//! run fingerprints.
//!
//! A fourth pillar, [`prof`], deliberately breaks the simulated-time rule:
//! it is the engine's *wall-clock* self-profiler, the one module allowed
//! to read [`std::time::Instant`]. It keeps the non-perturbation
//! guarantee by a different route — it only ever reads the clock and
//! never feeds a wall-clock value back into simulation state (statically
//! enforced by simlint's `prof-leak` rule).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod prof;
pub mod recorder;

use std::collections::BTreeMap;

use lossless_flowctl::{SimDuration, SimTime};
use tcd_core::state::Transition;
use tcd_core::{CodePoint, TernaryState};

pub use metrics::{Key, Registry, NODE_GLOBAL};
pub use recorder::{FlightRecorder, Record, RecordKind};

/// How much the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// All instrumentation compiled to an early return.
    Off,
    /// Counters, histograms and the flight recorder (the default).
    #[default]
    Default,
}

/// Observability knobs, embedded in the simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Recording level.
    pub level: ObsLevel,
    /// Flight-recorder ring capacity per node (0 disables the recorder).
    pub recorder_capacity: usize,
    /// History window a violation dump covers.
    pub dump_window: SimDuration,
    /// Engine checkpoint record cadence, in dispatched events. Matches the
    /// audit layer's default so recorder contents are identical with the
    /// `audit` feature on or off.
    pub checkpoint_every: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            level: ObsLevel::Default,
            recorder_capacity: 1024,
            dump_window: SimDuration::from_us(200),
            checkpoint_every: 16 * 1024,
        }
    }
}

/// A flight-recorder window captured when the audit layer reported a new
/// violation.
#[derive(Debug, Clone)]
pub struct ViolationDump {
    /// Time of the checkpoint that surfaced the violation.
    pub t: SimTime,
    /// The audit layer's cumulative violation count at that point.
    pub total_violations: u64,
    /// The recorder's history for the preceding window, `(t, seq)`-sorted.
    pub records: Vec<Record>,
}

/// The observability facade held by the simulator: registry + recorder +
/// the cheap always-on engine counters, with every entry point guarded by
/// the configured [`ObsLevel`].
#[derive(Debug, Clone)]
pub struct Obs {
    cfg: ObsConfig,
    /// The metrics registry.
    pub reg: Registry,
    /// The flight recorder.
    pub rec: FlightRecorder,
    /// Per-event-kind dispatch counts (plain array: the one per-event
    /// instrument, kept off the `BTreeMap` path).
    dispatch: [u64; MAX_EVENT_KINDS],
    /// XOFF start times for ports currently paused by PFC.
    pause_since: BTreeMap<(u32, u16, u8), SimTime>,
    /// Stall start times for outputs currently blocked on CBFC credits.
    stall_since: BTreeMap<(u32, u16, u8), SimTime>,
    dumps: Vec<ViolationDump>,
}

/// Upper bound on distinct event kinds the dispatch array can hold.
pub const MAX_EVENT_KINDS: usize = 16;

impl Default for Obs {
    fn default() -> Self {
        Obs::new(ObsConfig::default())
    }
}

impl Obs {
    /// Build from configuration.
    pub fn new(cfg: ObsConfig) -> Obs {
        let recorder_capacity = match cfg.level {
            ObsLevel::Off => 0,
            ObsLevel::Default => cfg.recorder_capacity,
        };
        Obs {
            cfg,
            reg: Registry::new(),
            rec: FlightRecorder::new(recorder_capacity),
            dispatch: [0; MAX_EVENT_KINDS],
            pause_since: BTreeMap::new(),
            stall_since: BTreeMap::new(),
            dumps: Vec::new(),
        }
    }

    /// Whether instrumentation is live.
    #[inline]
    pub fn on(&self) -> bool {
        self.cfg.level != ObsLevel::Off
    }

    /// The configuration this facade was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Count one event dispatch of the given kind index.
    // simlint: allow(hot-path-panic) -- kind < MAX_EVENT_KINDS is checked on the line above the access
    #[inline]
    pub fn dispatched(&mut self, kind: usize) {
        if self.on() && kind < MAX_EVENT_KINDS {
            self.dispatch[kind] += 1;
        }
    }

    /// Fold the dispatch array into the registry under
    /// `engine.dispatch.<kind name>` keys. Idempotent (absolute values),
    /// so it can be called at any snapshot point.
    pub fn fold_dispatch(&mut self, kind_names: &[&'static str]) {
        for (i, name) in kind_names.iter().enumerate().take(MAX_EVENT_KINDS) {
            self.reg.set_counter(Key::global(name), self.dispatch[i]);
        }
    }

    /// Raw dispatch count for one kind index.
    pub fn dispatch_count(&self, kind: usize) -> u64 {
        self.dispatch.get(kind).copied().unwrap_or(0)
    }

    /// Count one congestion-controller event delivered at `node` under its
    /// stable `cc.event.*` metric name.
    #[inline]
    pub fn cc_event(&mut self, node: u32, kind_name: &'static str) {
        if self.on() {
            self.reg.inc(Key::node(node, kind_name));
        }
    }

    /// Record a PFC PAUSE/RESUME frame *sent* by `(node, port, prio)`.
    pub fn pfc_frame_tx(&mut self, t: SimTime, node: u32, port: u16, prio: u8, pause: bool) {
        if !self.on() {
            return;
        }
        let name = if pause {
            "pfc.pause_tx"
        } else {
            "pfc.resume_tx"
        };
        self.reg.inc(Key::new(node, port, prio, name));
        self.rec.push(Record {
            t,
            seq: 0,
            node,
            port,
            prio,
            kind: RecordKind::PfcFrame as u8,
            a: pause as u64,
            b: 0,
        });
    }

    /// Record a PAUSE/RESUME frame *received* at `(node, port, prio)`,
    /// tracking XOFF residency: the time from XOFF to the matching XON is
    /// accumulated into the `pfc.xoff_residency_ns` counter + histogram.
    pub fn pfc_frame_rx(&mut self, t: SimTime, node: u32, port: u16, prio: u8, pause: bool) {
        if !self.on() {
            return;
        }
        let key = (node, port, prio);
        if pause {
            self.reg.inc(Key::new(node, port, prio, "pfc.pause_rx"));
            self.pause_since.entry(key).or_insert(t);
        } else {
            self.reg.inc(Key::new(node, port, prio, "pfc.resume_rx"));
            if let Some(start) = self.pause_since.remove(&key) {
                let ns = t.saturating_since(start).as_ps() / 1_000;
                self.reg
                    .add(Key::new(node, port, prio, "pfc.xoff_residency_ns"), ns);
                self.reg
                    .observe(Key::new(node, port, prio, "pfc.xoff_epoch_ns"), ns);
            }
        }
    }

    /// Record a CBFC FCCL credit update sent on `(node, port, vl)`.
    pub fn fccl_tx(&mut self, t: SimTime, node: u32, port: u16, vl: u8, fccl: u64) {
        if !self.on() {
            return;
        }
        self.reg.inc(Key::new(node, port, vl, "cbfc.fccl_tx"));
        self.rec.push(Record {
            t,
            seq: 0,
            node,
            port,
            prio: vl,
            kind: RecordKind::CbfcFccl as u8,
            a: fccl,
            b: 0,
        });
    }

    /// Record an output becoming credit-blocked (`blocked = true`) or
    /// unblocking, with stall residency accounting mirroring
    /// [`Obs::pfc_frame_rx`].
    pub fn credit_stall(&mut self, t: SimTime, node: u32, port: u16, vl: u8, blocked: bool) {
        if !self.on() {
            return;
        }
        let key = (node, port, vl);
        if blocked {
            self.reg.inc(Key::new(node, port, vl, "cbfc.credit_stall"));
            self.stall_since.entry(key).or_insert(t);
        } else if let Some(start) = self.stall_since.remove(&key) {
            let ns = t.saturating_since(start).as_ps() / 1_000;
            self.reg
                .add(Key::new(node, port, vl, "cbfc.stall_residency_ns"), ns);
            self.reg
                .observe(Key::new(node, port, vl, "cbfc.stall_epoch_ns"), ns);
        }
        self.rec.push(Record {
            t,
            seq: 0,
            node,
            port,
            prio: vl,
            kind: RecordKind::CreditStall as u8,
            a: blocked as u64,
            b: 0,
        });
    }

    /// Record a fault-injection event applied by the engine. `name` is
    /// the stable counter name (`fault.link_down`, `fault.link_up`,
    /// `fault.degrade`, `fault.restore`, `fault.route_update`); route
    /// updates are network-wide and pass `node = u32::MAX`, which counts
    /// under a global key. Counters are increment-only, so fault-free
    /// runs carry no `fault.*` keys at all.
    pub fn fault(&mut self, t: SimTime, node: u32, port: u16, name: &'static str) {
        if !self.on() {
            return;
        }
        let key = if node == u32::MAX {
            Key::global(name)
        } else {
            Key::new(node, port, 0, name)
        };
        self.reg.inc(key);
        let onset = matches!(name, "fault.link_down" | "fault.degrade");
        self.rec.push(Record {
            t,
            seq: 0,
            node,
            port,
            prio: 0,
            kind: RecordKind::Fault as u8,
            a: onset as u64,
            b: 0,
        });
    }

    /// Record a packet marked with `cp` at `(node, port, prio)`.
    pub fn mark(
        &mut self,
        t: SimTime,
        node: u32,
        port: u16,
        prio: u8,
        cp: CodePoint,
        queue_bytes: u64,
    ) {
        if !self.on() {
            return;
        }
        self.reg
            .inc(Key::new(node, port, prio, mark_counter_name(cp)));
        self.rec.push(Record {
            t,
            seq: 0,
            node,
            port,
            prio,
            kind: RecordKind::Mark as u8,
            a: cp_code(cp),
            b: queue_bytes,
        });
    }

    /// Record an observed Fig. 6 ternary-state transition. The caller
    /// detects the change (a cheap compare against the last state it
    /// keeps); self-transitions are ignored here.
    pub fn transition(
        &mut self,
        t: SimTime,
        node: u32,
        port: u16,
        prio: u8,
        from: TernaryState,
        to: TernaryState,
    ) {
        if !self.on() {
            return;
        }
        let Some(tr) = Transition::classify(from, to) else {
            return;
        };
        self.reg
            .inc(Key::new(node, port, prio, transition_counter_name(tr)));
        self.rec.push(Record {
            t,
            seq: 0,
            node,
            port,
            prio,
            kind: RecordKind::StateTransition as u8,
            a: from.symbol() as u64,
            b: to.symbol() as u64,
        });
    }

    /// Periodic engine checkpoint marker, driven by the dispatch count so
    /// its cadence is identical with and without the `audit` feature.
    #[inline]
    pub fn maybe_checkpoint(&mut self, t: SimTime, events: u64) {
        if self.on()
            && self.cfg.checkpoint_every > 0
            && events.is_multiple_of(self.cfg.checkpoint_every)
        {
            self.rec.push(Record {
                t,
                seq: 0,
                node: NODE_GLOBAL,
                port: 0,
                prio: 0,
                kind: RecordKind::Checkpoint as u8,
                a: events,
                b: 0,
            });
        }
    }

    /// The audit layer reported `total_violations` so far (a new one just
    /// appeared): push a violation record and capture the flight-recorder
    /// window alongside it.
    pub fn on_violation(&mut self, t: SimTime, total_violations: u64) {
        if !self.on() {
            return;
        }
        self.rec.push(Record {
            t,
            seq: 0,
            node: NODE_GLOBAL,
            port: 0,
            prio: 0,
            kind: RecordKind::Violation as u8,
            a: total_violations,
            b: 0,
        });
        let records = self.rec.dump(t, self.cfg.dump_window);
        self.dumps.push(ViolationDump {
            t,
            total_violations,
            records,
        });
    }

    /// Flight-recorder windows captured on audit violations.
    pub fn violation_dumps(&self) -> &[ViolationDump] {
        &self.dumps
    }

    /// Split off a facade for a parallel worker owning the nodes selected
    /// by `keep`: same configuration, empty registry and recorder, and —
    /// crucially — the open XOFF / credit-stall spans of the kept nodes
    /// *moved* across, so residency accounting survives scatter/gather
    /// barriers (a span opened before a window must close against its
    /// original start time, wherever the node now lives).
    pub fn split_for_nodes(&mut self, keep: impl Fn(u32) -> bool) -> Obs {
        let mut child = Obs::new(self.cfg);
        let take = |map: &mut BTreeMap<(u32, u16, u8), SimTime>| {
            let mut kept = BTreeMap::new();
            map.retain(|&(node, port, prio), since| {
                if keep(node) {
                    kept.insert((node, port, prio), *since);
                    false
                } else {
                    true
                }
            });
            kept
        };
        child.pause_since = take(&mut self.pause_since);
        child.stall_since = take(&mut self.stall_since);
        child
    }

    /// Merge a worker facade (from [`Obs::split_for_nodes`]) back in:
    /// registry counters/histograms sum (gauges last-writer — callers
    /// absorb in a fixed partition order), dispatch counts sum, open
    /// pause/stall spans return (key sets are disjoint by construction),
    /// and retained flight-recorder records are re-pushed. Recorder
    /// *sequence numbers* are reassigned here, so recorder fingerprints —
    /// unlike the registry — are not bit-identical between serial and
    /// partitioned runs.
    pub fn absorb(&mut self, other: Obs) {
        self.reg.merge_from(&other.reg);
        self.rec.absorb(&other.rec);
        for (i, n) in other.dispatch.iter().enumerate() {
            self.dispatch[i] += n;
        }
        self.pause_since.extend(other.pause_since);
        self.stall_since.extend(other.stall_since);
        self.dumps.extend(other.dumps);
    }
}

/// Metric name for a mark of the given code point.
pub fn mark_counter_name(cp: CodePoint) -> &'static str {
    match cp {
        CodePoint::NotCapable => "mark.not_capable",
        CodePoint::Capable => "mark.capable",
        CodePoint::UndeterminedEncountered => "mark.ue",
        CodePoint::CongestionEncountered => "mark.ce",
    }
}

fn cp_code(cp: CodePoint) -> u64 {
    match cp {
        CodePoint::NotCapable => 0,
        CodePoint::Capable => 1,
        CodePoint::UndeterminedEncountered => 2,
        CodePoint::CongestionEncountered => 3,
    }
}

/// Metric name for one of the six Fig. 6 transitions.
pub fn transition_counter_name(tr: Transition) -> &'static str {
    match tr {
        Transition::T1NonCongestionToCongestion => "tcd.transition.t1",
        Transition::T2CongestionToNonCongestion => "tcd.transition.t2",
        Transition::T3NonCongestionToUndetermined => "tcd.transition.t3",
        Transition::T4UndeterminedToNonCongestion => "tcd.transition.t4",
        Transition::T5UndeterminedToCongestion => "tcd.transition.t5",
        Transition::T6CongestionToUndetermined => "tcd.transition.t6",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_is_inert() {
        let mut obs = Obs::new(ObsConfig {
            level: ObsLevel::Off,
            ..ObsConfig::default()
        });
        obs.dispatched(0);
        obs.pfc_frame_tx(SimTime::from_us(1), 1, 0, 0, true);
        obs.mark(SimTime::from_us(1), 1, 0, 0, CodePoint::CE, 100);
        obs.on_violation(SimTime::from_us(2), 1);
        assert_eq!(obs.reg.fingerprint(), Registry::new().fingerprint());
        assert_eq!(obs.rec.total(), 0);
        assert!(obs.violation_dumps().is_empty());
        assert_eq!(obs.dispatch_count(0), 0);
    }

    #[test]
    fn xoff_residency_accumulates() {
        let mut obs = Obs::default();
        obs.pfc_frame_rx(SimTime::from_us(10), 3, 1, 0, true);
        // Duplicate XOFF while already paused must not reset the start.
        obs.pfc_frame_rx(SimTime::from_us(12), 3, 1, 0, true);
        obs.pfc_frame_rx(SimTime::from_us(25), 3, 1, 0, false);
        let k = Key::new(3, 1, 0, "pfc.xoff_residency_ns");
        assert_eq!(obs.reg.counter(k), 15_000);
        assert_eq!(
            obs.reg
                .histogram(Key::new(3, 1, 0, "pfc.xoff_epoch_ns"))
                .unwrap()
                .count(),
            1
        );
        // XON without XOFF is counted but adds no residency.
        obs.pfc_frame_rx(SimTime::from_us(30), 3, 1, 0, false);
        assert_eq!(obs.reg.counter(k), 15_000);
    }

    #[test]
    fn transition_counting_uses_fig6_labels() {
        let mut obs = Obs::default();
        let t = SimTime::from_us(1);
        obs.transition(
            t,
            1,
            0,
            0,
            TernaryState::NonCongestion,
            TernaryState::Congestion,
        );
        obs.transition(
            t,
            1,
            0,
            0,
            TernaryState::Congestion,
            TernaryState::Undetermined,
        );
        // Self-transition: ignored.
        obs.transition(
            t,
            1,
            0,
            0,
            TernaryState::Congestion,
            TernaryState::Congestion,
        );
        assert_eq!(obs.reg.counter(Key::new(1, 0, 0, "tcd.transition.t1")), 1);
        assert_eq!(obs.reg.counter(Key::new(1, 0, 0, "tcd.transition.t6")), 1);
        assert_eq!(obs.rec.total(), 2);
    }

    #[test]
    fn violation_dump_captures_window() {
        let mut obs = Obs::new(ObsConfig {
            dump_window: SimDuration::from_us(5),
            ..ObsConfig::default()
        });
        obs.pfc_frame_tx(SimTime::from_us(1), 1, 0, 0, true);
        obs.pfc_frame_tx(SimTime::from_us(8), 1, 0, 0, false);
        obs.on_violation(SimTime::from_us(10), 1);
        let dumps = obs.violation_dumps();
        assert_eq!(dumps.len(), 1);
        // Only the t=8µs frame and the violation record are in the window.
        assert_eq!(dumps[0].records.len(), 2);
        assert_eq!(
            RecordKind::from_u8(dumps[0].records[1].kind),
            Some(RecordKind::Violation)
        );
    }

    #[test]
    fn checkpoint_cadence() {
        let mut obs = Obs::new(ObsConfig {
            checkpoint_every: 100,
            ..ObsConfig::default()
        });
        for ev in 1..=250u64 {
            obs.maybe_checkpoint(SimTime::from_ns(ev), ev);
        }
        assert_eq!(obs.rec.total(), 2);
    }

    #[test]
    fn fold_dispatch_is_idempotent() {
        let names = ["engine.dispatch.A", "engine.dispatch.B"];
        let mut obs = Obs::default();
        obs.dispatched(0);
        obs.dispatched(0);
        obs.dispatched(1);
        obs.fold_dispatch(&names);
        let fp = obs.reg.fingerprint();
        obs.fold_dispatch(&names);
        assert_eq!(obs.reg.fingerprint(), fp);
        assert_eq!(obs.reg.counter(Key::global("engine.dispatch.A")), 2);
    }
}
