//! Minimal JSON emit + parse helpers.
//!
//! The workspace has no serde (the build environment is offline), so the
//! exporters hand-roll their JSON. This module centralises the escaping
//! rules and provides a small recursive-descent parser used by the schema
//! checks (`tcdsim trace` / `tcdsim metrics` validate their own output
//! before writing it) and by the exporter unit tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape and quote a string as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number (`null` for non-finite values).
pub fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Object keys are kept in a `BTreeMap`, so parsing
/// is deterministic; duplicate keys keep the last occurrence (as browsers
/// do).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Returns a human-readable error with a
/// byte offset on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    // simlint: allow(hot-path-alloc) -- parse-error path of the offline JSON reader; hot only by a name collision with Option::expect
    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our own
                            // emitters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn num_formats() {
        assert_eq!(num_f64(1.5), "1.5");
        assert_eq!(num_f64(f64::NAN), "null");
        assert_eq!(num_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parse_round_trip() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true, "s": "x\n\"y\""}, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("x\n\"y\"")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_own_escapes() {
        let s = "weird \u{7} value\twith\nnewlines\"and quotes\\";
        let parsed = parse(&escape(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }
}
