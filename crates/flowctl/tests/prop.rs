//! Property-based tests of the flow-control state machines.

use lossless_flowctl::cbfc::{CbfcConfig, CbfcReceiver, CbfcSender};
use lossless_flowctl::pfc::{PfcCommand, PfcConfig, PfcIngress};
use lossless_flowctl::{OnOffTracker, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// PFC alternation: PAUSE and RESUME strictly alternate, starting with
    /// PAUSE, no matter how enqueues and dequeues interleave.
    #[test]
    fn pfc_commands_strictly_alternate(ops in proptest::collection::vec((any::<bool>(), 1u64..4000), 0..300)) {
        let mut ing = PfcIngress::new(PfcConfig::new(10_000, 6_000));
        let mut queued: Vec<u64> = Vec::new();
        let mut last: Option<PfcCommand> = None;
        for (enq, bytes) in ops {
            let cmd = if enq {
                queued.push(bytes);
                ing.on_enqueue(bytes)
            } else if let Some(b) = queued.pop() {
                ing.on_dequeue(b)
            } else {
                None
            };
            if let Some(c) = cmd {
                match (last, c) {
                    (None, PfcCommand::SendPause) => {}
                    (Some(PfcCommand::SendPause), PfcCommand::SendResume) => {}
                    (Some(PfcCommand::SendResume), PfcCommand::SendPause) => {}
                    other => prop_assert!(false, "bad command order: {other:?}"),
                }
                last = Some(c);
            }
        }
        // The counter matches what is still queued.
        prop_assert_eq!(ing.buffered_bytes(), queued.iter().sum::<u64>());
    }

    /// PFC hysteresis: while a PAUSE is outstanding the counter was above
    /// X_on at the moment of every enqueue-triggered check, and a RESUME
    /// is only sent at or below X_on.
    #[test]
    fn pfc_resume_only_at_or_below_xon(sizes in proptest::collection::vec(1u64..5000, 1..200)) {
        let cfg = PfcConfig::new(10_000, 6_000);
        let mut ing = PfcIngress::new(cfg);
        for &s in &sizes {
            let _ = ing.on_enqueue(s);
        }
        for &s in sizes.iter().rev() {
            if let Some(PfcCommand::SendResume) = ing.on_dequeue(s) {
                prop_assert!(ing.buffered_bytes() <= cfg.xon_bytes);
            }
        }
    }

    /// CBFC safety: a sender gated by `can_send` can never overflow the
    /// receiver's buffer, for any interleaving of sends, frees and FCCL
    /// updates.
    #[test]
    fn cbfc_never_overflows_buffer(ops in proptest::collection::vec((0u8..3, 64u64..4096), 0..400)) {
        let cfg = CbfcConfig { buffer_blocks: 64, update_period: SimDuration::from_us(20) };
        let mut tx = CbfcSender::new(cfg);
        let mut rx = CbfcReceiver::new(cfg);
        let mut in_buffer: Vec<u64> = Vec::new();
        for (op, bytes) in ops {
            match op {
                0 => {
                    // Try to send (instant link).
                    if tx.can_send(bytes) {
                        tx.on_send(bytes);
                        rx.on_packet_received(bytes);
                        in_buffer.push(bytes);
                        prop_assert!(rx.occupied_blocks() <= cfg.buffer_blocks,
                            "buffer overflow: {} blocks", rx.occupied_blocks());
                    }
                }
                1 => {
                    // Forward a packet out of the buffer.
                    if let Some(b) = in_buffer.pop() {
                        rx.on_buffer_freed(b);
                    }
                }
                _ => {
                    // Credit update arrives.
                    tx.on_fccl(rx.fccl());
                }
            }
        }
    }

    /// CBFC liveness: after the buffer fully drains and an FCCL arrives,
    /// the sender always regains full credits.
    #[test]
    fn cbfc_credits_recover_after_drain(sends in proptest::collection::vec(64u64..2048, 1..30)) {
        let cfg = CbfcConfig { buffer_blocks: 256, update_period: SimDuration::from_us(20) };
        let mut tx = CbfcSender::new(cfg);
        let mut rx = CbfcReceiver::new(cfg);
        let mut sent = Vec::new();
        for s in sends {
            if tx.can_send(s) {
                tx.on_send(s);
                rx.on_packet_received(s);
                sent.push(s);
            }
        }
        for s in sent {
            rx.on_buffer_freed(s);
        }
        tx.on_fccl(rx.fccl());
        prop_assert_eq!(tx.available_blocks(), cfg.buffer_blocks);
    }

    /// ON/OFF tracker: total OFF time never exceeds elapsed time, and
    /// T_on is never larger than the time since the first event.
    #[test]
    fn onoff_accounting_is_sane(gaps in proptest::collection::vec(1u64..500, 2..100)) {
        let mut t = OnOffTracker::new();
        let mut now = 0u64;
        for (i, g) in gaps.iter().enumerate() {
            now += *g;
            if i % 2 == 0 {
                t.pause(SimTime::from_us(now));
            } else {
                t.resume(SimTime::from_us(now));
            }
        }
        let end = SimTime::from_us(now + 1);
        prop_assert!(t.total_off_time() <= end.saturating_since(SimTime::ZERO));
        let ton = t.current_ton(end);
        if ton != SimDuration::MAX {
            prop_assert!(ton <= end.saturating_since(SimTime::ZERO));
        }
    }
}
