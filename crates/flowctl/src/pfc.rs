//! Priority Flow Control (IEEE 802.1Qbb), the hop-by-hop flow control of
//! Converged Enhanced Ethernet.
//!
//! PFC is threshold-triggered (paper §2.2): the downstream switch counts, per
//! ingress port and per priority, the bytes currently buffered that arrived
//! through that ingress. When the count exceeds `X_off` it sends a PAUSE
//! frame upstream; when the count drains to `X_on` it sends a RESUME frame.
//! The upstream egress may only transmit that priority while not paused.
//!
//! Two pure state machines live here:
//!
//! * [`PfcIngress`] — the downstream accounting side that decides when to
//!   emit PAUSE/RESUME,
//! * [`PfcEgress`] — the upstream side that holds the paused/running state.
//!
//! The switch model wires the commands to actual control frames on the
//! reverse link.

use crate::time::SimDuration;
use crate::units::{Rate, CTRL_FRAME_BYTES};

/// Worst-case bytes that keep arriving at an ingress *after* its counter
/// crosses `X_off` — the headroom that must exist above the threshold for
/// PFC to be genuinely lossless (802.1Qbb Annex N sizing):
///
/// * one full round trip of in-flight data, `2 · rate · delay` (the PAUSE
///   travels upstream for `delay` while data keeps arriving, and data
///   already on the wire takes another `delay` to drain);
/// * one MTU that may have just started serializing when the PAUSE arrived
///   and cannot be preempted, plus one MTU of threshold-crossing slop;
/// * the PAUSE control frame's own serialization slot.
///
/// A provisioned headroom below this value is a guaranteed-drop
/// configuration under worst-case burst timing — exactly what the runtime
/// auditor's losslessness check would eventually trip on, detected here
/// statically.
pub fn required_headroom_bytes(rate: Rate, delay: SimDuration, mtu: u64) -> u64 {
    2 * rate.bytes_in(delay) + 2 * mtu + CTRL_FRAME_BYTES
}

/// PFC thresholds for one (ingress port, priority) counter, in bytes.
///
/// The recommended `X_off − X_on` gap is 2 MTU (paper §4.3, following the
/// DCQCN deployment guidance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcConfig {
    /// Ingress byte count above which a PAUSE is sent.
    pub xoff_bytes: u64,
    /// Ingress byte count at or below which a RESUME is sent.
    pub xon_bytes: u64,
}

impl PfcConfig {
    /// Create a config, validating `xon < xoff`.
    pub fn new(xoff_bytes: u64, xon_bytes: u64) -> Self {
        assert!(
            xon_bytes < xoff_bytes,
            "PFC requires X_on ({xon_bytes}) < X_off ({xoff_bytes})"
        );
        PfcConfig {
            xoff_bytes,
            xon_bytes,
        }
    }

    /// The paper's CEE simulation setting: `X_off` = 320 KB with a 2 KB
    /// (2 MTU) hysteresis gap (§3.1.1, §5.2.1 uses 320 KB / 318 KB).
    pub fn paper_simulation() -> Self {
        PfcConfig::new(320 * 1024, 318 * 1024)
    }

    /// The paper's DPDK testbed setting: 800 KB / 770 KB (§5.1.1).
    pub fn paper_testbed() -> Self {
        PfcConfig::new(800 * 1024, 770 * 1024)
    }
}

/// Command emitted by the ingress accounting machine; the switch must
/// transmit the corresponding control frame to the upstream neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfcCommand {
    /// Send a PAUSE frame for this priority.
    SendPause,
    /// Send a RESUME frame (PAUSE with zero quanta) for this priority.
    SendResume,
}

/// Downstream per-(ingress port, priority) byte accounting.
///
/// `on_enqueue` must be called when a packet that arrived through this
/// ingress is buffered anywhere in the switch, and `on_dequeue` when such a
/// packet leaves the switch — this mirrors the shared-buffer ingress
/// accounting of commodity Ethernet switches (and of the ns-3 RDMA model the
/// paper builds on).
///
/// ```
/// use lossless_flowctl::pfc::{PfcCommand, PfcConfig, PfcIngress};
///
/// let mut ing = PfcIngress::new(PfcConfig::new(10_000, 6_000));
/// assert_eq!(ing.on_enqueue(9_000), None);                          // below X_off
/// assert_eq!(ing.on_enqueue(2_000), Some(PfcCommand::SendPause));   // crossed X_off
/// assert_eq!(ing.on_dequeue(6_000), Some(PfcCommand::SendResume));  // drained to X_on
/// ```
#[derive(Debug, Clone)]
pub struct PfcIngress {
    cfg: PfcConfig,
    buffered_bytes: u64,
    /// True while we have an outstanding PAUSE (upstream believes it is paused).
    pause_sent: bool,
    pauses_sent: u64,
    resumes_sent: u64,
    max_buffered: u64,
}

impl PfcIngress {
    /// New counter with zero buffered bytes.
    pub fn new(cfg: PfcConfig) -> Self {
        PfcIngress {
            cfg,
            buffered_bytes: 0,
            pause_sent: false,
            pauses_sent: 0,
            resumes_sent: 0,
            max_buffered: 0,
        }
    }

    /// Account an arriving packet; returns `SendPause` when the `X_off`
    /// threshold is crossed and no PAUSE is outstanding.
    #[must_use]
    pub fn on_enqueue(&mut self, bytes: u64) -> Option<PfcCommand> {
        self.buffered_bytes += bytes;
        self.max_buffered = self.max_buffered.max(self.buffered_bytes);
        if !self.pause_sent && self.buffered_bytes > self.cfg.xoff_bytes {
            self.pause_sent = true;
            self.pauses_sent += 1;
            Some(PfcCommand::SendPause)
        } else {
            None
        }
    }

    /// Account a departing packet; returns `SendResume` when the count
    /// drains to `X_on` while a PAUSE is outstanding.
    #[must_use]
    pub fn on_dequeue(&mut self, bytes: u64) -> Option<PfcCommand> {
        debug_assert!(
            self.buffered_bytes >= bytes,
            "PFC accounting underflow: {} - {}",
            self.buffered_bytes,
            bytes
        );
        self.buffered_bytes = self.buffered_bytes.saturating_sub(bytes);
        if self.pause_sent && self.buffered_bytes <= self.cfg.xon_bytes {
            self.pause_sent = false;
            self.resumes_sent += 1;
            Some(PfcCommand::SendResume)
        } else {
            None
        }
    }

    /// Bytes currently attributed to this ingress.
    #[inline]
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered_bytes
    }

    /// Whether a PAUSE is currently outstanding.
    #[inline]
    pub fn is_pausing_upstream(&self) -> bool {
        self.pause_sent
    }

    /// Total PAUSE frames emitted.
    #[inline]
    pub fn pauses_sent(&self) -> u64 {
        self.pauses_sent
    }

    /// Total RESUME frames emitted.
    #[inline]
    pub fn resumes_sent(&self) -> u64 {
        self.resumes_sent
    }

    /// High-water mark of the counter (headroom sizing check).
    #[inline]
    pub fn max_buffered(&self) -> u64 {
        self.max_buffered
    }

    /// The thresholds this counter operates under.
    #[inline]
    pub fn config(&self) -> PfcConfig {
        self.cfg
    }
}

/// Upstream egress pause state for one (port, priority).
#[derive(Debug, Clone, Default)]
pub struct PfcEgress {
    paused: bool,
}

impl PfcEgress {
    /// New egress state, initially running.
    pub fn new() -> Self {
        PfcEgress { paused: false }
    }

    /// Apply a received PAUSE (`pause = true`) or RESUME (`pause = false`)
    /// frame. Returns `true` if the state changed — the caller uses this to
    /// drive the [`crate::OnOffTracker`] and to restart transmission.
    pub fn on_frame(&mut self, pause: bool) -> bool {
        let changed = self.paused != pause;
        self.paused = pause;
        changed
    }

    /// Whether this priority is currently paused by the downstream switch.
    #[inline]
    pub fn is_paused(&self) -> bool {
        self.paused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PfcConfig {
        PfcConfig::new(1000, 600)
    }

    #[test]
    fn pause_emitted_once_when_crossing_xoff() {
        let mut ing = PfcIngress::new(cfg());
        assert_eq!(ing.on_enqueue(600), None);
        assert_eq!(ing.on_enqueue(400), None); // exactly X_off: not exceeded
        assert_eq!(ing.on_enqueue(1), Some(PfcCommand::SendPause));
        // Further growth does not re-send PAUSE.
        assert_eq!(ing.on_enqueue(500), None);
        assert!(ing.is_pausing_upstream());
        assert_eq!(ing.pauses_sent(), 1);
    }

    #[test]
    fn resume_emitted_once_when_draining_to_xon() {
        let mut ing = PfcIngress::new(cfg());
        let _ = ing.on_enqueue(1500);
        assert!(ing.is_pausing_upstream());
        assert_eq!(ing.on_dequeue(300), None); // 1200 > X_on
        assert_eq!(ing.on_dequeue(600), Some(PfcCommand::SendResume)); // 600 <= X_on
        assert!(!ing.is_pausing_upstream());
        assert_eq!(ing.on_dequeue(100), None);
        assert_eq!(ing.resumes_sent(), 1);
    }

    #[test]
    fn no_resume_without_outstanding_pause() {
        let mut ing = PfcIngress::new(cfg());
        let _ = ing.on_enqueue(500);
        assert_eq!(ing.on_dequeue(500), None);
        assert_eq!(ing.resumes_sent(), 0);
    }

    #[test]
    fn hysteresis_cycles() {
        let mut ing = PfcIngress::new(cfg());
        for _ in 0..3 {
            assert_eq!(ing.on_enqueue(1100), Some(PfcCommand::SendPause));
            assert_eq!(ing.on_dequeue(1100), Some(PfcCommand::SendResume));
        }
        assert_eq!(ing.pauses_sent(), 3);
        assert_eq!(ing.resumes_sent(), 3);
        assert_eq!(ing.buffered_bytes(), 0);
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let mut ing = PfcIngress::new(cfg());
        let _ = ing.on_enqueue(2000);
        let _ = ing.on_dequeue(1500);
        let _ = ing.on_enqueue(100);
        assert_eq!(ing.max_buffered(), 2000);
    }

    #[test]
    fn egress_state_change_detection() {
        let mut eg = PfcEgress::new();
        assert!(!eg.is_paused());
        assert!(eg.on_frame(true));
        assert!(eg.is_paused());
        assert!(!eg.on_frame(true)); // refresh, no change
        assert!(eg.on_frame(false));
        assert!(!eg.on_frame(false));
        assert!(!eg.is_paused());
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        let _ = PfcConfig::new(100, 100);
    }

    #[test]
    fn headroom_formula_matches_hand_computation() {
        use crate::units::MTU_BYTES;
        use crate::Rate;
        use crate::SimDuration;
        // 40 Gbps, 4 µs one-way delay: one RTT in flight is 2·20 000 B,
        // plus 2 MTU and the 64 B control frame slot.
        let need = required_headroom_bytes(Rate::from_gbps(40), SimDuration::from_us(4), MTU_BYTES);
        assert_eq!(need, 2 * 20_000 + 2 * 1000 + 64);
        // The paper's simulation setting fits comfortably in the 96 KiB the
        // audit layer provisions per ingress counter.
        assert!(need <= 96 * 1024);
    }

    #[test]
    fn paper_configs() {
        let sim = PfcConfig::paper_simulation();
        assert_eq!(sim.xoff_bytes, 320 * 1024);
        let tb = PfcConfig::paper_testbed();
        assert!(tb.xon_bytes < tb.xoff_bytes);
    }
}
