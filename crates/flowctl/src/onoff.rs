//! The ON–OFF sending-pattern observable.
//!
//! When hop-by-hop flow control takes effect, an egress port alternates
//! between sending (ON) and pausing (OFF). TCD's key signal is the duration
//! of the *current* ON period, `T_on`: the time elapsed since the latest OFF
//! period ended (paper §4.1). A port that has never been paused — or whose
//! last pause is long past — has an effectively infinite `T_on`.
//!
//! [`OnOffTracker`] records exactly that: it is fed `pause`/`resume`
//! transitions by PFC or CBFC, and answers `current_ton(now)` on every
//! dequeue. It also accumulates OFF-time statistics used by the evaluation
//! (e.g. pause-duration traces for Fig. 10).

use crate::time::{SimDuration, SimTime};

/// Tracks the ON/OFF sending state of one egress (port, priority/VL) pair.
///
/// ```
/// use lossless_flowctl::{OnOffTracker, SimTime, SimDuration};
///
/// let mut t = OnOffTracker::new();
/// // Never paused: T_on is unbounded.
/// assert_eq!(t.current_ton(SimTime::from_us(99)), SimDuration::MAX);
///
/// t.pause(SimTime::from_us(100));   // PAUSE frame / credits exhausted
/// t.resume(SimTime::from_us(130));  // RESUME / credits replenished
/// // 20us later, the current ON period is 20us.
/// assert_eq!(t.current_ton(SimTime::from_us(150)), SimDuration::from_us(20));
/// ```
#[derive(Debug, Clone)]
pub struct OnOffTracker {
    /// Whether the port is currently OFF (paused / out of credits).
    off: bool,
    /// When the current OFF period began (valid while `off`).
    off_since: SimTime,
    /// When the latest OFF period ended. `None` until the first pause ends.
    last_off_end: Option<SimTime>,
    /// Total accumulated OFF time (completed OFF periods only).
    total_off: SimDuration,
    /// Number of completed OFF periods.
    off_periods: u64,
}

impl Default for OnOffTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl OnOffTracker {
    /// A tracker for a port that starts out sending (ON) and has never
    /// been paused.
    pub fn new() -> Self {
        OnOffTracker {
            off: false,
            off_since: SimTime::ZERO,
            last_off_end: None,
            total_off: SimDuration::ZERO,
            off_periods: 0,
        }
    }

    /// The port stopped sending (received PAUSE / ran out of credits).
    /// Idempotent: a second pause while already OFF is ignored, matching
    /// PFC where repeated PAUSE frames simply refresh the pause.
    pub fn pause(&mut self, now: SimTime) {
        if !self.off {
            self.off = true;
            self.off_since = now;
        }
    }

    /// The port may send again (received RESUME / credits replenished).
    /// Ends the current OFF period; ignored if the port was not OFF.
    pub fn resume(&mut self, now: SimTime) {
        if self.off {
            self.off = false;
            self.last_off_end = Some(now);
            self.total_off += now.saturating_since(self.off_since);
            self.off_periods += 1;
        }
    }

    /// Whether the port is currently OFF.
    #[inline]
    pub fn is_off(&self) -> bool {
        self.off
    }

    /// Duration of the current ON period: time since the latest OFF period
    /// ended. Returns [`SimDuration::MAX`] ("infinite") when the port has
    /// never been paused, per the paper's insight that a continuously-ON
    /// port has unbounded `T_on`.
    ///
    /// While the port is OFF there is no current ON period; this returns
    /// zero (the ON period about to start has not accumulated any time).
    #[inline]
    pub fn current_ton(&self, now: SimTime) -> SimDuration {
        if self.off {
            return SimDuration::ZERO;
        }
        match self.last_off_end {
            None => SimDuration::MAX,
            Some(end) => now.saturating_since(end),
        }
    }

    /// When the latest OFF period ended, if any OFF period has completed.
    #[inline]
    pub fn last_off_end(&self) -> Option<SimTime> {
        self.last_off_end
    }

    /// Total time spent OFF across all completed OFF periods.
    #[inline]
    pub fn total_off_time(&self) -> SimDuration {
        self.total_off
    }

    /// Number of completed OFF periods (pause/resume cycles).
    #[inline]
    pub fn off_period_count(&self) -> u64 {
        self.off_periods
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_paused_port_has_infinite_ton() {
        let t = OnOffTracker::new();
        assert!(!t.is_off());
        assert_eq!(t.current_ton(SimTime::from_ms(100)), SimDuration::MAX);
        assert_eq!(t.last_off_end(), None);
    }

    #[test]
    fn ton_measures_time_since_last_resume() {
        let mut t = OnOffTracker::new();
        t.pause(SimTime::from_us(10));
        assert!(t.is_off());
        assert_eq!(t.current_ton(SimTime::from_us(15)), SimDuration::ZERO);
        t.resume(SimTime::from_us(20));
        assert!(!t.is_off());
        assert_eq!(
            t.current_ton(SimTime::from_us(50)),
            SimDuration::from_us(30)
        );
        assert_eq!(t.last_off_end(), Some(SimTime::from_us(20)));
    }

    #[test]
    fn repeated_pause_is_idempotent() {
        let mut t = OnOffTracker::new();
        t.pause(SimTime::from_us(10));
        t.pause(SimTime::from_us(12)); // refresh, must not move off_since
        t.resume(SimTime::from_us(20));
        assert_eq!(t.total_off_time(), SimDuration::from_us(10));
        assert_eq!(t.off_period_count(), 1);
    }

    #[test]
    fn resume_without_pause_is_ignored() {
        let mut t = OnOffTracker::new();
        t.resume(SimTime::from_us(5));
        assert_eq!(t.last_off_end(), None);
        assert_eq!(t.off_period_count(), 0);
        assert_eq!(t.current_ton(SimTime::from_us(9)), SimDuration::MAX);
    }

    #[test]
    fn off_statistics_accumulate() {
        let mut t = OnOffTracker::new();
        for i in 0..5u64 {
            t.pause(SimTime::from_us(i * 100));
            t.resume(SimTime::from_us(i * 100 + 30));
        }
        assert_eq!(t.off_period_count(), 5);
        assert_eq!(t.total_off_time(), SimDuration::from_us(150));
    }

    #[test]
    fn ton_restarts_after_each_off_period() {
        let mut t = OnOffTracker::new();
        t.pause(SimTime::from_us(0));
        t.resume(SimTime::from_us(10));
        assert_eq!(
            t.current_ton(SimTime::from_us(40)),
            SimDuration::from_us(30)
        );
        t.pause(SimTime::from_us(40));
        t.resume(SimTime::from_us(45));
        // T_on counts only from the most recent resume.
        assert_eq!(t.current_ton(SimTime::from_us(50)), SimDuration::from_us(5));
    }
}
