//! Simulated time in integer picoseconds.
//!
//! The whole workspace uses a picosecond-resolution integer clock. At the
//! link speeds the paper evaluates (10–200 Gbps) one byte serializes in
//! 40–800 ps, so picoseconds keep every serialization time exact and every
//! simulation run bit-for-bit deterministic — no floating-point clock drift.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel
    /// (e.g. the `T_on` of a port that has never been paused).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// picosecond. Intended for configuration values (e.g. `max(T_on)`
    /// computed from the analytic model), not for clock arithmetic.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(
            us >= 0.0 && us.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((us * 1e6).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds (for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimDuration::MAX {
            write!(f, "inf")
        } else {
            write!(f, "{:.3}us", self.as_us_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimDuration::from_us(7).as_ps(), 7_000_000);
        assert_eq!(SimDuration::from_ms(2).as_ps(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_us(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut acc = SimTime::ZERO;
        acc += SimDuration::from_ns(500);
        acc += SimDuration::from_ns(500);
        assert_eq!(acc, SimTime::from_us(1));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_us(1);
        let late = SimTime::from_us(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_us(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn from_us_f64_rounds() {
        assert_eq!(SimDuration::from_us_f64(34.4).as_ps(), 34_400_000);
        assert_eq!(SimDuration::from_us_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn reporting_conversions() {
        let t = SimTime::from_ms(3);
        assert!((t.as_ms_f64() - 3.0).abs() < 1e-12);
        assert!((t.as_us_f64() - 3000.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.003).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn from_us_f64_rejects_negative() {
        let _ = SimDuration::from_us_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_ns(999) < SimTime::from_us(1));
        assert!(SimDuration::from_us(1) < SimDuration::MAX);
    }
}
