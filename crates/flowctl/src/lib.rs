//! Hop-by-hop flow control for lossless networks.
//!
//! This crate implements the two flow controls that make mainstream lossless
//! networks lossless:
//!
//! * **PFC** (Priority Flow Control, IEEE 802.1Qbb) used by Converged
//!   Enhanced Ethernet — see [`pfc`].
//! * **CBFC** (Credit-Based Flow Control) used by InfiniBand — see [`cbfc`].
//!
//! Both are pure state machines: they own no clocks, sockets or queues.
//! A switch model (e.g. `lossless-netsim`) feeds them enqueue/dequeue and
//! frame/credit events and acts on the commands they return. This makes every
//! protocol rule unit-testable in isolation.
//!
//! The crate also hosts the base quantities shared by the whole workspace:
//! simulated [`time`] (integer picoseconds) and link [`units`] (rates and
//! exact serialization arithmetic), plus the [`onoff`] tracker that observes
//! the ON–OFF sending pattern both flow controls induce — the observable that
//! Ternary Congestion Detection (the `tcd-core` crate) is built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cbfc;
pub mod onoff;
pub mod pfc;
pub mod time;
pub mod units;

pub use onoff::OnOffTracker;
pub use time::{SimDuration, SimTime};
pub use units::Rate;
