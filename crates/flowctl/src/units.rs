//! Link rates and exact serialization arithmetic.
//!
//! A [`Rate`] is stored in bits per second. The conversion between bytes and
//! picoseconds is done in 128-bit integer arithmetic so that serialization
//! times are exact for every link speed used in the paper (10, 20, 40, 100
//! and 200 Gbps) — a byte at 40 Gbps is exactly 200 ps.

use crate::time::SimDuration;
use core::fmt;

/// A data rate in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate(pub u64);

impl Rate {
    /// Zero rate (a fully throttled sender).
    pub const ZERO: Rate = Rate(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from megabits per second.
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Rate(gbps * 1_000_000_000)
    }

    /// Rate in bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate as fractional Gbit/s (for reporting only).
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Exact time to serialize `bytes` at this rate.
    ///
    /// `t = bytes * 8 / rate`, computed as `bytes * 8e12 / bps` picoseconds
    /// in 128-bit arithmetic (round up, so a transmission never finishes
    /// early). Panics on a zero rate — callers must not serialize at 0 bps.
    #[inline]
    pub fn serialize_time(self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0, "cannot serialize at 0 bps");
        // Fast path: every frame-sized count fits the numerator in u64
        // (bytes < 2^64 / 8e12 ≈ 2.3 MB), avoiding a 128-bit division on
        // the per-packet path. Both branches compute the identical
        // ceiling quotient.
        if bytes < u64::MAX / 8_000_000_000_000 {
            return SimDuration((bytes * 8_000_000_000_000).div_ceil(self.0));
        }
        let num = (bytes as u128) * 8 * 1_000_000_000_000u128;
        let ps = num.div_ceil(self.0 as u128);
        // simlint: allow(hot-path-panic) -- a >2.3 MB frame at >=1 bps stays far below 2^64 ps; the expect documents the slow-path bound
        SimDuration(u64::try_from(ps).expect("serialization time overflows u64 ps"))
    }

    /// Number of whole bytes this rate delivers in `d`.
    #[inline]
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        let bits = (self.0 as u128) * (d.as_ps() as u128) / 1_000_000_000_000u128;
        // simlint: allow(hot-path-panic) -- bits/8e12 fits u64 for any (rate, delay) the wheel's 2^49 ps horizon admits
        u64::try_from(bits / 8).expect("byte count overflows u64")
    }

    /// Multiply by a non-negative factor, saturating at `u64::MAX` bps.
    /// Used by congestion controllers for multiplicative rate updates.
    #[inline]
    pub fn scale(self, factor: f64) -> Rate {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "scale factor must be finite and >= 0"
        );
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            Rate(u64::MAX)
        } else {
            Rate(v as u64)
        }
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, rhs: Rate) -> Rate {
        Rate(self.0.min(rhs.0))
    }

    /// The larger of two rates.
    #[inline]
    pub fn max(self, rhs: Rate) -> Rate {
        Rate(self.0.max(rhs.0))
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.as_gbps_f64())
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Standard Ethernet-ish MTU used throughout the paper's experiments (§4.3
/// uses MTU = 1000 B in the `max(T_on)` examples).
pub const MTU_BYTES: u64 = 1000;

/// Size of a PFC PAUSE/RESUME control frame (64-byte minimum Ethernet frame).
pub const CTRL_FRAME_BYTES: u64 = 64;

/// Size of an InfiniBand flow-control (FCCL) message.
pub const FCCL_FRAME_BYTES: u64 = 64;

/// InfiniBand credit block granularity: credits are counted in 64-byte
/// blocks (IB spec vol. 1, §7.9).
pub const IB_CREDIT_BLOCK_BYTES: u64 = 64;

/// Convert a byte count to IB credit blocks, rounding up (a partial block
/// consumes a whole credit).
#[inline]
pub const fn bytes_to_blocks(bytes: u64) -> u64 {
    bytes.div_ceil(IB_CREDIT_BLOCK_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_time_is_exact_at_paper_speeds() {
        // 1 byte at 40 Gbps = 200 ps exactly.
        assert_eq!(Rate::from_gbps(40).serialize_time(1).as_ps(), 200);
        // 1000-byte MTU at 40 Gbps = 200 ns.
        assert_eq!(
            Rate::from_gbps(40).serialize_time(MTU_BYTES),
            SimDuration::from_ns(200)
        );
        // 1000 bytes at 10 Gbps = 800 ns.
        assert_eq!(
            Rate::from_gbps(10).serialize_time(1000),
            SimDuration::from_ns(800)
        );
        // 1000 bytes at 100 Gbps = 80 ns.
        assert_eq!(
            Rate::from_gbps(100).serialize_time(1000),
            SimDuration::from_ns(80)
        );
        // 1000 bytes at 200 Gbps = 40 ns.
        assert_eq!(
            Rate::from_gbps(200).serialize_time(1000),
            SimDuration::from_ns(40)
        );
    }

    #[test]
    fn serialize_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> ceil in ps.
        let d = Rate::from_bps(3).serialize_time(1);
        assert_eq!(d.as_ps(), 2_666_666_666_667);
    }

    #[test]
    fn bytes_in_inverts_serialize_time() {
        let r = Rate::from_gbps(40);
        let d = r.serialize_time(64_000);
        assert_eq!(r.bytes_in(d), 64_000);
    }

    #[test]
    fn scale_and_saturate() {
        let r = Rate::from_gbps(40);
        assert_eq!(r.scale(0.5), Rate::from_gbps(20));
        assert_eq!(r.scale(0.0), Rate::ZERO);
        assert_eq!(Rate(u64::MAX).scale(2.0), Rate(u64::MAX));
        assert_eq!(r.saturating_sub(Rate::from_gbps(50)), Rate::ZERO);
        assert_eq!(r.saturating_add(Rate::from_gbps(10)), Rate::from_gbps(50));
    }

    #[test]
    fn min_max() {
        let a = Rate::from_gbps(10);
        let b = Rate::from_gbps(40);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn block_conversion_rounds_up() {
        assert_eq!(bytes_to_blocks(0), 0);
        assert_eq!(bytes_to_blocks(1), 1);
        assert_eq!(bytes_to_blocks(64), 1);
        assert_eq!(bytes_to_blocks(65), 2);
        assert_eq!(bytes_to_blocks(1000), 16);
    }

    #[test]
    #[should_panic]
    fn zero_rate_serialization_panics() {
        let _ = Rate::ZERO.serialize_time(1);
    }
}
