//! Credit-Based Flow Control (CBFC), the hop-by-hop flow control of
//! InfiniBand (IB spec vol. 1, §7.9; paper §2.2).
//!
//! Per virtual lane (VL):
//!
//! * the **downstream** receiver maintains ABR — the cumulative count of
//!   64-byte blocks received — and periodically (every `T_c`) sends a Flow
//!   Control Credit Limit (FCCL) message: `FCCL = ABR + free buffer blocks`.
//! * the **upstream** sender maintains FCTBS — cumulative blocks sent — and
//!   may transmit a packet only while `FCTBS + packet blocks ≤ FCCL`.
//!
//! The paper (§2.2) abbreviates FCCL as "allocated buffer size + ABR"; we
//! implement the precise spec rule (free capacity, not total capacity) since
//! the abbreviated form would permit buffer overflow — and losslessness is
//! the entire point. Real IB carries FCCL as a 12-bit wrapping counter; we
//! use 64-bit cumulative counters, which is behaviourally identical on an
//! in-order link and keeps the arithmetic transparent.
//!
//! The *periodicity* of FCCL is what confuses IB CC's congestion detection
//! (paper §3.1.2): a port out of credits receives a fresh batch every `T_c`,
//! so packets arriving just after an FCCL appear "not delayed by credits"
//! and get FECN-marked even on a victim port. The simulator reproduces this
//! by construction.

use crate::time::SimDuration;
use crate::units::bytes_to_blocks;

/// Configuration of one VL's credit loop on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbfcConfig {
    /// Dedicated receive buffer for this VL, in 64-byte blocks.
    pub buffer_blocks: u64,
    /// Credit update (FCCL emission) period `T_c`.
    pub update_period: SimDuration,
}

impl CbfcConfig {
    /// Build from a buffer size in bytes (rounded down to whole blocks).
    pub fn from_bytes(buffer_bytes: u64, update_period: SimDuration) -> Self {
        let blocks = buffer_bytes / crate::units::IB_CREDIT_BLOCK_BYTES;
        assert!(blocks > 0, "CBFC buffer must hold at least one block");
        CbfcConfig {
            buffer_blocks: blocks,
            update_period,
        }
    }

    /// The paper's InfiniBand simulation setting: 280 KB ingress buffer per
    /// port (§3.1.1, §5.2.2). The IB spec bounds `T_c` by 65536 symbol
    /// times (65.536 µs at 40 Gbps, 1 ns/symbol — §4.4 footnote), but §4.4
    /// also requires `B > C·T_c` for CBFC to sustain line rate; with a
    /// 280 KB buffer at 40 Gbps that caps `T_c` below 56 µs (less one BDP
    /// of in-flight slack). We use 20 µs, which keeps a continuously-ON
    /// port credit-sufficient with comfortable headroom.
    pub fn paper_simulation() -> Self {
        CbfcConfig::from_bytes(280 * 1024, SimDuration::from_us(20))
    }

    /// Whether this configuration satisfies the §4.4 constraint
    /// `B > C·T_c` (plus `slack_bytes` of in-flight headroom) at line rate
    /// `bps` — a sender must never stall for credits on an uncongested
    /// link.
    pub fn sustains_line_rate(&self, bps: u64, slack_bytes: u64) -> bool {
        let needed =
            (bps as u128) * (self.update_period.as_ps() as u128) / 8 / 1_000_000_000_000u128
                + slack_bytes as u128;
        (self.buffer_blocks as u128) * (crate::units::IB_CREDIT_BLOCK_BYTES as u128) > needed
    }

    /// The paper's DPDK testbed setting: 800 KB buffer, 60 µs update period
    /// (§5.1.1).
    pub fn paper_testbed() -> Self {
        CbfcConfig::from_bytes(800 * 1024, SimDuration::from_us(60))
    }
}

/// Downstream (receiver) side of one VL's credit loop.
///
/// ```
/// use lossless_flowctl::cbfc::{CbfcConfig, CbfcReceiver, CbfcSender};
/// use lossless_flowctl::SimDuration;
///
/// let cfg = CbfcConfig { buffer_blocks: 16, update_period: SimDuration::from_us(20) };
/// let mut tx = CbfcSender::new(cfg);
/// let mut rx = CbfcReceiver::new(cfg);
///
/// assert!(tx.can_send(16 * 64));       // full initial credits
/// tx.on_send(16 * 64);
/// rx.on_packet_received(16 * 64);
/// assert!(!tx.can_send(64));           // exhausted
///
/// rx.on_buffer_freed(16 * 64);         // packets forwarded on
/// tx.on_fccl(rx.fccl());               // periodic credit update arrives
/// assert!(tx.can_send(16 * 64));       // credits restored
/// ```
#[derive(Debug, Clone)]
pub struct CbfcReceiver {
    cfg: CbfcConfig,
    /// Cumulative blocks received (ABR).
    abr: u64,
    /// Blocks currently occupying the receive buffer.
    occupied_blocks: u64,
    max_occupied: u64,
}

impl CbfcReceiver {
    /// New receiver with an empty buffer.
    pub fn new(cfg: CbfcConfig) -> Self {
        CbfcReceiver {
            cfg,
            abr: 0,
            occupied_blocks: 0,
            max_occupied: 0,
        }
    }

    /// Account an arriving packet of `bytes` (rounded up to whole blocks).
    pub fn on_packet_received(&mut self, bytes: u64) {
        let blocks = bytes_to_blocks(bytes);
        self.abr += blocks;
        self.occupied_blocks += blocks;
        self.max_occupied = self.max_occupied.max(self.occupied_blocks);
        debug_assert!(
            self.occupied_blocks <= self.cfg.buffer_blocks,
            "CBFC buffer overflow: {} blocks in {}-block buffer",
            self.occupied_blocks,
            self.cfg.buffer_blocks
        );
    }

    /// Account a packet leaving the receive buffer (forwarded downstream).
    pub fn on_buffer_freed(&mut self, bytes: u64) {
        let blocks = bytes_to_blocks(bytes);
        debug_assert!(self.occupied_blocks >= blocks, "CBFC free underflow");
        self.occupied_blocks = self.occupied_blocks.saturating_sub(blocks);
    }

    /// Compute the FCCL value to advertise right now:
    /// `ABR + free buffer blocks`.
    #[inline]
    pub fn fccl(&self) -> u64 {
        self.abr + (self.cfg.buffer_blocks - self.occupied_blocks)
    }

    /// Cumulative blocks received.
    #[inline]
    pub fn abr(&self) -> u64 {
        self.abr
    }

    /// Blocks currently buffered.
    #[inline]
    pub fn occupied_blocks(&self) -> u64 {
        self.occupied_blocks
    }

    /// Free buffer blocks (capacity an upstream could still use).
    #[inline]
    pub fn free_blocks(&self) -> u64 {
        self.cfg.buffer_blocks - self.occupied_blocks
    }

    /// Occupancy high-water mark, in blocks.
    #[inline]
    pub fn max_occupied(&self) -> u64 {
        self.max_occupied
    }

    /// The FCCL emission period `T_c`.
    #[inline]
    pub fn update_period(&self) -> SimDuration {
        self.cfg.update_period
    }

    /// Total receive buffer capacity, in blocks.
    #[inline]
    pub fn capacity_blocks(&self) -> u64 {
        self.cfg.buffer_blocks
    }
}

/// Upstream (sender) side of one VL's credit loop.
#[derive(Debug, Clone)]
pub struct CbfcSender {
    /// Cumulative blocks sent (FCTBS).
    fctbs: u64,
    /// Latest credit limit received.
    fccl: u64,
    credit_stalls: u64,
}

impl CbfcSender {
    /// New sender. At link initialization IB exchanges an initial FCCL equal
    /// to the whole receive buffer, so the sender starts with full credits.
    pub fn new(cfg: CbfcConfig) -> Self {
        CbfcSender {
            fctbs: 0,
            fccl: cfg.buffer_blocks,
            credit_stalls: 0,
        }
    }

    /// Whether a packet of `bytes` may be transmitted now.
    #[inline]
    pub fn can_send(&self, bytes: u64) -> bool {
        self.fctbs + bytes_to_blocks(bytes) <= self.fccl
    }

    /// Record transmission of a packet. Callers must check [`can_send`]
    /// first; this is asserted in debug builds.
    ///
    /// [`can_send`]: CbfcSender::can_send
    pub fn on_send(&mut self, bytes: u64) {
        debug_assert!(self.can_send(bytes), "CBFC send without credits");
        self.fctbs += bytes_to_blocks(bytes);
    }

    /// Apply a received FCCL message. FCCL is monotonic on an in-order
    /// link; stale values are ignored defensively.
    pub fn on_fccl(&mut self, fccl: u64) {
        if fccl > self.fccl {
            self.fccl = fccl;
        }
    }

    /// Record that a transmission attempt was blocked for lack of credits
    /// (used by the evaluation to count OFF periods).
    pub fn note_credit_stall(&mut self) {
        self.credit_stalls += 1;
    }

    /// Credits currently available, in blocks.
    #[inline]
    pub fn available_blocks(&self) -> u64 {
        self.fccl.saturating_sub(self.fctbs)
    }

    /// Cumulative blocks sent.
    #[inline]
    pub fn fctbs(&self) -> u64 {
        self.fctbs
    }

    /// The credit limit currently in force (latest FCCL accepted).
    #[inline]
    pub fn fccl_limit(&self) -> u64 {
        self.fccl
    }

    /// Number of recorded credit stalls.
    #[inline]
    pub fn credit_stalls(&self) -> u64 {
        self.credit_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::IB_CREDIT_BLOCK_BYTES;

    fn cfg() -> CbfcConfig {
        CbfcConfig {
            buffer_blocks: 100,
            update_period: SimDuration::from_us(60),
        }
    }

    #[test]
    fn sender_starts_with_full_buffer_of_credits() {
        let s = CbfcSender::new(cfg());
        assert_eq!(s.available_blocks(), 100);
        assert!(s.can_send(100 * IB_CREDIT_BLOCK_BYTES));
        assert!(!s.can_send(100 * IB_CREDIT_BLOCK_BYTES + 1));
    }

    #[test]
    fn send_consumes_whole_blocks() {
        let mut s = CbfcSender::new(cfg());
        s.on_send(65); // 2 blocks
        assert_eq!(s.fctbs(), 2);
        assert_eq!(s.available_blocks(), 98);
    }

    #[test]
    fn credit_loop_conserves_buffer() {
        // Send until credits exhaust, then free + FCCL restores exactly.
        let c = cfg();
        let mut s = CbfcSender::new(c);
        let mut r = CbfcReceiver::new(c);
        let pkt = 640; // 10 blocks
        let mut sent = 0;
        while s.can_send(pkt) {
            s.on_send(pkt);
            r.on_packet_received(pkt);
            sent += 1;
        }
        assert_eq!(sent, 10);
        assert_eq!(r.occupied_blocks(), 100);
        // No credits until buffer frees and an FCCL arrives.
        s.on_fccl(r.fccl());
        assert!(!s.can_send(pkt)); // buffer full: FCCL = ABR + 0
        r.on_buffer_freed(pkt);
        s.on_fccl(r.fccl());
        assert_eq!(s.available_blocks(), 10);
        assert!(s.can_send(pkt));
        assert!(!s.can_send(2 * pkt));
    }

    #[test]
    fn fccl_equals_abr_plus_free() {
        let mut r = CbfcReceiver::new(cfg());
        assert_eq!(r.fccl(), 100);
        r.on_packet_received(64 * 30);
        assert_eq!(r.abr(), 30);
        assert_eq!(r.fccl(), 30 + 70);
        r.on_buffer_freed(64 * 30);
        assert_eq!(r.fccl(), 30 + 100);
    }

    #[test]
    fn stale_fccl_ignored() {
        let mut s = CbfcSender::new(cfg());
        s.on_fccl(500);
        s.on_fccl(400);
        assert_eq!(s.available_blocks(), 500);
    }

    #[test]
    fn occupancy_high_water_mark() {
        let mut r = CbfcReceiver::new(cfg());
        r.on_packet_received(64 * 80);
        r.on_buffer_freed(64 * 50);
        r.on_packet_received(64 * 10);
        assert_eq!(r.max_occupied(), 80);
        assert_eq!(r.occupied_blocks(), 40);
    }

    #[test]
    fn paper_configs_are_valid() {
        let sim = CbfcConfig::paper_simulation();
        assert_eq!(sim.buffer_blocks, 280 * 1024 / 64);
        assert_eq!(sim.update_period, SimDuration::from_us(20));
        let tb = CbfcConfig::paper_testbed();
        assert_eq!(tb.update_period, SimDuration::from_us(60));
    }

    #[test]
    fn line_rate_sustainability_constraint() {
        // The defaults must satisfy B > C*T_c + one BDP of slack at their
        // design rates (40G simulation, 10G testbed).
        assert!(CbfcConfig::paper_simulation().sustains_line_rate(40_000_000_000, 40_000));
        assert!(CbfcConfig::paper_testbed().sustains_line_rate(10_000_000_000, 10_000));
        // The spec's 65.536us bound does NOT sustain 40G with a 280KB
        // buffer -- the reason the default period is shorter.
        let bad = CbfcConfig::from_bytes(280 * 1024, SimDuration::from_ns(65_536));
        assert!(!bad.sustains_line_rate(40_000_000_000, 40_000));
    }

    #[test]
    fn credit_stall_counter() {
        let mut s = CbfcSender::new(cfg());
        s.note_credit_stall();
        s.note_credit_stall();
        assert_eq!(s.credit_stalls(), 2);
    }
}
