//! The TCD detector: the paper's Fig. 9 flowchart as an explicit state
//! machine, plus the [`CongestionDetector`] trait that lets TCD and the
//! binary baselines plug into the same switch model.
//!
//! Inputs the switch must provide:
//!
//! * [`CongestionDetector::on_dequeue`] whenever a data packet leaves the
//!   egress queue — the hot path; returns the code point to apply (if any).
//! * [`CongestionDetector::on_pause`] / [`CongestionDetector::on_resume`] when hop-by-hop flow
//!   control stops / restarts the port (PAUSE/RESUME under PFC; credits
//!   exhausted/replenished under CBFC).
//! * A timer: TCD samples the queue every period `T` to read the queue-length
//!   *trend* after the port is released from the undetermined state. The
//!   switch asks [`timer_deadline`](CongestionDetector::timer_deadline) and
//!   calls [`on_timer`](CongestionDetector::on_timer) when it expires.
//!
//! The per-dequeue work is a timestamp subtraction, one comparison against
//! the pre-configured `max(T_on)` and a `LAST_STATE` lookup — O(1), as the
//! paper argues for hardware feasibility (§4.5).

use crate::baseline::{EcnRed, IbFecn};
use crate::marking::CodePoint;
use crate::state::TernaryState;
use lossless_flowctl::{OnOffTracker, SimDuration, SimTime};

/// Everything a detector may look at when a data packet dequeues.
#[derive(Debug, Clone, Copy)]
pub struct DequeueContext {
    /// Current simulation time.
    pub now: SimTime,
    /// Egress queue length in bytes (including the departing packet).
    pub queue_bytes: u64,
    /// Whether this packet was delayed at the head of the queue because the
    /// port lacked credits (meaningful under CBFC only; always `false` under
    /// PFC). The IB CC FECN rule needs it to separate "root" from "victim".
    pub delayed_by_fc: bool,
}

/// A congestion detector attached to one egress (port, priority/VL) pair.
///
/// `Send` so a parallel simulation executor can move a switch — detectors
/// included — to a worker thread. Detectors are self-contained per-egress
/// state machines, so this costs nothing in practice.
pub trait CongestionDetector: Send {
    /// A data packet is dequeuing; decide how to mark it.
    fn on_dequeue(&mut self, ctx: &DequeueContext) -> Option<CodePoint>;

    /// Hop-by-hop flow control stopped the port (OFF begins).
    fn on_pause(&mut self, now: SimTime);

    /// Hop-by-hop flow control released the port (OFF ends).
    fn on_resume(&mut self, now: SimTime);

    /// When the detector next needs [`on_timer`](Self::on_timer) called,
    /// if ever.
    fn timer_deadline(&self) -> Option<SimTime> {
        None
    }

    /// Periodic queue sample (only called if
    /// [`timer_deadline`](Self::timer_deadline) returned a time).
    /// `backpressured` reports whether the switch is currently blocking
    /// (pausing / withholding credits from) an upstream that feeds this
    /// egress — the switch-local "am I the one restraining my inputs"
    /// signal that distinguishes a covered congestion root from an
    /// innocent port whose standing queue merely cannot drain.
    fn on_timer(&mut self, _now: SimTime, _queue_bytes: u64, _backpressured: bool) {}

    /// The port state this detector currently believes, for tracing.
    /// Binary detectors report `NonCongestion`/`Congestion` only.
    fn port_state(&self) -> TernaryState;
}

/// Configuration of a [`TcdDetector`].
#[derive(Debug, Clone, Copy)]
pub struct TcdConfig {
    /// The `max(T_on)` bound separating the ON-OFF pattern from the
    /// continuous-ON pattern. Compute with [`crate::model`] (Eq. 3 for PFC,
    /// `T_c` for CBFC).
    pub max_ton: SimDuration,
    /// Queue sampling period `T` for the trend check after release from the
    /// undetermined state. The paper recommends `T = max(T_on)` (§4.3/§4.4).
    pub check_period: SimDuration,
    /// Queue length above which a continuously-ON port is congested
    /// (transition ①, and the "increases and exceeds the threshold" arm of
    /// transition ⑤).
    pub queue_high_bytes: u64,
    /// Queue length at or below which the port returns to non-congestion
    /// (transition ②, and the "decreased to a low threshold" arm of
    /// transition ④).
    pub queue_low_bytes: u64,
    /// Consecutive growing check periods required before declaring the
    /// undetermined → congestion transition ⑤. The paper's flowchart uses
    /// a single period (the default); when `max(T_on)` — and hence `T` —
    /// is very short (InfiniBand, where it equals the credit update period
    /// `T_c`), a single period can be fooled by the transient input wave
    /// of upstream ports draining their backlog at line rate after the
    /// congestion tree collapses, so a small debounce (2–3) is used there.
    /// Documented as a deviation in DESIGN.md.
    pub confirm_periods: u32,
    /// Paper-literal trend classification: classify at every timer tick
    /// using the raw queue comparison, without requiring the sampling
    /// window to be free of OFF periods and without the back-pressure
    /// gate. This reproduces the ε-sensitivity the paper reports in
    /// Fig. 14 (too-small `max(T_on)` misclassifies OFF-era queue growth
    /// as congestion); the hardened default avoids it. Kept for the
    /// ablation benchmarks.
    pub paper_literal: bool,
    /// Adaptive `max(T_on)` — the alternative design the paper discusses
    /// (§6): predict the bound from observed ON periods instead of
    /// pre-configuring it. `None` (the paper's recommendation) uses the
    /// static bound.
    pub adaptive: Option<AdaptiveMaxTon>,
    /// Tolerance for the "queue did not decrease" trend comparison, in
    /// bytes. Queues are measured at packet granularity, so a saturated
    /// port wobbles by ±1 MTU between samples; without slack those dips
    /// reset the ⑤ confirmation streak and a covered root at buffer
    /// saturation is never classified. Genuine draining moves by far more
    /// than this per period. Default: 2 MTU.
    pub trend_slack_bytes: u64,
}

/// Parameters of the adaptive `max(T_on)` estimator (§6 alternative).
/// The estimate is an EWMA of completed ON-period durations, scaled by a
/// safety multiplier and clamped to `[floor, ceil]`.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveMaxTon {
    /// Weight of each new observed ON period (e.g. 0.25).
    pub ewma_weight: f64,
    /// Safety factor over the estimate (e.g. 2.0).
    pub multiplier: f64,
    /// Lower clamp for the adapted bound.
    pub floor: SimDuration,
    /// Upper clamp for the adapted bound.
    pub ceil: SimDuration,
}

impl AdaptiveMaxTon {
    /// A reasonable default: ×2 safety over a 0.25-weight EWMA, clamped
    /// between 5 µs and 4× the static bound supplied by the caller.
    pub fn default_for(static_bound: SimDuration) -> AdaptiveMaxTon {
        AdaptiveMaxTon {
            ewma_weight: 0.25,
            multiplier: 2.0,
            floor: SimDuration::from_us(5),
            ceil: SimDuration::from_ps(static_bound.as_ps().saturating_mul(4)),
        }
    }
}

impl TcdConfig {
    /// Config with the recommended `T = max(T_on)` coupling and the
    /// paper-literal single-period trend confirmation.
    pub fn new(max_ton: SimDuration, queue_high_bytes: u64, queue_low_bytes: u64) -> Self {
        assert!(
            queue_low_bytes < queue_high_bytes,
            "low threshold must be below high"
        );
        assert!(max_ton > SimDuration::ZERO, "max(T_on) must be positive");
        TcdConfig {
            max_ton,
            check_period: max_ton,
            queue_high_bytes,
            queue_low_bytes,
            confirm_periods: 1,
            paper_literal: false,
            adaptive: None,
            trend_slack_bytes: 2000,
        }
    }

    /// Paper-literal classification (see
    /// [`paper_literal`](TcdConfig::paper_literal)).
    pub fn literal(mut self) -> Self {
        self.paper_literal = true;
        self
    }

    /// Enable the adaptive `max(T_on)` estimator (§6 alternative design).
    pub fn adaptive(mut self, a: AdaptiveMaxTon) -> Self {
        self.adaptive = Some(a);
        self
    }

    /// Same, with an explicit ⑤-transition debounce.
    pub fn with_confirm(mut self, periods: u32) -> Self {
        assert!(periods >= 1);
        self.confirm_periods = periods;
        self
    }
}

/// The marking scheme TCD defers to while the port is in a determined
/// state (Fig. 9: "If LAST_STATE is a non-congestion or congestion state,
/// the switch detects congestion according to queue size, which is the
/// same as in the lossy network").
#[derive(Debug, Clone)]
pub enum LegacyScheme {
    /// Mark CE exactly while the detector believes the port is congested
    /// (pure threshold + hysteresis; the self-contained default).
    StateThreshold,
    /// RED/ECN dequeue marking — what a CEE switch runs (DCQCN's CP).
    Red(EcnRed),
    /// The IB CC FECN root/victim rule — what an InfiniBand switch runs.
    Fecn(IbFecn),
}

/// The TCD state machine for one egress (port, priority/VL) pair.
///
/// `LAST_STATE` is the paper's register of the most recently *determined*
/// state; the current ternary state additionally reflects whether the port
/// is presently inside an ON-OFF pattern.
///
/// ```
/// use lossless_flowctl::{SimDuration, SimTime};
/// use tcd_core::detector::{CongestionDetector, DequeueContext};
/// use tcd_core::{CodePoint, TcdConfig, TcdDetector, TernaryState};
///
/// let cfg = TcdConfig::new(SimDuration::from_us(30), 200_000, 5_000);
/// let mut det = TcdDetector::new(cfg);
///
/// // Hop-by-hop flow control pauses, then releases, the port.
/// det.on_pause(SimTime::from_us(0));
/// det.on_resume(SimTime::from_us(10));
///
/// // A dequeue 5us later: T_on = 5us < max(T_on) = 30us, so the port is
/// // in the ON-OFF pattern -> undetermined, packet marked UE.
/// let mark = det.on_dequeue(&DequeueContext {
///     now: SimTime::from_us(15),
///     queue_bytes: 300_000,
///     delayed_by_fc: false,
/// });
/// assert_eq!(mark, Some(CodePoint::UE));
/// assert_eq!(det.port_state(), TernaryState::Undetermined);
/// ```
#[derive(Debug, Clone)]
pub struct TcdDetector {
    cfg: TcdConfig,
    onoff: OnOffTracker,
    /// The paper's LAST_STATE register.
    last_state: TernaryState,
    /// Queue length at the previous trend sample (valid while trend
    /// sampling is active).
    trend_prev_queue: u64,
    /// Consecutive growing check periods observed (⑤ debounce).
    growth_streak: u32,
    /// Next trend-sample deadline; `None` while not in/after an
    /// undetermined episode.
    trend_deadline: Option<SimTime>,
    /// Marking scheme used in the determined states.
    legacy: LegacyScheme,
    /// EWMA estimate of completed ON-period durations, in seconds (only
    /// maintained when `cfg.adaptive` is set).
    on_period_est_secs: f64,
    /// Counters for the evaluation.
    ue_marks: u64,
    ce_marks: u64,
    transitions: u64,
}

impl TcdDetector {
    /// New detector; the port starts continuously ON and non-congested.
    /// Marking in determined states uses the self-contained
    /// [`LegacyScheme::StateThreshold`].
    pub fn new(cfg: TcdConfig) -> Self {
        Self::with_legacy(cfg, LegacyScheme::StateThreshold)
    }

    /// New detector deferring to `legacy` for marking in the determined
    /// states (RED on a CEE switch, the FECN rule on an IB switch).
    pub fn with_legacy(cfg: TcdConfig, legacy: LegacyScheme) -> Self {
        TcdDetector {
            cfg,
            onoff: OnOffTracker::new(),
            last_state: TernaryState::NonCongestion,
            trend_prev_queue: 0,
            growth_streak: 0,
            trend_deadline: None,
            legacy,
            on_period_est_secs: 0.0,
            ue_marks: 0,
            ce_marks: 0,
            transitions: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TcdConfig {
        &self.cfg
    }

    /// Number of packets marked UE so far.
    pub fn ue_marks(&self) -> u64 {
        self.ue_marks
    }

    /// Number of packets marked CE so far.
    pub fn ce_marks(&self) -> u64 {
        self.ce_marks
    }

    /// Number of state transitions detected so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Read access to the ON/OFF tracker (for traces).
    pub fn onoff(&self) -> &OnOffTracker {
        &self.onoff
    }

    /// The bound currently separating the ON-OFF pattern from the
    /// continuous-ON pattern: the static `max(T_on)` or, when configured,
    /// the adaptive estimate.
    pub fn current_max_ton(&self) -> SimDuration {
        match self.cfg.adaptive {
            None => self.cfg.max_ton,
            Some(a) => {
                if self.on_period_est_secs <= 0.0 {
                    // No observation yet: fall back to the static bound.
                    self.cfg.max_ton
                } else {
                    let adapted = self.on_period_est_secs * a.multiplier;
                    let ps = (adapted * 1e12) as u64;
                    SimDuration::from_ps(ps.clamp(a.floor.as_ps(), a.ceil.as_ps()))
                }
            }
        }
    }

    fn set_state(&mut self, to: TernaryState) {
        if self.last_state != to {
            self.last_state = to;
            self.transitions += 1;
        }
    }
}

impl CongestionDetector for TcdDetector {
    fn on_dequeue(&mut self, ctx: &DequeueContext) -> Option<CodePoint> {
        let ton = self.onoff.current_ton(ctx.now);
        if ton < self.current_max_ton() {
            // The port is inside an ON-OFF sending pattern: transitions ③/⑥
            // into the undetermined state. Mark UE (the packet-level
            // precedence rule keeps CE from being overwritten).
            if self.last_state != TernaryState::Undetermined {
                self.set_state(TernaryState::Undetermined);
                // Begin trend sampling so the eventual release can be
                // classified (④ vs ⑤).
                self.trend_prev_queue = ctx.queue_bytes;
                self.growth_streak = 0;
                self.trend_deadline = Some(ctx.now + self.cfg.check_period);
            }
            self.ue_marks += 1;
            return Some(CodePoint::UE);
        }
        match self.last_state {
            TernaryState::Undetermined => {
                // Released from the ON-OFF pattern (T_on ≥ max(T_on)) but
                // not yet classified: the accumulated queue may still be
                // draining. Do not mark; the trend timer decides ④ vs ⑤.
                None
            }
            TernaryState::Congestion | TernaryState::NonCongestion => {
                // Determined states: transitions ① / ② by queue size, and
                // marking per the legacy lossy-network scheme (Fig. 9).
                if ctx.queue_bytes > self.cfg.queue_high_bytes {
                    self.set_state(TernaryState::Congestion);
                } else if ctx.queue_bytes <= self.cfg.queue_low_bytes {
                    self.set_state(TernaryState::NonCongestion);
                }
                let mark = match &mut self.legacy {
                    LegacyScheme::StateThreshold => {
                        (self.last_state == TernaryState::Congestion).then_some(CodePoint::CE)
                    }
                    LegacyScheme::Red(red) => red.on_dequeue(ctx),
                    LegacyScheme::Fecn(fecn) => fecn.on_dequeue(ctx),
                };
                if mark.is_some() {
                    self.ce_marks += 1;
                }
                mark
            }
        }
    }

    fn on_pause(&mut self, now: SimTime) {
        // A completed ON period ends here: feed the adaptive estimator.
        if let Some(a) = self.cfg.adaptive {
            if !self.onoff.is_off() {
                if let Some(end) = self.onoff.last_off_end() {
                    let dur = now.saturating_since(end).as_secs_f64();
                    self.on_period_est_secs = if self.on_period_est_secs <= 0.0 {
                        dur
                    } else {
                        (1.0 - a.ewma_weight) * self.on_period_est_secs + a.ewma_weight * dur
                    };
                }
            }
        }
        self.onoff.pause(now);
    }

    fn on_resume(&mut self, now: SimTime) {
        self.onoff.resume(now);
    }

    fn timer_deadline(&self) -> Option<SimTime> {
        self.trend_deadline
    }

    fn on_timer(&mut self, now: SimTime, queue_bytes: u64, backpressured: bool) {
        debug_assert!(self.trend_deadline.is_some());
        if self.last_state != TernaryState::Undetermined {
            // A dequeue-path transition (e.g. back to ①/②o bookkeeping)
            // already resolved the episode.
            self.trend_deadline = None;
            return;
        }
        let released = self.onoff.current_ton(now) >= self.current_max_ton();
        if !released && !self.cfg.paper_literal {
            // Still inside (or too soon after) the ON-OFF pattern —
            // including currently-OFF, where T_on is zero. The trend is not
            // yet meaningful; resample.
            self.trend_prev_queue = queue_bytes;
            self.growth_streak = 0;
            self.trend_deadline = Some(now + self.cfg.check_period);
            return;
        }
        if self.cfg.paper_literal && self.onoff.is_off() {
            // Even the literal flowchart cannot classify while the port is
            // paused (nothing dequeues); resample.
            self.trend_prev_queue = queue_bytes;
            self.trend_deadline = Some(now + self.cfg.check_period);
            return;
        }
        let backpressured = backpressured || self.cfg.paper_literal;
        // The port has been released for a full max(T_on): classify.
        if queue_bytes <= self.cfg.queue_low_bytes {
            // Transition ④: the buildup was caused by OFF and has drained.
            self.set_state(TernaryState::NonCongestion);
            self.growth_streak = 0;
            self.trend_deadline = None;
        } else if queue_bytes + self.cfg.trend_slack_bytes >= self.trend_prev_queue
            && queue_bytes > self.cfg.queue_high_bytes
            && backpressured
        {
            // Queue did not decrease over a clean ON period while sending
            // at full rate (Fig. 9 asks "queue length decrease?") *and*
            // the switch is restraining the inputs that feed this egress:
            // the signature of a (covered) congestion root whose real
            // input rate is at or above the line rate. The back-pressure
            // gate separates that from a transient input wave passing
            // through, or an exactly-utilized port whose standing queue is
            // leftover OFF-era buildup (both of which drain or idle the
            // ingress side). See DESIGN.md for the rationale.
            self.growth_streak += 1;
            if self.growth_streak >= self.cfg.confirm_periods {
                // Transition ⑤.
                self.set_state(TernaryState::Congestion);
                self.growth_streak = 0;
                self.trend_deadline = None;
            } else {
                self.trend_prev_queue = queue_bytes;
                self.trend_deadline = Some(now + self.cfg.check_period);
            }
        } else {
            // Queue decreasing (draining the OFF-caused backlog) but not
            // yet at the low threshold: keep watching, do not mark.
            self.growth_streak = 0;
            self.trend_prev_queue = queue_bytes;
            self.trend_deadline = Some(now + self.cfg.check_period);
        }
    }

    fn port_state(&self) -> TernaryState {
        self.last_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcdConfig {
        // max(T_on) = 30µs, T = 30µs, thresholds 200KB / 10KB.
        TcdConfig::new(SimDuration::from_us(30), 200_000, 10_000)
    }

    fn deq(det: &mut TcdDetector, t_us: u64, q: u64) -> Option<CodePoint> {
        det.on_dequeue(&DequeueContext {
            now: SimTime::from_us(t_us),
            queue_bytes: q,
            delayed_by_fc: false,
        })
    }

    #[test]
    fn continuous_on_uses_queue_threshold() {
        // Transition ① and ②, never paused.
        let mut d = TcdDetector::new(cfg());
        assert_eq!(deq(&mut d, 1, 50_000), None);
        assert_eq!(d.port_state(), TernaryState::NonCongestion);
        assert_eq!(deq(&mut d, 2, 250_000), Some(CodePoint::CE));
        assert_eq!(d.port_state(), TernaryState::Congestion);
        // Stays congested (and marking) until the low threshold.
        assert_eq!(deq(&mut d, 3, 150_000), Some(CodePoint::CE));
        assert_eq!(deq(&mut d, 4, 9_000), None);
        assert_eq!(d.port_state(), TernaryState::NonCongestion);
    }

    #[test]
    fn pause_resume_enters_undetermined_and_marks_ue() {
        // Transition ③.
        let mut d = TcdDetector::new(cfg());
        d.on_pause(SimTime::from_us(10));
        d.on_resume(SimTime::from_us(20));
        // Dequeue 5µs after resume: T_on = 5µs < 30µs.
        assert_eq!(deq(&mut d, 25, 300_000), Some(CodePoint::UE));
        assert_eq!(d.port_state(), TernaryState::Undetermined);
        assert!(d.timer_deadline().is_some());
        // Queue over the high threshold does NOT produce CE while
        // undetermined — that is the whole point of TCD.
        assert_eq!(deq(&mut d, 26, 400_000), Some(CodePoint::UE));
    }

    #[test]
    fn release_with_draining_queue_is_non_congestion() {
        // Transition ④ — the single-congestion-point scenario at port P2.
        let mut d = TcdDetector::new(cfg());
        d.on_pause(SimTime::from_us(0));
        d.on_resume(SimTime::from_us(10));
        assert_eq!(deq(&mut d, 12, 300_000), Some(CodePoint::UE));
        // Port released at t=40 (T_on = 30µs). Dequeues stop marking.
        assert_eq!(deq(&mut d, 45, 280_000), None);
        // Trend timer: queue decreasing -> keep watching, no CE.
        let t1 = d.timer_deadline().unwrap();
        d.on_timer(t1, 250_000, true);
        assert_eq!(d.port_state(), TernaryState::Undetermined);
        let t2 = d.timer_deadline().unwrap();
        assert!(t2 > t1);
        d.on_timer(t2, 100_000, true);
        assert_eq!(d.port_state(), TernaryState::Undetermined);
        // Queue reaches the low threshold: non-congestion.
        let t3 = d.timer_deadline().unwrap();
        d.on_timer(t3, 8_000, false);
        assert_eq!(d.port_state(), TernaryState::NonCongestion);
        assert_eq!(d.timer_deadline(), None);
    }

    #[test]
    fn release_with_growing_queue_is_congestion() {
        // Transition ⑤ — the multi-congestion-point scenario: the covered
        // root emerges as a congestion port.
        let mut d = TcdDetector::new(cfg());
        d.on_pause(SimTime::from_us(0));
        d.on_resume(SimTime::from_us(10));
        assert_eq!(deq(&mut d, 11, 250_000), Some(CodePoint::UE));
        // Another pause keeps the port in the ON-OFF pattern, so the first
        // timer fires while still within max(T_on): resample only.
        d.on_pause(SimTime::from_us(15));
        d.on_resume(SimTime::from_us(25));
        let t1 = d.timer_deadline().unwrap();
        d.on_timer(t1, 260_000, true);
        assert_eq!(d.port_state(), TernaryState::Undetermined);
        // Next timer fires after release; queue grew and exceeds the high
        // threshold: congestion.
        let t2 = d.timer_deadline().unwrap();
        d.on_timer(t2, 300_000, true);
        assert_eq!(d.port_state(), TernaryState::Congestion);
        // Subsequent dequeues mark CE.
        assert_eq!(deq(&mut d, 100, 310_000), Some(CodePoint::CE));
        assert_eq!(d.timer_deadline(), None);
    }

    #[test]
    fn congested_port_paused_becomes_undetermined() {
        // Transition ⑥ — a congestion-tree root covered by a deeper tree.
        let mut d = TcdDetector::new(cfg());
        assert_eq!(deq(&mut d, 1, 250_000), Some(CodePoint::CE));
        assert_eq!(d.port_state(), TernaryState::Congestion);
        d.on_pause(SimTime::from_us(2));
        d.on_resume(SimTime::from_us(8));
        assert_eq!(deq(&mut d, 9, 260_000), Some(CodePoint::UE));
        assert_eq!(d.port_state(), TernaryState::Undetermined);
    }

    #[test]
    fn repeated_pauses_keep_port_undetermined() {
        let mut d = TcdDetector::new(cfg());
        let mut t = 0u64;
        for _ in 0..10 {
            d.on_pause(SimTime::from_us(t));
            d.on_resume(SimTime::from_us(t + 5));
            assert_eq!(deq(&mut d, t + 7, 100_000), Some(CodePoint::UE));
            t += 20; // each ON period (~15µs) stays below max(T_on)=30µs
        }
        assert_eq!(d.port_state(), TernaryState::Undetermined);
        assert_eq!(d.ue_marks(), 10);
    }

    #[test]
    fn timer_resamples_while_off() {
        // If the timer fires during an OFF period (T_on = 0) the trend is
        // not classified.
        let mut d = TcdDetector::new(cfg());
        d.on_pause(SimTime::from_us(0));
        d.on_resume(SimTime::from_us(5));
        assert_eq!(deq(&mut d, 6, 250_000), Some(CodePoint::UE));
        d.on_pause(SimTime::from_us(10));
        let t1 = d.timer_deadline().unwrap();
        d.on_timer(t1, 400_000, true); // grew, but port is OFF: no conclusion
        assert_eq!(d.port_state(), TernaryState::Undetermined);
        assert!(d.timer_deadline().is_some());
    }

    #[test]
    fn transition_counter_counts_changes_only() {
        let mut d = TcdDetector::new(cfg());
        assert_eq!(d.transitions(), 0);
        let _ = deq(&mut d, 1, 250_000); // 0 -> 1
        let _ = deq(&mut d, 2, 260_000); // still 1
        let _ = deq(&mut d, 3, 5_000); // 1 -> 0
        assert_eq!(d.transitions(), 2);
    }

    #[test]
    fn mark_counters() {
        let mut d = TcdDetector::new(cfg());
        let _ = deq(&mut d, 1, 250_000);
        let _ = deq(&mut d, 2, 250_000);
        d.on_pause(SimTime::from_us(3));
        d.on_resume(SimTime::from_us(4));
        let _ = deq(&mut d, 5, 250_000);
        assert_eq!(d.ce_marks(), 2);
        assert_eq!(d.ue_marks(), 1);
    }

    #[test]
    #[should_panic]
    fn config_rejects_inverted_thresholds() {
        let _ = TcdConfig::new(SimDuration::from_us(30), 1000, 1000);
    }

    #[test]
    fn adaptive_bound_tracks_observed_on_periods() {
        let a = AdaptiveMaxTon {
            ewma_weight: 0.5,
            multiplier: 2.0,
            floor: SimDuration::from_us(5),
            ceil: SimDuration::from_us(500),
        };
        let mut d = TcdDetector::new(cfg().adaptive(a));
        // Before any observation, the static bound applies.
        assert_eq!(d.current_max_ton(), SimDuration::from_us(30));
        // Feed a pause/resume cycle with a 10us ON period in between.
        d.on_pause(SimTime::from_us(0));
        d.on_resume(SimTime::from_us(5));
        d.on_pause(SimTime::from_us(15)); // ON period = 10us
                                          // Estimate = 10us, bound = 2x = 20us.
        assert_eq!(d.current_max_ton(), SimDuration::from_us(20));
        d.on_resume(SimTime::from_us(20));
        d.on_pause(SimTime::from_us(60)); // ON period = 40us
                                          // Estimate = 0.5*10 + 0.5*40 = 25us, bound = 50us.
        assert_eq!(d.current_max_ton(), SimDuration::from_us(50));
    }

    #[test]
    fn adaptive_bound_respects_clamps() {
        let a = AdaptiveMaxTon {
            ewma_weight: 1.0,
            multiplier: 2.0,
            floor: SimDuration::from_us(8),
            ceil: SimDuration::from_us(40),
        };
        let mut d = TcdDetector::new(cfg().adaptive(a));
        d.on_pause(SimTime::from_us(0));
        d.on_resume(SimTime::from_us(1));
        d.on_pause(SimTime::from_us(2)); // 1us ON -> 2us bound -> floor 8us
        assert_eq!(d.current_max_ton(), SimDuration::from_us(8));
        d.on_resume(SimTime::from_us(3));
        d.on_pause(SimTime::from_us(103)); // 100us ON -> 200us -> ceil 40us
        assert_eq!(d.current_max_ton(), SimDuration::from_us(40));
    }

    #[test]
    fn adaptive_detector_still_detects_the_onoff_pattern() {
        let a = AdaptiveMaxTon::default_for(SimDuration::from_us(30));
        let mut d = TcdDetector::new(cfg().adaptive(a));
        let mut t = 0u64;
        for _ in 0..6 {
            d.on_pause(SimTime::from_us(t));
            d.on_resume(SimTime::from_us(t + 5));
            assert_eq!(deq(&mut d, t + 7, 100_000), Some(CodePoint::UE));
            t += 15;
        }
        assert_eq!(d.port_state(), TernaryState::Undetermined);
    }

    #[test]
    fn timer_cleared_if_state_resolved_on_dequeue_path() {
        let mut d = TcdDetector::new(cfg());
        d.on_pause(SimTime::from_us(0));
        d.on_resume(SimTime::from_us(5));
        let _ = deq(&mut d, 6, 50_000);
        assert_eq!(d.port_state(), TernaryState::Undetermined);
        // Force-resolve via a timer classification to non-congestion,
        // then ensure a stale second timer is harmless.
        let t1 = d.timer_deadline().unwrap();
        d.on_timer(t1, 5_000, false); // t1 = 6+30 = 36µs, released at 35µs
        assert_eq!(d.port_state(), TernaryState::NonCongestion);
        assert_eq!(d.timer_deadline(), None);
    }
}
