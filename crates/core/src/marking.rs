//! The TCD marking scheme (paper Table 1).
//!
//! TCD reuses a 2-bit header field (the ECN field in CEE, or an equivalent
//! pair of bits in the IB transport header) to carry *ternary* congestion
//! notification:
//!
//! | bits | meaning                        |
//! |------|--------------------------------|
//! | 00   | Non TCD-Capable Transport      |
//! | 01   | TCD-Capable Transport          |
//! | 10   | Undetermined Encountered (UE)  |
//! | 11   | Congestion Encountered (CE)    |
//!
//! Precedence rule (§4.1): a packet that passes an undetermined port and
//! then a congestion port has experienced congestion, so **CE always wins**:
//! UE may only be applied when the current code point is not CE, while CE is
//! applied whenever a port is in the congestion state. Packets from non
//! TCD-capable transports (00) are never remarked.

/// The 2-bit TCD code point carried by every packet.
///
/// ```
/// use tcd_core::CodePoint;
///
/// // A packet crossing an undetermined port, then a congestion port,
/// // has *experienced congestion* (CE wins).
/// let p = CodePoint::Capable.apply(CodePoint::UE).apply(CodePoint::CE);
/// assert_eq!(p, CodePoint::CE);
/// // ...and a later UE never downgrades it.
/// assert_eq!(p.apply(CodePoint::UE), CodePoint::CE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum CodePoint {
    /// `00` — the transport does not understand TCD; never remarked.
    NotCapable,
    /// `01` — TCD-capable, nothing encountered yet.
    #[default]
    Capable,
    /// `10` — the packet traversed at least one undetermined port (and no
    /// congestion port so far).
    UndeterminedEncountered,
    /// `11` — the packet traversed at least one congestion port.
    CongestionEncountered,
}

impl CodePoint {
    /// Shorthand for [`CodePoint::UndeterminedEncountered`].
    pub const UE: CodePoint = CodePoint::UndeterminedEncountered;
    /// Shorthand for [`CodePoint::CongestionEncountered`].
    pub const CE: CodePoint = CodePoint::CongestionEncountered;

    /// Encode to the 2-bit wire representation of Table 1.
    #[inline]
    pub fn to_bits(self) -> u8 {
        match self {
            CodePoint::NotCapable => 0b00,
            CodePoint::Capable => 0b01,
            CodePoint::UndeterminedEncountered => 0b10,
            CodePoint::CongestionEncountered => 0b11,
        }
    }

    /// Decode from the 2-bit wire representation. Values above 3 are
    /// rejected.
    #[inline]
    pub fn from_bits(bits: u8) -> Option<CodePoint> {
        match bits {
            0b00 => Some(CodePoint::NotCapable),
            0b01 => Some(CodePoint::Capable),
            0b10 => Some(CodePoint::UndeterminedEncountered),
            0b11 => Some(CodePoint::CongestionEncountered),
            _ => None,
        }
    }

    /// Apply a switch marking decision to this packet's current code point,
    /// enforcing the Table 1 precedence rules:
    ///
    /// * a `NotCapable` packet is never remarked;
    /// * `CE` is applied unconditionally (to capable packets);
    /// * `UE` is applied only when the current code point is not `CE`;
    /// * marking with `Capable`/`NotCapable` is a no-op (switches only ever
    ///   *add* information).
    #[must_use]
    #[inline]
    pub fn apply(self, mark: CodePoint) -> CodePoint {
        match (self, mark) {
            (CodePoint::NotCapable, _) => CodePoint::NotCapable,
            (cur, CodePoint::CongestionEncountered) => cur.max(CodePoint::CE),
            (CodePoint::CongestionEncountered, CodePoint::UndeterminedEncountered) => CodePoint::CE,
            (_, CodePoint::UndeterminedEncountered) => CodePoint::UE,
            (cur, _) => cur,
        }
    }

    /// Whether the packet reports having encountered congestion.
    #[inline]
    pub fn is_ce(self) -> bool {
        self == CodePoint::CE
    }

    /// Whether the packet reports having (only) encountered an undetermined
    /// port.
    #[inline]
    pub fn is_ue(self) -> bool {
        self == CodePoint::UE
    }

    /// Whether the packet carries any congestion information (UE or CE).
    #[inline]
    pub fn is_marked(self) -> bool {
        self.is_ce() || self.is_ue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CodePoint::{Capable, NotCapable};
    const UE: CodePoint = CodePoint::UE;
    const CE: CodePoint = CodePoint::CE;

    #[test]
    fn table1_wire_encoding() {
        assert_eq!(NotCapable.to_bits(), 0b00);
        assert_eq!(Capable.to_bits(), 0b01);
        assert_eq!(CodePoint::UndeterminedEncountered.to_bits(), 0b10);
        assert_eq!(CodePoint::CongestionEncountered.to_bits(), 0b11);
        for bits in 0..4u8 {
            assert_eq!(CodePoint::from_bits(bits).unwrap().to_bits(), bits);
        }
        assert_eq!(CodePoint::from_bits(4), None);
    }

    #[test]
    fn ue_then_ce_is_congestion() {
        // "If a packet first passes through an undetermined port, then a
        // congestion port, this packet should be considered as experiencing
        // congestion." (§4.1)
        let p = Capable.apply(UE).apply(CE);
        assert_eq!(p, CE);
    }

    #[test]
    fn ue_never_overwrites_ce() {
        // "UE can only be marked when the current code point is not CE."
        let p = Capable.apply(CE).apply(UE);
        assert_eq!(p, CE);
    }

    #[test]
    fn ue_only_path_stays_ue() {
        let p = Capable.apply(UE).apply(UE);
        assert_eq!(p, UE);
    }

    #[test]
    fn not_capable_is_never_remarked() {
        assert_eq!(NotCapable.apply(CE), NotCapable);
        assert_eq!(NotCapable.apply(UE), NotCapable);
    }

    #[test]
    fn neutral_marks_are_noops() {
        assert_eq!(CE.apply(Capable), CE);
        assert_eq!(UE.apply(Capable), UE);
        assert_eq!(Capable.apply(NotCapable), Capable);
    }

    #[test]
    fn predicates() {
        assert!(CE.is_ce() && CE.is_marked() && !CE.is_ue());
        assert!(UE.is_ue() && UE.is_marked() && !UE.is_ce());
        assert!(!Capable.is_marked());
        assert!(!NotCapable.is_marked());
    }

    #[test]
    fn apply_is_monotone_and_idempotent() {
        // Information only accumulates; re-applying the same mark changes
        // nothing.
        for cur in [NotCapable, Capable, UE, CE] {
            for mark in [NotCapable, Capable, UE, CE] {
                let once = cur.apply(mark);
                assert_eq!(once.apply(mark), once, "idempotent");
                assert!(once >= cur || cur == NotCapable, "monotone");
            }
        }
    }
}
