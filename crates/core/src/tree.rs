//! Congestion-tree analysis (paper §3.2.2, Fig. 5).
//!
//! When a port congests, hop-by-hop flow control propagates pauses
//! upstream, forming a **congestion tree**: the congested port is the
//! *root*; every port paused (transitively) because of it is a *leaf*.
//! The paper's taxonomy of multi-tree scenarios:
//!
//! * **isolated** — trees share no ports;
//! * **overlapped** — trees share leaves but have distinct roots;
//! * **covered** — one tree's root is a leaf of a deeper tree (the §3.1.3
//!   scenario: the covered root is undetermined until the deeper tree
//!   dissolves, then emerges as a congestion port — transition ⑤).
//!
//! This module reconstructs trees from a snapshot of per-port ternary
//! states plus the *pause edges* (which port's back-pressure is pausing
//! which upstream port). It is an analysis/diagnostic tool — switches do
//! not need it; TCD detects the states locally — but it turns raw traces
//! into the paper's Fig. 5 pictures and is used by the `congestion_tree`
//! example and the test suite.

use crate::state::TernaryState;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Identifier of a port in a snapshot (opaque to this module; callers use
/// e.g. `(node_index << 16) | port_index`).
pub type PortKey = u64;

/// A snapshot of the network's detection state at one instant.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Ternary state of each port.
    pub states: BTreeMap<PortKey, TernaryState>,
    /// Pause edges: `(downstream congested/backlogged port's switch
    /// ingress, upstream egress being paused)` — i.e. `pauses[i] = (a, b)`
    /// means port `a`'s buffer pressure is currently pausing upstream
    /// egress `b`.
    pub pause_edges: Vec<(PortKey, PortKey)>,
}

impl Snapshot {
    /// Convenience constructor.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Record a port's state.
    pub fn state(&mut self, port: PortKey, s: TernaryState) -> &mut Self {
        self.states.insert(port, s);
        self
    }

    /// Record that `presser` (a congested or backlogged port) is pausing
    /// the upstream egress `paused`.
    pub fn pause(&mut self, presser: PortKey, paused: PortKey) -> &mut Self {
        self.pause_edges.push((presser, paused));
        self
    }
}

/// One reconstructed congestion tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionTree {
    /// The root: a port in the congestion state.
    pub root: PortKey,
    /// All ports reachable from the root through pause edges (excluding
    /// the root), i.e. the tree's leaves/interior in the paper's sense.
    pub leaves: BTreeSet<PortKey>,
}

impl CongestionTree {
    /// Depth of the tree: the longest pause chain from the root, in hops.
    pub fn depth(&self, snap: &Snapshot) -> usize {
        // BFS over pause edges starting from the root.
        let adj = adjacency(snap);
        let mut depth = 0;
        let mut seen = BTreeSet::new();
        seen.insert(self.root);
        let mut frontier = vec![self.root];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for p in frontier {
                if let Some(outs) = adj.get(&p) {
                    for &o in outs {
                        if seen.insert(o) {
                            next.push(o);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            depth += 1;
            frontier = next;
        }
        depth
    }
}

/// Relationship between two congestion trees (the paper's Fig. 5 cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeRelation {
    /// No shared ports.
    Isolated,
    /// Shared leaves, distinct roots, neither root inside the other tree.
    Overlapped,
    /// The second tree's root is a leaf of the first (or vice versa).
    Covered,
}

fn adjacency(snap: &Snapshot) -> BTreeMap<PortKey, Vec<PortKey>> {
    let mut adj: BTreeMap<PortKey, Vec<PortKey>> = BTreeMap::new();
    for &(presser, paused) in &snap.pause_edges {
        adj.entry(presser).or_default().push(paused);
    }
    adj
}

/// Reconstruct all congestion trees in a snapshot: one per port in the
/// congestion state, with leaves collected by following pause edges
/// transitively. A covered root (congestion port that is itself inside
/// another tree) still produces its own tree, mirroring the paper's
/// "covered" case.
pub fn trees(snap: &Snapshot) -> Vec<CongestionTree> {
    let adj = adjacency(snap);
    let mut out = Vec::new();
    for (&port, &st) in &snap.states {
        if st != TernaryState::Congestion {
            continue;
        }
        let mut leaves = BTreeSet::new();
        let mut q = VecDeque::new();
        q.push_back(port);
        let mut seen = BTreeSet::new();
        seen.insert(port);
        while let Some(p) = q.pop_front() {
            if let Some(outs) = adj.get(&p) {
                for &o in outs {
                    if seen.insert(o) {
                        leaves.insert(o);
                        q.push_back(o);
                    }
                }
            }
        }
        out.push(CongestionTree { root: port, leaves });
    }
    out
}

/// Classify the relationship between two trees.
pub fn relation(a: &CongestionTree, b: &CongestionTree) -> TreeRelation {
    if a.leaves.contains(&b.root) || b.leaves.contains(&a.root) {
        return TreeRelation::Covered;
    }
    if a.leaves.intersection(&b.leaves).next().is_some() {
        return TreeRelation::Overlapped;
    }
    TreeRelation::Isolated
}

/// Detect cyclic buffer dependencies in the pause graph — the precursor
/// of PFC/CBFC deadlock (Hu et al., HotNets'16; cited by the paper §1).
/// Tree-shaped routing cannot produce them, but snapshots from arbitrary
/// topologies (or buggy switch logic) can; returns one representative
/// cycle per strongly-connected pause loop found.
pub fn pause_cycles(snap: &Snapshot) -> Vec<Vec<PortKey>> {
    let adj = adjacency(snap);
    let mut cycles = Vec::new();
    let mut color: BTreeMap<PortKey, u8> = BTreeMap::new(); // 0 white 1 grey 2 black

    // Iterative DFS with an explicit path stack.
    let nodes: Vec<PortKey> = adj.keys().copied().collect();
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut path: Vec<PortKey> = Vec::new();
        let mut stack: Vec<(PortKey, usize)> = vec![(start, 0)];
        while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
            if *idx == 0 {
                color.insert(u, 1);
                path.push(u);
            }
            let outs = adj.get(&u).map(Vec::as_slice).unwrap_or(&[]);
            if *idx < outs.len() {
                let v = outs[*idx];
                *idx += 1;
                match color.get(&v).copied().unwrap_or(0) {
                    0 => stack.push((v, 0)),
                    1 => {
                        // Back edge: extract the cycle from the path.
                        if let Some(pos) = path.iter().position(|&p| p == v) {
                            cycles.push(path[pos..].to_vec());
                        }
                    }
                    _ => {}
                }
            } else {
                color.insert(u, 2);
                path.pop();
                stack.pop();
            }
        }
    }
    cycles
}

/// Sanity check on a snapshot per the paper's semantics: every leaf of a
/// congestion tree should be in the undetermined state (it is being
/// paused), unless it is itself a covered root (congestion). Returns the
/// ports violating this, for diagnostics.
pub fn inconsistent_leaves(snap: &Snapshot) -> Vec<PortKey> {
    let mut bad = Vec::new();
    for tree in trees(snap) {
        for &leaf in &tree.leaves {
            match snap.states.get(&leaf) {
                Some(TernaryState::Undetermined) | Some(TernaryState::Congestion) => {}
                _ => bad.push(leaf),
            }
        }
    }
    bad.sort_unstable();
    bad.dedup();
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use TernaryState::*;

    /// Ports: 1-9. Helper to build the three Fig. 5 pictures.
    fn isolated_snapshot() -> Snapshot {
        // Tree A: root 1 pauses 2, 3. Tree B: root 5 pauses 6.
        let mut s = Snapshot::new();
        s.state(1, Congestion)
            .state(2, Undetermined)
            .state(3, Undetermined);
        s.state(5, Congestion).state(6, Undetermined);
        s.pause(1, 2).pause(1, 3).pause(5, 6);
        s
    }

    #[test]
    fn isolated_trees() {
        let snap = isolated_snapshot();
        let ts = trees(&snap);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].root, 1);
        assert_eq!(ts[0].leaves, BTreeSet::from([2, 3]));
        assert_eq!(ts[1].root, 5);
        assert_eq!(ts[1].leaves, BTreeSet::from([6]));
        assert_eq!(relation(&ts[0], &ts[1]), TreeRelation::Isolated);
        assert!(inconsistent_leaves(&snap).is_empty());
    }

    #[test]
    fn overlapped_trees_share_leaves() {
        // Roots 1 and 5 both pause leaf 4.
        let mut s = Snapshot::new();
        s.state(1, Congestion)
            .state(5, Congestion)
            .state(4, Undetermined);
        s.pause(1, 4).pause(5, 4);
        let ts = trees(&s);
        assert_eq!(ts.len(), 2);
        assert_eq!(relation(&ts[0], &ts[1]), TreeRelation::Overlapped);
    }

    #[test]
    fn covered_root_is_detected() {
        // Deep tree: root 1 pauses 2, and 2's pressure pauses 3.
        // Port 2 is itself congested: a covered root with its own tree.
        let mut s = Snapshot::new();
        s.state(1, Congestion)
            .state(2, Congestion)
            .state(3, Undetermined);
        s.pause(1, 2).pause(2, 3);
        let ts = trees(&s);
        assert_eq!(ts.len(), 2);
        let deep = ts.iter().find(|t| t.root == 1).unwrap();
        let covered = ts.iter().find(|t| t.root == 2).unwrap();
        assert_eq!(relation(deep, covered), TreeRelation::Covered);
        assert_eq!(deep.leaves, BTreeSet::from([2, 3]));
        assert_eq!(covered.leaves, BTreeSet::from([3]));
    }

    #[test]
    fn depth_follows_the_pause_chain() {
        let mut s = Snapshot::new();
        s.state(1, Congestion);
        for p in 2..=5 {
            s.state(p, Undetermined);
        }
        s.pause(1, 2).pause(2, 3).pause(3, 4).pause(4, 5);
        let ts = trees(&s);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].depth(&s), 4);
        assert_eq!(ts[0].leaves.len(), 4);
    }

    #[test]
    fn pause_cycles_terminate() {
        // Defensive: a cyclic pause pattern (possible with CBD loops in
        // non-tree topologies) must not hang the reconstruction.
        let mut s = Snapshot::new();
        s.state(1, Congestion)
            .state(2, Undetermined)
            .state(3, Undetermined);
        s.pause(1, 2).pause(2, 3).pause(3, 1);
        let ts = trees(&s);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].leaves, BTreeSet::from([2, 3]));
        assert!(ts[0].depth(&s) <= 3);
    }

    #[test]
    fn inconsistent_leaf_reported() {
        // A leaf claiming non-congestion while being paused is flagged.
        let mut s = Snapshot::new();
        s.state(1, Congestion).state(2, NonCongestion);
        s.pause(1, 2);
        assert_eq!(inconsistent_leaves(&s), vec![2]);
    }

    #[test]
    fn cycle_detector_finds_the_loop() {
        let mut s = Snapshot::new();
        s.state(1, Congestion)
            .state(2, Undetermined)
            .state(3, Undetermined);
        s.pause(1, 2).pause(2, 3).pause(3, 1);
        let cycles = pause_cycles(&s);
        assert_eq!(cycles.len(), 1);
        let mut c = cycles[0].clone();
        c.sort_unstable();
        assert_eq!(c, vec![1, 2, 3]);
    }

    #[test]
    fn trees_have_no_cycles() {
        let s = isolated_snapshot();
        assert!(pause_cycles(&s).is_empty());
        // A diamond (DAG) is also cycle-free.
        let mut d = Snapshot::new();
        d.state(1, Congestion);
        for p in 2..=4 {
            d.state(p, Undetermined);
        }
        d.pause(1, 2).pause(1, 3).pause(2, 4).pause(3, 4);
        assert!(pause_cycles(&d).is_empty());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut s = Snapshot::new();
        s.state(7, Undetermined);
        s.pause(7, 7);
        let cycles = pause_cycles(&s);
        assert_eq!(cycles, vec![vec![7]]);
    }

    #[test]
    fn no_congestion_no_trees() {
        let mut s = Snapshot::new();
        s.state(1, Undetermined).state(2, NonCongestion);
        s.pause(1, 2);
        assert!(trees(&s).is_empty());
    }
}
