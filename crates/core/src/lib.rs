//! Ternary Congestion Detection (TCD) — the primary contribution of
//! *"Congestion Detection in Lossless Networks"* (SIGCOMM 2021).
//!
//! In a lossless network, hop-by-hop flow control (PFC in Converged Enhanced
//! Ethernet, credit-based flow control in InfiniBand) makes switch egress
//! ports alternate between sending (ON) and pausing (OFF). This breaks the
//! classic "queue buildup ⇒ congestion" inference twice over:
//!
//! 1. a paused port builds queue *without* being congested, and
//! 2. the ON-OFF arrival pattern masks the real input rate of downstream
//!    ports, so two ports with identical queue evolutions can be in
//!    different congestion states.
//!
//! The paper's answer is a **ternary** port state — [`state::TernaryState`]:
//! non-congestion (0), congestion (1) and *undetermined* (/) — and a
//! detector that distinguishes the continuous-ON pattern from the ON-OFF
//! pattern by bounding the length of an ON period, `max(T_on)`
//! ([`model`]), then classifies a port leaving the undetermined state by
//! the *trend* of its queue length ([`detector::TcdDetector`], the paper's
//! Fig. 9 flowchart). Endpoints are told about both congestion (CE) and
//! undetermined (UE) encounters through a 2-bit code point
//! ([`marking::CodePoint`], Table 1).
//!
//! The crate also implements the binary baselines TCD is evaluated against
//! ([`baseline`]): RED/ECN dequeue marking (DCQCN's congestion point) and
//! the InfiniBand congestion-control FECN root/victim rule.
//!
//! Everything here is a pure state machine over explicit inputs (dequeue
//! events, pause/resume transitions, timer ticks); the `lossless-netsim`
//! crate drives these machines from a packet-level simulator, and a real
//! switch data plane could drive them from its egress pipeline — the paper
//! argues the per-dequeue work is O(1) and feasible at line rate (§4.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod detector;
pub mod marking;
pub mod model;
pub mod state;
pub mod tree;

pub use detector::{CongestionDetector, DequeueContext, TcdConfig, TcdDetector};
pub use marking::CodePoint;
pub use state::TernaryState;

// Re-export the base quantities so downstream crates need only one import
// path for time/rate arithmetic.
pub use lossless_flowctl::{Rate, SimDuration, SimTime};
