//! Ternary port states and the transition structure of the paper's Fig. 6.
//!
//! A switch egress port in a lossless network is in one of three states
//! (§3.2.1):
//!
//! * **Non-congestion (0)** — persistently ON, no queue buildup.
//! * **Congestion (1)** — persistently ON, output at full rate, with queue
//!   buildup *not* caused by OFF periods. These ports are roots of
//!   congestion trees; flows through them are the real culprits.
//! * **Undetermined (/)** — the output alternates ON-OFF because hop-by-hop
//!   flow control paused the port. Queue buildup may exist, but its cause
//!   (excess input vs. pausing) is ambiguous — and the ON-OFF arrival
//!   pattern from upstream can mask the real input rate entirely.
//!
//! Six transitions connect the states (Fig. 6). ① and ② are the classic
//! lossy-network transitions driven by queue size; ③–⑥ involve the
//! undetermined state and are driven by the ON-OFF pattern (`T_on` vs
//! `max(T_on)`) plus, for ④/⑤, the queue-length trend after release.

use core::fmt;

/// The ternary state of a switch egress port (per priority / VL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TernaryState {
    /// Persistently ON without queue buildup — state "0".
    #[default]
    NonCongestion,
    /// Persistently ON at full output rate with queue buildup not caused by
    /// OFF — state "1". The port is the root of a congestion tree.
    Congestion,
    /// ON-OFF sending pattern — state "/". The real input rate may be
    /// masked; the cause of any queue buildup is ambiguous.
    Undetermined,
}

impl TernaryState {
    /// True for the congestion state (1).
    #[inline]
    pub fn is_congestion(self) -> bool {
        matches!(self, TernaryState::Congestion)
    }

    /// True for the undetermined state (/).
    #[inline]
    pub fn is_undetermined(self) -> bool {
        matches!(self, TernaryState::Undetermined)
    }

    /// The paper's symbol for the state: `0`, `1` or `/`.
    pub fn symbol(self) -> char {
        match self {
            TernaryState::NonCongestion => '0',
            TernaryState::Congestion => '1',
            TernaryState::Undetermined => '/',
        }
    }

    /// Parse a paper symbol back into a state (the inverse of
    /// [`symbol`](TernaryState::symbol)); `None` for anything else.
    pub fn from_symbol(c: char) -> Option<TernaryState> {
        match c {
            '0' => Some(TernaryState::NonCongestion),
            '1' => Some(TernaryState::Congestion),
            '/' => Some(TernaryState::Undetermined),
            _ => None,
        }
    }
}

impl fmt::Display for TernaryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// The six legal transitions of Fig. 6, numbered as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transition {
    /// ① non-congestion → congestion: queue exceeds threshold while
    /// continuously ON.
    T1NonCongestionToCongestion,
    /// ② congestion → non-congestion: queue drains below the low threshold
    /// while continuously ON.
    T2CongestionToNonCongestion,
    /// ③ non-congestion → undetermined: the port is paused and enters an
    /// ON-OFF pattern (`T_on < max(T_on)` at dequeue).
    T3NonCongestionToUndetermined,
    /// ④ undetermined → non-congestion: `T_on ≥ max(T_on)` (released) and
    /// the queue decreases afterwards — buildup was caused by OFF.
    T4UndeterminedToNonCongestion,
    /// ⑤ undetermined → congestion: `T_on ≥ max(T_on)` (released) and the
    /// queue keeps increasing beyond the threshold — the real input rate
    /// exceeds the line rate (e.g. a covered congestion-tree root emerging).
    T5UndeterminedToCongestion,
    /// ⑥ congestion → undetermined: a congested port is itself paused (its
    /// congestion tree is covered by a deeper one).
    T6CongestionToUndetermined,
}

impl Transition {
    /// Classify an observed state change as one of the paper's transitions.
    /// Returns `None` for a self-transition (no change).
    pub fn classify(from: TernaryState, to: TernaryState) -> Option<Transition> {
        use TernaryState::*;
        use Transition::*;
        match (from, to) {
            (NonCongestion, Congestion) => Some(T1NonCongestionToCongestion),
            (Congestion, NonCongestion) => Some(T2CongestionToNonCongestion),
            (NonCongestion, Undetermined) => Some(T3NonCongestionToUndetermined),
            (Undetermined, NonCongestion) => Some(T4UndeterminedToNonCongestion),
            (Undetermined, Congestion) => Some(T5UndeterminedToCongestion),
            (Congestion, Undetermined) => Some(T6CongestionToUndetermined),
            _ => None,
        }
    }

    /// The endpoints of this transition as `(from, to)`.
    pub fn endpoints(self) -> (TernaryState, TernaryState) {
        use TernaryState::*;
        use Transition::*;
        match self {
            T1NonCongestionToCongestion => (NonCongestion, Congestion),
            T2CongestionToNonCongestion => (Congestion, NonCongestion),
            T3NonCongestionToUndetermined => (NonCongestion, Undetermined),
            T4UndeterminedToNonCongestion => (Undetermined, NonCongestion),
            T5UndeterminedToCongestion => (Undetermined, Congestion),
            T6CongestionToUndetermined => (Congestion, Undetermined),
        }
    }

    /// Whether this transition involves the undetermined state — the four
    /// transitions (③–⑥) that are new relative to lossy networks and that
    /// TCD exists to detect.
    pub fn involves_undetermined(self) -> bool {
        let (a, b) = self.endpoints();
        a.is_undetermined() || b.is_undetermined()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TernaryState::*;

    #[test]
    fn default_state_is_non_congestion() {
        assert_eq!(TernaryState::default(), NonCongestion);
    }

    #[test]
    fn symbols_match_paper_notation() {
        assert_eq!(NonCongestion.symbol(), '0');
        assert_eq!(Congestion.symbol(), '1');
        assert_eq!(Undetermined.symbol(), '/');
        assert_eq!(format!("{Undetermined}"), "/");
    }

    #[test]
    fn all_six_transitions_classified() {
        let states = [NonCongestion, Congestion, Undetermined];
        let mut n = 0;
        for &a in &states {
            for &b in &states {
                match Transition::classify(a, b) {
                    Some(t) => {
                        assert_eq!(t.endpoints(), (a, b));
                        n += 1;
                    }
                    None => assert_eq!(a, b, "only self-transitions are None"),
                }
            }
        }
        assert_eq!(n, 6, "exactly six distinct transitions (Fig. 6)");
    }

    #[test]
    fn undetermined_involvement() {
        use Transition::*;
        assert!(!T1NonCongestionToCongestion.involves_undetermined());
        assert!(!T2CongestionToNonCongestion.involves_undetermined());
        for t in [
            T3NonCongestionToUndetermined,
            T4UndeterminedToNonCongestion,
            T5UndeterminedToCongestion,
            T6CongestionToUndetermined,
        ] {
            assert!(t.involves_undetermined());
        }
    }

    #[test]
    fn predicates() {
        assert!(Congestion.is_congestion());
        assert!(!NonCongestion.is_congestion());
        assert!(Undetermined.is_undetermined());
        assert!(!Congestion.is_undetermined());
    }
}
