//! The binary congestion detectors TCD is compared against (paper §2.1):
//!
//! * [`EcnRed`] — DCQCN's congestion point: RED/ECN marking on dequeue
//!   based on the instantaneous egress queue length. §3.1.2 shows why this
//!   is inadequate in CEE: it cannot distinguish queue buildup caused by
//!   congestion from buildup caused by PAUSE frames.
//! * [`IbFecn`] — the InfiniBand congestion-control rule: mark FECN when
//!   the output queue exceeds a threshold *and* the packet was not delayed
//!   for lack of credits (the "root", not the "victim"). §3.1.2 shows why
//!   the periodicity of CBFC credits still confuses it: packets arriving
//!   just after a fresh FCCL appear un-delayed and get marked on victim
//!   ports.
//!
//! Both implement [`CongestionDetector`], so the switch model can run TCD
//! and a baseline through the identical code path. Both mark with
//! [`CodePoint::CE`] — they have no notion of UE.

use crate::detector::{CongestionDetector, DequeueContext};
use crate::marking::CodePoint;
use crate::state::TernaryState;
use lossless_flowctl::{OnOffTracker, SimTime};

/// RED marking parameters (queue lengths in bytes).
///
/// DCQCN's recommended setting at 40 Gbps is `K_min = 5 KB`,
/// `K_max = 200 KB`, `P_max = 1 %`; the paper's §3 observation scenarios
/// describe the effective behaviour as deterministic marking above 200 KB.
#[derive(Debug, Clone, Copy)]
pub struct RedConfig {
    /// Below this queue length, never mark.
    pub kmin_bytes: u64,
    /// At or above this queue length, always mark.
    pub kmax_bytes: u64,
    /// Marking probability reached just below `kmax`.
    pub pmax: f64,
}

impl RedConfig {
    /// DCQCN's recommended 40 Gbps parameters.
    pub fn dcqcn_40g() -> Self {
        RedConfig {
            kmin_bytes: 5 * 1024,
            kmax_bytes: 200 * 1024,
            pmax: 0.01,
        }
    }

    /// Deterministic threshold marking at `k` bytes (the §3 description:
    /// "if the current egress queue length exceeds a threshold Kmax
    /// (i.e., 200KB), the packet is marked with ECN").
    pub fn threshold(k_bytes: u64) -> Self {
        RedConfig {
            kmin_bytes: k_bytes,
            kmax_bytes: k_bytes,
            pmax: 1.0,
        }
    }
}

/// A small deterministic xorshift64* PRNG for RED's marking coin. Keeping
/// the generator inside the detector makes simulations reproducible without
/// threading a global RNG through the switch.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let v = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // 53 high bits -> [0, 1).
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// RED/ECN dequeue marking — DCQCN's congestion point (CP).
#[derive(Debug, Clone)]
pub struct EcnRed {
    cfg: RedConfig,
    rng: XorShift64,
    onoff: OnOffTracker,
    last_queue: u64,
    marks: u64,
}

impl EcnRed {
    /// New RED marker; `seed` makes the marking coin reproducible.
    pub fn new(cfg: RedConfig, seed: u64) -> Self {
        assert!(
            cfg.kmin_bytes <= cfg.kmax_bytes,
            "K_min must not exceed K_max"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.pmax),
            "P_max must be a probability"
        );
        EcnRed {
            cfg,
            rng: XorShift64::new(seed),
            onoff: OnOffTracker::new(),
            last_queue: 0,
            marks: 0,
        }
    }

    /// Packets marked so far.
    pub fn marks(&self) -> u64 {
        self.marks
    }
}

impl CongestionDetector for EcnRed {
    fn on_dequeue(&mut self, ctx: &DequeueContext) -> Option<CodePoint> {
        self.last_queue = ctx.queue_bytes;
        let q = ctx.queue_bytes;
        let mark = if q < self.cfg.kmin_bytes {
            false
        } else if q >= self.cfg.kmax_bytes {
            true
        } else {
            let span = (self.cfg.kmax_bytes - self.cfg.kmin_bytes) as f64;
            let p = self.cfg.pmax * (q - self.cfg.kmin_bytes) as f64 / span;
            self.rng.next_f64() < p
        };
        if mark {
            self.marks += 1;
            Some(CodePoint::CE)
        } else {
            None
        }
    }

    fn on_pause(&mut self, now: SimTime) {
        // ECN ignores flow control entirely — that is its flaw. The tracker
        // is kept only so traces can show the ON-OFF pattern it ignores.
        self.onoff.pause(now);
    }

    fn on_resume(&mut self, now: SimTime) {
        self.onoff.resume(now);
    }

    fn port_state(&self) -> TernaryState {
        if self.last_queue >= self.cfg.kmax_bytes {
            TernaryState::Congestion
        } else {
            TernaryState::NonCongestion
        }
    }
}

/// The InfiniBand congestion-control FECN rule (IB spec annex A10; paper
/// §2.1): a port is the *root* of congestion — and marks FECN — when its
/// output queue exceeds a threshold and packets are **not** delayed for lack
/// of credits. A port whose packets are credit-delayed is a *victim* and
/// does not mark.
#[derive(Debug, Clone)]
pub struct IbFecn {
    threshold_bytes: u64,
    onoff: OnOffTracker,
    last_queue: u64,
    marks: u64,
    victim_suppressions: u64,
}

impl IbFecn {
    /// New FECN marker. The paper's scenarios use a 50 KB threshold.
    pub fn new(threshold_bytes: u64) -> Self {
        IbFecn {
            threshold_bytes,
            onoff: OnOffTracker::new(),
            last_queue: 0,
            marks: 0,
            victim_suppressions: 0,
        }
    }

    /// Packets marked so far.
    pub fn marks(&self) -> u64 {
        self.marks
    }

    /// Times the victim rule suppressed a mark.
    pub fn victim_suppressions(&self) -> u64 {
        self.victim_suppressions
    }
}

impl CongestionDetector for IbFecn {
    fn on_dequeue(&mut self, ctx: &DequeueContext) -> Option<CodePoint> {
        self.last_queue = ctx.queue_bytes;
        if ctx.queue_bytes > self.threshold_bytes {
            if ctx.delayed_by_fc {
                // Victim: queue over threshold but the packet waited for
                // credits.
                self.victim_suppressions += 1;
                None
            } else {
                self.marks += 1;
                Some(CodePoint::CE)
            }
        } else {
            None
        }
    }

    fn on_pause(&mut self, now: SimTime) {
        self.onoff.pause(now);
    }

    fn on_resume(&mut self, now: SimTime) {
        self.onoff.resume(now);
    }

    fn port_state(&self) -> TernaryState {
        if self.last_queue > self.threshold_bytes {
            TernaryState::Congestion
        } else {
            TernaryState::NonCongestion
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lossless_flowctl::SimTime;

    fn ctx(q: u64, delayed: bool) -> DequeueContext {
        DequeueContext {
            now: SimTime::from_us(1),
            queue_bytes: q,
            delayed_by_fc: delayed,
        }
    }

    #[test]
    fn red_never_marks_below_kmin() {
        let mut red = EcnRed::new(RedConfig::dcqcn_40g(), 7);
        for _ in 0..1000 {
            assert_eq!(red.on_dequeue(&ctx(4 * 1024, false)), None);
        }
        assert_eq!(red.marks(), 0);
    }

    #[test]
    fn red_always_marks_at_kmax() {
        let mut red = EcnRed::new(RedConfig::dcqcn_40g(), 7);
        for _ in 0..100 {
            assert_eq!(red.on_dequeue(&ctx(200 * 1024, false)), Some(CodePoint::CE));
        }
        assert_eq!(red.marks(), 100);
    }

    #[test]
    fn red_marks_proportionally_between_thresholds() {
        let mut red = EcnRed::new(
            RedConfig {
                kmin_bytes: 0,
                kmax_bytes: 100_000,
                pmax: 1.0,
            },
            42,
        );
        let mut marks = 0;
        let n = 20_000;
        for _ in 0..n {
            if red.on_dequeue(&ctx(50_000, false)).is_some() {
                marks += 1;
            }
        }
        let frac = marks as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "expected ~0.5, got {frac}");
    }

    #[test]
    fn red_is_deterministic_per_seed() {
        let run = |seed| {
            let mut red = EcnRed::new(RedConfig::dcqcn_40g(), seed);
            (0..500)
                .map(|_| red.on_dequeue(&ctx(100 * 1024, false)).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn red_ignores_pause_state_by_design() {
        // This is the §3.1.2 flaw: a paused-induced queue still marks.
        let mut red = EcnRed::new(RedConfig::threshold(200 * 1024), 1);
        red.on_pause(SimTime::from_us(0));
        red.on_resume(SimTime::from_us(5));
        assert_eq!(red.on_dequeue(&ctx(300 * 1024, false)), Some(CodePoint::CE));
    }

    #[test]
    fn threshold_config_is_deterministic() {
        let mut red = EcnRed::new(RedConfig::threshold(200 * 1024), 1);
        assert_eq!(red.on_dequeue(&ctx(200 * 1024 - 1, false)), None);
        assert_eq!(red.on_dequeue(&ctx(200 * 1024, false)), Some(CodePoint::CE));
    }

    #[test]
    fn fecn_root_marks_victim_does_not() {
        let mut f = IbFecn::new(50_000);
        assert_eq!(f.on_dequeue(&ctx(60_000, false)), Some(CodePoint::CE));
        assert_eq!(f.on_dequeue(&ctx(60_000, true)), None);
        assert_eq!(f.on_dequeue(&ctx(40_000, false)), None);
        assert_eq!(f.marks(), 1);
        assert_eq!(f.victim_suppressions(), 1);
    }

    #[test]
    fn fecn_periodic_credit_confusion() {
        // A victim port out of credits: the queued packet is delayed (no
        // mark) but the packet right after a credit refresh is not delayed
        // and is improperly marked — the §3.1.2 InfiniBand observation.
        let mut f = IbFecn::new(50_000);
        assert_eq!(f.on_dequeue(&ctx(80_000, true)), None);
        assert_eq!(f.on_dequeue(&ctx(80_000, false)), Some(CodePoint::CE));
    }

    #[test]
    fn baseline_port_state_is_binary() {
        let mut red = EcnRed::new(RedConfig::threshold(100), 1);
        let _ = red.on_dequeue(&ctx(50, false));
        assert_eq!(red.port_state(), TernaryState::NonCongestion);
        let _ = red.on_dequeue(&ctx(150, false));
        assert_eq!(red.port_state(), TernaryState::Congestion);

        let mut f = IbFecn::new(100);
        let _ = f.on_dequeue(&ctx(150, true));
        assert_eq!(f.port_state(), TernaryState::Congestion);
    }

    #[test]
    #[should_panic]
    fn red_rejects_invalid_pmax() {
        let _ = EcnRed::new(
            RedConfig {
                kmin_bytes: 0,
                kmax_bytes: 1,
                pmax: 1.5,
            },
            1,
        );
    }
}
