//! The conceptual ON-OFF model (paper §4.2, Fig. 7, Table 2) and the
//! practical `max(T_on)` derivations for CEE (§4.3) and InfiniBand (§4.4).
//!
//! The model describes one hop-by-hop flow-control loop in steady state.
//! During each ON period the downstream ingress queue grows from `B0` to
//! `B1`; the upstream port then pauses, the queue drains back to `B0`, and
//! the cycle repeats. With response time `τ` for ON/OFF messages to take
//! effect, the ON period is (Eq. 1–2):
//!
//! ```text
//! T_on = (B1 − B0 + τ·R_d) / (R_i − R_d) + τ
//!      = (B1 − B0 + τ·R_d) / (ε·C)       + τ,   ε ≜ (R_i − R_d)/C
//! ```
//!
//! Bounding the congested flow's drain rate by `R_d ≤ C/2` (at least two
//! flows contend for the bottleneck) yields the pre-configurable bound
//! (Eq. 3):
//!
//! ```text
//! max(T_on) ≤ (2(B1 − B0) + τ·C) / (2·ε·C) + τ
//! ```
//!
//! For PFC, `B1 − B0 = X_off − X_on` (recommended 2 MTU) and
//! `τ = 2·MTU/C + 2·t_p`. For CBFC the FCCL message is periodic rather than
//! threshold-triggered, and in steady state `T_on = R_d·T_c/(R_d + ε·C) <
//! T_c` (Eq. 4), so the credit update period `T_c` itself is the bound.
//!
//! All formulas are plain `f64` math over SI units (seconds, bits/s, bytes);
//! results are converted to [`SimDuration`] at the configuration boundary.

use lossless_flowctl::units::MTU_BYTES;
use lossless_flowctl::{Rate, SimDuration};

/// Parameters of the conceptual ON-OFF model for a threshold-triggered flow
/// control (PFC). See Table 2 of the paper.
#[derive(Debug, Clone, Copy)]
pub struct OnOffModel {
    /// Link capacity `C`.
    pub capacity: Rate,
    /// Hysteresis gap `B1 − B0` of the ingress-queue thresholds, in bytes.
    pub threshold_gap_bytes: u64,
    /// Response time `τ` for an ON/OFF message to take effect.
    pub tau: SimDuration,
    /// Congestion degree `ε = (R_i − R_d)/C` the detector must still
    /// recognise as an ON-OFF pattern. The paper recommends 0.05.
    pub epsilon: f64,
}

impl OnOffModel {
    /// The PFC response time `τ = 2·MTU/C + 2·t_p` (§4.3): a feedback frame
    /// waits up to one MTU behind an in-flight packet at the receiver, the
    /// rate change waits up to one MTU at the sender, plus one propagation
    /// delay each way.
    pub fn pfc_tau(capacity: Rate, mtu_bytes: u64, propagation: SimDuration) -> SimDuration {
        capacity.serialize_time(mtu_bytes) * 2 + propagation * 2
    }

    /// Model for a CEE/PFC port with the paper's recommended settings:
    /// `B1 − B0 = 2 MTU`, `τ` per [`OnOffModel::pfc_tau`].
    pub fn cee(capacity: Rate, mtu_bytes: u64, propagation: SimDuration, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        OnOffModel {
            capacity,
            threshold_gap_bytes: 2 * mtu_bytes,
            tau: Self::pfc_tau(capacity, mtu_bytes, propagation),
            epsilon,
        }
    }

    /// `T_on` for a given drain rate `R_d` (Eq. 2):
    /// `(B1 − B0 + τ·R_d)/(ε·C) + τ`, in seconds.
    pub fn ton_secs(&self, drain_rate: Rate) -> f64 {
        let gap_bits = (self.threshold_gap_bytes * 8) as f64;
        let tau = self.tau.as_secs_f64();
        let c = self.capacity.as_bps() as f64;
        let rd = drain_rate.as_bps() as f64;
        (gap_bits + tau * rd) / (self.epsilon * c) + tau
    }

    /// `T_on` for given `ε` and `R_d` — the Fig. 8 surface. Identical to
    /// [`ton_secs`](OnOffModel::ton_secs) but with `ε` supplied per point.
    pub fn ton_secs_at(&self, epsilon: f64, drain_rate: Rate) -> f64 {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let gap_bits = (self.threshold_gap_bytes * 8) as f64;
        let tau = self.tau.as_secs_f64();
        let c = self.capacity.as_bps() as f64;
        let rd = drain_rate.as_bps() as f64;
        (gap_bits + tau * rd) / (epsilon * c) + tau
    }

    /// The pre-configurable bound `max(T_on)` (Eq. 3), obtained by
    /// substituting the worst case `R_d = C/2`:
    /// `(2(B1 − B0) + τ·C)/(2·ε·C) + τ`, in seconds.
    pub fn max_ton_secs(&self) -> f64 {
        let gap_bits = (self.threshold_gap_bytes * 8) as f64;
        let tau = self.tau.as_secs_f64();
        let c = self.capacity.as_bps() as f64;
        (2.0 * gap_bits + tau * c) / (2.0 * self.epsilon * c) + tau
    }

    /// [`max_ton_secs`](OnOffModel::max_ton_secs) as a [`SimDuration`], for
    /// configuring a detector.
    pub fn max_ton(&self) -> SimDuration {
        SimDuration::from_us_f64(self.max_ton_secs() * 1e6)
    }
}

/// Convenience: the paper's recommended `max(T_on)` for a CEE network
/// (§4.3). With `ε = 0.05`, `MTU = 1000 B`, `t_p = 1 µs` this yields
/// 34.4 µs / 26.96 µs / 24.48 µs at 40/100/200 Gbps — the values quoted in
/// the paper.
///
/// ```
/// use lossless_flowctl::{Rate, SimDuration};
/// use tcd_core::model::cee_max_ton;
///
/// let m = cee_max_ton(Rate::from_gbps(40), 1000, SimDuration::from_us(1), 0.05);
/// assert!((m.as_us_f64() - 34.4).abs() < 0.01);
/// ```
pub fn cee_max_ton(
    capacity: Rate,
    mtu_bytes: u64,
    propagation: SimDuration,
    epsilon: f64,
) -> SimDuration {
    OnOffModel::cee(capacity, mtu_bytes, propagation, epsilon).max_ton()
}

/// The paper's recommended congestion degree `ε` (§4.2, validated in §5.1.4).
pub const RECOMMENDED_EPSILON: f64 = 0.05;

/// `T_on` of a CBFC-regulated port in steady state (Eq. 4):
/// `T_on = R_d·T_c / (R_d + ε·C)`, in seconds. Always strictly less than
/// `T_c` for `ε > 0`, which is why `T_c` bounds `T_on` in InfiniBand.
pub fn ib_ton_secs(
    drain_rate: Rate,
    update_period: SimDuration,
    epsilon: f64,
    capacity: Rate,
) -> f64 {
    let rd = drain_rate.as_bps() as f64;
    let c = capacity.as_bps() as f64;
    let tc = update_period.as_secs_f64();
    rd * tc / (rd + epsilon * c)
}

/// The `max(T_on)` bound for InfiniBand (§4.4): the credit update period
/// `T_c` itself. When a VL is configured with a bandwidth weight, the bound
/// scales by the expected bandwidth proportion (§4.5).
pub fn ib_max_ton(update_period: SimDuration, vl_bandwidth_share: f64) -> SimDuration {
    assert!(
        vl_bandwidth_share > 0.0 && vl_bandwidth_share <= 1.0,
        "VL bandwidth share must be in (0, 1]"
    );
    SimDuration::from_us_f64(update_period.as_secs_f64() * 1e6 * vl_bandwidth_share)
}

/// One point of the Fig. 8 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Congestion degree `ε`.
    pub epsilon: f64,
    /// Drain rate `R_d` in Gbit/s.
    pub rd_gbps: f64,
    /// Resulting `T_on` in microseconds.
    pub ton_us: f64,
}

/// Compute the Fig. 8 surface: `T_on` over a grid of `(ε, R_d)` with the
/// figure's parameters `τ = 8 µs`, `C = 40 Gbps` (and `B1−B0 = 2 MTU`).
/// `R_d` ranges over `(0, C/2]`, `ε` over the supplied values.
pub fn fig8_surface(epsilons: &[f64], rd_steps: usize) -> Vec<SurfacePoint> {
    let c = Rate::from_gbps(40);
    let model = OnOffModel {
        capacity: c,
        threshold_gap_bytes: 2 * MTU_BYTES,
        tau: SimDuration::from_us(8),
        epsilon: RECOMMENDED_EPSILON,
    };
    let mut out = Vec::with_capacity(epsilons.len() * rd_steps);
    for &eps in epsilons {
        for i in 1..=rd_steps {
            let rd_bps = (c.as_bps() / 2) * i as u64 / rd_steps as u64;
            let rd = Rate::from_bps(rd_bps);
            out.push(SurfacePoint {
                epsilon: eps,
                rd_gbps: rd.as_gbps_f64(),
                ton_us: model.ton_secs_at(eps, rd) * 1e6,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn paper_max_ton_values_match() {
        // §4.3: "the typical values of max(T_on) for 40/100/200 Gbps
        // network is 34.4µs / 26.96µs / 24.48µs" with ε = 0.05,
        // MTU = 1000 B, t_p = 1 µs.
        let tp = SimDuration::from_us(1);
        let m40 = cee_max_ton(Rate::from_gbps(40), 1000, tp, 0.05);
        let m100 = cee_max_ton(Rate::from_gbps(100), 1000, tp, 0.05);
        let m200 = cee_max_ton(Rate::from_gbps(200), 1000, tp, 0.05);
        assert!(
            close(m40.as_us_f64(), 34.4, 0.01),
            "40G: {}",
            m40.as_us_f64()
        );
        assert!(
            close(m100.as_us_f64(), 26.96, 0.01),
            "100G: {}",
            m100.as_us_f64()
        );
        assert!(
            close(m200.as_us_f64(), 24.48, 0.01),
            "200G: {}",
            m200.as_us_f64()
        );
    }

    #[test]
    fn pfc_tau_components() {
        // τ = 2·MTU/C + 2·t_p: at 40G with MTU 1000B and t_p 1µs this is
        // 2·0.2µs + 2µs = 2.4µs.
        let tau = OnOffModel::pfc_tau(Rate::from_gbps(40), 1000, SimDuration::from_us(1));
        assert_eq!(tau, SimDuration::from_ns(2400));
    }

    #[test]
    fn max_ton_bounds_ton_for_all_rd_up_to_half_c() {
        let model = OnOffModel::cee(Rate::from_gbps(40), 1000, SimDuration::from_us(1), 0.05);
        let bound = model.max_ton_secs();
        for i in 1..=20 {
            let rd = Rate::from_bps(Rate::from_gbps(20).as_bps() * i / 20);
            assert!(
                model.ton_secs(rd) <= bound + 1e-12,
                "T_on(R_d={rd:?}) exceeds max(T_on)"
            );
        }
    }

    #[test]
    fn ton_grows_as_epsilon_shrinks() {
        // Fig. 8: T_on increases first slowly then rapidly as ε decreases.
        let model = OnOffModel::cee(Rate::from_gbps(40), 1000, SimDuration::from_us(8), 0.05);
        let rd = Rate::from_gbps(10);
        let t_big = model.ton_secs_at(0.5, rd);
        let t_mid = model.ton_secs_at(0.05, rd);
        let t_small = model.ton_secs_at(0.005, rd);
        assert!(t_big < t_mid && t_mid < t_small);
        // The growth is hyperbolic: ratio of increments accelerates.
        assert!((t_small - t_mid) > 5.0 * (t_mid - t_big));
    }

    #[test]
    fn ib_ton_is_always_below_tc() {
        // Eq. 4 with ε > 0 ⇒ T_on < T_c.
        let tc = SimDuration::from_us(60);
        let c = Rate::from_gbps(40);
        for rd_g in [1u64, 5, 10, 20, 39] {
            for eps in [0.01, 0.05, 0.2] {
                let ton = ib_ton_secs(Rate::from_gbps(rd_g), tc, eps, c);
                assert!(ton < tc.as_secs_f64(), "T_on must be < T_c");
                assert!(ton > 0.0);
            }
        }
    }

    #[test]
    fn ib_ton_approaches_tc_as_epsilon_vanishes() {
        let tc = SimDuration::from_us(60);
        let c = Rate::from_gbps(40);
        let ton = ib_ton_secs(Rate::from_gbps(20), tc, 1e-9, c);
        assert!(close(ton, tc.as_secs_f64(), 1e-9));
    }

    #[test]
    fn ib_max_ton_scales_with_vl_share() {
        let tc = SimDuration::from_us(60);
        assert_eq!(ib_max_ton(tc, 1.0), tc);
        assert_eq!(ib_max_ton(tc, 0.5), SimDuration::from_us(30));
    }

    #[test]
    #[should_panic]
    fn ib_max_ton_rejects_zero_share() {
        let _ = ib_max_ton(SimDuration::from_us(60), 0.0);
    }

    #[test]
    fn fig8_surface_shape() {
        let pts = fig8_surface(&[0.01, 0.05, 0.2], 8);
        assert_eq!(pts.len(), 24);
        // For fixed R_d, smaller ε gives larger T_on.
        let at = |eps: f64, rd: f64| {
            pts.iter()
                .find(|p| close(p.epsilon, eps, 1e-12) && close(p.rd_gbps, rd, 1e-9))
                .unwrap()
                .ton_us
        };
        assert!(at(0.01, 20.0) > at(0.05, 20.0));
        assert!(at(0.05, 20.0) > at(0.2, 20.0));
        // For fixed ε, larger R_d gives larger T_on (τ·R_d term).
        assert!(at(0.05, 20.0) > at(0.05, 2.5));
    }

    #[test]
    fn max_ton_simduration_roundtrip() {
        let model = OnOffModel::cee(Rate::from_gbps(40), 1000, SimDuration::from_us(1), 0.05);
        let d = model.max_ton();
        assert!(close(d.as_us_f64(), model.max_ton_secs() * 1e6, 1e-6));
    }

    #[test]
    #[should_panic]
    fn cee_model_rejects_bad_epsilon() {
        let _ = OnOffModel::cee(Rate::from_gbps(40), 1000, SimDuration::from_us(1), 0.0);
    }
}
