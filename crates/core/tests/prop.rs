//! Property-based tests of the TCD state machine, the marking scheme and
//! the analytic ON-OFF model.

use lossless_flowctl::{Rate, SimDuration, SimTime};
use proptest::prelude::*;
use tcd_core::baseline::{EcnRed, RedConfig};
use tcd_core::detector::{CongestionDetector, DequeueContext};
use tcd_core::model::{cee_max_ton, ib_ton_secs, OnOffModel};
use tcd_core::state::Transition;
use tcd_core::{CodePoint, TcdConfig, TcdDetector, TernaryState};

fn cp_strategy() -> impl Strategy<Value = CodePoint> {
    prop_oneof![
        Just(CodePoint::NotCapable),
        Just(CodePoint::Capable),
        Just(CodePoint::UE),
        Just(CodePoint::CE),
    ]
}

proptest! {
    /// Marking accumulation is order-insensitive for the congestion
    /// outcome: if any CE was applied, the final code point is CE (for
    /// capable packets); if only UEs, it is UE.
    #[test]
    fn marking_outcome_depends_only_on_the_set(marks in proptest::collection::vec(cp_strategy(), 0..20)) {
        let fin = marks.iter().fold(CodePoint::Capable, |c, &m| c.apply(m));
        if marks.contains(&CodePoint::CE) {
            prop_assert_eq!(fin, CodePoint::CE);
        } else if marks.contains(&CodePoint::UE) {
            prop_assert_eq!(fin, CodePoint::UE);
        } else {
            prop_assert_eq!(fin, CodePoint::Capable);
        }
    }

    /// A NotCapable packet stays NotCapable through any marking sequence.
    #[test]
    fn not_capable_is_inert(marks in proptest::collection::vec(cp_strategy(), 0..20)) {
        let fin = marks.iter().fold(CodePoint::NotCapable, |c, &m| c.apply(m));
        prop_assert_eq!(fin, CodePoint::NotCapable);
    }

    /// The detector never emits CE for a dequeue whose T_on is below
    /// max(T_on) — inside the ON-OFF pattern everything is UE.
    #[test]
    fn no_ce_inside_the_onoff_pattern(
        events in proptest::collection::vec((0u8..3, 1u64..50, 0u64..500_000), 1..200)
    ) {
        let cfg = TcdConfig::new(SimDuration::from_us(100), 200_000, 5_000);
        let mut det = TcdDetector::new(cfg);
        let mut now = SimTime::ZERO;
        let mut off = false;
        for (op, dt_us, q) in events {
            now += SimDuration::from_us(dt_us);
            match op {
                0 => { det.on_pause(now); off = true; }
                1 => { det.on_resume(now); off = false; }
                _ => {
                    if !off {
                        let ton = det.onoff().current_ton(now);
                        let mark = det.on_dequeue(&DequeueContext {
                            now, queue_bytes: q, delayed_by_fc: false,
                        });
                        if ton < cfg.max_ton {
                            prop_assert_ne!(mark, Some(CodePoint::CE),
                                "CE emitted during the ON-OFF pattern");
                            prop_assert_eq!(det.port_state(), TernaryState::Undetermined);
                        }
                    }
                }
            }
        }
    }

    /// A never-paused detector behaves exactly like its configuration's
    /// queue-threshold machine: state is congestion iff the queue crossed
    /// the high threshold without having drained to the low one since.
    #[test]
    fn never_paused_port_is_a_threshold_machine(
        queues in proptest::collection::vec(0u64..400_000, 1..200)
    ) {
        let cfg = TcdConfig::new(SimDuration::from_us(50), 200_000, 5_000);
        let mut det = TcdDetector::new(cfg);
        let mut expect = TernaryState::NonCongestion;
        let mut now = SimTime::ZERO;
        for q in queues {
            now += SimDuration::from_us(3);
            let _ = det.on_dequeue(&DequeueContext { now, queue_bytes: q, delayed_by_fc: false });
            if q > cfg.queue_high_bytes {
                expect = TernaryState::Congestion;
            } else if q <= cfg.queue_low_bytes {
                expect = TernaryState::NonCongestion;
            }
            prop_assert_eq!(det.port_state(), expect);
            prop_assert!(!det.port_state().is_undetermined(),
                "a never-paused port can never be undetermined");
        }
    }

    /// Arbitrary interleavings of ON/OFF edges, queue trends and timer
    /// fires only ever move the detector along Fig. 6's six transitions:
    /// every observed state change classifies to one of them with matching
    /// endpoints, and Undetermined is only ever entered after at least one
    /// OFF period.
    #[test]
    fn arbitrary_sequences_take_only_the_six_transitions(
        events in proptest::collection::vec((0u8..4, 1u64..80, 0u64..400_000), 1..300)
    ) {
        let cfg = TcdConfig::new(SimDuration::from_us(60), 200_000, 5_000);
        let mut det = TcdDetector::new(cfg);
        let mut now = SimTime::ZERO;
        let mut prev = det.port_state();
        prop_assert_eq!(prev, TernaryState::NonCongestion, "fresh port starts at 0");
        let mut offs = 0u64;
        for (op, dt_us, q) in events {
            now += SimDuration::from_us(dt_us);
            match op {
                0 => { det.on_pause(now); offs += 1; }
                1 => det.on_resume(now),
                2 => {
                    let _ = det.on_dequeue(&DequeueContext {
                        now, queue_bytes: q, delayed_by_fc: false,
                    });
                }
                _ => {
                    // Timers only fire while armed (the engine's contract).
                    if let Some(d) = det.timer_deadline() {
                        now = now.max(d);
                        det.on_timer(now, q, false);
                    }
                }
            }
            let state = det.port_state();
            if state != prev {
                let t = Transition::classify(prev, state);
                prop_assert!(t.is_some(), "illegal transition {prev} -> {state}");
                prop_assert_eq!(t.unwrap().endpoints(), (prev, state));
            }
            if state.is_undetermined() {
                prop_assert!(offs > 0, "undetermined with no OFF period ever");
            }
            prev = state;
        }
    }

    /// The paper-notation symbol of every state round-trips through
    /// `from_symbol`, and `from_symbol` rejects every other character.
    #[test]
    fn state_symbols_round_trip(raw in 0u8..128) {
        let c = raw as char;
        for s in [
            TernaryState::NonCongestion,
            TernaryState::Congestion,
            TernaryState::Undetermined,
        ] {
            prop_assert_eq!(TernaryState::from_symbol(s.symbol()), Some(s));
        }
        match TernaryState::from_symbol(c) {
            Some(s) => prop_assert_eq!(s.symbol(), c),
            None => prop_assert!(c != '0' && c != '1' && c != '/'),
        }
    }

    /// Table 1's two-bit wire encoding round-trips for every code point,
    /// and `from_bits` accepts exactly the four two-bit values.
    #[test]
    fn codepoint_bits_round_trip(bits in 0u8..=255) {
        for cp in [
            CodePoint::NotCapable,
            CodePoint::Capable,
            CodePoint::UE,
            CodePoint::CE,
        ] {
            prop_assert_eq!(CodePoint::from_bits(cp.to_bits()), Some(cp));
        }
        match CodePoint::from_bits(bits) {
            Some(cp) => prop_assert_eq!(cp.to_bits(), bits),
            None => prop_assert!(bits > 3, "all two-bit values decode"),
        }
    }

    /// RED marking frequency is monotone in queue length (statistically):
    /// compare two fixed queue levels over many trials.
    #[test]
    fn red_marks_more_at_longer_queues(seed in 1u64..10_000) {
        let cfg = RedConfig { kmin_bytes: 0, kmax_bytes: 100_000, pmax: 1.0 };
        let mut lo = EcnRed::new(cfg, seed);
        let mut hi = EcnRed::new(cfg, seed.wrapping_add(1));
        let trials = 3000;
        let count = |red: &mut EcnRed, q: u64| {
            (0..trials)
                .filter(|_| {
                    red.on_dequeue(&DequeueContext {
                        now: SimTime::ZERO,
                        queue_bytes: q,
                        delayed_by_fc: false,
                    })
                    .is_some()
                })
                .count()
        };
        let at_lo = count(&mut lo, 20_000);
        let at_hi = count(&mut hi, 80_000);
        prop_assert!(at_hi > at_lo, "RED must mark more at 80% than at 20% ({at_hi} vs {at_lo})");
    }

    /// Eq. 3 really bounds Eq. 2 for every drain rate up to C/2, across
    /// random link speeds, propagation delays and epsilons.
    #[test]
    fn max_ton_bounds_ton(
        gbps in 10u64..400,
        tp_us in 1u64..20,
        eps_milli in 5u64..500,
        rd_frac in 1u64..50
    ) {
        let c = Rate::from_gbps(gbps);
        let eps = eps_milli as f64 / 1000.0;
        let model = OnOffModel::cee(c, 1000, SimDuration::from_us(tp_us), eps);
        let rd = Rate::from_bps(c.as_bps() / 2 * rd_frac / 50);
        prop_assert!(model.ton_secs(rd) <= model.max_ton_secs() + 1e-12);
        // And the convenience wrapper agrees with the model.
        let m = cee_max_ton(c, 1000, SimDuration::from_us(tp_us), eps);
        prop_assert!((m.as_secs_f64() - model.max_ton_secs()).abs() < 1e-9);
    }

    /// Eq. 4: the InfiniBand T_on is always strictly below T_c for any
    /// positive congestion degree.
    #[test]
    fn ib_ton_below_tc(
        tc_us in 1u64..200,
        rd_gbps in 1u64..40,
        eps_milli in 1u64..900
    ) {
        let tc = SimDuration::from_us(tc_us);
        let ton = ib_ton_secs(
            Rate::from_gbps(rd_gbps),
            tc,
            eps_milli as f64 / 1000.0,
            Rate::from_gbps(40),
        );
        prop_assert!(ton < tc.as_secs_f64());
        prop_assert!(ton > 0.0);
    }
}
