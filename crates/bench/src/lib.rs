//! Shared helpers for the per-figure experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of
//! *"Congestion Detection in Lossless Networks"* (SIGCOMM 2021); see
//! DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results. All binaries accept `--scale <f>`,
//! `--seed <n>`, `--threads <n>` and `--full`; sweep-shaped binaries
//! (figs. 14/15/16/18/19) fan their independent runs out on the
//! deterministic parallel [`harness`].

#![forbid(unsafe_code)]

pub use tcd_repro::harness;
pub use tcd_repro::report;
pub use tcd_repro::scenarios;

use lossless_flowctl::SimTime;
use lossless_netsim::trace::PortSample;
use lossless_netsim::Simulator;
use lossless_netsim::{NodeId, TernaryState};
use lossless_stats::timeseries::{downsample, rate_series, RatePoint};

/// Extract `(t, queue_bytes)` for one sampled egress.
pub fn queue_series(sim: &Simulator, node: NodeId, port: u16, prio: u8) -> Vec<(SimTime, u64)> {
    sim.trace
        .port_samples
        .iter()
        .filter(|s| s.node == node && s.port == port && s.prio == prio)
        .map(|s| (s.t, s.queue_bytes))
        .collect()
}

/// Extract the sending-rate series (Gbps per sample interval) for one
/// sampled egress.
pub fn port_rate_series(sim: &Simulator, node: NodeId, port: u16, prio: u8) -> Vec<RatePoint> {
    let cum: Vec<(SimTime, u64)> = sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.node == node && s.port == port && s.prio == prio)
        .map(|s| (s.t, s.tx_bytes))
        .collect();
    rate_series(&cum)
}

/// Extract the detector-state series for one sampled egress.
pub fn state_series(
    sim: &Simulator,
    node: NodeId,
    port: u16,
    prio: u8,
) -> Vec<(SimTime, TernaryState)> {
    sim.trace
        .port_samples
        .iter()
        .filter(|s| s.node == node && s.port == port && s.prio == prio)
        .map(|s| (s.t, s.state))
        .collect()
}

/// Print a queue/rate/state trace of one port as a compact table of at
/// most `rows` rows.
pub fn print_port_trace(
    sim: &Simulator,
    label: &str,
    node: NodeId,
    port: u16,
    prio: u8,
    rows: usize,
) {
    let samples: Vec<&PortSample> = sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.node == node && s.port == port && s.prio == prio)
        .collect();
    if samples.is_empty() {
        println!("-- {label}: no samples --");
        return;
    }
    let rates = port_rate_series(sim, node, port, prio);
    let mut t = report::Table::new(vec!["t_ms", "queue_KB", "rate_Gbps", "state", "paused"]);
    let idxs: Vec<usize> = (0..samples.len()).collect();
    for &i in downsample(&idxs, rows.max(2)).iter() {
        let s = samples[i];
        let rate = if i == 0 { 0.0 } else { rates[i - 1].gbps };
        t.row(vec![
            format!("{:.3}", s.t.as_ms_f64()),
            format!("{:.1}", s.queue_bytes as f64 / 1024.0),
            format!("{rate:.2}"),
            s.state.symbol().to_string(),
            if s.paused { "*" } else { "" }.to_string(),
        ]);
    }
    println!("-- {label} --");
    t.print();
}

/// Peak queue length (bytes) seen in the samples of one egress.
pub fn peak_queue(sim: &Simulator, node: NodeId, port: u16, prio: u8) -> u64 {
    queue_series(sim, node, port, prio)
        .iter()
        .map(|&(_, q)| q)
        .max()
        .unwrap_or(0)
}

/// Whether an egress was ever observed paused/credit-blocked.
pub fn ever_paused(sim: &Simulator, node: NodeId, port: u16, prio: u8) -> bool {
    sim.trace
        .port_samples
        .iter()
        .any(|s| s.node == node && s.port == port && s.prio == prio && s.paused)
}
