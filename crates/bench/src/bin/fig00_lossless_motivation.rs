//! §1 motivation — why lossless at all: the same incast on a traditional
//! drop-tail Ethernet (with go-back-N reliability) versus the lossless
//! fabric. Packet loss turns into retransmission timeouts and tail-latency
//! blowup; PFC turns it into bounded pausing.
//!
//! This is not a numbered figure in the paper; it regenerates the premise
//! the introduction cites (loss hurts tail FCT and throughput, hence
//! lossless fabrics, hence hop-by-hop flow control, hence TCD).

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::{DetectorKind, SimConfig};
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{figure2, Figure2Options};
use lossless_netsim::Simulator;
use lossless_stats::percentile;
use tcd_bench::report::{self, f2};

struct Outcome {
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    drops: u64,
    pauses: u64,
}

fn run(lossless: bool, fanin: usize, size: u64, seed: u64) -> Outcome {
    let f2t = figure2(Figure2Options::default());
    let mut cfg = if lossless {
        let mut c = SimConfig::cee_baseline(SimTime::from_ms(200));
        c.detector = DetectorKind::None;
        c
    } else {
        SimConfig::lossy_baseline(SimTime::from_ms(200), 100 * 1024)
    };
    cfg.seed = seed;
    let mut sim = Simulator::new(f2t.topo.clone(), cfg, RouteSelect::Ecmp);
    let flows: Vec<_> = f2t
        .bursters
        .iter()
        .take(fanin)
        .map(|&a| {
            sim.add_flow(
                a,
                f2t.r1,
                size,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            )
        })
        .collect();
    sim.run();
    let fcts: Vec<f64> = flows
        .iter()
        .map(|f| {
            sim.trace.flows[f.0 as usize]
                .fct()
                .expect("all flows must complete in both modes")
                .as_secs_f64()
                * 1e3
        })
        .collect();
    Outcome {
        p50_ms: percentile(&fcts, 50.0).unwrap(),
        p99_ms: percentile(&fcts, 99.0).unwrap(),
        max_ms: fcts.iter().fold(0.0, |a, &b| a.max(b)),
        drops: sim.trace.drops,
        pauses: sim.trace.pause_frames,
    }
}

fn main() {
    let args = report::ExpArgs::parse(1.0);
    report::header(
        "§1 motivation",
        "incast FCT: lossy Ethernet vs lossless (PFC)",
    );
    let size = 500 * 1024u64;
    let mut t = report::Table::new(vec![
        "fan-in", "mode", "p50 ms", "p99 ms", "max ms", "drops", "pauses",
    ]);
    for fanin in [2usize, 4, 8, 15] {
        for lossless in [false, true] {
            let o = run(lossless, fanin, size, args.seed);
            t.row(vec![
                fanin.to_string(),
                if lossless { "lossless" } else { "lossy" }.to_string(),
                f2(o.p50_ms),
                f2(o.p99_ms),
                f2(o.max_ms),
                o.drops.to_string(),
                o.pauses.to_string(),
            ]);
        }
    }
    t.print();
    let ideal_ms = Rate::from_gbps(40).serialize_time(size).as_secs_f64() * 1e3;
    println!(
        "(per-flow ideal at full line rate: {ideal_ms:.2} ms; lossless tails track fan-in x ideal,\n lossy tails pay {} RTO per recovery round)",
        SimDuration::from_us(500)
    );
}
