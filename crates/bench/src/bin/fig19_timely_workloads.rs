//! Figure 19 — overall FCT slowdown under realistic workloads, TIMELY ±
//! TCD (§5.2.3). Same network settings as Fig. 16.
//!
//! Expected shape: TIMELY with TCD improves median and tail slowdowns,
//! especially for small and medium flows (the paper quotes Hadoop <50 KB
//! p99 going from 50.3 to 36.6).
//!
//! As in Fig. 16, the workload × scheme grid fans out on the parallel
//! harness (`--threads`) with each worker reducing its run to slowdown
//! summaries.

use lossless_flowctl::SimTime;
use lossless_stats::SlowdownSummary;
use tcd_bench::harness::{self, Sweep};
use tcd_bench::report::{self, f2};
use tcd_bench::scenarios::workload::{run, Options, Workload};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

/// Flatten an optional summary into `prefix:count/p50/p95/p99` metrics
/// (count 0 when the bucket is empty).
fn push_summary(metrics: &mut Vec<(String, f64)>, prefix: &str, s: &Option<SlowdownSummary>) {
    let (count, p50, p95, p99) = match s {
        Some(s) => (s.count as f64, s.p50, s.p95, s.p99),
        None => (0.0, f64::NAN, f64::NAN, f64::NAN),
    };
    metrics.push((format!("{prefix}:count"), count));
    metrics.push((format!("{prefix}:p50"), p50));
    metrics.push((format!("{prefix}:p95"), p95));
    metrics.push((format!("{prefix}:p99"), p99));
}

fn summary_row(o: &harness::RunOutcome, prefix: &str) -> Option<Vec<String>> {
    let count = o.metric(&format!("{prefix}:count"))? as u64;
    if count == 0 {
        return None;
    }
    Some(vec![
        count.to_string(),
        f2(o.metric(&format!("{prefix}:p50"))?),
        f2(o.metric(&format!("{prefix}:p95"))?),
        f2(o.metric(&format!("{prefix}:p99"))?),
    ])
}

const WORKLOADS: [Workload; 2] = [Workload::Hadoop, Workload::WebSearch];

fn main() {
    let args = report::ExpArgs::parse(0.05);
    let flows = args.scaled(40_000, 500);

    let mut sweep = Sweep::new();
    for wl in WORKLOADS {
        for tcd in [false, true] {
            let seed = args.seed;
            let name = if tcd { "timely+tcd" } else { "timely" };
            let wname = match wl {
                Workload::Hadoop => "hadoop",
                Workload::WebSearch => "websearch",
            };
            sweep.add(format!("{wname}_{name}"), move || {
                let r = run(Options {
                    network: Network::Cee,
                    cc: Cc {
                        algo: CcAlgo::Timely,
                        tcd,
                    },
                    use_tcd: tcd,
                    k: 10,
                    workload: wl,
                    load: 0.6,
                    flows,
                    incast_fraction: 0.04,
                    incast_fanin: 12,
                    seed,
                    deadline: SimTime::from_ms(2_000),
                });
                let buckets = wl.buckets();
                let mut metrics = Vec::new();
                push_summary(&mut metrics, "all", &r.summary());
                for (b, s) in r.bucket_summaries(&buckets).iter().enumerate() {
                    push_summary(&mut metrics, &format!("b{b}"), s);
                }
                harness::outcome_of(&r.sim, metrics)
            });
        }
    }
    let rep = sweep.run(args.threads);

    for (wi, wl) in WORKLOADS.iter().enumerate() {
        let name = match wl {
            Workload::Hadoop => "Hadoop",
            Workload::WebSearch => "WebSearch",
        };
        report::header(
            "Fig. 19",
            &format!("{name} workload, {flows} flows (TIMELY ± TCD)"),
        );

        // Submission order: [plain, tcd] per workload.
        let results = [
            ("timely", &rep.results[wi * 2].outcome),
            ("timely+tcd", &rep.results[wi * 2 + 1].outcome),
        ];
        let buckets = wl.buckets();
        let mut t = report::Table::new(vec!["bucket", "scheme", "n", "p50", "p95", "p99"]);
        for (name, o) in &results {
            if let Some(cells) = summary_row(o, "all") {
                let mut row = vec!["ALL".to_string(), name.to_string()];
                row.extend(cells);
                t.row(row);
            }
        }
        for b in 0..buckets.len() {
            for (name, o) in &results {
                if let Some(cells) = summary_row(o, &format!("b{b}")) {
                    let mut row = vec![buckets.label(b).to_string(), name.to_string()];
                    row.extend(cells);
                    t.row(row);
                }
            }
        }
        t.print();
        if let (Some(a50), Some(b50), Some(a99), Some(b99)) = (
            results[0].1.metric("all:p50"),
            results[1].1.metric("all:p50"),
            results[0].1.metric("all:p99"),
            results[1].1.metric("all:p99"),
        ) {
            println!(
                "improvement: median {:.2}x, p99 {:.2}x\n",
                a50 / b50,
                a99 / b99
            );
        }
    }
}
