//! Figure 19 — overall FCT slowdown under realistic workloads, TIMELY ±
//! TCD (§5.2.3). Same network settings as Fig. 16.
//!
//! Expected shape: TIMELY with TCD improves median and tail slowdowns,
//! especially for small and medium flows (the paper quotes Hadoop <50 KB
//! p99 going from 50.3 to 36.6).

use lossless_flowctl::SimTime;
use tcd_bench::report::{self, f2};
use tcd_bench::scenarios::workload::{run, Options, Workload};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

fn main() {
    let args = report::ExpArgs::parse(0.05);
    let flows = args.scaled(40_000, 500);
    for wl in [Workload::Hadoop, Workload::WebSearch] {
        let name = match wl {
            Workload::Hadoop => "Hadoop",
            Workload::WebSearch => "WebSearch",
        };
        report::header("Fig. 19", &format!("{name} workload, {flows} flows (TIMELY ± TCD)"));

        let mut results = Vec::new();
        for tcd in [false, true] {
            let r = run(Options {
                network: Network::Cee,
                cc: Cc { algo: CcAlgo::Timely, tcd },
                use_tcd: tcd,
                k: 10,
                workload: wl,
                load: 0.6,
                flows,
                incast_fraction: 0.04,
                incast_fanin: 12,
                seed: args.seed,
                deadline: SimTime::from_ms(2_000),
            });
            results.push((if tcd { "timely+tcd" } else { "timely" }, r));
        }

        let buckets = wl.buckets();
        let mut t = report::Table::new(vec!["bucket", "scheme", "n", "p50", "p95", "p99"]);
        for (name, r) in &results {
            if let Some(s) = r.summary() {
                t.row(vec![
                    "ALL".into(),
                    name.to_string(),
                    s.count.to_string(),
                    f2(s.p50),
                    f2(s.p95),
                    f2(s.p99),
                ]);
            }
        }
        for b in 0..buckets.len() {
            for (name, r) in &results {
                let sums = r.bucket_summaries(&buckets);
                if let Some(s) = &sums[b] {
                    t.row(vec![
                        buckets.label(b).to_string(),
                        name.to_string(),
                        s.count.to_string(),
                        f2(s.p50),
                        f2(s.p95),
                        f2(s.p99),
                    ]);
                }
            }
        }
        t.print();
        if let (Some(a), Some(b)) = (results[0].1.summary(), results[1].1.summary()) {
            println!(
                "improvement: median {:.2}x, p99 {:.2}x\n",
                a.p50 / b.p50,
                a.p99 / b.p99
            );
        }
    }
}
