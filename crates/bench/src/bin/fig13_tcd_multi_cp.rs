//! Figure 13 — TCD validation in the multiple congestion points scenario
//! (§5.1.2).
//!
//! Port P2 is the covered congestion root: while congestion spreads from
//! P3 it is undetermined; when it is released and its queue keeps growing,
//! TCD detects the transition *undetermined → congestion* and starts
//! marking CE. Port P1 stays undetermined (congestion now spreads from
//! P2).

use tcd_bench::report;
use tcd_bench::scenarios::observation::{run, Options};
use tcd_bench::scenarios::Network;
use tcd_bench::{print_port_trace, state_series};
use tcd_core::TernaryState;

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    for network in [Network::Cee, Network::Ib] {
        let tag = match network {
            Network::Cee => "CEE",
            Network::Ib => "InfiniBand",
        };
        report::header(
            "Fig. 13",
            &format!("TCD, multiple congestion points — {tag}"),
        );
        let r = run(Options {
            network,
            multi_cp: true,
            use_tcd: true,
            ..Default::default()
        });
        let prio = r.sim.config().data_prio;

        print_port_trace(&r.sim, "P2 (TCD)", r.fig.p2.0, r.fig.p2.1, prio, 24);
        print_port_trace(&r.sim, "P1 (TCD)", r.fig.p1.0, r.fig.p1.1, prio, 24);

        let states_p2 = state_series(&r.sim, r.fig.p2.0, r.fig.p2.1, prio);
        let visited_undet = states_p2.iter().any(|(_, s)| s.is_undetermined());
        // Find the first time P2 is congested *after* having been
        // undetermined: the ⑤ transition.
        let mut seen_undet = false;
        let mut t5 = None;
        for &(t, s) in &states_p2 {
            if s.is_undetermined() {
                seen_undet = true;
            }
            if seen_undet && s == TernaryState::Congestion {
                t5 = Some(t);
                break;
            }
        }
        println!(
            "P2: visited undetermined = {visited_undet}; undetermined→congestion at {} ms",
            t5.map(|t| format!("{:.3}", t.as_ms_f64()))
                .unwrap_or_else(|| "—".into())
        );

        // F0/F2 are genuinely congested at P2 in this scenario (their
        // combined input exceeds the line rate), so once P2 emerges as a
        // congestion port their packets must carry CE.
        let d = |f: lossless_netsim::FlowId| r.sim.trace.flows[f.0 as usize].delivered;
        for (name, f) in [("F0", r.f0), ("F1", r.f1), ("F2", r.f2)] {
            let del = d(f);
            println!("{name}: pkts={} CE={} UE={}", del.pkts, del.ce, del.ue);
        }
        println!();
    }
}
