//! Figure 14 — parameter sensitivity of ε (§5.1.4).
//!
//! ε sets `max(T_on)` (larger ε → smaller bound). Too large an ε makes TCD
//! mistake the ON-OFF pattern for a continuous-ON pattern, so victim
//! packets get mistakenly CE-marked; too small an ε only defers detection.
//! The paper repeats the concurrent-burst scenario across ε and finds no
//! mistaken CE below ε ≈ 0.1, with mistakes growing for larger ε —
//! supporting the recommended ε = 0.05.
//!
//! The ε × classifier grid is independent runs, so it goes through the
//! parallel harness (`--threads`); the table is reassembled from the
//! submission-ordered results and is identical at any thread count.

use lossless_flowctl::Rate;
use lossless_flowctl::SimDuration;
use tcd_bench::harness::{self, Sweep};
use tcd_bench::report::{self, pct};
use tcd_bench::scenarios::victim::{run, Options};
use tcd_bench::scenarios::Network;
use tcd_core::model::cee_max_ton;

const EPSILONS: [f64; 7] = [0.01, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8];

fn main() {
    let args = report::ExpArgs::parse(1.0);
    report::header(
        "Fig. 14",
        "mistakenly CE-marked victim packets vs epsilon (CEE, TCD)",
    );

    let mut sweep = Sweep::new();
    for eps in EPSILONS {
        for literal in [true, false] {
            let seed = args.seed;
            let kind = if literal { "literal" } else { "hardened" };
            sweep.add(format!("eps{eps}_{kind}"), move || {
                let r = run(Options {
                    network: Network::Cee,
                    use_tcd: true,
                    epsilon: Some(eps),
                    paper_literal: literal,
                    // Heavier bursts than Table 3 so chain-port queues exceed
                    // the CE threshold during spreading: a too-small max(T_on)
                    // (large eps) then has something to get wrong.
                    burst_bytes: 256 * 1024,
                    burst_gap: SimDuration::from_us(600),
                    load: 0.5,
                    seed,
                    ..Default::default()
                });
                let mut pkts = 0u64;
                let mut ce = 0u64;
                for f in &r.victims {
                    let d = r.sim.trace.flows[f.0 as usize].delivered;
                    pkts += d.pkts;
                    ce += d.ce;
                }
                harness::outcome_of(
                    &r.sim,
                    vec![
                        ("victim_pkts".into(), pkts as f64),
                        ("victim_ce".into(), ce as f64),
                    ],
                )
            });
        }
    }
    let rep = sweep.run(args.threads);

    let mut t = report::Table::new(vec![
        "epsilon",
        "max(T_on) us",
        "victim pkts",
        "literal CE",
        "literal frac",
        "hardened CE",
    ]);
    for (ei, eps) in EPSILONS.iter().enumerate() {
        // Submission order: [literal, hardened] per epsilon.
        let literal = &rep.results[ei * 2].outcome;
        let hardened = &rep.results[ei * 2 + 1].outcome;
        let pkts = literal.metric("victim_pkts").unwrap_or(0.0);
        let lit_ce = literal.metric("victim_ce").unwrap_or(0.0);
        let max_ton = cee_max_ton(Rate::from_gbps(40), 1000, SimDuration::from_us(4), *eps);
        t.row(vec![
            format!("{eps}"),
            format!("{:.1}", max_ton.as_us_f64()),
            format!("{}", pkts as u64),
            format!("{}", lit_ce as u64),
            pct(if pkts == 0.0 { 0.0 } else { lit_ce / pkts }),
            format!("{}", hardened.metric("victim_ce").unwrap_or(0.0) as u64),
        ]);
    }
    t.print();
    println!("(paper, literal flowchart: no mistaken CE for eps < 0.1, growing above;");
    println!(" the hardened classifier — clean windows + back-pressure gate — stays at 0)");
}
