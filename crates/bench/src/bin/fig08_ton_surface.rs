//! Figure 8 — the `T_on(ε, R_d)` surface of the conceptual ON-OFF model
//! (§4.2), with τ = 8 µs and C = 40 Gbps, plus the flat reference plane at
//! ε = 0.05 (the recommended setting).
//!
//! Expected shape: `T_on` increases slowly then rapidly as ε decreases
//! (hyperbolically), and increases with `R_d` (the τ·R_d term); the ε=0.05
//! plane covers most practical `T_on` values.

use lossless_flowctl::{Rate, SimDuration};
use tcd_bench::report;
use tcd_core::model::{fig8_surface, OnOffModel, RECOMMENDED_EPSILON};

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    report::header("Fig. 8", "T_on vs (epsilon, R_d); tau = 8us, C = 40Gbps");

    let epsilons = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8];
    let rd_steps = 8;
    let pts = fig8_surface(&epsilons, rd_steps);

    let mut t = report::Table::new(vec![
        "R_d (Gbps) \\ eps",
        "0.01",
        "0.02",
        "0.05",
        "0.1",
        "0.2",
        "0.4",
        "0.8",
    ]);
    for i in 0..rd_steps {
        let rd = pts[i].rd_gbps;
        let mut row = vec![format!("{rd:.1}")];
        for (e, _) in epsilons.iter().enumerate() {
            row.push(format!("{:.1}", pts[e * rd_steps + i].ton_us));
        }
        t.row(row);
    }
    t.print();

    // The flat plane: T_on at the recommended epsilon (per the figure
    // caption, "the z-value of the flat plane is T_on when eps = 0.05").
    let model = OnOffModel {
        capacity: Rate::from_gbps(40),
        threshold_gap_bytes: 2 * lossless_flowctl::units::MTU_BYTES,
        tau: SimDuration::from_us(8),
        epsilon: RECOMMENDED_EPSILON,
    };
    println!(
        "flat plane (eps = 0.05, worst-case R_d = C/2): max(T_on) = {:.2} us",
        model.max_ton_secs() * 1e6
    );
    let covered = pts
        .iter()
        .filter(|p| p.epsilon >= RECOMMENDED_EPSILON)
        .filter(|p| p.ton_us <= model.max_ton_secs() * 1e6 + 1e-9)
        .count();
    let total = pts
        .iter()
        .filter(|p| p.epsilon >= RECOMMENDED_EPSILON)
        .count();
    println!("plane covers {covered}/{total} grid points with eps >= 0.05");
}
