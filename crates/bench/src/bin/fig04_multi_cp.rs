//! Figure 4 — the multiple congestion points scenario (§3.1.3).
//!
//! F0/F2 send 25 Gbps each, so P2 (T2 → T3) is a second, *covered*
//! congestion point: while congestion spreads from P3, P2's sending rate
//! alternates ON-OFF and its queue evolution is indistinguishable from the
//! single-congestion-point case; after the bursts end, P2 keeps a
//! persistent queue because its real input (50 Gbps) exceeds the line rate
//! — the masked state the paper's ternary analysis exposes.

use tcd_bench::report::{self, pct};
use tcd_bench::scenarios::observation::{run, Options};
use tcd_bench::scenarios::Network;
use tcd_bench::{port_rate_series, print_port_trace, queue_series};

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    for network in [Network::Cee, Network::Ib] {
        let tag = match network {
            Network::Cee => "CEE (ECN)",
            Network::Ib => "InfiniBand (FECN)",
        };
        report::header("Fig. 4", &format!("multiple congestion points — {tag}"));
        let r = run(Options {
            network,
            multi_cp: true,
            use_tcd: false,
            ..Default::default()
        });
        let prio = r.sim.config().data_prio;

        print_port_trace(&r.sim, "P2 queue/rate", r.fig.p2.0, r.fig.p2.1, prio, 30);

        let d = |f: lossless_netsim::FlowId| r.sim.trace.flows[f.0 as usize].delivered;
        let mut t = report::Table::new(vec!["flow", "pkts", "CE-marked", "CE frac"]);
        for (name, f) in [("F0", r.f0), ("F1", r.f1), ("F2", r.f2)] {
            let del = d(f);
            t.row(vec![
                name.to_string(),
                del.pkts.to_string(),
                del.ce.to_string(),
                pct(if del.pkts == 0 {
                    0.0
                } else {
                    del.ce as f64 / del.pkts as f64
                }),
            ]);
        }
        t.print();

        // The distinguishing feature vs Fig. 3: after the bursts end, P2
        // still has persistent queue accumulation and sends at full rate.
        let qs = queue_series(&r.sim, r.fig.p2.0, r.fig.p2.1, prio);
        let late_q: Vec<u64> = qs
            .iter()
            .filter(|(t, _)| t.as_ms_f64() > 4.5)
            .map(|&(_, q)| q)
            .collect();
        let late_q_avg = late_q.iter().sum::<u64>() as f64 / late_q.len().max(1) as f64 / 1024.0;
        let rates = port_rate_series(&r.sim, r.fig.p2.0, r.fig.p2.1, prio);
        let late_r: Vec<f64> = rates
            .iter()
            .filter(|p| p.t.as_ms_f64() > 4.5)
            .map(|p| p.gbps)
            .collect();
        let late_r_avg = late_r.iter().sum::<f64>() / late_r.len().max(1) as f64;
        println!("P2 after bursts: avg queue {late_q_avg:.0} KB (persistent), avg rate {late_r_avg:.1} Gbps (full rate)");
        println!();
    }
}
