//! Figure 18 — FCT performance for victim flows under TIMELY ± TCD
//! (§5.2.3).
//!
//! TIMELY cannot distinguish RTT inflation caused by congestion from
//! inflation caused by PAUSE frames, so it throttles victims. With TCD,
//! senders hold their rate when the RTT gradient is positive but the
//! packets only carry UE. The paper reports 2.2× / 2.3× better average FCT
//! for small (<10 KB) and large (>1 MB) victim flows, and a growing
//! UE-flagged fraction as the burst size grows.

use lossless_flowctl::SimDuration;
use lossless_stats::{mean, SizeBuckets};
use tcd_bench::report::{self, f2, pct};
use tcd_bench::scenarios::victim::{run, Options};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

fn victim_opts(tcd: bool, burst_bytes: u64, seed: u64) -> Options {
    Options {
        network: Network::Cee,
        use_tcd: tcd,
        cc: Some(Cc { algo: CcAlgo::Timely, tcd }),
        burst_bytes,
        burst_gap: SimDuration::from_us(450),
        load: 0.5,
        seed,
        ..Default::default()
    }
}

fn main() {
    let args = report::ExpArgs::parse(1.0);

    report::header("Fig. 18a", "victim FCT breakdown (TIMELY vs TIMELY+TCD)");
    let buckets = SizeBuckets::hadoop_buckets();
    let base = SimDuration::from_us(4) * 5 + SimDuration::from_us(2);
    let runs: Vec<(&str, _)> = vec![
        ("timely", run(victim_opts(false, 100 * 1024, args.seed))),
        ("timely+tcd", run(victim_opts(true, 100 * 1024, args.seed))),
    ];
    let mut t =
        report::Table::new(vec!["size bucket", "timely avg slowdown", "timely+tcd avg slowdown"]);
    let groups: Vec<Vec<Vec<f64>>> =
        runs.iter().map(|(_, r)| buckets.group(&r.victim_slowdowns(base))).collect();
    #[allow(clippy::needless_range_loop)] // b indexes label and both groups
    for b in 0..buckets.len() {
        let row = vec![
            buckets.label(b).to_string(),
            mean(&groups[0][b]).map(f2).unwrap_or_else(|| "-".into()),
            mean(&groups[1][b]).map(f2).unwrap_or_else(|| "-".into()),
        ];
        t.row(row);
    }
    t.print();
    for (name, r) in &runs {
        println!(
            "{name}: mean victim FCT {:.1} us",
            r.victim_mean_fct().unwrap_or(0.0) * 1e6
        );
    }

    report::header("Fig. 18b", "victim avg FCT and UE fraction vs burst size");
    let mut t = report::Table::new(vec![
        "burst KB",
        "timely FCT us",
        "timely+tcd FCT us",
        "speedup",
        "UE-flagged victims",
    ]);
    for kb in [32u64, 64, 100, 150, 250] {
        let plain = run(victim_opts(false, kb * 1024, args.seed));
        let tcd = run(victim_opts(true, kb * 1024, args.seed));
        let f_plain = plain.victim_mean_fct().unwrap_or(0.0) * 1e6;
        let f_tcd = tcd.victim_mean_fct().unwrap_or(0.0) * 1e6;
        t.row(vec![
            kb.to_string(),
            format!("{f_plain:.1}"),
            format!("{f_tcd:.1}"),
            format!("{:.2}x", if f_tcd > 0.0 { f_plain / f_tcd } else { 0.0 }),
            pct(tcd.victim_ue_fraction()),
        ]);
    }
    t.print();
}
