//! Figure 16 — overall FCT slowdown under realistic workloads, DCQCN ±
//! TCD (§5.2.1).
//!
//! Fat-tree k = 10 (250 hosts), 40 Gbps links, 4 µs delay, 60% average
//! load, Hadoop and WebSearch flow-size distributions. The paper runs 40k
//! flows; the default here is scaled down (`--full` restores the paper's
//! size). Reported: median/95th/99th-percentile FCT slowdown overall and
//! per size bucket, plus the paper's headline ratios.
//!
//! Expected shape: DCQCN+TCD wins, most strongly for small flows; the
//! paper quotes 3.3× median and 2.0× p99 improvements (Hadoop, small
//! flows: median 10.8 → 3.6).
//!
//! These are the repo's heaviest runs, and the workload × scheme grid is
//! six independent simulations — they fan out on the parallel harness
//! (`--threads`), each worker reducing its run to slowdown summaries, and
//! the tables print from the submission-ordered results.

use lossless_flowctl::SimTime;
use lossless_stats::SlowdownSummary;
use tcd_bench::harness::{self, Sweep};
use tcd_bench::report::{self, f2};
use tcd_bench::scenarios::workload::{run, Options, Workload};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

/// Flatten an optional summary into `prefix:count/p50/p95/p99/mean`
/// metrics (count 0 when the bucket is empty).
fn push_summary(metrics: &mut Vec<(String, f64)>, prefix: &str, s: &Option<SlowdownSummary>) {
    let (count, p50, p95, p99, mean) = match s {
        Some(s) => (s.count as f64, s.p50, s.p95, s.p99, s.mean),
        None => (0.0, f64::NAN, f64::NAN, f64::NAN, f64::NAN),
    };
    metrics.push((format!("{prefix}:count"), count));
    metrics.push((format!("{prefix}:p50"), p50));
    metrics.push((format!("{prefix}:p95"), p95));
    metrics.push((format!("{prefix}:p99"), p99));
    metrics.push((format!("{prefix}:mean"), mean));
}

fn summary_row(o: &harness::RunOutcome, prefix: &str) -> Option<Vec<String>> {
    let count = o.metric(&format!("{prefix}:count"))? as u64;
    if count == 0 {
        return None;
    }
    Some(vec![
        count.to_string(),
        f2(o.metric(&format!("{prefix}:p50"))?),
        f2(o.metric(&format!("{prefix}:p95"))?),
        f2(o.metric(&format!("{prefix}:p99"))?),
        f2(o.metric(&format!("{prefix}:mean"))?),
    ])
}

const GRID: [(Workload, f64); 3] = [
    (Workload::Hadoop, 0.0),
    (Workload::WebSearch, 0.0),
    // Supplementary: the pause-heavy regime of production fabrics,
    // where a slice of the flow budget arrives as synchronized
    // partition-aggregate incasts (the paper's §3 motivation traffic).
    (Workload::Hadoop, 0.08),
];

fn main() {
    let args = report::ExpArgs::parse(0.05);
    let flows = args.scaled(40_000, 500);

    let mut sweep = Sweep::new();
    for (wl, incast) in GRID {
        for tcd in [false, true] {
            let seed = args.seed;
            let name = if tcd { "dcqcn+tcd" } else { "dcqcn" };
            let wname = match wl {
                Workload::Hadoop => "hadoop",
                Workload::WebSearch => "websearch",
            };
            sweep.add(format!("{wname}_incast{incast}_{name}"), move || {
                let r = run(Options {
                    network: Network::Cee,
                    cc: Cc {
                        algo: CcAlgo::Dcqcn,
                        tcd,
                    },
                    use_tcd: tcd,
                    k: 10,
                    workload: wl,
                    load: 0.6,
                    flows,
                    incast_fraction: incast,
                    incast_fanin: 12,
                    seed,
                    deadline: SimTime::from_ms(2_000),
                });
                let buckets = wl.buckets();
                let mut metrics = vec![("completion_rate".into(), r.completion_rate)];
                push_summary(&mut metrics, "all", &r.summary());
                for (b, s) in r.bucket_summaries(&buckets).iter().enumerate() {
                    push_summary(&mut metrics, &format!("b{b}"), s);
                }
                harness::outcome_of(&r.sim, metrics)
            });
        }
    }
    let rep = sweep.run(args.threads);

    for (gi, (wl, incast)) in GRID.iter().enumerate() {
        let name = match wl {
            Workload::Hadoop => "Hadoop",
            Workload::WebSearch => "WebSearch",
        };
        let tag = if *incast > 0.0 {
            format!(
                "{name} + {:.0}% incast jobs (supplementary)",
                incast * 100.0
            )
        } else {
            name.to_string()
        };
        report::header(
            "Fig. 16",
            &format!("{tag}, {flows} flows, fat-tree k=10, 60% load"),
        );

        // Submission order: [plain, tcd] per grid cell.
        let results = [
            ("dcqcn", &rep.results[gi * 2].outcome),
            ("dcqcn+tcd", &rep.results[gi * 2 + 1].outcome),
        ];
        let buckets = wl.buckets();
        let mut t = report::Table::new(vec!["bucket", "scheme", "n", "p50", "p95", "p99", "mean"]);
        for (name, o) in &results {
            if let Some(cells) = summary_row(o, "all") {
                let mut row = vec!["ALL".to_string(), name.to_string()];
                row.extend(cells);
                t.row(row);
            }
        }
        for b in 0..buckets.len() {
            for (name, o) in &results {
                if let Some(cells) = summary_row(o, &format!("b{b}")) {
                    let mut row = vec![buckets.label(b).to_string(), name.to_string()];
                    row.extend(cells);
                    t.row(row);
                }
            }
        }
        t.print();

        if let (Some(a50), Some(b50), Some(a99), Some(b99)) = (
            results[0].1.metric("all:p50"),
            results[1].1.metric("all:p50"),
            results[0].1.metric("all:p99"),
            results[1].1.metric("all:p99"),
        ) {
            println!(
                "improvement: median {:.2}x, p99 {:.2}x (paper headline: 3.3x median, 2.0x p99)",
                a50 / b50,
                a99 / b99
            );
        }
        for (name, o) in &results {
            println!(
                "{name}: completion rate {:.1}%",
                o.metric("completion_rate").unwrap_or(0.0) * 100.0
            );
        }
        println!();
    }
}
