//! Figure 16 — overall FCT slowdown under realistic workloads, DCQCN ±
//! TCD (§5.2.1).
//!
//! Fat-tree k = 10 (250 hosts), 40 Gbps links, 4 µs delay, 60% average
//! load, Hadoop and WebSearch flow-size distributions. The paper runs 40k
//! flows; the default here is scaled down (`--full` restores the paper's
//! size). Reported: median/95th/99th-percentile FCT slowdown overall and
//! per size bucket, plus the paper's headline ratios.
//!
//! Expected shape: DCQCN+TCD wins, most strongly for small flows; the
//! paper quotes 3.3× median and 2.0× p99 improvements (Hadoop, small
//! flows: median 10.8 → 3.6).

use lossless_flowctl::SimTime;
use lossless_stats::SlowdownSummary;
use tcd_bench::report::{self, f2};
use tcd_bench::scenarios::workload::{run, Options, Workload};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

fn main() {
    let args = report::ExpArgs::parse(0.05);
    let flows = args.scaled(40_000, 500);
    for (wl, incast) in [
        (Workload::Hadoop, 0.0),
        (Workload::WebSearch, 0.0),
        // Supplementary: the pause-heavy regime of production fabrics,
        // where a slice of the flow budget arrives as synchronized
        // partition-aggregate incasts (the paper's §3 motivation traffic).
        (Workload::Hadoop, 0.08),
    ] {
        let name = match wl {
            Workload::Hadoop => "Hadoop",
            Workload::WebSearch => "WebSearch",
        };
        let tag = if incast > 0.0 {
            format!("{name} + {:.0}% incast jobs (supplementary)", incast * 100.0)
        } else {
            name.to_string()
        };
        report::header("Fig. 16", &format!("{tag}, {flows} flows, fat-tree k=10, 60% load"));

        let mut results = Vec::new();
        for tcd in [false, true] {
            let r = run(Options {
                network: Network::Cee,
                cc: Cc { algo: CcAlgo::Dcqcn, tcd },
                use_tcd: tcd,
                k: 10,
                workload: wl,
                load: 0.6,
                flows,
                incast_fraction: incast,
                incast_fanin: 12,
                seed: args.seed,
                deadline: SimTime::from_ms(2_000),
            });
            results.push((if tcd { "dcqcn+tcd" } else { "dcqcn" }, r));
        }

        let buckets = wl.buckets();
        let mut t = report::Table::new(vec![
            "bucket", "scheme", "n", "p50", "p95", "p99", "mean",
        ]);
        for (name, r) in &results {
            if let Some(s) = r.summary() {
                t.row(vec![
                    "ALL".into(),
                    name.to_string(),
                    s.count.to_string(),
                    f2(s.p50),
                    f2(s.p95),
                    f2(s.p99),
                    f2(s.mean),
                ]);
            }
        }
        for b in 0..buckets.len() {
            for (name, r) in &results {
                let sums = r.bucket_summaries(&buckets);
                if let Some(s) = &sums[b] {
                    t.row(vec![
                        buckets.label(b).to_string(),
                        name.to_string(),
                        s.count.to_string(),
                        f2(s.p50),
                        f2(s.p95),
                        f2(s.p99),
                        f2(s.mean),
                    ]);
                }
            }
        }
        t.print();

        let all: Vec<Option<SlowdownSummary>> = results.iter().map(|(_, r)| r.summary()).collect();
        if let (Some(a), Some(b)) = (&all[0], &all[1]) {
            println!(
                "improvement: median {:.2}x, p99 {:.2}x (paper headline: 3.3x median, 2.0x p99)",
                a.p50 / b.p50,
                a.p99 / b.p99
            );
        }
        for (name, r) in &results {
            println!("{name}: completion rate {:.1}%", r.completion_rate * 100.0);
        }
        println!();
    }
}
