//! Table 3 — victim flows mistakenly marked with CE (§5.1.3).
//!
//! Head-of-line scenario: S0–T0 and S1–T0 links at 20 Gbps, no flows from
//! S2, so every S0 → R0 flow is a potential victim (its only congestion
//! exposure is pauses spreading from R1's incast). A flow counts as
//! "mistakenly detected as congested" when any of its delivered packets
//! carries CE.
//!
//! Paper: ECN (CEE) 26.6%, TCD (CEE) 0%, FECN (IB) 13.5%, TCD (IB) 0%.

use tcd_bench::report::{self, pct};
use tcd_bench::scenarios::victim::{run, Options};
use tcd_bench::scenarios::Network;

fn main() {
    let args = report::ExpArgs::parse(1.0);
    report::header("Table 3", "victim flows marked with CE");
    let mut t = report::Table::new(vec!["scheme", "victims", "marked CE", "fraction", "paper"]);
    for (network, use_tcd, label, paper) in [
        (Network::Cee, false, "ECN  (CEE)", "26.6%"),
        (Network::Cee, true, "TCD  (CEE)", "0%"),
        (Network::Ib, false, "FECN (IB)", "13.5%"),
        (Network::Ib, true, "TCD  (IB)", "0%"),
    ] {
        let mut opt = Options {
            network,
            use_tcd,
            seed: args.seed,
            ..Default::default()
        };
        if network == Network::Cee {
            // Denser burst rounds for the Hadoop mix, matching the paper's
            // synchronous concurrent-burst generators.
            opt.burst_gap = lossless_flowctl::SimDuration::from_us(450);
            opt.burst_bytes = 100 * 1024;
            opt.load = 0.5;
        }
        if network == Network::Ib {
            // IB messages are short (2-32 KB MPI), so congestion spreading
            // touches a much larger *count* of messages; space the burst
            // rounds out and keep the load moderate so the exposure is
            // comparable to the paper's message mix. Concurrent 20G+20G
            // I/O transfers saturate the 40G chain exactly (rho = 1) and
            // keep pause-era queues from draining, so the I/O share is
            // kept small for this detection-accuracy table.
            opt.burst_gap = lossless_flowctl::SimDuration::from_us(550);
            opt.load = 0.4;
            opt.io_fraction = 0.1;
        }
        let r = run(opt);
        let marked = r
            .victims
            .iter()
            .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ce > 0)
            .count();
        t.row(vec![
            label.to_string(),
            r.victims.len().to_string(),
            marked.to_string(),
            pct(r.victim_ce_fraction()),
            paper.to_string(),
        ]);
    }
    t.print();
}
