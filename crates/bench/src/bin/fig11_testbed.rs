//! Figure 11 — the (simulated) testbed experiment (§5.1.1).
//!
//! Compact Figure-2 topology at 10 Gbps: F0 (S0 → R0, 1 Gbps) shares port
//! P0 with F1 (S1 → R1, 8 Gbps); A0 then blasts R1 at line rate, making
//! T2 → R1 the congestion root and P0 an undetermined port. TCD must mark
//! F0 with **UE while A0 is active and nothing afterwards** (F0 is only a
//! victim of congestion spreading); F1's packets get CE during the burst
//! (they pass the congestion root).
//!
//! The paper's testbed used a DPDK software switch with PFC at
//! 800/770 KB, ε = 0.04 and, for IB, T_c = 60 µs, 800 KB buffers — we use
//! the same parameters in the simulator.

use lossless_flowctl::SimTime;
use tcd_bench::report::{self, pct};
use tcd_bench::scenarios::testbed;
use tcd_bench::scenarios::Network;

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    let end = SimTime::from_ms(40);
    for network in [Network::Cee, Network::Ib] {
        let tag = match network {
            Network::Cee => "CEE (PFC, 800/770 KB, eps 0.04)",
            Network::Ib => "InfiniBand (CBFC, 800 KB, Tc 60us)",
        };
        report::header("Fig. 11", &format!("testbed marking of F0 — {tag}"));
        let r = testbed::run(network, end);
        let (b0, _) = r.burst_window;
        // A0 injects at line rate but only gets its contended share of the
        // R1 link, so the congestion episode ends when its backlog drains —
        // at its flow completion, not at its nominal send window.
        let b1 = r.sim.trace.flows[r.a0.0 as usize].end.unwrap_or(end);
        println!(
            "A0 bursting from {:.1} ms; backlog drained at {:.1} ms",
            b0.as_ms_f64(),
            b1.as_ms_f64()
        );

        // Binned UE/CE fraction of F0's deliveries (the paper bins by
        // 100 ms on a seconds-long run; we bin by 2 ms on a 40 ms run).
        let bin = SimTime::from_ms(2);
        let mut t = report::Table::new(vec!["t (ms)", "F0 UE frac", "F0 CE frac", "phase"]);
        let mut cur = SimTime::ZERO;
        while cur < end {
            let next = cur + (bin - SimTime::ZERO);
            let (ue, ce) = r.f0_fractions_in(cur, next);
            let phase = if cur >= b0 && cur < b1 { "burst" } else { "" };
            t.row(vec![
                format!("{:.0}-{:.0}", cur.as_ms_f64(), next.as_ms_f64()),
                pct(ue),
                pct(ce),
                phase.to_string(),
            ]);
            cur = next;
        }
        t.print();

        // F1 for contrast: CE during the burst window.
        let d1 = r.sim.trace.flows[r.f1.0 as usize].delivered;
        println!(
            "F1 totals: pkts {} CE {} UE {} (CE expected during burst)\n",
            d1.pkts, d1.ce, d1.ue
        );
    }
}
