//! Figure 17 — message completion time under IB CC ± TCD (§5.2.2).
//!
//! (a) Victim-flow MCT in the head-of-line scenario (messages larger than
//!     the BDP benefit from accurate detection: I/O messages are not
//!     throttled innocently).
//! (b) Overall average MCT on a fat-tree with D-mod-k routing, MPI (2–32
//!     KB, >50% at 2 KB) + 10% I/O (512 KB–4 MB) messages; the paper uses
//!     k = 16 with 1024 hosts and 80 k messages (scaled down by default;
//!     `--full` restores it) and reports a 1.22× overall improvement,
//!     up to 1.5× for 512 KB I/O messages.

use lossless_flowctl::{SimDuration, SimTime};
use lossless_stats::mean;
use tcd_bench::report::{self, f2};
use tcd_bench::scenarios::victim;
use tcd_bench::scenarios::workload::{run_hpc, HpcOptions};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

fn main() {
    let args = report::ExpArgs::parse(0.05);

    // (a) Victim MCT, broken down by message class. Heavier bursts than
    // the Table-3 detection study so FECN's mistaken throttling of victims
    // actually costs throughput (message sizes exceed the BDP, so the
    // benefit comes from accurate detection — §5.2.2).
    report::header("Fig. 17a", "victim message completion (IB CC vs IB CC+TCD)");
    let mut t = report::Table::new(vec![
        "class",
        "ibcc mean MCT us",
        "ibcc+tcd mean MCT us",
        "speedup",
    ]);
    let mut per_class: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; 2];
    let labels = ["MPI (2-32KB)", "I/O <=1MB", "I/O >1MB"];
    let class = |size: u64| -> usize {
        if size <= 32 * 1024 {
            0
        } else if size <= 1024 * 1024 {
            1
        } else {
            2
        }
    };
    for (i, tcd) in [false, true].into_iter().enumerate() {
        let r = victim::run(victim::Options {
            network: Network::Ib,
            use_tcd: tcd,
            cc: Some(Cc {
                algo: CcAlgo::IbCc,
                tcd,
            }),
            burst_gap: SimDuration::from_us(700),
            load: 0.3,
            io_fraction: 0.1,
            seed: args.seed,
            ..Default::default()
        });
        for f in &r.victims {
            let rec = &r.sim.trace.flows[f.0 as usize];
            if let Some(fct) = rec.fct() {
                per_class[i][class(rec.size)].push(fct.as_secs_f64() * 1e6);
            }
        }
    }
    for c in 0..3 {
        let a = lossless_stats::mean(&per_class[0][c]).unwrap_or(0.0);
        let b = lossless_stats::mean(&per_class[1][c]).unwrap_or(0.0);
        t.row(vec![
            labels[c].to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{:.2}x", if b > 0.0 { a / b } else { 0.0 }),
        ]);
    }
    t.print();

    // (b) Overall MCT on the HPC fat-tree.
    let k = if args.scale >= 1.0 { 16 } else { 8 };
    let messages = args.scaled(80_000, 1_000);
    report::header(
        "Fig. 17b",
        &format!("overall MCT, fat-tree k={k}, {messages} messages, 10% I/O, D-mod-k"),
    );
    let mut runs = Vec::new();
    for tcd in [false, true] {
        let r = run_hpc(HpcOptions {
            cc: Cc {
                algo: CcAlgo::IbCc,
                tcd,
            },
            use_tcd: tcd,
            k,
            messages,
            io_fraction: 0.1,
            seed: args.seed,
            deadline: SimTime::from_ms(2_000),
        });
        runs.push((if tcd { "ibcc+tcd" } else { "ibcc" }, r));
    }
    let mut t = report::Table::new(vec![
        "class",
        "ibcc mean slowdown",
        "ibcc+tcd mean slowdown",
    ]);
    let class = |size: u64| -> usize {
        if size <= 32 * 1024 {
            0 // MPI
        } else if size <= 512 * 1024 {
            1
        } else if size <= 1024 * 1024 {
            2
        } else if size <= 2 * 1024 * 1024 {
            3
        } else {
            4
        }
    };
    let labels = ["MPI (2-32KB)", "512KB I/O", "1MB I/O", "2MB I/O", "4MB I/O"];
    let mut grouped: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 5]; 2];
    for (i, (_, r)) in runs.iter().enumerate() {
        for &(size, s) in &r.slowdowns {
            grouped[i][class(size)].push(s);
        }
    }
    for c in 0..5 {
        t.row(vec![
            labels[c].to_string(),
            mean(&grouped[0][c]).map(f2).unwrap_or_else(|| "-".into()),
            mean(&grouped[1][c]).map(f2).unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print();
    let all: Vec<f64> = runs[0].1.slowdowns.iter().map(|&(_, s)| s).collect();
    let all_tcd: Vec<f64> = runs[1].1.slowdowns.iter().map(|&(_, s)| s).collect();
    if let (Some(a), Some(b)) = (mean(&all), mean(&all_tcd)) {
        println!("overall mean improvement: {:.2}x (paper: 1.22x)", a / b);
    }
    for (name, r) in &runs {
        println!("{name}: completion rate {:.1}%", r.completion_rate * 100.0);
    }
}
