//! Figure 15 — FCT performance for victim flows under DCQCN ± TCD
//! (§5.2.1).
//!
//! (a) Average FCT breakdown by flow size in the victim scenario: DCQCN
//!     with TCD completes victim flows faster because victims are never
//!     mistakenly throttled, and congested flows back off harder, reducing
//!     congestion spreading.
//! (b) Varying the concurrent burst size: as bursts grow, more victims are
//!     marked undetermined; DCQCN+TCD's advantage is largest when
//!     congestion is caused by interference of small flows.
//!
//! The burst-size × scheme grid runs on the parallel harness
//! (`--threads`); each worker reduces its run to per-bucket slowdown means
//! and summary metrics, and both tables come out of the submission-ordered
//! results — identical at any thread count. The 100 KB pair is shared
//! between (a) and (b) instead of being re-simulated.

use lossless_flowctl::SimDuration;
use lossless_stats::{mean, SizeBuckets};
use tcd_bench::harness::{self, Sweep};
use tcd_bench::report::{self, f2, pct};
use tcd_bench::scenarios::victim::{run, Options};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

const BURSTS_KB: [u64; 5] = [32, 64, 100, 150, 250];

fn victim_opts(tcd: bool, burst_bytes: u64, seed: u64) -> Options {
    Options {
        network: Network::Cee,
        use_tcd: tcd,
        cc: Some(Cc {
            algo: CcAlgo::Dcqcn,
            tcd,
        }),
        burst_bytes,
        burst_gap: SimDuration::from_us(450),
        load: 0.5,
        seed,
        ..Default::default()
    }
}

fn main() {
    let args = report::ExpArgs::parse(1.0);

    // Base one-way latency of the victim path S0 -> R0 (5 hops).
    let base = SimDuration::from_us(4) * 5 + SimDuration::from_us(2);
    let buckets = SizeBuckets::hadoop_buckets();
    let nbuckets = buckets.len();

    let mut sweep = Sweep::new();
    for kb in BURSTS_KB {
        for tcd in [false, true] {
            let seed = args.seed;
            let name = if tcd { "dcqcn+tcd" } else { "dcqcn" };
            sweep.add(format!("{name}_{kb}kb"), move || {
                let r = run(victim_opts(tcd, kb * 1024, seed));
                let buckets = SizeBuckets::hadoop_buckets();
                let groups = buckets.group(&r.victim_slowdowns(base));
                let mut metrics = vec![
                    (
                        "mean_fct_us".into(),
                        r.victim_mean_fct().unwrap_or(0.0) * 1e6,
                    ),
                    ("ue_fraction".into(), r.victim_ue_fraction()),
                    (
                        "completed_victims".into(),
                        r.victims
                            .iter()
                            .filter(|f| r.sim.trace.flows[f.0 as usize].end.is_some())
                            .count() as f64,
                    ),
                ];
                for (b, g) in groups.iter().enumerate() {
                    metrics.push((format!("slowdown_b{b}"), mean(g).unwrap_or(f64::NAN)));
                }
                harness::outcome_of(&r.sim, metrics)
            });
        }
    }
    let rep = sweep.run(args.threads);
    // Submission order: [plain, tcd] per burst size.
    let pair = |kb: u64| {
        let i = BURSTS_KB.iter().position(|&b| b == kb).unwrap() * 2;
        (&rep.results[i].outcome, &rep.results[i + 1].outcome)
    };

    // (a) FCT breakdown by size, 100 KB bursts.
    report::header("Fig. 15a", "victim FCT breakdown (DCQCN vs DCQCN+TCD)");
    let (plain, tcd) = pair(100);
    let mut t = report::Table::new(vec![
        "size bucket",
        "dcqcn avg slowdown",
        "dcqcn+tcd avg slowdown",
    ]);
    for b in 0..nbuckets {
        let cell = |o: &harness::RunOutcome| {
            let v = o.metric(&format!("slowdown_b{b}")).unwrap_or(f64::NAN);
            if v.is_finite() {
                f2(v)
            } else {
                "-".into()
            }
        };
        t.row(vec![buckets.label(b).to_string(), cell(plain), cell(tcd)]);
    }
    t.print();
    for (name, o) in [("dcqcn", plain), ("dcqcn+tcd", tcd)] {
        println!(
            "{name}: mean victim FCT {:.1} us over {} completed victims",
            o.metric("mean_fct_us").unwrap_or(0.0),
            o.metric("completed_victims").unwrap_or(0.0) as u64
        );
    }

    // (b) Varying burst size.
    report::header("Fig. 15b", "victim avg FCT and UE fraction vs burst size");
    let mut t = report::Table::new(vec![
        "burst KB",
        "dcqcn FCT us",
        "dcqcn+tcd FCT us",
        "speedup",
        "UE-flagged victims",
    ]);
    for kb in BURSTS_KB {
        let (plain, tcd) = pair(kb);
        let f_plain = plain.metric("mean_fct_us").unwrap_or(0.0);
        let f_tcd = tcd.metric("mean_fct_us").unwrap_or(0.0);
        t.row(vec![
            kb.to_string(),
            format!("{f_plain:.1}"),
            format!("{f_tcd:.1}"),
            format!("{:.2}x", if f_tcd > 0.0 { f_plain / f_tcd } else { 0.0 }),
            pct(tcd.metric("ue_fraction").unwrap_or(0.0)),
        ]);
    }
    t.print();
}
