//! Figure 15 — FCT performance for victim flows under DCQCN ± TCD
//! (§5.2.1).
//!
//! (a) Average FCT breakdown by flow size in the victim scenario: DCQCN
//!     with TCD completes victim flows faster because victims are never
//!     mistakenly throttled, and congested flows back off harder, reducing
//!     congestion spreading.
//! (b) Varying the concurrent burst size: as bursts grow, more victims are
//!     marked undetermined; DCQCN+TCD's advantage is largest when
//!     congestion is caused by interference of small flows.

use lossless_flowctl::SimDuration;
use lossless_stats::{mean, SizeBuckets};
use tcd_bench::report::{self, f2, pct};
use tcd_bench::scenarios::victim::{run, Options};
use tcd_bench::scenarios::{Cc, CcAlgo, Network};

fn victim_opts(tcd: bool, burst_bytes: u64, seed: u64) -> Options {
    Options {
        network: Network::Cee,
        use_tcd: tcd,
        cc: Some(Cc { algo: CcAlgo::Dcqcn, tcd }),
        burst_bytes,
        burst_gap: SimDuration::from_us(450),
        load: 0.5,
        seed,
        ..Default::default()
    }
}

fn main() {
    let args = report::ExpArgs::parse(1.0);

    // (a) FCT breakdown by size, 100 KB bursts.
    report::header("Fig. 15a", "victim FCT breakdown (DCQCN vs DCQCN+TCD)");
    let buckets = SizeBuckets::hadoop_buckets();
    // Base one-way latency of the victim path S0 -> R0 (5 hops).
    let base = SimDuration::from_us(4) * 5 + SimDuration::from_us(2);
    let runs: Vec<(&str, _)> = vec![
        ("dcqcn", run(victim_opts(false, 100 * 1024, args.seed))),
        ("dcqcn+tcd", run(victim_opts(true, 100 * 1024, args.seed))),
    ];
    let mut t = report::Table::new(vec!["size bucket", "dcqcn avg slowdown", "dcqcn+tcd avg slowdown"]);
    let groups: Vec<Vec<Vec<f64>>> = runs
        .iter()
        .map(|(_, r)| buckets.group(&r.victim_slowdowns(base)))
        .collect();
    for b in 0..buckets.len() {
        let cells: Vec<String> = groups
            .iter()
            .map(|g| mean(&g[b]).map(f2).unwrap_or_else(|| "-".into()))
            .collect();
        t.row(vec![buckets.label(b).to_string(), cells[0].clone(), cells[1].clone()]);
    }
    t.print();
    for (name, r) in &runs {
        println!(
            "{name}: mean victim FCT {:.1} us over {} completed victims",
            r.victim_mean_fct().unwrap_or(0.0) * 1e6,
            r.victims.iter().filter(|f| r.sim.trace.flows[f.0 as usize].end.is_some()).count()
        );
    }

    // (b) Varying burst size.
    report::header("Fig. 15b", "victim avg FCT and UE fraction vs burst size");
    let mut t = report::Table::new(vec![
        "burst KB",
        "dcqcn FCT us",
        "dcqcn+tcd FCT us",
        "speedup",
        "UE-flagged victims",
    ]);
    for kb in [32u64, 64, 100, 150, 250] {
        let plain = run(victim_opts(false, kb * 1024, args.seed));
        let tcd = run(victim_opts(true, kb * 1024, args.seed));
        let f_plain = plain.victim_mean_fct().unwrap_or(0.0) * 1e6;
        let f_tcd = tcd.victim_mean_fct().unwrap_or(0.0) * 1e6;
        t.row(vec![
            kb.to_string(),
            format!("{f_plain:.1}"),
            format!("{f_tcd:.1}"),
            format!("{:.2}x", if f_tcd > 0.0 { f_plain / f_tcd } else { 0.0 }),
            pct(tcd.victim_ue_fraction()),
        ]);
    }
    t.print();
}
