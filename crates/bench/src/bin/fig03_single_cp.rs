//! Figure 3 — the single congestion point scenario (§3.1.2).
//!
//! Reproduces: queue length and sending rate at port P2 under the binary
//! baselines (ECN in CEE, FECN in InfiniBand), showing that congestion
//! spreading from P3 pauses P2 intermittently, builds queue there, and
//! causes *improper* marking: the victim flow F0 is ECN/FECN-marked at P2
//! even though P2's real input rate never exceeds the line rate.
//!
//! Paper observations this run must show:
//! * P3 is the only congestion point; P0 is never congested;
//! * P2 has a large queue (paper: > 500 KB in CEE) caused purely by
//!   pauses, and its sending rate alternates ON-OFF;
//! * F0 and F2 (victims) receive CE marks at P2 under ECN/FECN;
//! * after the bursts end, P2's rate settles at ~10 Gbps (F0 + F2).

use tcd_bench::report::{self, pct};
use tcd_bench::scenarios::observation::{run, Options};
use tcd_bench::scenarios::Network;
use tcd_bench::{peak_queue, port_rate_series, print_port_trace, queue_series};

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    for network in [Network::Cee, Network::Ib] {
        let tag = match network {
            Network::Cee => "CEE (ECN)",
            Network::Ib => "InfiniBand (FECN)",
        };
        report::header("Fig. 3", &format!("single congestion point — {tag}"));
        let r = run(Options {
            network,
            multi_cp: false,
            use_tcd: false,
            ..Default::default()
        });
        let prio = r.sim.config().data_prio;

        print_port_trace(&r.sim, "P2 queue/rate", r.fig.p2.0, r.fig.p2.1, prio, 30);

        let d = |f: lossless_netsim::FlowId| r.sim.trace.flows[f.0 as usize].delivered;
        let mut t = report::Table::new(vec!["flow", "pkts", "CE-marked", "CE frac"]);
        for (name, f) in [
            ("F0 (victim)", r.f0),
            ("F1 (congested)", r.f1),
            ("F2 (victim)", r.f2),
        ] {
            let del = d(f);
            t.row(vec![
                name.to_string(),
                del.pkts.to_string(),
                del.ce.to_string(),
                pct(if del.pkts == 0 {
                    0.0
                } else {
                    del.ce as f64 / del.pkts as f64
                }),
            ]);
        }
        t.print();

        let peak_p2 = peak_queue(&r.sim, r.fig.p2.0, r.fig.p2.1, prio);
        let peak_p0 = peak_queue(&r.sim, r.fig.p0.0, r.fig.p0.1, prio);
        println!(
            "peak queue: P2 = {:.0} KB, P0 = {:.0} KB",
            peak_p2 as f64 / 1024.0,
            peak_p0 as f64 / 1024.0
        );

        // Late-run P2 rate (after bursts end): should approach F0+F2 = 10G.
        let rates = port_rate_series(&r.sim, r.fig.p2.0, r.fig.p2.1, prio);
        let late: Vec<f64> = rates
            .iter()
            .filter(|p| p.t.as_ms_f64() > 4.5)
            .map(|p| p.gbps)
            .collect();
        let late_avg = late.iter().sum::<f64>() / late.len().max(1) as f64;
        println!("P2 rate after bursts: {late_avg:.1} Gbps (paper: ~10 Gbps)");

        // P3 queue for context.
        let p3_peak = queue_series(&r.sim, r.fig.p3.0, r.fig.p3.1, prio)
            .iter()
            .map(|&(_, q)| q)
            .max()
            .unwrap_or(0);
        println!(
            "P3 (congestion root) peak queue: {:.0} KB",
            p3_peak as f64 / 1024.0
        );
        println!("PAUSE frames in run: {}\n", r.sim.trace.pause_frames);
    }
}
