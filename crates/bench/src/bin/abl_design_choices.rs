//! Ablation study of TCD's design choices (paper §6 "Design tradeoff" and
//! §7 related work), on the victim-flow scenario:
//!
//! * **static vs adaptive `max(T_on)`** — the paper argues a static bound
//!   is enough; the adaptive estimator (EWMA of observed ON periods) is
//!   the §6 alternative;
//! * **⑤-transition debounce** (`confirm_periods`) — robustness of the
//!   undetermined → congestion classification;
//! * **paper-literal vs hardened trend windows** — see Fig. 14;
//! * **NP-ECN** (PCN, NSDI'20) — the related-work alternative that skips
//!   marking packets whose wait overlapped a PAUSE, as an extra baseline
//!   between plain ECN and TCD.

use lossless_flowctl::{Rate, SimDuration};
use lossless_netsim::config::DetectorKind;
use tcd_bench::report::{self, pct};
use tcd_bench::scenarios::victim::{self, Options};
use tcd_bench::scenarios::{cee_tcd_config, Cc, CcAlgo, Network};
use tcd_core::baseline::RedConfig;
use tcd_core::detector::AdaptiveMaxTon;

fn base_opts(seed: u64) -> Options {
    Options {
        network: Network::Cee,
        use_tcd: true,
        burst_bytes: 100 * 1024,
        burst_gap: SimDuration::from_us(450),
        load: 0.5,
        seed,
        ..Default::default()
    }
}

fn run_with(detector: DetectorKind, seed: u64) -> victim::Run {
    let mut opt = base_opts(seed);
    // Build through the standard path, then override the detector.
    opt.use_tcd = true;
    let mut r = victim::run_with_detector(opt, detector);
    r.sim.trace.record_marks = false;
    r
}

fn main() {
    let args = report::ExpArgs::parse(1.0);
    report::header(
        "Ablation",
        "TCD design choices on the victim scenario (CEE)",
    );

    let tcd_cfg = cee_tcd_config(Rate::from_gbps(40), SimDuration::from_us(4), 0.05);
    let red = RedConfig::dcqcn_40g();

    let variants: Vec<(&str, DetectorKind)> = vec![
        ("ecn-red (baseline)", DetectorKind::EcnRed(red)),
        (
            "np-ecn (PCN)",
            DetectorKind::NpEcn {
                threshold_bytes: 200 * 1024,
            },
        ),
        (
            "tcd static (paper rec.)",
            DetectorKind::TcdRed(tcd_cfg, red),
        ),
        (
            "tcd literal windows",
            DetectorKind::TcdRed(tcd_cfg.literal(), red),
        ),
        (
            "tcd confirm=3",
            DetectorKind::TcdRed(tcd_cfg.with_confirm(3), red),
        ),
        (
            "tcd adaptive max(Ton)",
            DetectorKind::TcdRed(
                tcd_cfg.adaptive(AdaptiveMaxTon::default_for(tcd_cfg.max_ton)),
                red,
            ),
        ),
    ];

    let mut t = report::Table::new(vec![
        "variant",
        "victims CE-flagged",
        "victims UE-flagged",
        "victim pkts CE",
        "mean victim FCT us",
    ]);
    for (name, det) in variants {
        let r = run_with(det, args.seed);
        let ce_flagged = r
            .victims
            .iter()
            .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ce > 0)
            .count();
        let ue_flagged = r
            .victims
            .iter()
            .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ue > 0)
            .count();
        let (mut pkts, mut ce) = (0u64, 0u64);
        for f in &r.victims {
            let d = r.sim.trace.flows[f.0 as usize].delivered;
            pkts += d.pkts;
            ce += d.ce;
        }
        t.row(vec![
            name.to_string(),
            format!("{ce_flagged}/{}", r.victims.len()),
            format!("{ue_flagged}/{}", r.victims.len()),
            pct(if pkts == 0 {
                0.0
            } else {
                ce as f64 / pkts as f64
            }),
            format!("{:.1}", r.victim_mean_fct().unwrap_or(0.0) * 1e6),
        ]);
    }
    t.print();
    println!("(static TCD and its hardened variants keep victims clean; NP-ECN");
    println!(" improves on RED but cannot see through the ON-OFF rate masking)");

    // HPCC (INT-driven, no marking): its "CE" column is not applicable,
    // but its victim FCT shows whether utilization telemetry protects
    // victims. A paused hop reads as overutilized, so HPCC throttles
    // victims just like the delay/queue baselines (§7).
    report::header("Ablation", "HPCC (INT) on the same victim scenario");
    let mut opt = base_opts(args.seed);
    opt.use_tcd = false;
    opt.cc = Some(Cc {
        algo: CcAlgo::Hpcc,
        tcd: false,
    });
    let r = victim::run(opt);
    println!(
        "hpcc: victims {} | mean victim FCT {:.1} us | pause frames {}",
        r.victims.len(),
        r.victim_mean_fct().unwrap_or(0.0) * 1e6,
        r.sim.trace.pause_frames
    );
}
