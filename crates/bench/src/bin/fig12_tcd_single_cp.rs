//! Figure 12 — TCD validation in the single congestion point scenario
//! (§5.1.2).
//!
//! Ports P2 and P1 experience the transition *undetermined →
//! non-congestion*: while pauses spread from P3 they are detected as
//! undetermined (packets marked UE, never CE); after release, the queue
//! drains, so TCD classifies them non-congested and marks nothing even
//! while the residual queue still exceeds the CE threshold — the behaviour
//! ECN/FECN gets wrong in Fig. 3.

use tcd_bench::report::{self, pct};
use tcd_bench::scenarios::observation::{run, Options};
use tcd_bench::scenarios::Network;
use tcd_bench::{print_port_trace, state_series};
use tcd_core::TernaryState;

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    for network in [Network::Cee, Network::Ib] {
        let tag = match network {
            Network::Cee => "CEE",
            Network::Ib => "InfiniBand",
        };
        report::header("Fig. 12", &format!("TCD, single congestion point — {tag}"));
        let r = run(Options {
            network,
            multi_cp: false,
            use_tcd: true,
            ..Default::default()
        });
        let prio = r.sim.config().data_prio;

        print_port_trace(&r.sim, "P2 (TCD)", r.fig.p2.0, r.fig.p2.1, prio, 24);
        print_port_trace(&r.sim, "P1 (TCD)", r.fig.p1.0, r.fig.p1.1, prio, 24);

        let d = |f: lossless_netsim::FlowId| r.sim.trace.flows[f.0 as usize].delivered;
        let mut t = report::Table::new(vec!["flow", "pkts", "CE", "UE", "CE frac", "UE frac"]);
        for (name, f) in [
            ("F0 (victim)", r.f0),
            ("F1 (congested)", r.f1),
            ("F2 (victim)", r.f2),
        ] {
            let del = d(f);
            let frac = |n: u64| {
                pct(if del.pkts == 0 {
                    0.0
                } else {
                    n as f64 / del.pkts as f64
                })
            };
            t.row(vec![
                name.to_string(),
                del.pkts.to_string(),
                del.ce.to_string(),
                del.ue.to_string(),
                frac(del.ce),
                frac(del.ue),
            ]);
        }
        t.print();

        // State transition summary for P2: must visit undetermined and end
        // non-congested, never congested while undetermined.
        let states = state_series(&r.sim, r.fig.p2.0, r.fig.p2.1, prio);
        let visited_undet = states.iter().any(|(_, s)| s.is_undetermined());
        let final_state = states
            .last()
            .map(|&(_, s)| s)
            .unwrap_or(TernaryState::NonCongestion);
        println!(
            "P2 visited undetermined: {visited_undet}; final state: {final_state} (paper: / then 0)\n"
        );
    }
}
