//! Figure 10 — practical ON periods under PFC and CBFC (§4.3/§4.4).
//!
//! Drives a two-sender incast so hop-by-hop flow control regulates the
//! bottleneck's upstream port, then reports the distribution of observed
//! ON-period lengths at that port:
//!
//! * CEE: the ON period is the RESUME period, bounded by Eq. 3's
//!   `max(T_on)`;
//! * InfiniBand: ON periods are slices of each credit update period, so
//!   `T_on < T_c` (Eq. 4).

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::topology::figure2;
use lossless_netsim::Simulator;
use tcd_bench::report;
use tcd_bench::scenarios::{default_config, Network};
use tcd_core::model::{cee_max_ton, RECOMMENDED_EPSILON};

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    for network in [Network::Cee, Network::Ib] {
        let tag = match network {
            Network::Cee => "CEE / PFC (RESUME periods)",
            Network::Ib => "InfiniBand / CBFC (credit-sliced periods)",
        };
        report::header("Fig. 10", tag);

        let fig = figure2(Default::default());
        let mut cfg = default_config(network, true, SimTime::from_ms(4));
        // Sample the upstream port P2 very finely so ON-period lengths can
        // be read off the paused/blocked flag.
        cfg.trace_interval = Some(SimDuration::from_ns(500));
        cfg.sample_ports = vec![(fig.p2.0, fig.p2.1, cfg.data_prio)];
        let mut sim = Simulator::new(fig.topo.clone(), cfg, network.routing());

        // Saturate P3 via the bursters; run a long flow through P2 so the
        // port actually transmits during ON periods.
        sim.add_flow(
            fig.s1,
            fig.r1,
            20_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
        for &a in fig.bursters.iter() {
            sim.add_flow(
                a,
                fig.r1,
                1_000_000,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            );
        }
        sim.run();

        // Extract ON periods from the sampled pause/block flag.
        let samples: Vec<(SimTime, bool)> = sim
            .trace
            .port_samples
            .iter()
            .map(|s| (s.t, s.paused))
            .collect();
        let mut on_periods_us: Vec<f64> = Vec::new();
        let mut on_start: Option<SimTime> = None;
        let mut saw_off = false;
        for &(t, paused) in &samples {
            match (paused, on_start) {
                (false, None) => on_start = Some(t),
                (true, Some(s)) => {
                    if saw_off {
                        on_periods_us.push(t.saturating_since(s).as_us_f64());
                    }
                    saw_off = true;
                    on_start = None;
                }
                (true, None) => saw_off = true,
                _ => {}
            }
        }
        on_periods_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if on_periods_us.is_empty() {
            println!("no regulated ON periods observed\n");
            continue;
        }
        let pct = |p: f64| lossless_stats::percentile(&on_periods_us, p).unwrap();
        let bound_us = match network {
            Network::Cee => cee_max_ton(
                Rate::from_gbps(40),
                1000,
                SimDuration::from_us(4),
                RECOMMENDED_EPSILON,
            )
            .as_us_f64(),
            Network::Ib => lossless_flowctl::cbfc::CbfcConfig::paper_simulation()
                .update_period
                .as_us_f64(),
        };
        let within = on_periods_us.iter().filter(|&&x| x <= bound_us).count();
        println!(
            "ON periods observed: {} | p50 {:.1}us p90 {:.1}us p99 {:.1}us max {:.1}us",
            on_periods_us.len(),
            pct(50.0),
            pct(90.0),
            pct(99.0),
            on_periods_us.last().unwrap()
        );
        println!(
            "bound max(T_on) = {:.1}us; {}/{} periods within bound ({:.1}%)\n",
            bound_us,
            within,
            on_periods_us.len(),
            100.0 * within as f64 / on_periods_us.len() as f64
        );
    }
}
