//! Figure 20 — fairness with TCD (§5.2.4).
//!
//! B0–B3 send four long-lived flows to R0 through port P2 while A0–A14
//! incast R1 for ~3 ms. During the bursts, congestion spreads to P2, which
//! becomes undetermined: under the gentle rule the four flows keep their
//! CC rate (throughput dips only from head-of-line blocking at L0–T2).
//! After the bursts, P2 becomes a genuine congestion port and the four
//! flows converge to the fair share (~8 Gbps each of the ~32 Gbps left
//! beside F1) for both DCQCN+TCD and TIMELY+TCD.

use lossless_flowctl::SimTime;
use lossless_stats::timeseries::rate_series;
use tcd_bench::report::{self, f2};
use tcd_bench::scenarios::fairness::run;
use tcd_bench::scenarios::{Cc, CcAlgo};

fn main() {
    let _args = report::ExpArgs::parse(1.0);
    for algo in [CcAlgo::Dcqcn, CcAlgo::Timely] {
        let cc = Cc { algo, tcd: true };
        report::header("Fig. 20", &format!("fairness with TCD — {}", cc.name()));
        let r = run(cc, SimTime::from_ms(40));
        let prio = r.sim.config().data_prio;

        // Per-B-host throughput over time (each B host carries one flow).
        let mut t = report::Table::new(vec!["t ms", "B0", "B1", "B2", "B3", "sum"]);
        let series: Vec<Vec<(f64, f64)>> = r
            .fig
            .b_hosts
            .iter()
            .map(|&h| {
                let cum: Vec<(lossless_flowctl::SimTime, u64)> = r
                    .sim
                    .trace
                    .port_samples
                    .iter()
                    .filter(|s| s.node == h && s.prio == prio)
                    .map(|s| (s.t, s.tx_bytes))
                    .collect();
                rate_series(&cum)
                    .iter()
                    .map(|p| (p.t.as_ms_f64(), p.gbps))
                    .collect()
            })
            .collect();
        // Print 2 ms averages.
        let mut bin_start = 0.0f64;
        while bin_start < 40.0 {
            let bin_end = bin_start + 2.0;
            let mut avg = [0.0f64; 4];
            for (i, s) in series.iter().enumerate() {
                let vals: Vec<f64> = s
                    .iter()
                    .filter(|(t, _)| *t >= bin_start && *t < bin_end)
                    .map(|&(_, g)| g)
                    .collect();
                avg[i] = if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                };
            }
            t.row(vec![
                format!("{bin_start:.1}"),
                f2(avg[0]),
                f2(avg[1]),
                f2(avg[2]),
                f2(avg[3]),
                f2(avg.iter().sum()),
            ]);
            bin_start = bin_end;
        }
        t.print();

        // Fairness after convergence: Jain's index over the last 8 ms.
        let last: Vec<f64> = series
            .iter()
            .map(|s| {
                let vals: Vec<f64> = s
                    .iter()
                    .filter(|(t, _)| *t > 32.0)
                    .map(|&(_, g)| g)
                    .collect();
                vals.iter().sum::<f64>() / vals.len().max(1) as f64
            })
            .collect();
        let sum: f64 = last.iter().sum();
        let sumsq: f64 = last.iter().map(|x| x * x).sum();
        let jain = if sumsq > 0.0 {
            sum * sum / (4.0 * sumsq)
        } else {
            0.0
        };
        println!(
            "late rates: {} | Jain fairness {:.3} (1.0 = perfect)\n",
            last.iter()
                .map(|x| format!("{x:.2}"))
                .collect::<Vec<_>>()
                .join(" / "),
            jain
        );
    }
}
