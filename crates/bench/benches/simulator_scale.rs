//! End-to-end simulator throughput: full packet-level runs of the paper's
//! Figure-2 scenario under both network modes, and an incast on the
//! fat-tree. Criterion reports wall time per simulated run; the
//! events-per-second preamble (printed once, from `Trace::events`) is the
//! headline engine-throughput number recorded in CHANGES.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{fat_tree, figure2};
use lossless_netsim::Simulator;
use tcd_repro::scenarios::{default_config, Network};

fn fig2_sim(network: Network, use_tcd: bool) -> Simulator {
    let fig = figure2(Default::default());
    let cfg = default_config(network, use_tcd, SimTime::from_ms(1));
    let mut sim = Simulator::new(fig.topo.clone(), cfg, network.routing());
    for &a in fig.bursters.iter().take(8) {
        sim.add_flow(
            a,
            fig.r1,
            300_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    sim
}

fn fig2_incast(network: Network, use_tcd: bool) -> u64 {
    fig2_sim(network, use_tcd).trace.forwarded_pkts
}

/// One warm timed run per configuration, printed as dispatched events per
/// wall-clock second — the simulator's headline throughput metric.
fn report_events_per_sec() {
    for (name, network, tcd) in [
        ("cee_ecn", Network::Cee, false),
        ("cee_tcd", Network::Cee, true),
        ("ib_fecn", Network::Ib, false),
        ("ib_tcd", Network::Ib, true),
    ] {
        let _warm = fig2_sim(network, tcd);
        let t0 = std::time::Instant::now();
        let sim = fig2_sim(network, tcd);
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "events/sec {name}: {:.3}M ({} events in {:.3} ms)",
            sim.trace.events as f64 / wall / 1e6,
            sim.trace.events,
            wall * 1e3
        );
    }
}

fn bench_fig2(c: &mut Criterion) {
    report_events_per_sec();
    let mut group = c.benchmark_group("simulator/fig2_incast_1ms");
    group.sample_size(10);
    group.bench_function("cee_ecn", |b| {
        b.iter(|| black_box(fig2_incast(Network::Cee, false)))
    });
    group.bench_function("cee_tcd", |b| {
        b.iter(|| black_box(fig2_incast(Network::Cee, true)))
    });
    group.bench_function("ib_fecn", |b| {
        b.iter(|| black_box(fig2_incast(Network::Ib, false)))
    });
    group.bench_function("ib_tcd", |b| {
        b.iter(|| black_box(fig2_incast(Network::Ib, true)))
    });
    group.finish();
}

fn bench_fat_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/fat_tree_k6");
    group.sample_size(10);
    group.bench_function("54-host all-to-one incast", |b| {
        b.iter(|| {
            let ft = fat_tree(6, Rate::from_gbps(40), SimDuration::from_us(4));
            let cfg = default_config(Network::Cee, true, SimTime::from_ms(1));
            let mut sim = Simulator::new(ft.topo.clone(), cfg, RouteSelect::Ecmp);
            let dst = ft.hosts[0];
            for &h in ft.hosts.iter().skip(1).take(16) {
                sim.add_flow(
                    h,
                    dst,
                    100_000,
                    SimTime::ZERO,
                    Box::new(FixedRate::line_rate()),
                );
            }
            sim.run();
            black_box(sim.trace.forwarded_pkts)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2, bench_fat_tree);
criterion_main!(benches);
