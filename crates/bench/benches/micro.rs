//! Micro-benchmarks of the simulator's hot data structures: the event
//! queue, the transmission gate, routing lookups and workload sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::event::{Event, EventQueue, TxGate};
use lossless_netsim::packet::{FlowId, Packet, PacketPool};
use lossless_netsim::routing::{RouteSelect, Routing};
use lossless_netsim::topology::{fat_tree, NodeId};
use lossless_workloads::hadoop;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcd_core::CodePoint;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule+pop x1000", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(
                    SimTime::from_ps(i * 997 % 50_000),
                    Event::PortTx {
                        node: NodeId(i as u32 % 64),
                        port: 0,
                    },
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn data_pkt(i: u64) -> Packet {
    let mut p = Packet::data(
        FlowId(i as u32 % 64),
        NodeId(0),
        NodeId(1),
        1000,
        0,
        i * 1000,
        false,
        CodePoint::Capable,
    );
    p.sent_at = SimTime::from_ps(i);
    p
}

/// The engine's per-packet allocation path: every hop re-enqueues the
/// same boxed packet, and consumed packets return to the pool, so a
/// steady-state run allocates (almost) nothing.
fn bench_packet_pool(c: &mut Criterion) {
    c.bench_function("packet_pool/boxed+recycle cycle", |b| {
        let mut pool = PacketPool::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pkt = pool.boxed(data_pkt(i));
            let pkt = black_box(pkt);
            pool.recycle(pkt);
        })
    });
    c.bench_function("packet_pool/fresh Box::new baseline", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(Box::new(data_pkt(i)));
        })
    });
    // Arrival events carrying boxed packets through the queue — the
    // event-heap traffic a forwarding-dominated run generates.
    c.bench_function("event_queue/boxed arrivals x1000", |b| {
        let mut pool = PacketPool::new();
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(
                    SimTime::from_ps(i * 997 % 50_000),
                    Event::PacketArrival {
                        node: NodeId(i as u32 % 64),
                        in_port: 0,
                        pkt: pool.boxed(data_pkt(i)),
                    },
                );
            }
            let mut n = 0;
            while let Some((_, ev)) = q.pop() {
                if let Event::PacketArrival { pkt, .. } = ev {
                    pool.recycle(pkt);
                }
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_txgate(c: &mut Criterion) {
    c.bench_function("txgate/kick+tx cycle", |b| {
        let mut g = TxGate::new();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            if g.on_event(now) {
                let free = g.begin_tx(now, SimDuration::from_ns(200));
                g.note_scheduled(free);
                now = free;
            }
            black_box(g.want(now))
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let ft = fat_tree(10, Rate::from_gbps(40), SimDuration::from_us(4));
    let routing = Routing::new(&ft.topo, RouteSelect::Ecmp);
    let agg = ft.aggs[0];
    let dst = *ft.hosts.last().unwrap();
    c.bench_function("routing/ecmp out_port (fat-tree k=10)", |b| {
        let mut f = 0u32;
        b.iter(|| {
            f = f.wrapping_add(1);
            black_box(routing.out_port(agg, dst, FlowId(f)))
        })
    });
    c.bench_function("routing/table build (fat-tree k=10)", |b| {
        b.iter(|| black_box(Routing::new(&ft.topo, RouteSelect::DModK)))
    });
}

fn bench_workload_sampling(c: &mut Criterion) {
    let cdf = hadoop();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("workload/hadoop sample", |b| {
        b.iter(|| black_box(cdf.sample(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_packet_pool,
    bench_txgate,
    bench_routing,
    bench_workload_sampling
);
criterion_main!(benches);
