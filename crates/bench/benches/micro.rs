//! Micro-benchmarks of the simulator's hot data structures: the event
//! queue, the transmission gate, routing lookups and workload sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::event::{Event, EventQueue, TxGate};
use lossless_netsim::packet::FlowId;
use lossless_netsim::routing::{RouteSelect, Routing};
use lossless_netsim::topology::{fat_tree, NodeId};
use lossless_workloads::hadoop;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule+pop x1000", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(
                    SimTime::from_ps(i * 997 % 50_000),
                    Event::PortTx { node: NodeId(i as u32 % 64), port: 0 },
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_txgate(c: &mut Criterion) {
    c.bench_function("txgate/kick+tx cycle", |b| {
        let mut g = TxGate::new();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            if g.on_event(now) {
                let free = g.begin_tx(now, SimDuration::from_ns(200));
                g.note_scheduled(free);
                now = free;
            }
            black_box(g.want(now))
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let ft = fat_tree(10, Rate::from_gbps(40), SimDuration::from_us(4));
    let routing = Routing::new(&ft.topo, RouteSelect::Ecmp);
    let agg = ft.aggs[0];
    let dst = *ft.hosts.last().unwrap();
    c.bench_function("routing/ecmp out_port (fat-tree k=10)", |b| {
        let mut f = 0u32;
        b.iter(|| {
            f = f.wrapping_add(1);
            black_box(routing.out_port(agg, dst, FlowId(f)))
        })
    });
    c.bench_function("routing/table build (fat-tree k=10)", |b| {
        b.iter(|| black_box(Routing::new(&ft.topo, RouteSelect::DModK)))
    });
}

fn bench_workload_sampling(c: &mut Criterion) {
    let cdf = hadoop();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("workload/hadoop sample", |b| {
        b.iter(|| black_box(cdf.sample(&mut rng)))
    });
}

criterion_group!(benches, bench_event_queue, bench_txgate, bench_routing, bench_workload_sampling);
criterion_main!(benches);
