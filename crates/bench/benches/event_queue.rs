//! Hold-model microbenchmark of the event-queue cores: steady-state
//! pending set of N events, each iteration pops one and schedules a
//! replacement at `now + delay`. This isolates pure queue cost from
//! dispatch work, so it is the number to watch when touching
//! `netsim::event` — the end-to-end engine number lives in
//! `simulator_scale` and `BENCH_sweep.json`.
//!
//! Plain `main` (no criterion): the hold loop is self-timing and the
//! interesting output is the heap/wheel ratio per pending-set size.

use lossless_flowctl::{SimDuration, SimTime};
use lossless_netsim::event::{Event, EventQueue, QueueKind};
use lossless_netsim::topology::NodeId;
use std::time::Instant;

/// SplitMix64 — the same deterministic generator the simulator uses for
/// seeding, here driving the hold-model delays.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A delay spanning the simulator's real scales: log-uniform over
/// ~1 ns .. ~4 µs (serialization times through CC timers).
fn delay(rng: &mut u64) -> SimDuration {
    let r = splitmix(rng);
    let shift = 10 + (r % 13) as u32; // 2^10 .. 2^22 ps
    SimDuration::from_ps((1u64 << shift) + (r >> 40))
}

fn hold(kind: QueueKind, pending: usize, iters: u64) -> (f64, SimTime) {
    let mut q = EventQueue::with_kind(kind);
    let mut rng = 7u64;
    for i in 0..pending {
        q.schedule(
            SimTime::ZERO + delay(&mut rng),
            Event::PortTx {
                node: NodeId(i as u32),
                port: 0,
            },
        );
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let Some((now, ev)) = q.pop() else { break };
        q.schedule(now + delay(&mut rng), ev);
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    (iters as f64 / wall, q.now())
}

fn main() {
    const ITERS: u64 = 2_000_000;
    for pending in [64usize, 512, 4096, 32768] {
        let (heap, t_h) = hold(QueueKind::Heap, pending, ITERS);
        let (wheel, t_w) = hold(QueueKind::Wheel, pending, ITERS);
        assert_eq!(t_h, t_w, "cores diverged in the hold model");
        println!(
            "hold n={pending:>6}: heap {:>7.3}M ops/s | wheel {:>7.3}M ops/s | wheel/heap {:.2}x",
            heap / 1e6,
            wheel / 1e6,
            wheel / heap
        );
    }
}
