//! The paper's §4.5 feasibility claim: TCD's per-dequeue work is O(1) and
//! comparable to checking MMU occupancy. This bench compares the
//! per-dequeue cost of the null detector, RED/ECN, the IB FECN rule and
//! TCD (in and out of the ON-OFF pattern).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lossless_flowctl::{SimDuration, SimTime};
use tcd_core::baseline::{EcnRed, IbFecn, RedConfig};
use tcd_core::detector::{CongestionDetector, DequeueContext, LegacyScheme};
use tcd_core::{TcdConfig, TcdDetector};

fn ctx(i: u64) -> DequeueContext {
    DequeueContext {
        now: SimTime::from_ns(i * 200),
        queue_bytes: (i * 997) % 400_000,
        delayed_by_fc: false,
    }
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector/on_dequeue");

    group.bench_function("ecn_red", |b| {
        let mut d = EcnRed::new(RedConfig::dcqcn_40g(), 7);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(d.on_dequeue(&ctx(i)))
        })
    });

    group.bench_function("ib_fecn", |b| {
        let mut d = IbFecn::new(50 * 1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(d.on_dequeue(&ctx(i)))
        })
    });

    group.bench_function("tcd_continuous_on", |b| {
        let cfg = TcdConfig::new(SimDuration::from_us(30), 200_000, 5_000);
        let mut d = TcdDetector::new(cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(d.on_dequeue(&ctx(i)))
        })
    });

    group.bench_function("tcd_with_red_legacy", |b| {
        let cfg = TcdConfig::new(SimDuration::from_us(30), 200_000, 5_000);
        let mut d = TcdDetector::with_legacy(
            cfg,
            LegacyScheme::Red(EcnRed::new(RedConfig::dcqcn_40g(), 7)),
        );
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(d.on_dequeue(&ctx(i)))
        })
    });

    group.bench_function("tcd_onoff_pattern", |b| {
        // Worst case: the port keeps cycling through pause/resume, so
        // every dequeue takes the undetermined path.
        let cfg = TcdConfig::new(SimDuration::from_us(30), 200_000, 5_000);
        let mut d = TcdDetector::new(cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if i.is_multiple_of(16) {
                d.on_pause(SimTime::from_ns(i * 200));
                d.on_resume(SimTime::from_ns(i * 200 + 100));
            }
            black_box(d.on_dequeue(&ctx(i)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
