//! Multiple virtual lanes with weighted arbitration (paper §4.5): VLs
//! share link bandwidth by weight, pauses/credits are per-VL, and TCD's
//! `max(T_on)` scales with the VL's bandwidth share.

use lossless_flowctl::cbfc::CbfcConfig;
use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::{DetectorKind, FlowControlMode, SimConfig};
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, Topology};
use lossless_netsim::{NodeId, Simulator};
use tcd_core::model::ib_max_ton;
use tcd_core::TcdConfig;

/// Two senders converging on one sink through a single switch, so the
/// switch egress (not the host NICs) is the arbitration point.
struct Fanin {
    topo: Topology,
    s1: NodeId,
    s2: NodeId,
    sink: NodeId,
}

fn fanin(rate: Rate) -> Fanin {
    let mut b = Topology::builder();
    let sw = b.switch("sw");
    let s1 = b.host("s1");
    let s2 = b.host("s2");
    let sink = b.host("sink");
    for h in [s1, s2, sink] {
        b.link(h, sw, rate, SimDuration::from_us(4));
    }
    Fanin {
        topo: b.build(),
        s1,
        s2,
        sink,
    }
}

fn three_vl_cfg(end: SimTime, weights: Vec<u32>) -> SimConfig {
    let mut cfg = SimConfig::ib_baseline(end);
    cfg.num_prios = 3; // VL0 feedback, VL1 + VL2 data
    cfg.vl_weights = Some(weights);
    cfg
}

#[test]
fn wrr_splits_a_saturated_link_by_weight() {
    // Two line-rate flows from different hosts on VL1 and VL2 converge on
    // one switch egress with weights 2:1 — delivered bytes must split
    // roughly 2:1.
    let fi = fanin(Rate::from_gbps(40));
    let end = SimTime::from_ms(10);
    let mut sim = Simulator::new(
        fi.topo.clone(),
        three_vl_cfg(end, vec![0, 2, 1]),
        RouteSelect::DModK,
    );
    let f1 = sim.add_flow_prio(
        fi.s1,
        fi.sink,
        1_000_000_000,
        SimTime::ZERO,
        1,
        Box::new(FixedRate::line_rate()),
    );
    let f2 = sim.add_flow_prio(
        fi.s2,
        fi.sink,
        1_000_000_000,
        SimTime::ZERO,
        2,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let d1 = sim.trace.flows[f1.0 as usize].delivered.bytes as f64;
    let d2 = sim.trace.flows[f2.0 as usize].delivered.bytes as f64;
    let ratio = d1 / d2;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "expected ~2:1 split, got {d1} : {d2} (ratio {ratio:.2})"
    );
    // And the link is fully used.
    let total_gbps = (d1 + d2) * 8.0 / end.as_secs_f64() / 1e9;
    assert!(total_gbps > 35.0, "link underused: {total_gbps:.1} Gbps");
}

#[test]
fn equal_weights_split_evenly() {
    let fi = fanin(Rate::from_gbps(40));
    let end = SimTime::from_ms(10);
    let mut sim = Simulator::new(
        fi.topo.clone(),
        three_vl_cfg(end, vec![0, 1, 1]),
        RouteSelect::DModK,
    );
    let f1 = sim.add_flow_prio(
        fi.s1,
        fi.sink,
        1_000_000_000,
        SimTime::ZERO,
        1,
        Box::new(FixedRate::line_rate()),
    );
    let f2 = sim.add_flow_prio(
        fi.s2,
        fi.sink,
        1_000_000_000,
        SimTime::ZERO,
        2,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let d1 = sim.trace.flows[f1.0 as usize].delivered.bytes as f64;
    let d2 = sim.trace.flows[f2.0 as usize].delivered.bytes as f64;
    let ratio = d1 / d2;
    assert!(
        (0.85..=1.18).contains(&ratio),
        "expected ~1:1, got {ratio:.2}"
    );
}

#[test]
fn an_idle_vl_does_not_strand_bandwidth() {
    // Only VL2 carries traffic: it must get the whole link despite its
    // smaller weight (work-conserving WRR).
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut sim = Simulator::new(
        db.topo.clone(),
        three_vl_cfg(SimTime::from_ms(10), vec![0, 3, 1]),
        RouteSelect::DModK,
    );
    let size = 10_000_000u64;
    let f = sim.add_flow_prio(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        2,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let fct = sim.trace.flows[f.0 as usize].fct().expect("completes");
    let ideal = Rate::from_gbps(40).serialize_time(size);
    assert!(
        fct.as_ps() < ideal.as_ps() * 11 / 10 + 20_000_000,
        "idle-VL bandwidth stranded: {fct} vs {ideal}"
    );
}

#[test]
fn per_vl_tcd_uses_share_scaled_max_ton() {
    // §4.5: "If multiple VLs are employed, max(T_on) can be changed to the
    // expected proportion of link bandwidth accordingly." The override
    // machinery wires a different TCD bound per VL.
    let cbfc = CbfcConfig::paper_simulation();
    let tc = cbfc.update_period;
    let mut cfg = three_vl_cfg(SimTime::from_ms(5), vec![0, 2, 1]);
    cfg.flow_control = FlowControlMode::Cbfc(cbfc);
    // VL1 gets 2/3 of the link, VL2 gets 1/3.
    let det_vl1 = TcdConfig::new(ib_max_ton(tc, 2.0 / 3.0), 50 * 1024, 5 * 1024);
    let det_vl2 = TcdConfig::new(ib_max_ton(tc, 1.0 / 3.0), 50 * 1024, 5 * 1024);
    cfg.detector_overrides = vec![
        (1, DetectorKind::Tcd(det_vl1)),
        (2, DetectorKind::Tcd(det_vl2)),
    ];
    // The override plumbing is what's under test: the run must be
    // well-formed and lossless with distinct detectors per VL.
    assert!(
        matches!(cfg.detector_for(1), DetectorKind::Tcd(c) if c.max_ton == ib_max_ton(tc, 2.0/3.0))
    );
    assert!(
        matches!(cfg.detector_for(2), DetectorKind::Tcd(c) if c.max_ton == ib_max_ton(tc, 1.0/3.0))
    );
    assert!(matches!(cfg.detector_for(0), DetectorKind::IbFecn { .. }));

    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::DModK);
    let a = sim.add_flow_prio(
        db.h0,
        db.h1,
        3_000_000,
        SimTime::ZERO,
        1,
        Box::new(FixedRate::line_rate()),
    );
    let b = sim.add_flow_prio(
        db.h0,
        db.h1,
        3_000_000,
        SimTime::ZERO,
        2,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    for f in [a, b] {
        assert_eq!(sim.trace.flows[f.0 as usize].delivered.bytes, 3_000_000);
    }
}

#[test]
fn strict_priority_remains_the_default() {
    // Without weights, VL1 (lower index) starves VL2 on a saturated link.
    let fi = fanin(Rate::from_gbps(40));
    let end = SimTime::from_ms(8);
    let mut cfg = SimConfig::ib_baseline(end);
    cfg.num_prios = 3;
    let mut sim = Simulator::new(fi.topo.clone(), cfg, RouteSelect::DModK);
    let hi = sim.add_flow_prio(
        fi.s1,
        fi.sink,
        1_000_000_000,
        SimTime::ZERO,
        1,
        Box::new(FixedRate::line_rate()),
    );
    let lo = sim.add_flow_prio(
        fi.s2,
        fi.sink,
        1_000_000_000,
        SimTime::ZERO,
        2,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let d_hi = sim.trace.flows[hi.0 as usize].delivered.bytes as f64;
    let d_lo = sim.trace.flows[lo.0 as usize].delivered.bytes as f64;
    assert!(
        d_hi > 5.0 * d_lo.max(1.0),
        "strict priority should starve the lower VL: {d_hi} vs {d_lo}"
    );
}

#[test]
fn cee_priority_preemption_does_not_break_tcd() {
    // Paper §4.5: under CEE strict priority, a resumed low-priority queue
    // can be preempted by high-priority traffic, stretching its effective
    // RESUME period — but max(T_on) is an upper bound, so TCD must still
    // classify the low-priority victim ports correctly (no false CE).
    use lossless_netsim::topology::figure2;
    use tcd_core::baseline::RedConfig;
    use tcd_core::model::cee_max_ton;

    let fig = figure2(Default::default());
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(5));
    cfg.num_prios = 3; // 0 feedback, 1 high, 2 low
    let tcd = TcdConfig::new(
        cee_max_ton(Rate::from_gbps(40), 1000, SimDuration::from_us(4), 0.05),
        200 * 1024,
        5 * 1024,
    );
    cfg.detector = DetectorKind::TcdRed(tcd, RedConfig::dcqcn_40g());
    let mut sim = Simulator::new(fig.topo.clone(), cfg, RouteSelect::Ecmp);

    // Low-priority victim crossing the chain to R0.
    let victim = sim.add_flow_prio(
        fig.s0,
        fig.r0,
        3_000_000,
        SimTime::ZERO,
        2,
        Box::new(FixedRate::new(Rate::from_gbps(5))),
    );
    // Low-priority incast congesting R1 (pauses spread on priority 2).
    for &a in fig.bursters.iter().take(10) {
        sim.add_flow_prio(
            a,
            fig.r1,
            1_000_000,
            SimTime::ZERO,
            2,
            Box::new(FixedRate::line_rate()),
        );
    }
    // High-priority traffic sharing the chain links: preempts priority 2
    // whenever it resumes.
    sim.add_flow_prio(
        fig.s1,
        fig.r0,
        10_000_000,
        SimTime::ZERO,
        1,
        Box::new(FixedRate::new(Rate::from_gbps(8))),
    );
    sim.run();
    let d = sim.trace.flows[victim.0 as usize].delivered;
    assert!(d.pkts > 0, "victim must make progress");
    assert_eq!(
        d.ce, 0,
        "preemption-stretched RESUME periods must not cause false CE"
    );
    assert!(sim.trace.pause_frames > 0, "priority-2 pauses expected");
}
