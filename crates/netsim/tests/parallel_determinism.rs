//! Bit-identity of the conservative-parallel executor: the same
//! scenario run serially and at every worker count must agree on every
//! observable output — event count, per-flow deliveries, the full mark
//! and port-sample streams, the delivery stream, and the merged metrics
//! registry fingerprint — on both event-queue cores, with zero
//! window-barrier causality violations.
//!
//! These tests live in the netsim crate (not the workspace root) on
//! purpose: the root crate's test targets enable the `audit` feature,
//! which compiles the parallel executor out (audit hooks are serial by
//! design), so a root-level "parallel" test would silently exercise the
//! serial fallback. Here the default feature set applies and the
//! parallel path genuinely engages.

#![cfg(not(feature = "audit"))]

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::SimConfig;
use lossless_netsim::event::QueueKind;
use lossless_netsim::fault::FaultPlan;
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, fat_tree, leaf_spine, NodeId, NodeKind, Topology};
use lossless_netsim::Simulator;
use proptest::prelude::*;

/// Every observable surface of a run, captured as owned values so two
/// runs can be compared with one `assert_eq!`. The mark, port-sample
/// and delivery streams are compared through their `Debug` rendering:
/// that covers every field (including timestamps and code points), so
/// a parallel run that reorders or re-times anything fails loudly.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    events: u64,
    forwarded: u64,
    drops: u64,
    pause_frames: u64,
    completed: usize,
    flows: String,
    marks: String,
    port_samples: String,
    deliveries: String,
    registry_fp: u64,
}

fn observe(sim: &Simulator) -> Observed {
    Observed {
        events: sim.trace.events,
        forwarded: sim.trace.forwarded_pkts,
        drops: sim.trace.drops,
        pause_frames: sim.trace.pause_frames,
        completed: sim.trace.completed_count,
        flows: format!("{:?}", sim.trace.flows),
        marks: format!("{:?}", sim.trace.marks),
        port_samples: format!("{:?}", sim.trace.port_samples),
        deliveries: format!("{:?}", sim.trace.deliveries),
        registry_fp: sim.obs_registry().fingerprint(),
    }
}

/// All switch egresses — fault-plan candidates, as in `fault_order.rs`.
fn candidates(topo: &Topology) -> Vec<(NodeId, u16)> {
    let mut out = Vec::new();
    for n in 0..topo.node_count() as u32 {
        let id = NodeId(n);
        if topo.kind(id) != NodeKind::Switch {
            continue;
        }
        for p in 0..topo.ports(id).len() as u16 {
            out.push((id, p));
        }
    }
    out
}

/// The globals-heavy scenario: a k=4 fat-tree under a permutation plus
/// a small incast, with periodic trace ticks, sampled ports and a
/// seeded fault plan. Trace ticks and fault events are engine-global
/// events, so this drives the executor's gather/re-scatter machinery
/// on every tick, not just the steady-state window loop.
fn run_fat_tree(queue: QueueKind, partitions: usize) -> Observed {
    let ft = fat_tree(4, Rate::from_gbps(40), SimDuration::from_us(1));
    let mut cfg = SimConfig::cee_baseline(SimTime::from_us(400));
    cfg.queue = queue;
    // Explicit, including for the serial reference: a nonzero value
    // overrides the TCD_PARTITIONS environment variable, so these runs
    // mean what they say even under `TCD_PARTITIONS=8 cargo test`.
    cfg.partitions = partitions;
    cfg.trace_interval = Some(SimDuration::from_us(20));
    cfg.sample_ports = vec![(ft.edges[0], 0, 0), (ft.aggs[0], 0, 0), (ft.cores[0], 0, 0)];
    cfg.fault_plan = FaultPlan::random(7, &candidates(&ft.topo), SimTime::from_us(300), 4);

    let mut sim = Simulator::new(ft.topo, cfg, RouteSelect::Ecmp);
    sim.record_marks(true);
    sim.record_deliveries(true);
    let n = ft.hosts.len();
    for i in 0..n {
        // Permutation shift-by-one...
        sim.add_flow(
            ft.hosts[i],
            ft.hosts[(i + 1) % n],
            100_000,
            SimTime::from_ns(200 * i as u64),
            Box::new(FixedRate::line_rate()),
        );
    }
    for i in 1..5 {
        // ...plus a 4-way incast onto host 0.
        sim.add_flow(
            ft.hosts[i * 3],
            ft.hosts[0],
            60_000,
            SimTime::from_us(40),
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    assert_eq!(
        sim.par_causality_violations(),
        0,
        "window barrier admitted an event below the causality ceiling"
    );
    observe(&sim)
}

/// The globals-free scenario: a leaf-spine incast with no trace ticks,
/// no sampled ports and no faults. Nothing ever forces a mid-run
/// gather, so an entire epoch runs window-by-window — the pure
/// steady-state path.
fn run_leaf_spine(queue: QueueKind, partitions: usize) -> Observed {
    let ls = leaf_spine(3, 2, 4, Rate::from_gbps(40), SimDuration::from_us(1));
    let mut cfg = SimConfig::cee_baseline(SimTime::from_us(400));
    cfg.queue = queue;
    cfg.partitions = partitions;

    let mut sim = Simulator::new(ls.topo, cfg, RouteSelect::Ecmp);
    sim.record_marks(true);
    sim.record_deliveries(true);
    let n = ls.hosts.len();
    for i in 1..n {
        sim.add_flow(
            ls.hosts[i],
            ls.hosts[0],
            150_000,
            SimTime::from_ns(100 * i as u64),
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    assert_eq!(sim.par_causality_violations(), 0);
    observe(&sim)
}

#[test]
fn fat_tree_identical_at_every_worker_count() {
    let serial = run_fat_tree(QueueKind::Wheel, 1);
    assert!(serial.events > 0 && serial.forwarded > 0);
    for workers in [2, 4, 8] {
        let par = run_fat_tree(QueueKind::Wheel, workers);
        assert_eq!(serial, par, "wheel run diverged at {workers} workers");
    }
}

#[test]
fn fat_tree_identical_on_the_heap_core() {
    let serial = run_fat_tree(QueueKind::Heap, 1);
    // The cores agree with each other...
    assert_eq!(serial, run_fat_tree(QueueKind::Wheel, 1));
    for workers in [2, 4, 8] {
        // ...and the parallel heap run agrees with the serial heap run.
        let par = run_fat_tree(QueueKind::Heap, workers);
        assert_eq!(serial, par, "heap run diverged at {workers} workers");
    }
}

#[test]
fn leaf_spine_identical_at_every_worker_count() {
    let serial = run_leaf_spine(QueueKind::Wheel, 1);
    assert!(serial.events > 0 && serial.forwarded > 0);
    for workers in [2, 4, 8] {
        assert_eq!(
            serial,
            run_leaf_spine(QueueKind::Wheel, workers),
            "wheel run diverged at {workers} workers"
        );
        assert_eq!(
            serial,
            run_leaf_spine(QueueKind::Heap, workers),
            "heap run diverged at {workers} workers"
        );
    }
}

/// One randomized scenario: topology shape, flow layout and fault count
/// all seeded. Returns (serial, parallel-at-3) so the property below is
/// a single equality.
fn run_random(shape: u8, seed: u64, faults: usize, partitions: usize) -> Observed {
    let (topo, hosts): (Topology, Vec<NodeId>) = match shape % 3 {
        0 => {
            let d = dumbbell(Rate::from_gbps(40), SimDuration::from_us(2));
            (d.topo, vec![d.h0, d.h1])
        }
        1 => {
            let ls = leaf_spine(2, 2, 3, Rate::from_gbps(40), SimDuration::from_us(1));
            (ls.topo, ls.hosts)
        }
        _ => {
            let ft = fat_tree(4, Rate::from_gbps(40), SimDuration::from_us(1));
            (ft.topo, ft.hosts)
        }
    };
    let mut cfg = SimConfig::cee_baseline(SimTime::from_us(300));
    cfg.partitions = partitions;
    cfg.fault_plan = FaultPlan::random(seed, &candidates(&topo), SimTime::from_us(200), faults);

    let mut sim = Simulator::new(topo, cfg, RouteSelect::Ecmp);
    sim.record_marks(true);
    sim.record_deliveries(true);
    let n = hosts.len();
    for i in 0..n {
        sim.add_flow(
            hosts[(i + seed as usize) % n],
            hosts[(i + 1 + seed as usize) % n],
            80_000,
            SimTime::from_ns(150 * i as u64),
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    assert_eq!(sim.par_causality_violations(), 0);
    observe(&sim)
}

proptest! {
    // Each case is two full simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random topology + random fault plan: a 3-worker parallel run is
    /// bit-identical to serial, with zero causality violations.
    #[test]
    fn random_scenarios_identical_serial_vs_parallel(
        shape in any::<u8>(),
        seed in any::<u64>(),
        faults in 0usize..6,
    ) {
        let serial = run_random(shape, seed, faults, 1);
        let par = run_random(shape, seed, faults, 3);
        prop_assert_eq!(serial, par, "parallel run diverged from serial");
    }
}
