//! End-to-end integration tests of the simulator engine: packet delivery,
//! flow completion timing, PFC/CBFC losslessness, and determinism.

use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::{DetectorKind, SimConfig};
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, figure2, Figure2Options};
use lossless_netsim::{Rate, SimDuration, SimTime, Simulator};

fn cee(end_ms: u64) -> SimConfig {
    SimConfig::cee_baseline(SimTime::from_ms(end_ms))
}

fn ib(end_ms: u64) -> SimConfig {
    SimConfig::ib_baseline(SimTime::from_ms(end_ms))
}

#[test]
fn single_flow_completes_with_expected_fct() {
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut sim = Simulator::new(db.topo.clone(), cee(10), RouteSelect::Ecmp);
    let size = 100_000u64; // 100 packets of 1000 B
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();

    let rec = &sim.trace.flows[f.0 as usize];
    assert_eq!(rec.delivered.bytes, size, "all bytes delivered");
    let fct = rec.fct().expect("flow completed");
    // Line-rate pipeline: 100 packets back-to-back at 40G (200ns each)
    // through two hops, plus 2 propagation delays and one extra
    // store-and-forward serialization at the switch.
    let ser = Rate::from_gbps(40).serialize_time(1000);
    let expected = ser * 100 + SimDuration::from_us(8) + ser;
    assert_eq!(fct, expected, "expected {expected}, measured {fct}");
}

#[test]
fn paced_flow_matches_configured_rate() {
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut sim = Simulator::new(db.topo.clone(), cee(10), RouteSelect::Ecmp);
    let size = 1_000_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::new(Rate::from_gbps(10))),
    );
    sim.run();
    let fct = sim.trace.flows[f.0 as usize].fct().unwrap();
    // 1 MB at 10 Gbps = 800 µs; allow the fixed pipeline offset.
    let ideal = Rate::from_gbps(10).serialize_time(size);
    assert!(fct >= ideal, "cannot beat the paced rate");
    assert!(
        fct.as_ps() < ideal.as_ps() + 20_000_000,
        "paced FCT {fct} too far above ideal {ideal}"
    );
}

#[test]
fn two_flows_share_bottleneck_without_loss() {
    // Two 40G senders into one 40G sink: PFC must keep everything lossless
    // and both flows must finish with all bytes.
    let f2 = figure2(Figure2Options::default());
    let mut sim = Simulator::new(f2.topo.clone(), cee(20), RouteSelect::Ecmp);
    let size = 2_000_000u64;
    let a = sim.add_flow(
        f2.bursters[0],
        f2.r1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    let b = sim.add_flow(
        f2.bursters[1],
        f2.r1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    for f in [a, b] {
        let rec = &sim.trace.flows[f.0 as usize];
        assert_eq!(rec.delivered.bytes, size, "lossless delivery");
        assert!(rec.end.is_some(), "completed");
    }
    // Two line-rate senders must have triggered PFC.
    assert!(sim.trace.pause_frames > 0, "expected PAUSE frames");
    // Aggregate completion cannot beat the bottleneck: 4 MB at 40 Gbps.
    let last_end = sim.trace.completed().map(|r| r.end.unwrap()).max().unwrap();
    let min_time = Rate::from_gbps(40).serialize_time(2 * size);
    assert!(last_end.saturating_since(SimTime::ZERO) >= min_time);
}

#[test]
fn incast_is_lossless_and_fair_ish() {
    // 15 bursters × 500 KB into R1 at line rate — the §3 burst pattern.
    let f2 = figure2(Figure2Options::default());
    let mut sim = Simulator::new(f2.topo.clone(), cee(40), RouteSelect::Ecmp);
    let size = 500_000u64;
    let ids: Vec<_> = f2
        .bursters
        .iter()
        .map(|&a| {
            sim.add_flow(
                a,
                f2.r1,
                size,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            )
        })
        .collect();
    sim.run();
    for f in &ids {
        let rec = &sim.trace.flows[f.0 as usize];
        assert_eq!(rec.delivered.bytes, size, "flow {f:?} lost bytes");
        assert!(rec.end.is_some(), "flow {f:?} unfinished");
    }
    assert!(sim.trace.pause_frames > 0);
    // FIFO + per-ingress PFC gives roughly equal completion: the spread of
    // completion times should be modest (within 30% of the mean).
    let ends: Vec<f64> = ids
        .iter()
        .map(|f| sim.trace.flows[f.0 as usize].end.unwrap().as_ms_f64())
        .collect();
    let mean = ends.iter().sum::<f64>() / ends.len() as f64;
    for e in &ends {
        assert!(
            (e - mean).abs() / mean < 0.3,
            "unfair completion: {e} vs mean {mean}"
        );
    }
}

#[test]
fn ib_single_flow_completes() {
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut sim = Simulator::new(db.topo.clone(), ib(10), RouteSelect::DModK);
    let size = 200_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let rec = &sim.trace.flows[f.0 as usize];
    assert_eq!(rec.delivered.bytes, size);
    assert!(rec.end.is_some());
}

#[test]
fn ib_incast_is_lossless() {
    let f2 = figure2(Figure2Options::default());
    let mut sim = Simulator::new(f2.topo.clone(), ib(40), RouteSelect::DModK);
    let size = 300_000u64;
    let ids: Vec<_> = f2
        .bursters
        .iter()
        .take(8)
        .map(|&a| {
            sim.add_flow(
                a,
                f2.r1,
                size,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            )
        })
        .collect();
    sim.run();
    for f in &ids {
        let rec = &sim.trace.flows[f.0 as usize];
        assert_eq!(
            rec.delivered.bytes, size,
            "flow {f:?} lost bytes under CBFC"
        );
        assert!(rec.end.is_some());
    }
}

#[test]
fn cross_traffic_does_not_starve() {
    // F1 (S1->R1) at line rate against a 5G constant F0 (S0->R0): both
    // complete; F0 is unaffected by R1's congestion only via pauses.
    let f2 = figure2(Figure2Options::default());
    let mut sim = Simulator::new(f2.topo.clone(), cee(50), RouteSelect::Ecmp);
    let f1 = sim.add_flow(
        f2.s1,
        f2.r1,
        5_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    let f0 = sim.add_flow(
        f2.s0,
        f2.r0,
        1_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::new(Rate::from_gbps(5))),
    );
    sim.run();
    assert!(sim.trace.flows[f1.0 as usize].end.is_some());
    assert!(sim.trace.flows[f0.0 as usize].end.is_some());
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let f2 = figure2(Figure2Options::default());
        let mut cfg = cee(20);
        cfg.detector = DetectorKind::EcnRed(tcd_core::baseline::RedConfig::dcqcn_40g());
        let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
        for &a in f2.bursters.iter().take(6) {
            sim.add_flow(
                a,
                f2.r1,
                400_000,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            );
        }
        sim.add_flow(
            f2.s1,
            f2.r1,
            800_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
        sim.run();
        let ends: Vec<_> = sim
            .trace
            .flows
            .iter()
            .map(|r| r.end.map(|t| t.as_ps()))
            .collect();
        let marks: Vec<_> = sim
            .trace
            .flows
            .iter()
            .map(|r| (r.delivered.ce, r.delivered.ue))
            .collect();
        (ends, marks, sim.trace.pause_frames)
    };
    assert_eq!(
        run(),
        run(),
        "identical configs must produce identical runs"
    );
}

#[test]
fn pfc_keeps_switch_buffers_bounded() {
    // With X_off = 320 KB per (ingress, prio), per-ingress usage must stay
    // near the threshold: total buffered <= #ingress * (X_off + headroom).
    let f2 = figure2(Figure2Options::default());
    let mut sim = Simulator::new(f2.topo.clone(), cee(30), RouteSelect::Ecmp);
    for &a in &f2.bursters {
        sim.add_flow(
            a,
            f2.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.add_flow(
        f2.s1,
        f2.r1,
        2_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    // The in-flight-during-pause headroom at 40G over 4 µs links is
    // ~2 * (BDP + MTU) ≈ 42 KB; allow a safe 64 KB per ingress.
    // (Checked per switch via the high-water mark.)
    // 17 ports max at T3 (15 bursters + 2 hosts + chain).
    // We only assert the global sanity bound here.
    // Access via trace: not exposed per switch; assert losslessness instead.
    for r in sim.trace.flows.iter() {
        assert_eq!(r.delivered.bytes, r.size);
    }
}
