//! Property tests of the fault plan against the engine: arbitrary seeded
//! interleavings of link flaps, rate degradations and route changes must
//! leave every observable output bit-deterministic across both
//! event-queue cores, never cost a packet on the lossless fabrics, and
//! (in audit builds) never violate an invariant family — in particular
//! Causality: fault dispatch never schedules into the past.

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::SimConfig;
use lossless_netsim::event::QueueKind;
use lossless_netsim::fault::FaultPlan;
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, figure2, Figure2Options, NodeId, NodeKind, Topology};
use lossless_netsim::Simulator;
use proptest::prelude::*;

/// Faults land inside the first 300 µs; the run gets another 100 µs of
/// healthy fabric to drain and recover.
fn horizon() -> SimTime {
    SimTime::from_us(300)
}

fn end() -> SimTime {
    SimTime::from_us(400)
}

/// Every switch egress in the topology is a fault candidate (the plan
/// downs both directions of the attached link, so host access links are
/// covered through their switch end).
fn candidates(topo: &Topology) -> Vec<(NodeId, u16)> {
    let mut out = Vec::new();
    for n in 0..topo.node_count() as u32 {
        let id = NodeId(n);
        if topo.kind(id) != NodeKind::Switch {
            continue;
        }
        for p in 0..topo.ports(id).len() as u16 {
            out.push((id, p));
        }
    }
    out
}

/// The observable surface a faulted run is judged on.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    events: u64,
    forwarded: u64,
    delivered: Vec<u64>,
    drops: u64,
    registry_fp: u64,
}

/// Build and run one faulted scenario; panics (inside proptest) on any
/// invariant violation in audit builds.
fn run_one(use_fig2: bool, queue: QueueKind, seed: u64, n: usize) -> Observed {
    let (topo, flows, route_set): (Topology, Vec<(NodeId, NodeId)>, Vec<Vec<NodeId>>) = if use_fig2
    {
        let f = figure2(Figure2Options::default());
        let path = vec![f.s0, f.t[0], f.t[1], f.t[2], f.t[3], f.r0];
        (
            f.topo,
            vec![(f.s0, f.r0), (f.s2, f.r0), (f.s1, f.r1)],
            vec![path],
        )
    } else {
        let d = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        (
            d.topo,
            vec![(d.h0, d.h1), (d.h1, d.h0)],
            vec![vec![d.h0, d.sw, d.h1]],
        )
    };

    let mut cfg = SimConfig::cee_baseline(end());
    cfg.queue = queue;
    let mut plan = FaultPlan::random(seed, &candidates(&topo), horizon(), n);
    // A routing swap mid-faults and the revert later: the set pins the
    // (only) path explicitly, so traffic is unchanged but the atomic
    // table-swap machinery runs interleaved with flaps and degrades.
    plan.route_sets.push(route_set);
    plan.route_change(SimTime::from_ps(horizon().as_ps() / 3), Some(0));
    plan.route_change(SimTime::from_ps(horizon().as_ps() * 2 / 3), None);
    cfg.fault_plan = plan;

    let mut sim = Simulator::new(topo, cfg, RouteSelect::Ecmp);
    #[cfg(feature = "audit")]
    {
        sim.audit_mut().config_mut().mode = lossless_netsim::AuditMode::Record;
        sim.audit_mut().config_mut().checkpoint_every = 512;
    }
    for (i, &(src, dst)) in flows.iter().enumerate() {
        sim.add_flow(
            src,
            dst,
            100_000,
            SimTime::from_us(i as u64),
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();

    // Every plan pairs onset with recovery before the horizon, so the
    // fabric must be healthy again by the end — whatever the
    // interleaving (including overlapping windows on one link).
    assert!(
        sim.links().all_healthy(),
        "paired plan must leave the fabric healthy"
    );
    #[cfg(feature = "audit")]
    {
        use lossless_netsim::InvariantFamily;
        let audit = sim.audit();
        assert!(
            audit.is_clean(),
            "faulted run violated invariants: {:?}",
            audit.violations()
        );
        // Causality clean ⇒ nothing was scheduled into the past.
        assert!(audit.checks(InvariantFamily::Causality) > 0);
        assert!(audit.checks(InvariantFamily::Liveness) > 0);
    }

    Observed {
        events: sim.trace.events,
        forwarded: sim.trace.forwarded_pkts,
        delivered: sim.trace.flows.iter().map(|f| f.delivered.bytes).collect(),
        drops: sim.trace.drops,
        registry_fp: sim.obs_registry().fingerprint(),
    }
}

proptest! {
    // Full simulations per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded interleaving of flaps, degradations and route changes:
    /// lossless (zero drops), bit-deterministic on repeat, and
    /// bit-identical across the wheel and heap queue cores.
    #[test]
    fn random_fault_plans_stay_lossless_and_deterministic(
        seed in any::<u64>(),
        n in 0usize..8,
        use_fig2 in any::<bool>(),
    ) {
        let wheel = run_one(use_fig2, QueueKind::Wheel, seed, n);
        prop_assert_eq!(wheel.drops, 0, "lossless fabric dropped under faults");

        let again = run_one(use_fig2, QueueKind::Wheel, seed, n);
        prop_assert_eq!(&wheel, &again, "faulted run is not reproducible");

        let heap = run_one(use_fig2, QueueKind::Heap, seed, n);
        prop_assert_eq!(&wheel, &heap, "queue cores diverge under faults");
    }
}
