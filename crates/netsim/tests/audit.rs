//! The invariant auditor, exercised end-to-end: full simulations must come
//! out checkpoint-clean across both lossless fabrics, and each invariant
//! family must actually fire when fed a violating observation.

#![cfg(feature = "audit")]

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::SimConfig;
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, fat_tree, NodeId};
use lossless_netsim::{AuditMode, InvariantFamily, Simulator};
use tcd_core::{CodePoint, TernaryState};

/// Every family the auditor covers, for exhaustive positive assertions.
const FAMILIES: [InvariantFamily; 6] = [
    InvariantFamily::Conservation,
    InvariantFamily::BufferAccounting,
    InvariantFamily::ProtocolLegality,
    InvariantFamily::StateMachine,
    InvariantFamily::Causality,
    InvariantFamily::Liveness,
];

fn assert_clean_and_thorough(sim: &Simulator) {
    let audit = sim.audit();
    assert!(
        audit.is_clean(),
        "invariant violations: {:?}",
        audit.violations()
    );
    for fam in FAMILIES {
        assert!(
            audit.checks(fam) > 0,
            "family {} was never checked",
            fam.name()
        );
    }
}

#[test]
fn cee_pause_storm_runs_invariant_clean() {
    // 40G wire into a 10G receiver: the edge pauses its ToR, PFC spreads,
    // and the detector walks its state machine — all under dense
    // checkpoints.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(15));
    cfg.host_rx_rate = Some(Rate::from_gbps(10));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::Ecmp);
    sim.audit_mut().config_mut().checkpoint_every = 256;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        4_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    assert_eq!(sim.trace.flows[f.0 as usize].delivered.bytes, 4_000_000);
    assert!(sim.trace.pause_frames > 0, "the scenario must pause");
    assert_clean_and_thorough(&sim);
    assert!(
        sim.audit().transitions_taken() > 0,
        "the detector must have moved for state-machine auditing to bite"
    );
}

#[test]
fn ib_credit_loop_conserves_cbfc_credits() {
    // The slow receiver forces the credit loop to actually gate: FCTBS,
    // ABR, and in-flight blocks must reconcile at every checkpoint.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut cfg = SimConfig::ib_baseline(SimTime::from_ms(15));
    cfg.host_rx_rate = Some(Rate::from_gbps(10));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::DModK);
    sim.audit_mut().config_mut().checkpoint_every = 256;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        4_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    assert_eq!(sim.trace.flows[f.0 as usize].delivered.bytes, 4_000_000);
    assert_clean_and_thorough(&sim);
}

#[test]
fn fat_tree_incast_runs_invariant_clean() {
    // Multi-switch CEE incast: shared-buffer accounting and PFC legality
    // across edge, aggregation, and core layers.
    let ft = fat_tree(4, Rate::from_gbps(40), SimDuration::from_us(4));
    let cfg = SimConfig::cee_baseline(SimTime::from_ms(8));
    let mut sim = Simulator::new(ft.topo.clone(), cfg, RouteSelect::Ecmp);
    sim.audit_mut().config_mut().checkpoint_every = 1024;
    let victim = ft.hosts[0];
    for (i, &src) in ft.hosts.iter().enumerate().skip(1).take(6) {
        sim.add_flow(
            src,
            victim,
            500_000,
            SimTime::from_us(i as u64),
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    assert_eq!(sim.trace.drops, 0, "lossless fabric must not drop");
    assert_clean_and_thorough(&sim);
}

#[test]
fn record_mode_captures_structured_violations_without_aborting() {
    // Feed the auditor one violating observation per family (through the
    // simulator's handle, the way negative experiments would) and check
    // that each is recorded with its context instead of panicking.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let cfg = SimConfig::cee_baseline(SimTime::from_ms(1));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::Ecmp);
    sim.audit_mut().config_mut().mode = AuditMode::Record;

    let t = SimTime::from_us(7);
    let node = NodeId(2);
    let a = sim.audit_mut();
    // State machine: an Undetermined claim with no OFF period to justify it.
    a.note_state(t, node, 1, 0, TernaryState::Undetermined, 0);
    // State machine: a CE mark from a port that believes it is undetermined.
    a.note_mark(
        t,
        node,
        1,
        0,
        CodePoint::CongestionEncountered,
        TernaryState::Undetermined,
    );
    // Protocol legality: PAUSE below X_off, RESUME above X_on.
    a.pfc_pause_sent(t, node, 1, 0, 100, 320_000);
    a.pfc_resume_sent(t, node, 1, 0, 400_000, 318_000);
    // Buffer accounting: a scheduler that found its queue empty.
    a.empty_dequeue(t, node, 1, 0, 1500);

    assert_eq!(sim.audit().total_violations(), 5);
    assert_eq!(sim.audit().violations().len(), 5);
    let families: Vec<&str> = sim
        .audit()
        .violations()
        .iter()
        .map(|v| v.family.name())
        .collect();
    assert!(families.contains(&"state-machine"));
    assert!(families.contains(&"protocol-legality"));
    assert!(families.contains(&"buffer-accounting"));
    let rendered = format!("{}", sim.audit().violations()[0]);
    assert!(rendered.contains("node=2"), "context missing: {rendered}");
    assert!(rendered.contains("port=1"), "context missing: {rendered}");

    // The simulation itself still runs to completion under Record mode.
    sim.run();
}

#[test]
fn checkpoints_do_not_perturb_the_event_stream() {
    // Two identical runs, one checkpointing every 64 events and one only
    // at the end, must process exactly the same number of events — the
    // auditor observes, never schedules.
    let run = |every: u64| {
        let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(5));
        cfg.host_rx_rate = Some(Rate::from_gbps(10));
        let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::Ecmp);
        sim.audit_mut().config_mut().checkpoint_every = every;
        sim.add_flow(
            db.h0,
            db.h1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
        sim.run();
        (sim.trace.events, sim.trace.forwarded_pkts)
    };
    assert_eq!(run(64), run(u64::MAX));
}
