//! Property-based tests of the event queue's ordering contract: pops come
//! out sorted by `(time, insertion sequence)` — i.e. time-ordered with
//! FIFO ties — for any schedule whatsoever. Every determinism guarantee
//! in the workspace (including the parallel harness's bit-identical
//! sweeps) reduces to this property.

use lossless_flowctl::SimTime;
use lossless_netsim::event::{Event, EventQueue};
use lossless_netsim::NodeId;
use proptest::prelude::*;

/// Tag an event with its schedule index so the pop order is observable.
fn tagged(i: u32) -> Event {
    Event::PortTx {
        node: NodeId(i),
        port: 0,
    }
}

fn tag(ev: &Event) -> u32 {
    match ev {
        Event::PortTx { node, .. } => node.0,
        _ => unreachable!("only PortTx events are scheduled here"),
    }
}

proptest! {
    /// Pops are sorted by time, and among equal times by insertion order.
    #[test]
    fn pops_sorted_by_time_then_fifo(times in proptest::collection::vec(0u64..50, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), tagged(i as u32));
        }
        let mut popped: Vec<(SimTime, u32)> = Vec::new();
        while let Some((t, ev)) = q.pop() {
            popped.push((t, tag(&ev)));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (w[0], w[1]);
            prop_assert!(t0 <= t1, "time order violated: {t0} after {t1}");
            if t0 == t1 {
                prop_assert!(i0 < i1, "FIFO tie-break violated at {t0}: {i0} before {i1}");
            }
        }
        // Each timestamp's events come out exactly in schedule order.
        let mut expect: Vec<(u64, u32)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        expect.sort(); // stable: preserves schedule order within a timestamp
        let got: Vec<(u64, u32)> = popped.iter().map(|&(t, i)| (t.as_ps() / 1000, i)).collect();
        prop_assert_eq!(got, expect);
    }

    /// Interleaving pops with schedules keeps the contract: events
    /// scheduled later for the same instant still run after everything
    /// already queued there.
    #[test]
    fn interleaved_schedule_pop_keeps_fifo(
        rounds in proptest::collection::vec((0u64..20, 1usize..5), 1..50)
    ) {
        let mut q = EventQueue::new();
        let mut next_tag = 0u32;
        let mut popped: Vec<(SimTime, u32)> = Vec::new();
        for (dt, n) in rounds {
            let base = q.now();
            for _ in 0..n {
                q.schedule(base + lossless_flowctl::SimDuration::from_ns(dt), tagged(next_tag));
                next_tag += 1;
            }
            if let Some((t, ev)) = q.pop() {
                popped.push((t, tag(&ev)));
            }
        }
        while let Some((t, ev)) = q.pop() {
            popped.push((t, tag(&ev)));
        }
        prop_assert_eq!(popped.len(), next_tag as usize);
        for w in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (w[0], w[1]);
            prop_assert!(t0 <= t1);
            if t0 == t1 {
                prop_assert!(i0 < i1, "FIFO tie-break violated at {t0}: {i0} before {i1}");
            }
        }
    }
}
