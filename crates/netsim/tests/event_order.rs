//! Property-based tests of the event queue's ordering contract: pops come
//! out sorted by `(time, insertion sequence)` — i.e. time-ordered with
//! FIFO ties — for any schedule whatsoever. Every determinism guarantee
//! in the workspace (including the parallel harness's bit-identical
//! sweeps) reduces to this property.

use lossless_flowctl::{SimDuration, SimTime};
use lossless_netsim::event::{Event, EventQueue, QueueKind};
use lossless_netsim::NodeId;
use proptest::prelude::*;

/// Tag an event with its schedule index so the pop order is observable.
fn tagged(i: u32) -> Event {
    Event::PortTx {
        node: NodeId(i),
        port: 0,
    }
}

fn tag(ev: &Event) -> u32 {
    match ev {
        Event::PortTx { node, .. } => node.0,
        _ => unreachable!("only PortTx events are scheduled here"),
    }
}

proptest! {
    /// Pops are sorted by time, and among equal times by insertion order.
    #[test]
    fn pops_sorted_by_time_then_fifo(times in proptest::collection::vec(0u64..50, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), tagged(i as u32));
        }
        let mut popped: Vec<(SimTime, u32)> = Vec::new();
        while let Some((t, ev)) = q.pop() {
            popped.push((t, tag(&ev)));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (w[0], w[1]);
            prop_assert!(t0 <= t1, "time order violated: {t0} after {t1}");
            if t0 == t1 {
                prop_assert!(i0 < i1, "FIFO tie-break violated at {t0}: {i0} before {i1}");
            }
        }
        // Each timestamp's events come out exactly in schedule order.
        let mut expect: Vec<(u64, u32)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        expect.sort(); // stable: preserves schedule order within a timestamp
        let got: Vec<(u64, u32)> = popped.iter().map(|&(t, i)| (t.as_ps() / 1000, i)).collect();
        prop_assert_eq!(got, expect);
    }

    /// Interleaving pops with schedules keeps the contract: events
    /// scheduled later for the same instant still run after everything
    /// already queued there.
    #[test]
    fn interleaved_schedule_pop_keeps_fifo(
        rounds in proptest::collection::vec((0u64..20, 1usize..5), 1..50)
    ) {
        let mut q = EventQueue::new();
        let mut next_tag = 0u32;
        let mut popped: Vec<(SimTime, u32)> = Vec::new();
        for (dt, n) in rounds {
            let base = q.now();
            for _ in 0..n {
                q.schedule(base + lossless_flowctl::SimDuration::from_ns(dt), tagged(next_tag));
                next_tag += 1;
            }
            if let Some((t, ev)) = q.pop() {
                popped.push((t, tag(&ev)));
            }
        }
        while let Some((t, ev)) = q.pop() {
            popped.push((t, tag(&ev)));
        }
        prop_assert_eq!(popped.len(), next_tag as usize);
        for w in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (w[0], w[1]);
            prop_assert!(t0 <= t1);
            if t0 == t1 {
                prop_assert!(i0 < i1, "FIFO tie-break violated at {t0}: {i0} before {i1}");
            }
        }
    }

    /// Far-future schedules keep the total order on both cores even when
    /// delays span every wheel level and the overflow list (exponents up
    /// to 2^50 ps reach past the ~9 min wheel horizon), and level
    /// boundaries are crossed while popping.
    #[test]
    fn far_future_delays_cross_levels_in_order(
        shifts in proptest::collection::vec(0u32..51, 1..120)
    ) {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind);
            for (i, &s) in shifts.iter().enumerate() {
                // 2^s ps plus a small offset so equal exponents still
                // collide on timestamps now and then.
                q.schedule(SimTime::from_ps((1u64 << s) + (i as u64 % 3)), tagged(i as u32));
            }
            let mut expect: Vec<(u64, u32)> = shifts
                .iter()
                .enumerate()
                .map(|(i, &s)| ((1u64 << s) + (i as u64 % 3), i as u32))
                .collect();
            expect.sort(); // stable: schedule order within a timestamp
            let mut got = Vec::new();
            while let Some((t, ev)) = q.pop() {
                got.push((t.as_ps(), tag(&ev)));
            }
            prop_assert_eq!(&got, &expect, "core {:?} broke the total order", kind);
        }
    }

    /// Zero-delay schedules issued *while a same-timestamp batch drains*
    /// run at that same instant, after everything already queued there —
    /// on both cores. This is the engine's self-post pattern (a handler
    /// scheduling follow-up work at `now`).
    #[test]
    fn zero_delay_during_batch_drain_stays_fifo(
        group in 1usize..8,
        post_counts in proptest::collection::vec(0usize..3, 1..20)
    ) {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind);
            let t0 = SimTime::from_ns(5);
            let mut next = 0u32;
            for _ in 0..group {
                q.schedule(t0, tagged(next));
                next += 1;
            }
            let mut got = Vec::new();
            let mut posts = post_counts.clone().into_iter();
            while let Some((t, ev)) = q.pop() {
                got.push((t, tag(&ev)));
                // Mid-drain, post a few zero-delay events at `now`.
                for _ in 0..posts.next().unwrap_or(0) {
                    q.schedule(t, tagged(next));
                    next += 1;
                }
            }
            prop_assert_eq!(got.len(), next as usize);
            // All at the same instant, in exact schedule order.
            for (i, &(t, tagv)) in got.iter().enumerate() {
                prop_assert_eq!(t, t0);
                prop_assert_eq!(tagv, i as u32, "self-post order broken on {:?}", kind);
            }
        }
    }

    /// Differential equivalence: the wheel and the heap pop the *same*
    /// `(time, tag)` sequence for any interleaving of schedules (delays
    /// spanning sub-tick to cross-level magnitudes, including zero),
    /// plain pops, and time-limited batched pops.
    #[test]
    fn wheel_and_heap_pop_identically(
        ops in proptest::collection::vec(
            prop_oneof![
                // (delay exponent, extra ps): schedule now + 2^e + extra
                (0u32..34, 0u64..4).prop_map(|(e, x)| Op::Schedule((1u64 << e) + x)),
                Just(Op::Schedule(0)),
                Just(Op::Pop),
                (0u64..1000).prop_map(Op::PopLimit),
            ],
            1..200
        )
    ) {
        let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut next = 0u32;
        for op in ops {
            match op {
                Op::Schedule(dps) => {
                    let ev = |q: &mut EventQueue, i| {
                        let at = q.now() + SimDuration::from_ps(dps);
                        q.schedule(at, tagged(i));
                    };
                    ev(&mut wheel, next);
                    ev(&mut heap, next);
                    next += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(obs(wheel.pop()), obs(heap.pop()));
                }
                Op::PopLimit(ns) => {
                    let lim = SimTime::from_ns(ns);
                    prop_assert_eq!(obs(wheel.pop_batched(lim)), obs(heap.pop_batched(lim)));
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.now(), heap.now());
        }
        // Drain both to the end: still in lock-step.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(obs(&w), obs(&h));
            if w.is_none() {
                break;
            }
        }
    }
}

/// One step of the differential schedule/pop interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule a tagged event at `now + delay_ps`.
    Schedule(u64),
    /// Unbounded pop.
    Pop,
    /// `pop_batched` bounded at the given absolute nanosecond.
    PopLimit(u64),
}

/// Project a pop result to comparable `(time, tag)` form.
fn obs<B: std::borrow::Borrow<Option<(SimTime, Event)>>>(r: B) -> Option<(SimTime, u32)> {
    r.borrow().as_ref().map(|(t, ev)| (*t, tag(ev)))
}
