//! InfiniBand-specific behaviour: virtual output queues, credit
//! periodicity, and the failure mode the §4.4 sizing rule prevents.

use lossless_flowctl::cbfc::CbfcConfig;
use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::{DetectorKind, FlowControlMode, SimConfig};
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, figure2, Figure2Options, Topology};
use lossless_netsim::{NodeId, Simulator, TernaryState};
use tcd_core::TcdConfig;

fn ib_cfg(end: SimTime) -> SimConfig {
    SimConfig::ib_baseline(end)
}

/// A four-host star for VoQ head-of-line tests: two senders, two sinks.
struct Star {
    topo: Topology,
    s1: NodeId,
    s2: NodeId,
    hot: NodeId,
    cold: NodeId,
}

fn star(rate: Rate) -> Star {
    let mut b = Topology::builder();
    let sw = b.switch("sw");
    let s1 = b.host("s1");
    let s2 = b.host("s2");
    let hot = b.host("hot");
    let cold = b.host("cold");
    for h in [s1, s2, hot, cold] {
        b.link(h, sw, rate, SimDuration::from_us(2));
    }
    Star {
        topo: b.build(),
        s1,
        s2,
        hot,
        cold,
    }
}

#[test]
fn voq_keeps_a_cold_output_usable_beside_a_hot_one() {
    // s1 and s2 both blast the "hot" sink (2:1 overload); s2 also sends a
    // smaller flow to the idle "cold" sink, sharing s2's NIC and the
    // switch input buffer with hot-destined packets. With per-output VoQs
    // the cold flow must complete within a small factor of its NIC-share
    // ideal instead of waiting behind the entire hot backlog.
    let st = star(Rate::from_gbps(40));
    let mut sim = Simulator::new(
        st.topo.clone(),
        ib_cfg(SimTime::from_ms(20)),
        RouteSelect::DModK,
    );
    let hot1 = sim.add_flow(
        st.s1,
        st.hot,
        8_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    let hot2 = sim.add_flow(
        st.s2,
        st.hot,
        8_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    let cold = sim.add_flow(
        st.s2,
        st.cold,
        2_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::new(Rate::from_gbps(20))),
    );
    sim.run();
    let t_cold = sim.trace.flows[cold.0 as usize]
        .fct()
        .expect("cold flow completes");
    let t_hot1 = sim.trace.flows[hot1.0 as usize]
        .fct()
        .expect("hot1 completes");
    let t_hot2 = sim.trace.flows[hot2.0 as usize]
        .fct()
        .expect("hot2 completes");
    // Hot flows: 8 MB through a ~20G fair share is >= 3.2 ms.
    // Cold flow: 2 MB at its ~20G NIC share is ~0.8 ms; head-of-line
    // blocking behind the hot backlog would push it toward the hot
    // completion times.
    assert!(
        t_cold < t_hot1 / 2 && t_cold < t_hot2 / 2,
        "cold flow was head-of-line blocked"
    );
    let ideal_cold = Rate::from_gbps(20).serialize_time(2_000_000);
    assert!(
        t_cold.as_ps() < ideal_cold.as_ps() * 2,
        "cold flow too slow: {t_cold} vs ideal {ideal_cold}"
    );
}

#[test]
fn undersized_credit_period_starves_line_rate() {
    // Failure injection: violate the §4.4 rule B > C·T_c (here
    // C·T_c = 327 KB > B = 280 KB). A single uncontended flow then stalls
    // for credits every period and cannot sustain line rate — the
    // pathology the default configuration is sized to avoid.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut cfg = ib_cfg(SimTime::from_ms(10));
    cfg.flow_control = FlowControlMode::Cbfc(CbfcConfig::from_bytes(
        280 * 1024,
        SimDuration::from_ns(65_536),
    ));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::DModK);
    let size = 10_000_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let fct = sim.trace.flows[f.0 as usize]
        .fct()
        .expect("still completes (lossless)");
    let ideal = Rate::from_gbps(40).serialize_time(size);
    assert!(
        fct.as_ps() > ideal.as_ps() * 110 / 100,
        "expected credit starvation to cost >10% throughput: {fct} vs {ideal}"
    );
    // Losslessness survives the misconfiguration.
    assert_eq!(sim.trace.flows[f.0 as usize].delivered.bytes, size);
}

#[test]
fn undersized_credit_period_pins_ports_undetermined() {
    // The same misconfiguration seen by TCD: a congested port that stalls
    // every T_c never shows a continuous-ON period, so it can never be
    // classified — it stays undetermined. (This is why the default T_c is
    // sized to satisfy B > C·T_c; the detector result is still *safe* —
    // no false CE — just uninformative.)
    let f2 = figure2(Figure2Options::default());
    let bad_cbfc = CbfcConfig::from_bytes(280 * 1024, SimDuration::from_ns(65_536));
    let mut cfg = ib_cfg(SimTime::from_ms(5));
    cfg.flow_control = FlowControlMode::Cbfc(bad_cbfc);
    cfg.detector = DetectorKind::Tcd(TcdConfig::new(bad_cbfc.update_period, 50 * 1024, 5 * 1024));
    cfg.trace_interval = Some(SimDuration::from_us(20));
    cfg.sample_ports = vec![(f2.p3.0, f2.p3.1, cfg.data_prio)];
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::DModK);
    for &a in f2.bursters.iter().take(8) {
        sim.add_flow(
            a,
            f2.r1,
            2_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    // P3 is the congestion root but the detector can never see it as
    // continuously ON: all congested-phase samples stay undetermined.
    let states: Vec<TernaryState> = sim
        .trace
        .port_samples
        .iter()
        .filter(|s| s.t > SimTime::from_us(500) && s.t < SimTime::from_ms(2))
        .map(|s| s.state)
        .collect();
    assert!(!states.is_empty());
    assert!(
        states.iter().all(|s| s.is_undetermined()),
        "with B <= C*T_c the root cannot leave the undetermined state"
    );
}

#[test]
fn fccl_updates_bound_idle_credit_lag() {
    // After a long idle period a sender must still have full credits (the
    // periodic FCCL keeps the loop fresh): a flow starting late performs
    // identically to one starting at t = 0.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut sim = Simulator::new(
        db.topo.clone(),
        ib_cfg(SimTime::from_ms(20)),
        RouteSelect::DModK,
    );
    let early = sim.add_flow(
        db.h0,
        db.h1,
        1_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    let late = sim.add_flow(
        db.h1,
        db.h0,
        1_000_000,
        SimTime::from_ms(10),
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let t_early = sim.trace.flows[early.0 as usize].fct().unwrap();
    let t_late = sim.trace.flows[late.0 as usize].fct().unwrap();
    let diff = t_early.as_ps().abs_diff(t_late.as_ps());
    assert!(
        diff < t_early.as_ps() / 100 + 25_000_000,
        "idle-start flow differs: {t_early} vs {t_late}"
    );
}

#[test]
fn ib_feedback_vl_is_not_blocked_by_data_vl_congestion() {
    // Credits are per VL: exhausting the data VL's credits must not stop
    // VL-0 feedback. Run a heavy incast and verify completions still get
    // recorded promptly for a small probe flow on the data VL whose CNPs
    // (VL 0) would be required under a CC run — here we simply assert the
    // run stays live and lossless under full data-VL pressure.
    let f2 = figure2(Figure2Options::default());
    let mut sim = Simulator::new(
        f2.topo.clone(),
        ib_cfg(SimTime::from_ms(30)),
        RouteSelect::DModK,
    );
    let mut flows = Vec::new();
    for &a in &f2.bursters {
        flows.push(sim.add_flow(
            a,
            f2.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        ));
    }
    sim.run();
    for f in flows {
        assert_eq!(sim.trace.flows[f.0 as usize].delivered.bytes, 1_000_000);
        assert!(sim.trace.flows[f.0 as usize].end.is_some());
    }
}
