//! Slow-receiver back-pressure: a host that processes slower than the wire
//! pauses its ToR, originating congestion spreading from the edge — the
//! production pathology that motivates much of the lossless-network
//! congestion-control literature, and a scenario TCD must classify
//! correctly (the slow receiver's uplink is the root; everything upstream
//! is a victim).

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::DetectorKind;
use lossless_netsim::config::SimConfig;
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, figure2, Figure2Options};
use lossless_netsim::Simulator;
use tcd_core::baseline::RedConfig;
use tcd_core::model::cee_max_ton;
use tcd_core::TcdConfig;

#[test]
fn cee_slow_receiver_paces_the_sender_without_loss() {
    // 40G wire, 10G receiver: a 5 MB flow must complete at ~10 Gbps, not
    // 40, and nothing is lost.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(20));
    cfg.host_rx_rate = Some(Rate::from_gbps(10));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::Ecmp);
    let size = 5_000_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let rec = &sim.trace.flows[f.0 as usize];
    assert_eq!(rec.delivered.bytes, size, "lossless under edge pauses");
    let fct = rec.fct().expect("completes");
    let at_rx_rate = Rate::from_gbps(10).serialize_time(size);
    let at_wire_rate = Rate::from_gbps(40).serialize_time(size);
    assert!(
        fct >= at_rx_rate.saturating_sub(SimDuration::from_us(300)),
        "cannot beat the receiver's processing rate: {fct}"
    );
    assert!(
        fct.as_ps() < at_rx_rate.as_ps() * 12 / 10,
        "too slow: {fct}"
    );
    assert!(fct > at_wire_rate * 3, "receiver limit must dominate");
    assert!(sim.trace.pause_frames > 0, "the edge must have paused");
}

#[test]
fn ib_slow_receiver_throttles_via_credits() {
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut cfg = SimConfig::ib_baseline(SimTime::from_ms(20));
    cfg.host_rx_rate = Some(Rate::from_gbps(10));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::DModK);
    let size = 5_000_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let rec = &sim.trace.flows[f.0 as usize];
    assert_eq!(rec.delivered.bytes, size);
    let fct = rec.fct().expect("completes");
    let at_rx_rate = Rate::from_gbps(10).serialize_time(size);
    assert!(fct >= at_rx_rate.saturating_sub(SimDuration::from_us(300)));
    assert!(
        fct.as_ps() < at_rx_rate.as_ps() * 13 / 10,
        "credit loop too lossy: {fct}"
    );
}

#[test]
fn fast_receiver_default_is_unchanged() {
    // host_rx_rate = None must preserve the original wire-speed behaviour.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let cfg = SimConfig::cee_baseline(SimTime::from_ms(10));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::Ecmp);
    let size = 5_000_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let fct = sim.trace.flows[f.0 as usize].fct().unwrap();
    let ideal = Rate::from_gbps(40).serialize_time(size);
    assert!(fct.as_ps() < ideal.as_ps() * 105 / 100 + 20_000_000);
}

#[test]
fn slow_receiver_spreading_keeps_victims_clean_under_tcd() {
    // One slow receiver (R1 at 5 Gbps) absorbs a line-rate flow: pauses
    // spread back along F1's path, so the chain ports go undetermined.
    // The cross-traffic victims to R0 must still see zero CE under TCD —
    // the root here is R1's edge link, which only F1 crosses.
    let fig = figure2(Figure2Options::default());
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(6));
    cfg.detector = DetectorKind::TcdRed(
        TcdConfig::new(
            cee_max_ton(Rate::from_gbps(40), 1000, SimDuration::from_us(4), 0.05),
            200 * 1024,
            5 * 1024,
        ),
        RedConfig::dcqcn_40g(),
    );
    cfg.host_rx_rate = Some(Rate::from_gbps(5));
    let mut sim = Simulator::new(fig.topo.clone(), cfg, RouteSelect::Ecmp);
    let f1 = sim.add_flow(
        fig.s1,
        fig.r1,
        10_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    let f0 = sim.add_flow(
        fig.s0,
        fig.r0,
        2_000_000,
        SimTime::from_us(200),
        Box::new(FixedRate::new(Rate::from_gbps(5))),
    );
    sim.run();
    let d0 = sim.trace.flows[f0.0 as usize].delivered;
    let d1 = sim.trace.flows[f1.0 as usize].delivered;
    assert!(
        sim.trace.pause_frames > 0,
        "edge-originated pauses expected"
    );
    assert!(d1.pkts > 0 && d0.pkts > 0);
    assert_eq!(d0.ce, 0, "victim must not be blamed for a slow receiver");
    assert!(
        d0.ue > 0 || sim.trace.pause_frames < 10,
        "with real spreading the victim should see UE"
    );
}
