//! Behavioural tests of the switch/host machinery: PFC pause dynamics,
//! CBFC credit dynamics, NIC pacing, feedback generation and
//! multi-priority isolation.

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::{CcAction, CcEvent, FixedRate, RateController};
use lossless_netsim::config::{DetectorKind, FeedbackMode, SimConfig};
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, figure2, Figure2Options};
use lossless_netsim::{CodePoint, Simulator};

#[test]
fn pfc_pauses_a_two_to_one_incast_and_nothing_is_lost() {
    let f2 = figure2(Figure2Options::default());
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(10));
    cfg.detector = DetectorKind::None;
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    let a = sim.add_flow(
        f2.bursters[0],
        f2.r1,
        1_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    let b = sim.add_flow(
        f2.bursters[1],
        f2.r1,
        1_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    assert!(sim.trace.pause_frames >= 2, "PAUSE + RESUME expected");
    for f in [a, b] {
        assert_eq!(sim.trace.flows[f.0 as usize].delivered.bytes, 1_000_000);
    }
    // Aggregate throughput equals the bottleneck: last completion at
    // >= 2 MB / 40 Gbps.
    let t_done = sim.trace.completed().map(|r| r.end.unwrap()).max().unwrap();
    assert!(
        t_done.saturating_since(SimTime::ZERO) >= Rate::from_gbps(40).serialize_time(2_000_000)
    );
}

#[test]
fn cbfc_credit_loop_throttles_exactly_to_line_rate() {
    // One flow through the IB dumbbell: despite periodic credit grants,
    // the flow's goodput equals the line rate (no stalls on an
    // uncongested path — the B > C*T_c sizing rule).
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let cfg = SimConfig::ib_baseline(SimTime::from_ms(10));
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::DModK);
    let size = 10_000_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    let fct = sim.trace.flows[f.0 as usize].fct().expect("completed");
    let ideal = Rate::from_gbps(40).serialize_time(size);
    // Within 5% of pure serialization (plus fixed latency).
    assert!(
        fct.as_ps() < ideal.as_ps() * 105 / 100 + 20_000_000,
        "CBFC stalled an uncongested flow: fct {fct} vs ideal {ideal}"
    );
}

#[test]
fn nic_paces_flows_independently() {
    // Two flows from one host at different configured rates: both finish
    // at times set by their own rate, not each other's.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(50));
    cfg.detector = DetectorKind::None;
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::Ecmp);
    let fast = sim.add_flow(
        db.h0,
        db.h1,
        2_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::new(Rate::from_gbps(20))),
    );
    let slow = sim.add_flow(
        db.h0,
        db.h1,
        2_000_000,
        SimTime::ZERO,
        Box::new(FixedRate::new(Rate::from_gbps(5))),
    );
    sim.run();
    let t_fast = sim.trace.flows[fast.0 as usize].fct().unwrap();
    let t_slow = sim.trace.flows[slow.0 as usize].fct().unwrap();
    let i_fast = Rate::from_gbps(20).serialize_time(2_000_000);
    let i_slow = Rate::from_gbps(5).serialize_time(2_000_000);
    assert!(t_fast.as_ps() >= i_fast.as_ps());
    assert!(t_slow.as_ps() >= i_slow.as_ps());
    assert!(t_fast.as_ps() < i_fast.as_ps() * 11 / 10 + 20_000_000);
    assert!(t_slow.as_ps() < i_slow.as_ps() * 11 / 10 + 20_000_000);
}

#[test]
fn cnp_feedback_is_rate_limited_per_flow() {
    // A controller that counts feedback events: with min_interval = 50us
    // and a congested path, CNPs arrive at most once per 50us.
    struct Counter {
        rate: Rate,
        feedbacks: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl RateController for Counter {
        fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
            self.rate = line_rate;
            CcAction::none()
        }
        fn on_event(&mut self, _now: SimTime, ev: CcEvent) -> CcAction {
            if matches!(ev, CcEvent::Feedback { .. }) {
                self.feedbacks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            CcAction::none()
        }
        fn rate(&self) -> Rate {
            self.rate
        }
        fn name(&self) -> &'static str {
            "counter"
        }
    }

    let f2 = figure2(Figure2Options::default());
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(5));
    cfg.feedback = FeedbackMode::CnpOnMarked {
        min_interval: SimDuration::from_us(50),
        notify_ue: false,
    };
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    let count = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let _ = sim.add_flow(
        f2.s1,
        f2.r1,
        30_000_000,
        SimTime::ZERO,
        Box::new(Counter {
            rate: Rate::ZERO,
            feedbacks: count.clone(),
        }),
    );
    // Create congestion at R1 so the flow's packets are ECN-marked.
    for &a in f2.bursters.iter().take(6) {
        sim.add_flow(
            a,
            f2.r1,
            2_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    // 5 ms / 50 us = at most 100 CNPs (plus one initial).
    assert!(
        count.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "expected some CNPs under congestion"
    );
    assert!(
        count.load(std::sync::atomic::Ordering::Relaxed) <= 101,
        "CNPs not rate-limited: {}",
        count.load(std::sync::atomic::Ordering::Relaxed)
    );
}

#[test]
fn feedback_priority_is_isolated_from_data_congestion() {
    // CNPs travel on priority 0 and must keep flowing while priority 1 is
    // paused: the congested receiver still generates feedback promptly.
    // Indirect check: a DCQCN-like counter flow still receives feedback
    // during heavy priority-1 congestion (previous test), and feedback
    // priority queues never pause because their volume is tiny. Here we
    // assert the data path marks while the feedback path never does.
    let f2 = figure2(Figure2Options::default());
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(4));
    cfg.feedback = FeedbackMode::AckPerPacket;
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    sim.record_marks(true);
    for &a in f2.bursters.iter().take(8) {
        sim.add_flow(
            a,
            f2.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    assert!(!sim.trace.marks.is_empty(), "data packets should be marked");
    // Marks only ever apply to data-priority packets; feedback packets are
    // CodePoint::NotCapable and the switch skips non-data priorities.
    for m in &sim.trace.marks {
        assert!(m.code.is_marked());
    }
}

#[test]
fn ue_notifications_require_opt_in() {
    // Same TCD run twice, once with notify_ue off: UE CNPs only reach the
    // sender in the opted-in run. Observed via the receiver's delivered
    // counts (identical) and pause behaviour (identical), while only the
    // opted-in controller sees Feedback{UE}.
    struct UeSpy {
        rate: Rate,
        ue_seen: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl RateController for UeSpy {
        fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
            self.rate = line_rate;
            CcAction::none()
        }
        fn on_event(&mut self, _now: SimTime, ev: CcEvent) -> CcAction {
            if let CcEvent::Feedback { code } = ev {
                if code == CodePoint::UE {
                    self.ue_seen
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
            CcAction::none()
        }
        fn rate(&self) -> Rate {
            self.rate
        }
        fn name(&self) -> &'static str {
            "ue-spy"
        }
    }

    let run_once = |notify_ue: bool| {
        let f2 = figure2(Figure2Options::default());
        let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(4));
        cfg.detector = DetectorKind::Tcd(tcd_core::TcdConfig::new(
            SimDuration::from_us(100),
            200 * 1024,
            5 * 1024,
        ));
        cfg.feedback = FeedbackMode::CnpOnMarked {
            min_interval: SimDuration::from_us(50),
            notify_ue,
        };
        let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
        let ue = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        // F0 is a victim: its packets carry UE through the paused chain.
        let _ = sim.add_flow(
            f2.s0,
            f2.r0,
            4_000_000,
            SimTime::ZERO,
            Box::new(UeSpy {
                rate: Rate::ZERO,
                ue_seen: ue.clone(),
            }),
        );
        for &a in &f2.bursters {
            sim.add_flow(
                a,
                f2.r1,
                1_000_000,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            );
        }
        sim.add_flow(
            f2.s1,
            f2.r1,
            10_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
        sim.run();
        ue.load(std::sync::atomic::Ordering::Relaxed)
    };
    assert!(
        run_once(true) > 0,
        "opted-in sender must receive UE feedback"
    );
    assert_eq!(run_once(false), 0, "legacy sender must never see UE");
}

#[test]
fn multi_priority_pfc_isolation() {
    // Two data priorities: congestion on priority 1 pauses only priority
    // 1; a priority-2 flow on the same links is unaffected.
    let f2 = figure2(Figure2Options::default());
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(8));
    cfg.num_prios = 3;
    cfg.detector = DetectorKind::None;
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    // Priority-1 incast onto R1 (the congested class).
    for &a in &f2.bursters {
        sim.add_flow_prio(
            a,
            f2.r1,
            1_000_000,
            SimTime::ZERO,
            1,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.add_flow_prio(
        f2.s1,
        f2.r1,
        5_000_000,
        SimTime::ZERO,
        1,
        Box::new(FixedRate::line_rate()),
    );
    // Priority-2 flow across the same chain to the uncongested R0.
    let p2_flow = sim.add_flow_prio(
        f2.s0,
        f2.r0,
        5_000_000,
        SimTime::ZERO,
        2,
        Box::new(FixedRate::new(Rate::from_gbps(10))),
    );
    sim.run();
    let rec = &sim.trace.flows[p2_flow.0 as usize];
    let fct = rec.fct().expect("priority-2 flow must complete");
    let ideal = Rate::from_gbps(10).serialize_time(5_000_000);
    // Head-of-line-free: the priority-2 flow runs at its paced rate even
    // while priority 1 is being paused throughout the chain.
    // Strict-priority scheduling favours lower indices, so allow overhead
    // from sharing the wire with priority-1 catch-up bursts.
    assert!(
        fct.as_ps() < ideal.as_ps() * 14 / 10,
        "priority-2 flow was head-of-line blocked: {fct} vs ideal {ideal}"
    );
    assert!(
        sim.trace.pause_frames > 0,
        "priority 1 must have been paused"
    );
}

#[test]
fn timely_acks_echo_code_points() {
    // With AckPerPacket and a congested path, the sender's ACKs carry the
    // marks applied to its data packets.
    struct EchoSpy {
        rate: Rate,
        marked: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl RateController for EchoSpy {
        fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
            self.rate = line_rate;
            CcAction::none()
        }
        fn on_event(&mut self, _now: SimTime, ev: CcEvent) -> CcAction {
            if let CcEvent::Ack { code, .. } = ev {
                if code.is_marked() {
                    self.marked
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
            CcAction::none()
        }
        fn rate(&self) -> Rate {
            self.rate
        }
        fn name(&self) -> &'static str {
            "echo-spy"
        }
    }

    let f2 = figure2(Figure2Options::default());
    let mut cfg = SimConfig::cee_baseline(SimTime::from_ms(4));
    cfg.feedback = FeedbackMode::AckPerPacket;
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    let marked = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let _ = sim.add_flow(
        f2.s1,
        f2.r1,
        20_000_000,
        SimTime::ZERO,
        Box::new(EchoSpy {
            rate: Rate::ZERO,
            marked: marked.clone(),
        }),
    );
    for &a in f2.bursters.iter().take(8) {
        sim.add_flow(
            a,
            f2.r1,
            1_500_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    assert!(
        marked.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "congested flow's ACKs must echo CE marks"
    );
}
