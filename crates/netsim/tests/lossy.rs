//! The lossy-Ethernet baseline: drop-tail switches + go-back-N transport.
//! These tests pin the reliability machinery and the premise the paper
//! starts from — losing packets costs far more time than pausing.

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::FixedRate;
use lossless_netsim::config::SimConfig;
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{dumbbell, figure2, Figure2Options};
use lossless_netsim::Simulator;

#[test]
fn uncontended_lossy_flow_behaves_like_lossless() {
    // No contention, no drops: the reliable transport adds no overhead.
    let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
    let cfg = SimConfig::lossy_baseline(SimTime::from_ms(10), 200 * 1024);
    let mut sim = Simulator::new(db.topo.clone(), cfg, RouteSelect::Ecmp);
    let size = 2_000_000u64;
    let f = sim.add_flow(
        db.h0,
        db.h1,
        size,
        SimTime::ZERO,
        Box::new(FixedRate::line_rate()),
    );
    sim.run();
    assert_eq!(sim.trace.drops, 0);
    let rec = &sim.trace.flows[f.0 as usize];
    assert_eq!(rec.delivered.bytes, size);
    let fct = rec.fct().unwrap();
    let ideal = Rate::from_gbps(40).serialize_time(size);
    assert!(fct.as_ps() < ideal.as_ps() * 105 / 100 + 20_000_000);
}

#[test]
fn overload_drops_but_reliability_recovers_everything() {
    // 4:1 incast into a small drop-tail buffer: drops are inevitable, yet
    // go-back-N delivers every byte exactly once.
    let f2 = figure2(Figure2Options::default());
    let cfg = SimConfig::lossy_baseline(SimTime::from_ms(100), 100 * 1024);
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    let size = 500_000u64;
    let flows: Vec<_> = f2
        .bursters
        .iter()
        .take(4)
        .map(|&a| {
            sim.add_flow(
                a,
                f2.r1,
                size,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            )
        })
        .collect();
    sim.run();
    assert!(sim.trace.drops > 0, "a 4:1 incast into 100KB must drop");
    for f in &flows {
        let rec = &sim.trace.flows[f.0 as usize];
        assert!(rec.end.is_some(), "flow {f:?} never completed");
        assert_eq!(rec.delivered.bytes, size, "exactly-once delivery violated");
    }
}

#[test]
fn lossless_beats_lossy_tail_under_incast() {
    // The paper's premise (§1): with the same offered load, the lossless
    // fabric completes the incast far sooner than the lossy one, whose
    // stragglers pay retransmission timeouts.
    let run = |lossless: bool| -> f64 {
        let f2 = figure2(Figure2Options::default());
        let cfg = if lossless {
            let mut c = SimConfig::cee_baseline(SimTime::from_ms(100));
            c.detector = lossless_netsim::config::DetectorKind::None;
            c
        } else {
            SimConfig::lossy_baseline(SimTime::from_ms(100), 100 * 1024)
        };
        let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
        let size = 500_000u64;
        let flows: Vec<_> = f2
            .bursters
            .iter()
            .take(8)
            .map(|&a| {
                sim.add_flow(
                    a,
                    f2.r1,
                    size,
                    SimTime::ZERO,
                    Box::new(FixedRate::line_rate()),
                )
            })
            .collect();
        sim.run();
        flows
            .iter()
            .map(|f| {
                sim.trace.flows[f.0 as usize]
                    .fct()
                    .expect("completes")
                    .as_secs_f64()
            })
            .fold(0.0, f64::max)
    };
    let lossless_tail = run(true);
    let lossy_tail = run(false);
    assert!(
        lossy_tail > lossless_tail * 1.5,
        "lossy tail {lossy_tail:.6}s should far exceed lossless {lossless_tail:.6}s"
    );
}

#[test]
fn duplicate_deliveries_are_never_counted() {
    // Force heavy loss; the receiver must count each byte exactly once
    // even though the sender retransmits ranges repeatedly.
    let f2 = figure2(Figure2Options::default());
    let cfg = SimConfig::lossy_baseline(SimTime::from_ms(200), 50 * 1024);
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    let size = 300_000u64;
    let flows: Vec<_> = f2
        .bursters
        .iter()
        .take(6)
        .map(|&a| {
            sim.add_flow(
                a,
                f2.r1,
                size,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            )
        })
        .collect();
    sim.run();
    assert!(sim.trace.drops > 0);
    for f in &flows {
        let rec = &sim.trace.flows[f.0 as usize];
        assert_eq!(rec.delivered.bytes, size, "byte counted twice or lost");
        assert!(rec.end.is_some());
    }
}
