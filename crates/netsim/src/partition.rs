//! Topology partitioning for the conservative parallel executor.
//!
//! A [`PartitionMap`] assigns every node to one of `parts` groups and
//! derives the executor's *lookahead*: the minimum propagation delay of
//! any link whose endpoints live in different partitions. Links impose a
//! nonzero serialization + propagation floor, so any packet a node emits
//! toward another partition arrives at least `lookahead` after the
//! instant it was scheduled — which is exactly what lets each partition
//! run `lookahead`-wide windows without null messages (conservative
//! PDES, CMB-style but barrier-synchronized).
//!
//! Two strategies are provided (selected via `TCD_PARTITION_STRAT`,
//! default `pod`):
//!
//! - **`pod`** (pod-aware, min-cut-ish): balanced *contiguous* node-id
//!   ranges. Topology builders lay related nodes out contiguously — the
//!   fat-tree builder emits cores first, then each pod's aggregation,
//!   edge, and host block — so contiguous ranges track pod boundaries
//!   and cut mostly inter-pod (core) links.
//! - **`rr`** (round-robin): `node % parts`, the locality-oblivious
//!   reference. Same bit-identical results (the executor's barrier
//!   replay guarantees that), more cross-partition traffic.

use crate::topology::Topology;
use lossless_flowctl::SimDuration;

/// How nodes are assigned to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Resolve from `TCD_PARTITION_STRAT` (`rr` selects round-robin;
    /// anything else, including unset, the pod-aware strategy).
    #[default]
    Auto,
    /// Balanced contiguous node-id ranges (pod-aware for the builders in
    /// [`crate::topology`], which lay pods out contiguously).
    PodAware,
    /// `node % parts`.
    RoundRobin,
}

impl PartitionStrategy {
    fn wants_round_robin(self) -> bool {
        match self {
            PartitionStrategy::RoundRobin => true,
            PartitionStrategy::PodAware => false,
            PartitionStrategy::Auto => {
                std::env::var("TCD_PARTITION_STRAT").is_ok_and(|v| v == "rr")
            }
        }
    }
}

/// A node-to-partition assignment plus the lookahead it induces.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    /// `part_of[node.index()]` = owning partition, `< parts`.
    pub part_of: Vec<u32>,
    /// Number of partitions actually used (≤ the requested count, and ≤
    /// the node count).
    pub parts: usize,
    /// Minimum delay of any cross-partition link: the executor's
    /// lock-step window width. `None` when some cross-partition link has
    /// zero delay (no safe lookahead — the caller falls back to serial)
    /// or when no link crosses at all (single partition).
    pub lookahead: Option<SimDuration>,
    /// How many directed links cross partitions (diagnostic).
    pub cross_links: usize,
}

/// Assign every node of `topo` to one of (at most) `parts` partitions.
// simlint: cold -- runs once at parallel-run startup to plan the split; no event has
// been dispatched yet
pub fn partition(topo: &Topology, parts: usize, strategy: PartitionStrategy) -> PartitionMap {
    let n = topo.node_count();
    let parts = parts.clamp(1, n.max(1));
    let rr = strategy.wants_round_robin();
    let part_of: Vec<u32> = (0..n)
        .map(|i| {
            if rr {
                (i % parts) as u32
            } else {
                // Balanced contiguous ranges: node i falls in the range
                // whose share of the id space contains it.
                ((i * parts) / n) as u32
            }
        })
        .collect();

    let mut lookahead: Option<SimDuration> = None;
    let mut cross_links = 0usize;
    let mut zero_cross = false;
    for i in 0..n {
        let id = crate::topology::NodeId(i as u32);
        for l in topo.ports(id) {
            if part_of[i] == part_of[l.peer.index()] {
                continue;
            }
            cross_links += 1;
            if l.delay.as_ps() == 0 {
                zero_cross = true;
            }
            lookahead = Some(match lookahead {
                Some(cur) => cur.min(l.delay),
                None => l.delay,
            });
        }
    }
    if zero_cross {
        lookahead = None;
    }
    PartitionMap {
        part_of,
        parts,
        lookahead,
        cross_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::fat_tree;
    use lossless_flowctl::Rate;

    fn ft() -> Topology {
        fat_tree(4, Rate::from_gbps(40), SimDuration::from_us(4)).topo
    }

    #[test]
    fn assignments_cover_all_partitions_and_balance() {
        let topo = ft();
        for strat in [PartitionStrategy::PodAware, PartitionStrategy::RoundRobin] {
            let pm = partition(&topo, 4, strat);
            assert_eq!(pm.parts, 4);
            assert_eq!(pm.part_of.len(), topo.node_count());
            let mut counts = [0usize; 4];
            for &p in &pm.part_of {
                counts[p as usize] += 1;
            }
            let (lo, hi) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced {strat:?}: {counts:?}");
        }
    }

    #[test]
    fn lookahead_is_the_uniform_link_delay() {
        let pm = partition(&ft(), 4, PartitionStrategy::PodAware);
        assert_eq!(pm.lookahead, Some(SimDuration::from_us(4)));
        assert!(pm.cross_links > 0);
    }

    #[test]
    fn single_partition_has_no_cross_links() {
        let pm = partition(&ft(), 1, PartitionStrategy::PodAware);
        assert_eq!(pm.parts, 1);
        assert_eq!(pm.cross_links, 0);
        assert_eq!(pm.lookahead, None);
    }

    #[test]
    fn parts_clamp_to_node_count() {
        let db = crate::topology::dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let pm = partition(&db.topo, 64, PartitionStrategy::RoundRobin);
        assert_eq!(pm.parts, db.topo.node_count());
    }

    #[test]
    fn zero_delay_cross_link_disables_lookahead() {
        let mut b = Topology::builder();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let s = b.switch("s");
        b.link(h0, s, Rate::from_gbps(40), SimDuration::from_ps(0));
        b.link(h1, s, Rate::from_gbps(40), SimDuration::from_us(4));
        let topo = b.build();
        let pm = partition(&topo, 3, PartitionStrategy::RoundRobin);
        assert_eq!(
            pm.lookahead, None,
            "zero-delay cross link must veto lookahead"
        );
    }

    #[test]
    fn pod_aware_keeps_pods_contiguous() {
        // Fat-tree builder order: cores first, then per-pod blocks —
        // contiguous ranges must never split a node id range assigned to
        // an earlier partition after a later one.
        let pm = partition(&ft(), 4, PartitionStrategy::PodAware);
        let mut last = 0u32;
        for &p in &pm.part_of {
            assert!(p >= last);
            last = p;
        }
    }
}
