//! Measurement collection: queue-length/rate/state timeseries, marking
//! records, and per-flow delivery statistics.
//!
//! The engine samples the ports listed in
//! [`SimConfig::sample_ports`](crate::config::SimConfig) every
//! `trace_interval`; switches and hosts push event records through the
//! methods here. Everything is plain `Vec`s so experiments can post-process
//! freely.

use crate::packet::FlowId;
use crate::topology::NodeId;
use lossless_flowctl::SimTime;
use std::collections::BTreeMap;
use tcd_core::{CodePoint, TernaryState};

/// One periodic sample of an egress (port, priority).
#[derive(Debug, Clone, Copy)]
pub struct PortSample {
    /// Sample time.
    pub t: SimTime,
    /// Node.
    pub node: NodeId,
    /// Egress port.
    pub port: u16,
    /// Priority / VL.
    pub prio: u8,
    /// Queue length in bytes (CEE: egress queue; IB: VoQ backlog destined
    /// to this output).
    pub queue_bytes: u64,
    /// Cumulative data bytes transmitted by this egress (diff successive
    /// samples for the sending rate).
    pub tx_bytes: u64,
    /// Detector's current belief about the port state.
    pub state: TernaryState,
    /// Whether the egress is currently blocked by hop-by-hop flow control.
    pub paused: bool,
}

/// A packet-marking event at a switch (optional, can be voluminous).
#[derive(Debug, Clone, Copy)]
pub struct MarkEvent {
    /// When.
    pub t: SimTime,
    /// Marking node.
    pub node: NodeId,
    /// Egress port.
    pub port: u16,
    /// The flow whose packet was marked.
    pub flow: FlowId,
    /// The code point applied.
    pub code: CodePoint,
}

/// Delivery statistics of one flow, accumulated at the destination.
#[derive(Debug, Clone, Copy, Default)]
pub struct Delivered {
    /// Data packets delivered.
    pub pkts: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Packets that arrived with CE.
    pub ce: u64,
    /// Packets that arrived with UE.
    pub ue: u64,
}

/// Lifecycle record of one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowRecord {
    /// The flow.
    pub flow: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time (when the flow became active at the source).
    pub start: SimTime,
    /// Completion time (last byte delivered), if it finished.
    pub end: Option<SimTime>,
    /// Delivery statistics.
    pub delivered: Delivered,
}

impl FlowRecord {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<lossless_flowctl::SimDuration> {
        self.end.map(|e| e.saturating_since(self.start))
    }
}

/// One logged data-packet delivery (only when `record_deliveries` is on).
#[derive(Debug, Clone, Copy)]
pub struct DeliveryEvent {
    /// Arrival time at the destination.
    pub t: SimTime,
    /// The flow.
    pub flow: FlowId,
    /// Final code point carried by the packet.
    pub code: CodePoint,
    /// Payload bytes.
    pub bytes: u64,
}

/// All measurements of one run.
#[derive(Debug, Default)]
pub struct Trace {
    /// Periodic port samples (only for configured `sample_ports`).
    pub port_samples: Vec<PortSample>,
    /// Individual marking events (only when `record_marks` is on).
    pub marks: Vec<MarkEvent>,
    /// Whether to record individual [`MarkEvent`]s.
    pub record_marks: bool,
    /// Retention cap for `marks` (`None` = unbounded). When the cap is
    /// hit, further records are dropped and counted in `dropped_marks` —
    /// never silently.
    pub max_marks: Option<usize>,
    /// Mark records dropped because `max_marks` was reached.
    pub dropped_marks: u64,
    /// Retention cap for `port_samples` (`None` = unbounded), with the
    /// same counted-drop semantics.
    pub max_port_samples: Option<usize>,
    /// Port samples dropped because `max_port_samples` was reached.
    pub dropped_port_samples: u64,
    /// Individual delivery events (only when `record_deliveries` is on).
    pub deliveries: Vec<DeliveryEvent>,
    /// Whether to record individual [`DeliveryEvent`]s.
    pub record_deliveries: bool,
    /// Per-flow lifecycle records, indexed by `FlowId.0`.
    pub flows: Vec<FlowRecord>,
    /// Number of flows that have completed.
    pub completed_count: usize,
    /// Total PAUSE frames sent (CEE) across the network.
    pub pause_frames: u64,
    /// Total data packets forwarded by switches.
    pub forwarded_pkts: u64,
    /// Packets dropped (lossy mode only; always 0 in lossless modes).
    pub drops: u64,
    /// Total events dispatched by the engine (throughput accounting:
    /// events ÷ wall time is the headline simulator-performance metric).
    pub events: u64,
}

impl Trace {
    /// Fresh, empty trace.
    pub fn new(record_marks: bool) -> Self {
        Trace {
            record_marks,
            ..Default::default()
        }
    }

    /// Record a marking decision at a switch egress. Past `max_marks`
    /// retained records the event is counted in `dropped_marks` instead.
    #[inline]
    pub fn on_mark(&mut self, t: SimTime, node: NodeId, port: u16, flow: FlowId, code: CodePoint) {
        if self.record_marks {
            if self.max_marks.is_some_and(|cap| self.marks.len() >= cap) {
                self.dropped_marks += 1;
                return;
            }
            self.marks.push(MarkEvent {
                t,
                node,
                port,
                flow,
                code,
            });
        }
    }

    /// Append a periodic port sample, honouring `max_port_samples` with
    /// counted-drop semantics. NOTE: the harness run fingerprint includes
    /// the retained sample count, so runs compared against uncapped
    /// goldens must keep the default (`None`).
    #[inline]
    pub fn push_port_sample(&mut self, s: PortSample) {
        if self
            .max_port_samples
            .is_some_and(|cap| self.port_samples.len() >= cap)
        {
            self.dropped_port_samples += 1;
            return;
        }
        self.port_samples.push(s);
    }

    /// Record delivery of a data packet at its destination. (`t` is only
    /// consulted when `record_deliveries` is on.)
    // simlint: allow(hot-path-panic) -- flow ids are dense indices handed out by the harness that sized this table
    pub fn on_deliver_at(&mut self, t: SimTime, flow: FlowId, bytes: u64, code: CodePoint) {
        let rec = &mut self.flows[flow.0 as usize];
        rec.delivered.pkts += 1;
        rec.delivered.bytes += bytes;
        match code {
            CodePoint::CongestionEncountered => rec.delivered.ce += 1,
            CodePoint::UndeterminedEncountered => rec.delivered.ue += 1,
            _ => {}
        }
        if self.record_deliveries {
            self.deliveries.push(DeliveryEvent {
                t,
                flow,
                code,
                bytes,
            });
        }
    }

    /// Record delivery of a data packet at its destination (untimed form
    /// used by unit tests).
    pub fn on_deliver(&mut self, flow: FlowId, bytes: u64, code: CodePoint) {
        self.on_deliver_at(SimTime::ZERO, flow, bytes, code);
    }

    /// Record a flow's completion.
    // simlint: allow(hot-path-panic) -- flow ids are dense indices handed out by the harness that sized this table
    pub fn on_complete(&mut self, flow: FlowId, t: SimTime) {
        let rec = &mut self.flows[flow.0 as usize];
        debug_assert!(rec.end.is_none(), "flow {flow:?} completed twice");
        rec.end = Some(t);
        self.completed_count += 1;
    }

    /// Flows that finished, as records.
    pub fn completed(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.iter().filter(|f| f.end.is_some())
    }

    /// Per-flow CE-marked fraction of delivered packets (paper Table 3 /
    /// Fig. 11 metric).
    pub fn ce_fraction(&self, flow: FlowId) -> f64 {
        let d = &self.flows[flow.0 as usize].delivered;
        if d.pkts == 0 {
            0.0
        } else {
            d.ce as f64 / d.pkts as f64
        }
    }

    /// Per-flow UE-marked fraction of delivered packets.
    pub fn ue_fraction(&self, flow: FlowId) -> f64 {
        let d = &self.flows[flow.0 as usize].delivered;
        if d.pkts == 0 {
            0.0
        } else {
            d.ue as f64 / d.pkts as f64
        }
    }

    /// Samples of one `(node, port, prio)` egress, in time order.
    pub fn samples_of(&self, node: NodeId, port: u16, prio: u8) -> Vec<&PortSample> {
        self.port_samples
            .iter()
            .filter(|s| s.node == node && s.port == port && s.prio == prio)
            .collect()
    }

    /// Summary map flow → delivered stats (convenience for experiments).
    /// A `BTreeMap` so iteration order is the flow-id order — experiment
    /// output derived by walking this map is deterministic.
    pub fn delivered_map(&self) -> BTreeMap<FlowId, Delivered> {
        self.flows.iter().map(|f| (f.flow, f.delivered)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32) -> FlowRecord {
        FlowRecord {
            flow: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size: 10_000,
            start: SimTime::from_us(5),
            end: None,
            delivered: Delivered::default(),
        }
    }

    #[test]
    fn delivery_accounting() {
        let mut tr = Trace::new(false);
        tr.flows.push(rec(0));
        tr.on_deliver(FlowId(0), 1000, CodePoint::Capable);
        tr.on_deliver(FlowId(0), 1000, CodePoint::CE);
        tr.on_deliver(FlowId(0), 1000, CodePoint::UE);
        tr.on_deliver(FlowId(0), 1000, CodePoint::CE);
        let d = tr.flows[0].delivered;
        assert_eq!(d.pkts, 4);
        assert_eq!(d.bytes, 4000);
        assert_eq!(d.ce, 2);
        assert_eq!(d.ue, 1);
        assert!((tr.ce_fraction(FlowId(0)) - 0.5).abs() < 1e-12);
        assert!((tr.ue_fraction(FlowId(0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn completion_and_fct() {
        let mut tr = Trace::new(false);
        tr.flows.push(rec(0));
        assert_eq!(tr.completed().count(), 0);
        tr.on_complete(FlowId(0), SimTime::from_us(105));
        assert_eq!(tr.completed().count(), 1);
        let fct = tr.flows[0].fct().unwrap();
        assert_eq!(fct, lossless_flowctl::SimDuration::from_us(100));
    }

    #[test]
    fn mark_cap_drops_are_counted_never_silent() {
        let mut tr = Trace::new(true);
        tr.max_marks = Some(2);
        tr.flows.push(rec(0));
        for i in 0..5 {
            tr.on_mark(SimTime::from_us(i), NodeId(0), 0, FlowId(0), CodePoint::CE);
        }
        assert_eq!(tr.marks.len(), 2);
        assert_eq!(tr.dropped_marks, 3);
        // The retained records are the earliest ones.
        assert_eq!(tr.marks[1].t, SimTime::from_us(1));
    }

    #[test]
    fn port_sample_cap_drops_are_counted() {
        let mut tr = Trace::new(false);
        tr.max_port_samples = Some(1);
        let s = PortSample {
            t: SimTime::ZERO,
            node: NodeId(0),
            port: 0,
            prio: 0,
            queue_bytes: 0,
            tx_bytes: 0,
            state: TernaryState::NonCongestion,
            paused: false,
        };
        tr.push_port_sample(s);
        tr.push_port_sample(s);
        assert_eq!(tr.port_samples.len(), 1);
        assert_eq!(tr.dropped_port_samples, 1);
        // Unbounded by default.
        let mut unb = Trace::new(false);
        for _ in 0..3 {
            unb.push_port_sample(s);
        }
        assert_eq!(unb.port_samples.len(), 3);
        assert_eq!(unb.dropped_port_samples, 0);
    }

    #[test]
    fn mark_recording_is_optional() {
        let mut off = Trace::new(false);
        off.flows.push(rec(0));
        off.on_mark(SimTime::ZERO, NodeId(0), 0, FlowId(0), CodePoint::CE);
        assert!(off.marks.is_empty());
        let mut on = Trace::new(true);
        on.flows.push(rec(0));
        on.on_mark(SimTime::ZERO, NodeId(0), 0, FlowId(0), CodePoint::CE);
        assert_eq!(on.marks.len(), 1);
    }

    #[test]
    fn empty_flow_fractions_are_zero() {
        let mut tr = Trace::new(false);
        tr.flows.push(rec(0));
        assert_eq!(tr.ce_fraction(FlowId(0)), 0.0);
        assert_eq!(tr.ue_fraction(FlowId(0)), 0.0);
    }
}
