//! The invariant auditor: machine-checked correctness of the lossless data
//! plane (compiled only with the `audit` cargo feature).
//!
//! Every headline result of the reproduction assumes that the simulator
//! really is lossless and that TCD only ever takes the six legal Fig. 6
//! transitions. The auditor turns those assumptions into checks that run
//! inside the event loop, at configurable checkpoints and at targeted
//! hook points:
//!
//! * **Conservation** — every injected packet is exactly once in-flight,
//!   queued, pooled, or delivered, and lossless modes never drop;
//! * **Buffer accounting** — per-ingress PFC byte counters and per-VL CBFC
//!   block counters agree with actual occupancy and never exceed the
//!   configured capacity plus headroom;
//! * **Protocol legality** — PAUSE only above `X_off`, RESUME only at or
//!   below `X_on`, CBFC credits conserved end-to-end across every link
//!   (`FCTBS = ABR + blocks in flight`, `FCCL ≤ ABR + capacity`);
//! * **State machine** — detector ports only move along the six Fig. 6
//!   transitions, and 2-bit CE/UE marks (Table 1) are consistent with the
//!   marking port's ternary state;
//! * **Causality** — no event is ever scheduled in the past;
//! * **Liveness** — when forward progress stalls between checkpoints, no
//!   cycle of mutually blocked channels (PFC-paused or CBFC-starved
//!   egress queues each waiting on the next) exists — a runtime PFC
//!   deadlock detector in the DCFIT tradition, cross-validating the
//!   static CDC analysis in `simlint`.
//!
//! Violations carry the simulation time, node, port, and a counter
//! snapshot. In the default [`AuditMode::Panic`] any violation aborts the
//! run immediately (so every test that drives an audited simulator is also
//! an invariant test); [`AuditMode::Record`] collects violations instead,
//! for tests that deliberately provoke them.
//!
//! The feature gate keeps the unaudited engine byte-for-byte identical:
//! every hook call site is compiled out without `--features audit`, and
//! checkpoints run *between* event dispatches (never as scheduled events),
//! so event counts and run fingerprints are identical with the auditor on
//! or off.

use crate::topology::NodeId;
use lossless_flowctl::SimTime;
use std::collections::BTreeMap;
use tcd_core::state::Transition;
use tcd_core::{CodePoint, TernaryState};

/// The six invariant families the auditor checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InvariantFamily {
    /// Packet conservation and zero-drop losslessness.
    Conservation,
    /// Shared-buffer / receive-buffer occupancy accounting.
    BufferAccounting,
    /// PFC and CBFC protocol legality.
    ProtocolLegality,
    /// TCD Fig. 6 transition and Table 1 marking legality.
    StateMachine,
    /// Event-queue causality.
    Causality,
    /// Forward progress: when delivery stalls, no cyclic hop-by-hop wait
    /// (PFC pause / CBFC credit starvation) may exist among non-empty
    /// blocked channels — the runtime PFC-deadlock watchdog.
    Liveness,
}

/// Number of invariant families.
pub const FAMILY_COUNT: usize = 6;

impl InvariantFamily {
    /// Stable index of this family (for per-family counters).
    pub fn index(self) -> usize {
        match self {
            InvariantFamily::Conservation => 0,
            InvariantFamily::BufferAccounting => 1,
            InvariantFamily::ProtocolLegality => 2,
            InvariantFamily::StateMachine => 3,
            InvariantFamily::Causality => 4,
            InvariantFamily::Liveness => 5,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            InvariantFamily::Conservation => "conservation",
            InvariantFamily::BufferAccounting => "buffer-accounting",
            InvariantFamily::ProtocolLegality => "protocol-legality",
            InvariantFamily::StateMachine => "state-machine",
            InvariantFamily::Causality => "causality",
            InvariantFamily::Liveness => "liveness",
        }
    }
}

/// One detected invariant violation, with enough context to debug it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant family was violated.
    pub family: InvariantFamily,
    /// Simulation time of detection.
    pub t: SimTime,
    /// The node involved (`NodeId(u32::MAX)` for engine-global checks).
    pub node: NodeId,
    /// The port involved (`u16::MAX` when not port-specific).
    pub port: u16,
    /// The priority / VL involved (`u8::MAX` when not class-specific).
    pub prio: u8,
    /// What went wrong, with a counter snapshot.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={} ", self.family.name(), self.t)?;
        if self.node.0 != u32::MAX {
            write!(f, "node={}", self.node.0)?;
            if self.port != u16::MAX {
                write!(f, " port={}", self.port)?;
            }
            if self.prio != u8::MAX {
                write!(f, " prio={}", self.prio)?;
            }
            write!(f, ": ")?;
        }
        f.write_str(&self.message)
    }
}

/// What the auditor does when a violation is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// Panic immediately with the violation (default: any audited test run
    /// fails fast, with the sim time / port / counter snapshot in the
    /// panic message).
    #[default]
    Panic,
    /// Record violations (up to [`AuditConfig::max_recorded`]) and keep
    /// running; for tests that deliberately provoke violations.
    Record,
}

/// Auditor configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Violation handling mode.
    pub mode: AuditMode,
    /// Run the checkpoint checks every this many dispatched events (also
    /// always once at the end of every `run*` call). Clamped to ≥ 1.
    pub checkpoint_every: u64,
    /// Allowed overshoot of a PFC ingress counter past `X_off`: packets
    /// already serialized or in flight when the PAUSE lands keep arriving
    /// for roughly one round-trip. Sized for the paper's settings (40 Gbps,
    /// microsecond-scale links) with generous slack.
    pub pfc_headroom_bytes: u64,
    /// Maximum violations kept in [`AuditMode::Record`] mode (further ones
    /// are counted but not stored).
    pub max_recorded: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            mode: AuditMode::Panic,
            checkpoint_every: 16 * 1024,
            pfc_headroom_bytes: 96 * 1024,
            max_recorded: 64,
        }
    }
}

/// The invariant auditor. Owned by the [`Simulator`](crate::sim::Simulator)
/// and reachable from node handlers through [`Ctx`](crate::sim::Ctx).
#[derive(Debug, Default)]
pub struct Audit {
    cfg: AuditConfig,
    violations: Vec<Violation>,
    /// Total violations detected (including ones not stored).
    total: u64,
    /// Checks performed, per family index.
    checks: [u64; FAMILY_COUNT],
    /// Last observed ternary state per (node, port, prio); ports start in
    /// NonCongestion per the paper's Fig. 6.
    states: BTreeMap<(u32, u16, u8), TernaryState>,
    /// Transitions observed, indexed by Fig. 6 number minus one.
    transitions: [u64; 6],
    /// Forward-progress counter at the previous liveness checkpoint.
    last_progress: Option<u64>,
    /// The blocked-channel cycle of the first detected deadlock (the
    /// watchdog reports once; the wedge persists across checkpoints).
    deadlock: Option<Vec<(NodeId, u16)>>,
}

impl Audit {
    /// New auditor with `cfg`.
    pub fn new(cfg: AuditConfig) -> Audit {
        Audit {
            cfg,
            ..Audit::default()
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.cfg
    }

    /// Mutable configuration access (e.g. to switch to
    /// [`AuditMode::Record`] before provoking a violation).
    pub fn config_mut(&mut self) -> &mut AuditConfig {
        &mut self.cfg
    }

    /// Recorded violations ([`AuditMode::Record`] only).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including ones beyond
    /// [`AuditConfig::max_recorded`].
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Whether no violation has been detected.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// How many checks of `family` have run so far (hook invocations plus
    /// checkpoint passes).
    pub fn checks(&self, family: InvariantFamily) -> u64 {
        self.checks[family.index()]
    }

    /// How many times Fig. 6 transition `t` was observed.
    pub fn transition_count(&self, t: Transition) -> u64 {
        self.transitions[t as usize]
    }

    /// Total observed state transitions.
    pub fn transitions_taken(&self) -> u64 {
        self.transitions.iter().sum()
    }

    /// Handle a detected violation per the configured mode.
    pub fn report(&mut self, v: Violation) {
        self.total += 1;
        match self.cfg.mode {
            AuditMode::Panic => panic!("simulation invariant violated: {v}"),
            AuditMode::Record => {
                if self.violations.len() < self.cfg.max_recorded {
                    self.violations.push(v);
                }
            }
        }
    }

    /// Count a completed check of `family`.
    // simlint: allow(hot-path-panic) -- family.index() enumerates the fixed-size checks array
    pub fn note_check(&mut self, family: InvariantFamily) {
        self.checks[family.index()] += 1;
    }

    /// A detector's ternary state was observed at `(node, port, prio)`.
    /// Verifies that any change from the previously observed state is one
    /// of the six Fig. 6 transitions, and that Undetermined is only ever
    /// entered on a port that has seen at least one OFF period
    /// (`off_epochs > 0`) — the paper's precondition for undeterminable
    /// ON-OFF arrivals.
    pub fn note_state(
        &mut self,
        t: SimTime,
        node: NodeId,
        port: u16,
        prio: u8,
        state: TernaryState,
        off_epochs: u64,
    ) {
        self.note_check(InvariantFamily::StateMachine);
        let prev = self
            .states
            .insert((node.0, port, prio), state)
            .unwrap_or(TernaryState::NonCongestion);
        if prev == state {
            return;
        }
        match Transition::classify(prev, state) {
            Some(tr) => self.transitions[tr as usize] += 1,
            None => self.report(Violation {
                family: InvariantFamily::StateMachine,
                t,
                node,
                port,
                prio,
                message: format!("illegal state transition {prev} -> {state}"),
            }),
        }
        if state.is_undetermined() && off_epochs == 0 {
            self.report(Violation {
                family: InvariantFamily::StateMachine,
                t,
                node,
                port,
                prio,
                message: "entered Undetermined without any OFF period (no pause/credit stall ever)"
                    .into(),
            });
        }
    }

    /// A packet was marked `mark` by the egress `(node, port, prio)` whose
    /// detector is in `state` after marking. Verifies Table 1: UE is only
    /// produced by an undetermined port, CE only by a determined one.
    // simlint: allow(hot-path-alloc) -- violation reporting path only, bounded by cfg.max_recorded
    pub fn note_mark(
        &mut self,
        t: SimTime,
        node: NodeId,
        port: u16,
        prio: u8,
        mark: CodePoint,
        state: TernaryState,
    ) {
        self.note_check(InvariantFamily::StateMachine);
        if mark.is_ue() && !state.is_undetermined() {
            self.report(Violation {
                family: InvariantFamily::StateMachine,
                t,
                node,
                port,
                prio,
                message: format!("UE mark from a determined port (state {state})"),
            });
        }
        if mark.is_ce() && state.is_undetermined() {
            self.report(Violation {
                family: InvariantFamily::StateMachine,
                t,
                node,
                port,
                prio,
                message: "CE mark from an undetermined port".into(),
            });
        }
    }

    /// A PAUSE frame is being emitted by the ingress accounting of
    /// `(node, port, prio)` whose counter reads `buffered`. Legal only
    /// strictly above `xoff`.
    // simlint: allow(hot-path-alloc) -- violation reporting path only, bounded by cfg.max_recorded
    pub fn pfc_pause_sent(
        &mut self,
        t: SimTime,
        node: NodeId,
        port: u16,
        prio: u8,
        buffered: u64,
        xoff: u64,
    ) {
        self.note_check(InvariantFamily::ProtocolLegality);
        if buffered <= xoff {
            self.report(Violation {
                family: InvariantFamily::ProtocolLegality,
                t,
                node,
                port,
                prio,
                message: format!("PAUSE sent with counter {buffered} <= X_off {xoff}"),
            });
        }
    }

    /// A RESUME frame is being emitted by the ingress accounting of
    /// `(node, port, prio)` whose counter reads `buffered`. Legal only at
    /// or below `xon`.
    // simlint: allow(hot-path-alloc) -- violation reporting path only, bounded by cfg.max_recorded
    pub fn pfc_resume_sent(
        &mut self,
        t: SimTime,
        node: NodeId,
        port: u16,
        prio: u8,
        buffered: u64,
        xon: u64,
    ) {
        self.note_check(InvariantFamily::ProtocolLegality);
        if buffered > xon {
            self.report(Violation {
                family: InvariantFamily::ProtocolLegality,
                t,
                node,
                port,
                prio,
                message: format!("RESUME sent with counter {buffered} > X_on {xon}"),
            });
        }
    }

    /// A scheduler selected `(node, port, prio)` for dequeue but its queue
    /// was empty: the byte/backlog accounting (reading `counter`) diverged
    /// from the queue contents.
    // simlint: allow(hot-path-alloc) -- violation reporting path only, bounded by cfg.max_recorded
    pub fn empty_dequeue(&mut self, t: SimTime, node: NodeId, port: u16, prio: u8, counter: u64) {
        self.report(Violation {
            family: InvariantFamily::BufferAccounting,
            t,
            node,
            port,
            prio,
            message: format!("dequeue from an empty queue (backlog counter reads {counter})"),
        });
    }

    /// A link-local control frame reached a node type that can never
    /// legally receive it (e.g. an FCCL frame at an Ethernet switch).
    // simlint: allow(hot-path-alloc) -- violation reporting path only, bounded by cfg.max_recorded
    pub fn misrouted_control_frame(&mut self, t: SimTime, node: NodeId, port: u16, what: &str) {
        self.report(Violation {
            family: InvariantFamily::ProtocolLegality,
            t,
            node,
            port,
            prio: u8::MAX,
            message: format!("misrouted link-local control frame: {what}"),
        });
    }

    /// Record the forward-progress counter at a liveness checkpoint.
    /// Returns `true` when it has not advanced since the previous
    /// checkpoint — the trigger for the deadlock wait-for-graph walk.
    pub fn note_progress(&mut self, progress: u64) -> bool {
        let stalled = self.last_progress == Some(progress);
        self.last_progress = Some(progress);
        stalled
    }

    /// The watchdog found a cycle of mutually blocked channels. Reports a
    /// [`InvariantFamily::Liveness`] violation once per run (the wedge
    /// persists, so later checkpoints would re-find the same cycle) and
    /// stores the cycle for [`Audit::deadlock_cycle`]. `describe` renders
    /// each hop (e.g. `s0[2]`) for the violation message.
    pub fn report_deadlock(
        &mut self,
        t: SimTime,
        cycle: Vec<(NodeId, u16)>,
        describe: impl Fn(NodeId, u16) -> String,
    ) {
        if self.deadlock.is_some() {
            return;
        }
        let hops: Vec<String> = cycle
            .iter()
            .chain(cycle.first())
            .map(|&(n, p)| describe(n, p))
            .collect();
        let (node, port) = cycle
            .first()
            .copied()
            .unwrap_or((NodeId(u32::MAX), u16::MAX));
        self.deadlock = Some(cycle);
        self.report(Violation {
            family: InvariantFamily::Liveness,
            t,
            node,
            port,
            prio: u8::MAX,
            message: format!(
                "PFC deadlock: progress stalled with a cyclic hop-by-hop wait ({} channels): {}",
                hops.len().saturating_sub(1),
                hops.join(" -> ")
            ),
        });
    }

    /// The blocked-channel cycle of the detected deadlock, if any: the
    /// `(node, egress port)` channels, each waiting on the next (and the
    /// last on the first).
    pub fn deadlock_cycle(&self) -> Option<&[(NodeId, u16)]> {
        self.deadlock.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> Audit {
        Audit::new(AuditConfig {
            mode: AuditMode::Record,
            ..AuditConfig::default()
        })
    }

    #[test]
    fn legal_transitions_are_tallied_not_reported() {
        let mut a = record();
        let n = NodeId(1);
        // 0 -> 1 -> / -> 0 exercises T1, T6, T4.
        a.note_state(SimTime::ZERO, n, 0, 1, TernaryState::Congestion, 0);
        a.note_state(SimTime::ZERO, n, 0, 1, TernaryState::Undetermined, 1);
        a.note_state(SimTime::ZERO, n, 0, 1, TernaryState::NonCongestion, 1);
        assert!(a.is_clean());
        assert_eq!(a.transitions_taken(), 3);
        assert_eq!(
            a.transition_count(Transition::T6CongestionToUndetermined),
            1
        );
    }

    #[test]
    fn undetermined_without_off_period_is_reported() {
        let mut a = record();
        a.note_state(
            SimTime::from_us(5),
            NodeId(2),
            1,
            1,
            TernaryState::Undetermined,
            0,
        );
        assert_eq!(a.total_violations(), 1);
        let v = &a.violations()[0];
        assert_eq!(v.family, InvariantFamily::StateMachine);
        assert_eq!(v.node, NodeId(2));
    }

    #[test]
    fn table1_marking_consistency() {
        let mut a = record();
        let n = NodeId(0);
        // Legal: CE from a determined port, UE from an undetermined one.
        a.note_mark(
            SimTime::ZERO,
            n,
            0,
            1,
            CodePoint::CE,
            TernaryState::Congestion,
        );
        a.note_mark(
            SimTime::ZERO,
            n,
            0,
            1,
            CodePoint::UE,
            TernaryState::Undetermined,
        );
        assert!(a.is_clean());
        // Illegal both ways.
        a.note_mark(
            SimTime::ZERO,
            n,
            0,
            1,
            CodePoint::UE,
            TernaryState::Congestion,
        );
        a.note_mark(
            SimTime::ZERO,
            n,
            0,
            1,
            CodePoint::CE,
            TernaryState::Undetermined,
        );
        assert_eq!(a.total_violations(), 2);
    }

    #[test]
    fn pfc_threshold_legality() {
        let mut a = record();
        let n = NodeId(3);
        a.pfc_pause_sent(SimTime::ZERO, n, 0, 1, 320 * 1024 + 1, 320 * 1024);
        a.pfc_resume_sent(SimTime::ZERO, n, 0, 1, 318 * 1024, 318 * 1024);
        assert!(a.is_clean());
        a.pfc_pause_sent(SimTime::ZERO, n, 0, 1, 100, 320 * 1024);
        a.pfc_resume_sent(SimTime::ZERO, n, 0, 1, 319 * 1024, 318 * 1024);
        assert_eq!(a.total_violations(), 2);
        assert!(a.checks(InvariantFamily::ProtocolLegality) >= 4);
    }

    #[test]
    #[should_panic(expected = "simulation invariant violated")]
    fn panic_mode_aborts_on_first_violation() {
        let mut a = Audit::default();
        a.empty_dequeue(SimTime::ZERO, NodeId(0), 0, 0, 42);
    }

    #[test]
    fn violation_display_carries_context() {
        let v = Violation {
            family: InvariantFamily::BufferAccounting,
            t: SimTime::from_us(7),
            node: NodeId(4),
            port: 2,
            prio: 1,
            message: "counter mismatch".into(),
        };
        let s = v.to_string();
        assert!(s.contains("buffer-accounting"), "{s}");
        assert!(s.contains("node=4"), "{s}");
        assert!(s.contains("port=2"), "{s}");
        assert!(s.contains("counter mismatch"), "{s}");
    }
}
