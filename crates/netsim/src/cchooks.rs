//! The interface between hosts and end-to-end congestion controllers.
//!
//! A [`RateController`] owns the sending rate of one flow. The host drives
//! it with [`CcEvent`]s — feedback packets, acknowledgements, expired
//! timers, transmitted bytes — and reads the rate back after every event.
//! Controllers request timers through [`CcAction`]; the host schedules them
//! on the simulator clock and delivers [`CcEvent::Timer`] when they fire.
//!
//! The DCQCN, TIMELY and IB CC implementations (and their TCD-aware
//! variants) live in the `lossless-cc` crate; this module only defines the
//! contract, so the simulator does not depend on any particular algorithm.

use crate::packet::IntHop;
use lossless_flowctl::{Rate, SimDuration, SimTime};
use tcd_core::CodePoint;

/// An input to a congestion controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcEvent {
    /// A congestion notification packet arrived (DCQCN CNP / IB BECN),
    /// carrying the code point that triggered it.
    Feedback {
        /// CE, or UE under TCD.
        code: CodePoint,
    },
    /// An acknowledgement arrived (per-packet ACK feedback mode).
    Ack {
        /// Measured round-trip time of the acknowledged packet.
        rtt: SimDuration,
        /// Code point observed on the acknowledged data packet.
        code: CodePoint,
        /// Payload bytes acknowledged.
        bytes: u64,
        /// Echoed in-band telemetry of the acknowledged packet (empty
        /// unless INT is enabled).
        int: Vec<IntHop>,
    },
    /// A previously requested timer fired.
    Timer {
        /// Controller-defined timer id.
        id: u32,
    },
    /// The NIC put `bytes` of this flow on the wire (drives byte counters).
    Sent {
        /// Bytes transmitted.
        bytes: u64,
    },
}

impl CcEvent {
    /// Stable metric name for this event kind, used by the per-host
    /// `cc.event.*` counters in the observability layer.
    pub fn kind_name(&self) -> &'static str {
        match self {
            CcEvent::Feedback { .. } => "cc.event.feedback",
            CcEvent::Ack { .. } => "cc.event.ack",
            CcEvent::Timer { .. } => "cc.event.timer",
            CcEvent::Sent { .. } => "cc.event.sent",
        }
    }
}

/// Timer requests returned by a controller. An empty action means "nothing
/// to schedule".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CcAction {
    /// `(timer id, delay from now)` pairs to schedule. Re-requesting an id
    /// supersedes the previous request: only the most recently requested
    /// deadline for an id is delivered.
    pub timers: Vec<(u32, SimDuration)>,
}

impl CcAction {
    /// No timers.
    pub fn none() -> CcAction {
        CcAction::default()
    }

    /// A single timer request.
    // simlint: allow(hot-path-alloc) -- single-element timer request, bounded by CC event frequency
    pub fn timer(id: u32, delay: SimDuration) -> CcAction {
        CcAction {
            timers: vec![(id, delay)],
        }
    }
}

/// End-to-end congestion controller for one flow.
///
/// `Send` so the conservative-parallel executor (`crate::par`) can move a
/// host — controllers included — to a worker thread. Controllers are pure
/// per-flow state machines, so this costs nothing in practice.
pub trait RateController: Send {
    /// Called once when the flow starts. `line_rate` is the source NIC's
    /// link rate; the controller returns its initial timers and must leave
    /// [`rate`](Self::rate) at the flow's initial sending rate.
    fn start(&mut self, now: SimTime, line_rate: Rate) -> CcAction;

    /// Deliver an event; returns timers to (re)schedule.
    fn on_event(&mut self, now: SimTime, ev: CcEvent) -> CcAction;

    /// The flow's current allowed sending rate.
    fn rate(&self) -> Rate;

    /// A short algorithm name for traces ("dcqcn", "timely+tcd", …).
    fn name(&self) -> &'static str;
}

/// A controller that never changes rate: used for the paper's uncontrolled
/// constant-rate flows (F0/F2) and burst senders, and as a null object in
/// tests.
#[derive(Debug, Clone)]
pub struct FixedRate {
    rate: Rate,
    /// When `None`, [`start`](RateController::start) adopts the line rate.
    configured: Option<Rate>,
}

impl FixedRate {
    /// Always send at `rate`.
    pub fn new(rate: Rate) -> Self {
        FixedRate {
            rate,
            configured: Some(rate),
        }
    }

    /// Always send at the source NIC's line rate.
    pub fn line_rate() -> Self {
        FixedRate {
            rate: Rate::ZERO,
            configured: None,
        }
    }
}

impl RateController for FixedRate {
    fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
        if let Some(r) = self.configured {
            self.rate = r.min(line_rate);
        } else {
            self.rate = line_rate;
        }
        CcAction::none()
    }

    fn on_event(&mut self, _now: SimTime, _ev: CcEvent) -> CcAction {
        CcAction::none()
    }

    fn rate(&self) -> Rate {
        self.rate
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_ignores_everything() {
        let mut f = FixedRate::new(Rate::from_gbps(5));
        let a = f.start(SimTime::ZERO, Rate::from_gbps(40));
        assert_eq!(a, CcAction::none());
        assert_eq!(f.rate(), Rate::from_gbps(5));
        let _ = f.on_event(
            SimTime::ZERO,
            CcEvent::Feedback {
                code: CodePoint::CE,
            },
        );
        assert_eq!(f.rate(), Rate::from_gbps(5));
        assert_eq!(f.name(), "fixed");
    }

    #[test]
    fn fixed_rate_is_clamped_to_line_rate() {
        let mut f = FixedRate::new(Rate::from_gbps(100));
        let _ = f.start(SimTime::ZERO, Rate::from_gbps(40));
        assert_eq!(f.rate(), Rate::from_gbps(40));
    }

    #[test]
    fn line_rate_adopts_nic_speed() {
        let mut f = FixedRate::line_rate();
        let _ = f.start(SimTime::ZERO, Rate::from_gbps(25));
        assert_eq!(f.rate(), Rate::from_gbps(25));
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(
            CcEvent::Feedback {
                code: CodePoint::CE
            }
            .kind_name(),
            "cc.event.feedback"
        );
        assert_eq!(CcEvent::Timer { id: 1 }.kind_name(), "cc.event.timer");
        assert_eq!(CcEvent::Sent { bytes: 1 }.kind_name(), "cc.event.sent");
    }

    #[test]
    fn action_helpers() {
        assert_eq!(CcAction::none().timers.len(), 0);
        let a = CcAction::timer(3, SimDuration::from_us(55));
        assert_eq!(a.timers, vec![(3, SimDuration::from_us(55))]);
    }
}
