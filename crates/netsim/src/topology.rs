//! Network topology: nodes, ports and full-duplex links, plus builders for
//! the topologies the paper evaluates on.
//!
//! * [`figure2`] — the paper's Figure 2 unit scenario (a chain of four
//!   switches with burst senders and two receivers), used by the §3
//!   observations, the §5.1 microbenchmarks and the §5.2 victim/fairness
//!   case studies;
//! * [`fat_tree`] — a k-ary fat-tree (Fig. 16: k = 10, 250 hosts;
//!   Fig. 17: k = 16, 1024 hosts);
//! * [`leaf_spine`] — a generic leaf-spine for additional experiments;
//! * [`dumbbell`] — the minimal two-host topology used by unit tests;
//! * [`testbed_compact`] — the §5.1.1 DPDK-testbed variant of Figure 2
//!   (switch T0 directly connected to T2, 10 Gbps links).

use lossless_flowctl::{Rate, SimDuration};

/// Index of a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An endpoint with a single NIC port.
    Host,
    /// A switch.
    Switch,
}

/// One direction of a link as seen from a port: who is at the other end and
/// what the wire does.
#[derive(Debug, Clone, Copy)]
pub struct LinkEnd {
    /// Peer node.
    pub peer: NodeId,
    /// Port index at the peer through which our transmissions arrive.
    pub peer_port: u16,
    /// Link capacity.
    pub rate: Rate,
    /// Propagation delay.
    pub delay: SimDuration,
}

/// An immutable network topology.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    /// `ports[node][port]` describes the link attached to that port.
    ports: Vec<Vec<LinkEnd>>,
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder {
            kinds: Vec::new(),
            names: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// Human-readable name of a node.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// All ports of a node.
    pub fn ports(&self, n: NodeId) -> &[LinkEnd] {
        &self.ports[n.index()]
    }

    /// The link attached to `(node, port)`.
    // simlint: allow(hot-path-panic) -- node/port pairs originate from this topology's own tables
    pub fn link(&self, n: NodeId, port: u16) -> &LinkEnd {
        &self.ports[n.index()][port as usize]
    }

    /// All host node ids, in id order.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n) == NodeKind::Host)
            .collect()
    }

    /// All switch node ids, in id order.
    pub fn switches(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n) == NodeKind::Switch)
            .collect()
    }

    /// Find the port on `from` whose link leads to `to`, if directly
    /// connected.
    // simlint: allow(hot-path-panic) -- from is a NodeId minted by this builder, in bounds by construction
    pub fn port_towards(&self, from: NodeId, to: NodeId) -> Option<u16> {
        self.ports[from.index()]
            .iter()
            .position(|l| l.peer == to)
            .map(|p| p as u16)
    }

    /// Look a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }
}

/// Incremental topology builder.
#[derive(Debug)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    ports: Vec<Vec<LinkEnd>>,
}

impl TopologyBuilder {
    /// Add a node and return its id.
    pub fn node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.names.push(name.into());
        self.ports.push(Vec::new());
        id
    }

    /// Add a host.
    pub fn host(&mut self, name: impl Into<String>) -> NodeId {
        self.node(name, NodeKind::Host)
    }

    /// Add a switch.
    pub fn switch(&mut self, name: impl Into<String>) -> NodeId {
        self.node(name, NodeKind::Switch)
    }

    /// Connect two nodes with a symmetric full-duplex link; returns the
    /// port indices allocated at `(a, b)`.
    // simlint: allow(hot-path-panic) -- builder-time only (hot by a name collision with the
    // accessor); node ids were minted by this builder
    pub fn link(&mut self, a: NodeId, b: NodeId, rate: Rate, delay: SimDuration) -> (u16, u16) {
        assert_ne!(a, b, "self-links are not allowed");
        let pa = self.ports[a.index()].len() as u16;
        let pb = self.ports[b.index()].len() as u16;
        self.ports[a.index()].push(LinkEnd {
            peer: b,
            peer_port: pb,
            rate,
            delay,
        });
        self.ports[b.index()].push(LinkEnd {
            peer: a,
            peer_port: pa,
            rate,
            delay,
        });
        (pa, pb)
    }

    /// Finish building.
    pub fn build(self) -> Topology {
        let topo = Topology {
            kinds: self.kinds,
            names: self.names,
            ports: self.ports,
        };
        for (i, k) in topo.kinds.iter().enumerate() {
            if *k == NodeKind::Host {
                assert_eq!(
                    topo.ports[i].len(),
                    1,
                    "host {} must have exactly one NIC port",
                    topo.names[i]
                );
            }
        }
        topo
    }
}

/// Handles into the Figure-2 scenario topology.
///
/// Layout (reconstructed from §3.1, §5.1.3 and §5.2.4 of the paper):
///
/// ```text
/// S0 ─┐                       ┌─ A0 … A(n-1)
/// S1 ─┤ T0 ──P0── T1 ──P1── T2 ──P2── T3 ──P3── R1
///     │               S2 ────┘       │└──── R0
///     └ (B0…B3 ─ L0 ───────── T2, optional, §5.2.4)
/// ```
///
/// * `P3` (T3 → R1) is the congestion root for the incast bursts;
/// * `P2` (T2 → T3) carries F0/F1/F2 and becomes a second (covered)
///   congestion point when F0/F2 send 25 Gbps each;
/// * `P1`, `P0` are further upstream on F1's path and only ever suffer
///   congestion spreading.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The topology itself.
    pub topo: Topology,
    /// Host S0 (sends F0 → R0), attached to T0.
    pub s0: NodeId,
    /// Host S1 (sends F1 → R1), attached to T0.
    pub s1: NodeId,
    /// Host S2 (sends F2 → R0), attached to T2.
    pub s2: NodeId,
    /// Burst senders A0…A(n-1), attached to T3.
    pub bursters: Vec<NodeId>,
    /// Receiver R0, attached to T3.
    pub r0: NodeId,
    /// Receiver R1, attached to T3.
    pub r1: NodeId,
    /// Optional hosts B0…B3 on leaf L0 (fairness scenario, §5.2.4).
    pub b_hosts: Vec<NodeId>,
    /// Optional leaf switch L0.
    pub l0: Option<NodeId>,
    /// Switches T0…T3 along the chain.
    pub t: [NodeId; 4],
    /// Port P0: T0's egress towards T1, as `(node, port)`.
    pub p0: (NodeId, u16),
    /// Port P1: T1's egress towards T2.
    pub p1: (NodeId, u16),
    /// Port P2: T2's egress towards T3.
    pub p2: (NodeId, u16),
    /// Port P3: T3's egress towards R1.
    pub p3: (NodeId, u16),
}

/// Options for [`figure2`].
#[derive(Debug, Clone, Copy)]
pub struct Figure2Options {
    /// Link rate everywhere except overridden edge links (paper: 40 Gbps).
    pub rate: Rate,
    /// Propagation delay on every link (paper: 4 µs).
    pub delay: SimDuration,
    /// Number of burst senders (paper: 15, A0–A14).
    pub bursters: usize,
    /// Override for the S0–T0 and S1–T0 edge links (victim scenario §5.1.3
    /// sets these to 20 Gbps).
    pub s_edge_rate: Option<Rate>,
    /// Add L0 with B0…B3 for the fairness scenario (§5.2.4).
    pub with_b_hosts: bool,
}

impl Default for Figure2Options {
    fn default() -> Self {
        Figure2Options {
            rate: Rate::from_gbps(40),
            delay: SimDuration::from_us(4),
            bursters: 15,
            s_edge_rate: None,
            with_b_hosts: false,
        }
    }
}

/// Build the paper's Figure-2 unit scenario.
pub fn figure2(opt: Figure2Options) -> Figure2 {
    let mut b = Topology::builder();
    let t0 = b.switch("T0");
    let t1 = b.switch("T1");
    let t2 = b.switch("T2");
    let t3 = b.switch("T3");

    let s_rate = opt.s_edge_rate.unwrap_or(opt.rate);
    let s0 = b.host("S0");
    let s1 = b.host("S1");
    let s2 = b.host("S2");
    b.link(s0, t0, s_rate, opt.delay);
    b.link(s1, t0, s_rate, opt.delay);
    b.link(s2, t2, opt.rate, opt.delay);

    let (p0, _) = b.link(t0, t1, opt.rate, opt.delay);
    let (p1, _) = b.link(t1, t2, opt.rate, opt.delay);
    let (p2, _) = b.link(t2, t3, opt.rate, opt.delay);

    let r0 = b.host("R0");
    let r1 = b.host("R1");
    b.link(t3, r0, opt.rate, opt.delay);
    let (p3, _) = b.link(t3, r1, opt.rate, opt.delay);

    let mut bursters = Vec::with_capacity(opt.bursters);
    for i in 0..opt.bursters {
        let a = b.host(format!("A{i}"));
        b.link(a, t3, opt.rate, opt.delay);
        bursters.push(a);
    }

    let (l0, b_hosts) = if opt.with_b_hosts {
        let l0 = b.switch("L0");
        let mut hs = Vec::with_capacity(4);
        for i in 0..4 {
            let h = b.host(format!("B{i}"));
            b.link(h, l0, opt.rate, opt.delay);
            hs.push(h);
        }
        b.link(l0, t2, opt.rate, opt.delay);
        (Some(l0), hs)
    } else {
        (None, Vec::new())
    };

    Figure2 {
        topo: b.build(),
        s0,
        s1,
        s2,
        bursters,
        r0,
        r1,
        b_hosts,
        l0,
        t: [t0, t1, t2, t3],
        p0: (t0, p0),
        p1: (t1, p1),
        p2: (t2, p2),
        p3: (t3, p3),
    }
}

/// The §5.1.1 DPDK-testbed variant: Figure 2 compacted to two switches (T0
/// directly connected to T2), 10 Gbps links, a single burst sender A0, and
/// receivers on T2. Port `P0` is T0's egress towards T2.
#[derive(Debug, Clone)]
pub struct TestbedCompact {
    /// The topology.
    pub topo: Topology,
    /// Host S0 (F0 → R0).
    pub s0: NodeId,
    /// Host S1 (F1 → R1).
    pub s1: NodeId,
    /// Burst sender A0.
    pub a0: NodeId,
    /// Receiver R0.
    pub r0: NodeId,
    /// Receiver R1.
    pub r1: NodeId,
    /// Switch T0 (hosts side).
    pub t0: NodeId,
    /// Switch T2 (receivers side).
    pub t2: NodeId,
    /// Port P0: T0's egress towards T2.
    pub p0: (NodeId, u16),
    /// T2's egress towards R1 (the congestion root).
    pub p_r1: (NodeId, u16),
}

/// Build the testbed-compact topology.
pub fn testbed_compact(rate: Rate, delay: SimDuration) -> TestbedCompact {
    let mut b = Topology::builder();
    let t0 = b.switch("T0");
    let t2 = b.switch("T2");
    let s0 = b.host("S0");
    let s1 = b.host("S1");
    b.link(s0, t0, rate, delay);
    b.link(s1, t0, rate, delay);
    let (p0, _) = b.link(t0, t2, rate, delay);
    let a0 = b.host("A0");
    b.link(a0, t2, rate, delay);
    let r0 = b.host("R0");
    let r1 = b.host("R1");
    b.link(t2, r0, rate, delay);
    let (p_r1, _) = b.link(t2, r1, rate, delay);
    TestbedCompact {
        topo: b.build(),
        s0,
        s1,
        a0,
        r0,
        r1,
        t0,
        t2,
        p0: (t0, p0),
        p_r1: (t2, p_r1),
    }
}

/// A k-ary fat-tree topology (Al-Fares et al., SIGCOMM'08): `k` pods, each
/// with `k/2` edge and `k/2` aggregation switches, `(k/2)²` core switches,
/// and `k/2` hosts per edge switch — `k³/4` hosts total.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// The topology.
    pub topo: Topology,
    /// All hosts, in pod/edge order.
    pub hosts: Vec<NodeId>,
    /// Edge (top-of-rack) switches, `k²/2` of them.
    pub edges: Vec<NodeId>,
    /// Aggregation switches, `k²/2`.
    pub aggs: Vec<NodeId>,
    /// Core switches, `(k/2)²`.
    pub cores: Vec<NodeId>,
    /// The arity `k`.
    pub k: usize,
}

/// Build a k-ary fat-tree with uniform link rate and delay. `k` must be
/// even and at least 2.
pub fn fat_tree(k: usize, rate: Rate, delay: SimDuration) -> FatTree {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and >= 2"
    );
    let half = k / 2;
    let mut b = Topology::builder();

    let cores: Vec<NodeId> = (0..half * half)
        .map(|i| b.switch(format!("core{i}")))
        .collect();
    let mut edges = Vec::with_capacity(k * half);
    let mut aggs = Vec::with_capacity(k * half);
    let mut hosts = Vec::with_capacity(k * half * half);

    for pod in 0..k {
        let pod_aggs: Vec<NodeId> = (0..half)
            .map(|i| b.switch(format!("agg{pod}_{i}")))
            .collect();
        let pod_edges: Vec<NodeId> = (0..half)
            .map(|i| b.switch(format!("edge{pod}_{i}")))
            .collect();
        // Edge <-> aggregation full mesh within the pod.
        for &e in &pod_edges {
            for &a in &pod_aggs {
                b.link(e, a, rate, delay);
            }
        }
        // Aggregation i connects to cores [i*half, (i+1)*half).
        for (i, &a) in pod_aggs.iter().enumerate() {
            for j in 0..half {
                b.link(a, cores[i * half + j], rate, delay);
            }
        }
        // Hosts.
        for (ei, &e) in pod_edges.iter().enumerate() {
            for h in 0..half {
                let host = b.host(format!("h{pod}_{ei}_{h}"));
                b.link(host, e, rate, delay);
                hosts.push(host);
            }
        }
        aggs.extend(pod_aggs);
        edges.extend(pod_edges);
    }

    FatTree {
        topo: b.build(),
        hosts,
        edges,
        aggs,
        cores,
        k,
    }
}

/// A two-tier leaf-spine topology with `leaves × hosts_per_leaf` hosts.
#[derive(Debug, Clone)]
pub struct LeafSpine {
    /// The topology.
    pub topo: Topology,
    /// All hosts, grouped by leaf.
    pub hosts: Vec<NodeId>,
    /// Leaf switches.
    pub leaves: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
}

/// Build a leaf-spine topology.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    rate: Rate,
    delay: SimDuration,
) -> LeafSpine {
    assert!(leaves > 0 && spines > 0 && hosts_per_leaf > 0);
    let mut b = Topology::builder();
    let spine_ids: Vec<NodeId> = (0..spines).map(|i| b.switch(format!("spine{i}"))).collect();
    let mut leaf_ids = Vec::with_capacity(leaves);
    let mut hosts = Vec::with_capacity(leaves * hosts_per_leaf);
    for l in 0..leaves {
        let leaf = b.switch(format!("leaf{l}"));
        for &s in &spine_ids {
            b.link(leaf, s, rate, delay);
        }
        for h in 0..hosts_per_leaf {
            let host = b.host(format!("h{l}_{h}"));
            b.link(host, leaf, rate, delay);
            hosts.push(host);
        }
        leaf_ids.push(leaf);
    }
    LeafSpine {
        topo: b.build(),
        hosts,
        leaves: leaf_ids,
        spines: spine_ids,
    }
}

/// The minimal topology: two hosts joined by one switch (unit tests) —
/// `h0 — sw — h1`.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// The topology.
    pub topo: Topology,
    /// First host.
    pub h0: NodeId,
    /// Second host.
    pub h1: NodeId,
    /// The switch.
    pub sw: NodeId,
}

/// Build the dumbbell.
pub fn dumbbell(rate: Rate, delay: SimDuration) -> Dumbbell {
    let mut b = Topology::builder();
    let sw = b.switch("sw");
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    b.link(h0, sw, rate, delay);
    b.link(h1, sw, rate, delay);
    Dumbbell {
        topo: b.build(),
        h0,
        h1,
        sw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Rate {
        Rate::from_gbps(40)
    }
    fn d() -> SimDuration {
        SimDuration::from_us(4)
    }

    #[test]
    fn builder_links_are_symmetric() {
        let db = dumbbell(r(), d());
        let t = &db.topo;
        assert_eq!(t.node_count(), 3);
        let l = t.link(db.h0, 0);
        assert_eq!(l.peer, db.sw);
        let back = t.link(db.sw, l.peer_port);
        assert_eq!(back.peer, db.h0);
        assert_eq!(back.peer_port, 0);
    }

    #[test]
    fn figure2_structure() {
        let f = figure2(Figure2Options::default());
        let t = &f.topo;
        // 4 switches + 3 S hosts + 2 receivers + 15 bursters = 24 nodes.
        assert_eq!(t.node_count(), 24);
        assert_eq!(t.hosts().len(), 20);
        assert_eq!(t.switches().len(), 4);
        // P0..P3 point down the chain.
        assert_eq!(t.link(f.p0.0, f.p0.1).peer, f.t[1]);
        assert_eq!(t.link(f.p1.0, f.p1.1).peer, f.t[2]);
        assert_eq!(t.link(f.p2.0, f.p2.1).peer, f.t[3]);
        assert_eq!(t.link(f.p3.0, f.p3.1).peer, f.r1);
        // S2 hangs off T2, bursters off T3.
        assert_eq!(t.link(f.s2, 0).peer, f.t[2]);
        for &a in &f.bursters {
            assert_eq!(t.link(a, 0).peer, f.t[3]);
        }
    }

    #[test]
    fn figure2_edge_rate_override() {
        let f = figure2(Figure2Options {
            s_edge_rate: Some(Rate::from_gbps(20)),
            ..Default::default()
        });
        assert_eq!(f.topo.link(f.s0, 0).rate, Rate::from_gbps(20));
        assert_eq!(f.topo.link(f.s1, 0).rate, Rate::from_gbps(20));
        assert_eq!(f.topo.link(f.s2, 0).rate, Rate::from_gbps(40));
    }

    #[test]
    fn figure2_with_b_hosts() {
        let f = figure2(Figure2Options {
            with_b_hosts: true,
            ..Default::default()
        });
        assert_eq!(f.b_hosts.len(), 4);
        let l0 = f.l0.unwrap();
        assert_eq!(f.topo.port_towards(l0, f.t[2]).map(|_| ()), Some(()));
        for &h in &f.b_hosts {
            assert_eq!(f.topo.link(h, 0).peer, l0);
        }
    }

    #[test]
    fn fat_tree_counts() {
        for k in [2usize, 4, 6] {
            let ft = fat_tree(k, r(), d());
            assert_eq!(ft.hosts.len(), k * k * k / 4, "k={k} hosts");
            assert_eq!(ft.edges.len(), k * k / 2);
            assert_eq!(ft.aggs.len(), k * k / 2);
            assert_eq!(ft.cores.len(), k * k / 4);
            // Every switch in a k-fat-tree has exactly k ports.
            for &s in ft.edges.iter().chain(&ft.aggs).chain(&ft.cores) {
                assert_eq!(ft.topo.ports(s).len(), k, "k={k}");
            }
        }
    }

    #[test]
    fn fat_tree_k10_has_250_hosts() {
        // The Fig. 16 network.
        let ft = fat_tree(10, r(), d());
        assert_eq!(ft.hosts.len(), 250);
    }

    #[test]
    #[should_panic]
    fn fat_tree_rejects_odd_k() {
        let _ = fat_tree(3, r(), d());
    }

    #[test]
    fn leaf_spine_structure() {
        let ls = leaf_spine(4, 2, 8, r(), d());
        assert_eq!(ls.hosts.len(), 32);
        for &leaf in &ls.leaves {
            assert_eq!(ls.topo.ports(leaf).len(), 2 + 8);
        }
        for &spine in &ls.spines {
            assert_eq!(ls.topo.ports(spine).len(), 4);
        }
    }

    #[test]
    fn testbed_compact_structure() {
        let tb = testbed_compact(Rate::from_gbps(10), SimDuration::from_us(1));
        assert_eq!(tb.topo.node_count(), 7);
        assert_eq!(tb.topo.link(tb.p0.0, tb.p0.1).peer, tb.t2);
        assert_eq!(tb.topo.link(tb.p_r1.0, tb.p_r1.1).peer, tb.r1);
    }

    #[test]
    fn node_lookup_by_name() {
        let f = figure2(Figure2Options::default());
        assert_eq!(f.topo.node_by_name("S1"), Some(f.s1));
        assert_eq!(f.topo.node_by_name("T3"), Some(f.t[3]));
        assert_eq!(f.topo.node_by_name("nope"), None);
    }

    #[test]
    #[should_panic]
    fn hosts_must_have_one_port() {
        let mut b = Topology::builder();
        let h = b.host("h");
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.link(h, s1, r(), d());
        b.link(h, s2, r(), d());
        let _ = b.build();
    }
}
