//! The Converged-Enhanced-Ethernet switch: shared buffer, per-egress FIFO
//! queues per priority, per-ingress PFC byte accounting, and a congestion
//! detector on every egress (port, data-priority).
//!
//! The architecture follows the ns-3 RDMA model the paper builds on
//! (§5.2.1): packets are physically queued at their egress, while a
//! per-(ingress port, priority) byte counter tracks how much of the shared
//! buffer each ingress is responsible for. When a counter exceeds `X_off`
//! the switch sends a PAUSE upstream through that ingress port; when it
//! drains to `X_on` it sends RESUME. An egress that receives a PAUSE stops
//! serving that priority — that is the ON-OFF pattern TCD observes.

use crate::config::FlowControlMode;
use crate::event::{Event, TxGate};
use crate::packet::{Packet, PacketKind};
use crate::sim::Ctx;
use crate::topology::NodeId;
use lossless_flowctl::pfc::{PfcCommand, PfcEgress, PfcIngress};
use lossless_flowctl::units::CTRL_FRAME_BYTES;
use lossless_flowctl::SimTime;
use std::collections::VecDeque;
use tcd_core::detector::{CongestionDetector, DequeueContext};
use tcd_core::TernaryState;

/// One port of an Ethernet switch (egress queues + ingress accounting).
pub struct EthPort {
    /// Per-priority egress FIFO.
    q: Vec<VecDeque<Box<Packet>>>,
    /// Per-priority queued bytes.
    qbytes: Vec<u64>,
    /// Link-local control frames (PAUSE/RESUME) to send out this port;
    /// preempt all data.
    ctrl: VecDeque<Box<Packet>>,
    /// Pause state of this egress per priority (set by the downstream
    /// switch's PAUSE frames).
    paused: Vec<PfcEgress>,
    /// PFC accounting for packets that *arrived* through this port, per
    /// priority.
    pfc_in: Vec<PfcIngress>,
    /// Number of times this egress was paused, per priority. Packets stamp
    /// the epoch at enqueue; an advance during their wait means they were
    /// "delayed by flow control" — the input NP-ECN-style detectors need.
    pause_epochs: Vec<u64>,
    /// Congestion detector per priority (only the data priority is
    /// consulted, but every priority owns one for uniformity).
    det: Vec<Box<dyn CongestionDetector>>,
    /// Earliest pending detector-timer event per priority.
    det_timer: Vec<Option<SimTime>>,
    /// Last detector state observed per priority, used to detect Fig.-6
    /// transitions for the observability layer without polling.
    last_state: Vec<TernaryState>,
    gate: TxGate,
    /// Cumulative data bytes transmitted (trace sampling).
    pub tx_bytes: u64,
}

impl EthPort {
    /// Egress queue length in bytes for `prio`.
    // simlint: allow(hot-path-panic) -- prio < num_prios is validated at config build; qbytes is sized num_prios at construction
    pub fn queue_bytes(&self, prio: u8) -> u64 {
        self.qbytes[prio as usize]
    }

    /// Whether this egress is paused for `prio`.
    // simlint: allow(hot-path-panic) -- prio < num_prios is validated at config build; paused is sized num_prios at construction
    pub fn is_paused(&self, prio: u8) -> bool {
        self.paused[prio as usize].is_paused()
    }

    /// The detector's current belief for `prio`.
    // simlint: allow(hot-path-panic) -- prio < num_prios is validated at config build; det is sized num_prios at construction
    pub fn port_state(&self, prio: u8) -> TernaryState {
        self.det[prio as usize].port_state()
    }

    /// Total PAUSE frames this port's ingress accounting has emitted.
    pub fn pauses_sent(&self) -> u64 {
        self.pfc_in.iter().map(|p| p.pauses_sent()).sum()
    }

    /// Whether this port's ingress accounting currently has an outstanding
    /// PAUSE towards its upstream neighbour for `prio`.
    // simlint: allow(hot-path-panic) -- prio < num_prios is validated at config build; pfc_in is sized num_prios at construction
    pub fn is_pausing_upstream(&self, prio: u8) -> bool {
        self.pfc_in[prio as usize].is_pausing_upstream()
    }
}

/// A shared-buffer Ethernet switch with PFC, or a drop-tail lossy switch.
pub struct EthSwitch {
    id: NodeId,
    ports: Vec<EthPort>,
    /// Total bytes buffered across the switch (high-water tracked).
    buffered: u64,
    /// Buffer high-water mark.
    pub max_buffered: u64,
    /// Lossy mode: per-(egress, priority) drop-tail limit. `None` = PFC
    /// (lossless) mode.
    drop_tail: Option<u64>,
}

impl EthSwitch {
    /// Build a switch for `node` with one [`EthPort`] per topology port.
    /// `mk_det` builds the detector for each `(port, prio)`.
    pub fn new(
        id: NodeId,
        n_ports: usize,
        num_prios: u8,
        fc: &FlowControlMode,
        mut mk_det: impl FnMut(u16, u8) -> Box<dyn CongestionDetector>,
    ) -> EthSwitch {
        let (pfc_cfg, drop_tail) = match fc {
            FlowControlMode::Pfc(p) => (*p, None),
            FlowControlMode::Lossy {
                egress_buffer_bytes,
            } => {
                // PFC machinery is instantiated but the thresholds are
                // unreachable (drop-tail caps the buffers far below them).
                (
                    lossless_flowctl::pfc::PfcConfig::new(u64::MAX - 1, u64::MAX - 2),
                    Some(*egress_buffer_bytes),
                )
            }
            FlowControlMode::Cbfc(_) => panic!("EthSwitch cannot run CBFC"),
        };
        let np = num_prios as usize;
        let ports = (0..n_ports)
            .map(|p| {
                let det: Vec<Box<dyn CongestionDetector>> =
                    (0..np).map(|pr| mk_det(p as u16, pr as u8)).collect();
                let last_state = det.iter().map(|d| d.port_state()).collect();
                EthPort {
                    q: (0..np).map(|_| VecDeque::new()).collect(),
                    qbytes: vec![0; np],
                    ctrl: VecDeque::new(),
                    paused: (0..np).map(|_| PfcEgress::new()).collect(),
                    pfc_in: (0..np).map(|_| PfcIngress::new(pfc_cfg)).collect(),
                    pause_epochs: vec![0; np],
                    det,
                    det_timer: vec![None; np],
                    last_state,
                    gate: TxGate::new(),
                    tx_bytes: 0,
                }
            })
            .collect();
        EthSwitch {
            id,
            ports,
            buffered: 0,
            max_buffered: 0,
            drop_tail,
        }
    }

    /// Access a port (for traces and tests).
    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    pub fn port(&self, p: u16) -> &EthPort {
        &self.ports[p as usize]
    }

    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    fn kick(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        // A downed link transmits nothing; on_link_state re-kicks on
        // recovery so held queues (and control frames) drain then.
        if !ctx.links.is_up(self.id, port) {
            return;
        }
        let gate = &mut self.ports[port as usize].gate;
        if let Some(at) = gate.want(ctx.now) {
            ctx.q.schedule(
                at,
                Event::PortTx {
                    node: self.id,
                    port,
                },
            );
            gate.note_scheduled(at);
        }
    }

    /// Push a PAUSE/RESUME frame out through `port` (towards the upstream
    /// node that is over/under-filling us).
    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    fn send_pfc(&mut self, ctx: &mut Ctx<'_>, port: u16, prio: u8, pause: bool) {
        let frame = ctx.pool.boxed(Packet::link_local(
            PacketKind::Pause { prio, pause },
            CTRL_FRAME_BYTES,
            0,
        ));
        self.ports[port as usize].ctrl.push_back(frame);
        ctx.trace.pause_frames += 1;
        ctx.obs.pfc_frame_tx(ctx.now, self.id.0, port, prio, pause);
        self.kick(ctx, port);
    }

    /// Report a detector state change for `(port, prio)` to the
    /// observability layer (cheap two-byte compare when nothing changed).
    // simlint: allow(hot-path-panic) -- (port, prio) validated by the callers' invariants; vecs sized at construction
    fn obs_note_state(&mut self, ctx: &mut Ctx<'_>, port: u16, prio: u8) {
        let p = &mut self.ports[port as usize];
        let cur = p.det[prio as usize].port_state();
        let prev = p.last_state[prio as usize];
        if cur != prev {
            p.last_state[prio as usize] = cur;
            ctx.obs
                .transition(ctx.now, self.id.0, port, prio, prev, cur);
        }
    }

    /// Re-sync the detector timer for `(port, prio)` with the engine.
    // simlint: allow(hot-path-panic) -- (port, prio) pairs originate from this switch's own event scheduling; vecs sized at construction
    fn sync_det_timer(&mut self, ctx: &mut Ctx<'_>, port: u16, prio: u8) {
        let p = &mut self.ports[port as usize];
        let want = p.det[prio as usize].timer_deadline();
        let pend = &mut p.det_timer[prio as usize];
        if let Some(dl) = want {
            if pend.is_none_or(|t| dl < t) {
                ctx.q.schedule(
                    dl,
                    Event::DetectorTimer {
                        node: self.id,
                        port,
                        prio,
                    },
                );
                *pend = Some(dl);
            }
        }
    }

    /// A detector trend timer fired.
    // simlint: allow(hot-path-panic) -- (port, prio) echo back from events this switch scheduled; vecs sized at construction
    pub fn on_detector_timer(&mut self, ctx: &mut Ctx<'_>, port: u16, prio: u8) {
        // Back-pressure signal: is this switch currently pausing any
        // upstream on this priority? (Shared-buffer accounting cannot
        // attribute the pause to one egress, so this is switch-wide — a
        // conservative approximation discussed in DESIGN.md.)
        let backpressured = self
            .ports
            .iter()
            .any(|p| p.pfc_in[prio as usize].is_pausing_upstream());
        {
            let p = &mut self.ports[port as usize];
            let pend = &mut p.det_timer[prio as usize];
            if *pend == Some(ctx.now) {
                *pend = None;
            }
            if p.det[prio as usize].timer_deadline() == Some(ctx.now) {
                let q = p.qbytes[prio as usize];
                p.det[prio as usize].on_timer(ctx.now, q, backpressured);
            }
        }
        self.obs_note_state(ctx, port, prio);
        #[cfg(feature = "audit")]
        self.audit_note_state(ctx, port, prio);
        self.sync_det_timer(ctx, port, prio);
    }

    /// A packet finished arriving through `in_port`.
    // simlint: allow(hot-path-panic) -- in_port/out come from the topology and routing table, both sized with the ports vec; prio validated at config build
    pub fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: u16, mut pkt: Box<Packet>) {
        if let PacketKind::Pause { prio, pause } = pkt.kind {
            // PAUSE from the downstream node on this link: gate our egress.
            let p = &mut self.ports[in_port as usize];
            let changed = p.paused[prio as usize].on_frame(pause);
            if changed {
                ctx.obs
                    .pfc_frame_rx(ctx.now, self.id.0, in_port, prio, pause);
                if pause {
                    p.pause_epochs[prio as usize] += 1;
                    p.det[prio as usize].on_pause(ctx.now);
                } else {
                    p.det[prio as usize].on_resume(ctx.now);
                    self.sync_det_timer(ctx, in_port, prio);
                    self.kick(ctx, in_port);
                }
                self.obs_note_state(ctx, in_port, prio);
                #[cfg(feature = "audit")]
                self.audit_note_state(ctx, in_port, prio);
            }
            ctx.pool.recycle(pkt);
            return;
        }
        if pkt.kind.is_link_local() {
            // An FCCL frame can only reach an Ethernet switch through a
            // wiring bug: report it (audited builds), assert (plain debug
            // builds), and consume the frame instead of mis-forwarding it.
            #[cfg(feature = "audit")]
            ctx.audit.misrouted_control_frame(
                ctx.now,
                self.id,
                in_port,
                "FCCL at an Ethernet switch",
            );
            #[cfg(not(feature = "audit"))]
            debug_assert!(false, "FCCL frame at an Ethernet switch");
            ctx.pool.recycle(pkt);
            return;
        }

        // Forward: enqueue at the routed egress, account the ingress.
        let out = ctx.routing.out_port(self.id, pkt.dst, pkt.flow);
        let prio = pkt.prio as usize;
        // Lossy mode: drop-tail at the egress queue. Feedback packets are
        // spared (they are tiny and model hardware-prioritized control).
        if let Some(limit) = self.drop_tail {
            if pkt.is_data() && self.ports[out as usize].qbytes[prio] + pkt.size > limit {
                ctx.trace.drops += 1;
                ctx.pool.recycle(pkt);
                return;
            }
        }
        pkt.in_port = in_port;
        self.buffered += pkt.size;
        self.max_buffered = self.max_buffered.max(self.buffered);
        {
            let pin = &mut self.ports[in_port as usize].pfc_in[prio];
            if let Some(PfcCommand::SendPause) = pin.on_enqueue(pkt.size) {
                #[cfg(feature = "audit")]
                {
                    let pin = &self.ports[in_port as usize].pfc_in[prio];
                    ctx.audit.pfc_pause_sent(
                        ctx.now,
                        self.id,
                        in_port,
                        prio as u8,
                        pin.buffered_bytes(),
                        pin.config().xoff_bytes,
                    );
                }
                self.send_pfc(ctx, in_port, prio as u8, true);
            }
        }
        let op = &mut self.ports[out as usize];
        pkt.enq_epoch = op.pause_epochs[prio];
        op.qbytes[prio] += pkt.size;
        op.q[prio].push_back(pkt);
        self.kick(ctx, out);
    }

    /// The egress transmitter of `port` is (possibly) free.
    // simlint: allow(hot-path-panic) -- port echoes back from events this switch scheduled; prio indices scan 0..q.len(); empty-pop is handled via let-else, not unwrap
    pub fn port_tx(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        if !self.ports[port as usize].gate.on_event(ctx.now) {
            return;
        }
        // Checked only after the gate consumed the event — returning
        // earlier would leave the gate believing a PortTx is still
        // pending and the port would never restart after recovery.
        if !ctx.links.is_up(self.id, port) {
            return;
        }

        // Control frames preempt data and ignore pause state.
        if let Some(frame) = self.ports[port as usize].ctrl.pop_front() {
            self.transmit(ctx, port, frame);
            return;
        }

        // Strict priority among unpaused, non-empty queues.
        let np = self.ports[port as usize].q.len();
        let mut chosen: Option<usize> = None;
        for prio in 0..np {
            let p = &self.ports[port as usize];
            if !p.paused[prio].is_paused() && !p.q[prio].is_empty() {
                chosen = Some(prio);
                break;
            }
        }
        let Some(prio) = chosen else {
            return; // idle; a future enqueue/RESUME will kick us
        };

        // The scan above saw a non-empty queue; an empty pop here means the
        // queue/byte accounting diverged. Surface a structured violation
        // (audited builds) or assert (plain debug builds) instead of
        // panicking on `unwrap`, and leave the port idle otherwise.
        let Some(pkt) = self.ports[port as usize].q[prio].pop_front() else {
            #[cfg(feature = "audit")]
            ctx.audit.empty_dequeue(
                ctx.now,
                self.id,
                port,
                prio as u8,
                self.ports[port as usize].qbytes[prio],
            );
            #[cfg(not(feature = "audit"))]
            debug_assert!(false, "empty dequeue at port {port} prio {prio}");
            return;
        };
        let q_incl = self.ports[port as usize].qbytes[prio];
        self.ports[port as usize].qbytes[prio] -= pkt.size;
        self.buffered -= pkt.size;

        // Ingress accounting: the departing packet frees its ingress share.
        let in_port = pkt.in_port;
        {
            let pin = &mut self.ports[in_port as usize].pfc_in[prio];
            if let Some(PfcCommand::SendResume) = pin.on_dequeue(pkt.size) {
                #[cfg(feature = "audit")]
                {
                    let pin = &self.ports[in_port as usize].pfc_in[prio];
                    ctx.audit.pfc_resume_sent(
                        ctx.now,
                        self.id,
                        in_port,
                        prio as u8,
                        pin.buffered_bytes(),
                        pin.config().xon_bytes,
                    );
                }
                self.send_pfc(ctx, in_port, prio as u8, false);
            }
        }

        // Congestion detection on the dequeue path (data packets on the
        // data priority only; feedback is never marked).
        let mut pkt = pkt;
        if pkt.is_data() && pkt.prio == ctx.cfg.data_prio {
            // "Delayed by flow control": the egress was paused at some
            // point while this packet waited (pause-epoch advanced).
            let delayed = self.ports[port as usize].pause_epochs[prio] > pkt.enq_epoch;
            let dctx = DequeueContext {
                now: ctx.now,
                queue_bytes: q_incl,
                delayed_by_fc: delayed,
            };
            let decision = self.ports[port as usize].det[prio].on_dequeue(&dctx);
            if let Some(mark) = decision {
                pkt.code = pkt.code.apply(mark);
                ctx.trace.on_mark(ctx.now, self.id, port, pkt.flow, mark);
                ctx.obs
                    .mark(ctx.now, self.id.0, port, prio as u8, mark, q_incl);
                #[cfg(feature = "audit")]
                ctx.audit.note_mark(
                    ctx.now,
                    self.id,
                    port,
                    prio as u8,
                    mark,
                    self.ports[port as usize].det[prio].port_state(),
                );
            }
            self.obs_note_state(ctx, port, prio as u8);
            #[cfg(feature = "audit")]
            self.audit_note_state(ctx, port, prio as u8);
            self.sync_det_timer(ctx, port, prio as u8);
        }

        pkt.in_port = u16::MAX;
        ctx.trace.forwarded_pkts += 1;
        self.ports[port as usize].tx_bytes += pkt.size;
        if ctx.cfg.int_telemetry && pkt.is_data() {
            pkt.int.push(crate::packet::IntHop {
                qlen_bytes: q_incl - pkt.size,
                tx_bytes: self.ports[port as usize].tx_bytes,
                ts: ctx.now,
                rate: ctx.topo.link(self.id, port).rate,
            });
        }
        self.transmit(ctx, port, pkt);
    }

    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    fn transmit(&mut self, ctx: &mut Ctx<'_>, port: u16, pkt: Box<Packet>) {
        let link = *ctx.topo.link(self.id, port);
        // Latent-assumption tripwire: reaching here on a downed link
        // means a caller skipped the link gate. Surface it as a
        // structured violation (audited builds) or assert (plain debug
        // builds), then transmit anyway — the packet stays in flight, so
        // conservation holds either way.
        if !ctx.links.is_up(self.id, port) {
            #[cfg(feature = "audit")]
            ctx.audit.report(crate::audit::Violation {
                family: crate::audit::InvariantFamily::ProtocolLegality,
                t: ctx.now,
                node: self.id,
                port,
                prio: u8::MAX,
                message: "transmit scheduled on a downed link".into(),
            });
            #[cfg(not(feature = "audit"))]
            debug_assert!(false, "transmit scheduled on a downed link at port {port}");
        }
        let rate = ctx.links.rate(self.id, port, link.rate);
        let ser = rate.serialize_time(pkt.size);
        ctx.q.schedule(
            ctx.now + ser + link.delay,
            Event::PacketArrival {
                node: link.peer,
                in_port: link.peer_port,
                pkt,
            },
        );
        let gate = &mut self.ports[port as usize].gate;
        let free = gate.begin_tx(ctx.now, ser);
        ctx.q.schedule(
            free,
            Event::PortTx {
                node: self.id,
                port,
            },
        );
        gate.note_scheduled(free);
    }

    /// The link on `port` changed state (fault injection). On recovery
    /// the egress restarts — held control frames (PAUSE/RESUME queued
    /// while the port was dark) drain first, re-arming the peer's PFC
    /// state before any data moves. On failure a lossless switch holds
    /// everything (zero-loss policy); a lossy switch sheds the dark
    /// egress as counted drops.
    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    pub fn on_link_state(&mut self, ctx: &mut Ctx<'_>, port: u16, up: bool) {
        if up {
            self.kick(ctx, port);
            return;
        }
        if self.drop_tail.is_none() {
            return; // lossless: hold queues until the link recovers
        }
        // Drain the dark egress, keeping byte and ingress accounting
        // exact. Lossy mode parks the PFC thresholds at u64::MAX, so the
        // on_dequeue calls can never emit a RESUME here.
        let np = self.ports[port as usize].q.len();
        for prio in 0..np {
            while let Some(pkt) = self.ports[port as usize].q[prio].pop_front() {
                self.ports[port as usize].qbytes[prio] -= pkt.size;
                self.buffered -= pkt.size;
                let pin = &mut self.ports[pkt.in_port as usize].pfc_in[prio];
                let _ = pin.on_dequeue(pkt.size);
                ctx.trace.drops += 1;
                ctx.pool.recycle(pkt);
            }
        }
    }

    /// Blocked channels for the runtime deadlock watchdog: egress ports
    /// holding data they are not allowed to transmit (PFC-paused on a
    /// non-empty priority). Downed links are excluded — they resolve on
    /// recovery and are not a wait-for dependency.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_blocked_channels(&self) -> Vec<u16> {
        let mut v = Vec::new();
        for (pi, p) in self.ports.iter().enumerate() {
            let blocked =
                (0..p.q.len()).any(|prio| p.paused[prio].is_paused() && !p.q[prio].is_empty());
            if blocked {
                v.push(pi as u16);
            }
        }
        v
    }

    /// Wait-for successors of the upstream channel feeding `ingress`:
    /// for each priority this switch is currently pausing that upstream
    /// on, the paused egresses holding at least one packet that entered
    /// through `ingress` — the buffer share the upstream is being paused
    /// for sits in front of exactly those egresses.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_wait_successors(&self, ingress: u16) -> Vec<u16> {
        let mut v = Vec::new();
        let np = self.ports[ingress as usize].pfc_in.len();
        for prio in 0..np {
            if !self.ports[ingress as usize].pfc_in[prio].is_pausing_upstream() {
                continue;
            }
            for (pi, p) in self.ports.iter().enumerate() {
                if p.paused[prio].is_paused() && p.q[prio].iter().any(|k| k.in_port == ingress) {
                    v.push(pi as u16);
                }
            }
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Feed the auditor the detector's current state for `(port, prio)`.
    #[cfg(feature = "audit")]
    fn audit_note_state(&self, ctx: &mut Ctx<'_>, port: u16, prio: u8) {
        let p = &self.ports[port as usize];
        ctx.audit.note_state(
            ctx.now,
            self.id,
            port,
            prio,
            p.det[prio as usize].port_state(),
            p.pause_epochs[prio as usize],
        );
    }

    /// Boxes currently queued in this switch (conservation check).
    #[cfg(feature = "audit")]
    pub(crate) fn audit_queued_packets(&self) -> usize {
        self.ports
            .iter()
            .map(|p| p.ctrl.len() + p.q.iter().map(|q| q.len()).sum::<usize>())
            .sum()
    }

    /// Checkpoint checks: per-priority byte counters match the queue
    /// contents, per-ingress PFC counters sum to the shared-buffer
    /// occupancy and respect the thresholds, and the pause state is
    /// consistent with the counters.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_check(&self, a: &mut crate::audit::Audit, now: SimTime) {
        use crate::audit::{InvariantFamily, Violation};
        let headroom = a.config().pfc_headroom_bytes;
        let lossy = self.drop_tail.is_some();
        let mut queued_total: u64 = 0;
        let mut ingress_total: u64 = 0;
        for (pi, p) in self.ports.iter().enumerate() {
            for prio in 0..p.q.len() {
                let actual: u64 = p.q[prio].iter().map(|k| k.size).sum();
                if actual != p.qbytes[prio] {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: pi as u16,
                        prio: prio as u8,
                        message: format!(
                            "egress byte counter {} != queued bytes {actual}",
                            p.qbytes[prio]
                        ),
                    });
                }
                queued_total += actual;
                let pin = &p.pfc_in[prio];
                let b = pin.buffered_bytes();
                ingress_total += b;
                // Lossy mode parks the PFC thresholds at u64::MAX; only
                // lossless mode makes threshold claims.
                if !lossy {
                    let cfg = pin.config();
                    if b > cfg.xoff_bytes.saturating_add(headroom) {
                        a.report(Violation {
                            family: InvariantFamily::BufferAccounting,
                            t: now,
                            node: self.id,
                            port: pi as u16,
                            prio: prio as u8,
                            message: format!(
                                "ingress counter {b} exceeds X_off {} + headroom {headroom}",
                                cfg.xoff_bytes
                            ),
                        });
                    }
                    if pin.is_pausing_upstream() && b <= cfg.xon_bytes {
                        a.report(Violation {
                            family: InvariantFamily::ProtocolLegality,
                            t: now,
                            node: self.id,
                            port: pi as u16,
                            prio: prio as u8,
                            message: format!(
                                "PAUSE outstanding while counter {b} <= X_on {}",
                                cfg.xon_bytes
                            ),
                        });
                    }
                    if !pin.is_pausing_upstream() && b > cfg.xoff_bytes {
                        a.report(Violation {
                            family: InvariantFamily::ProtocolLegality,
                            t: now,
                            node: self.id,
                            port: pi as u16,
                            prio: prio as u8,
                            message: format!(
                                "no PAUSE outstanding while counter {b} > X_off {}",
                                cfg.xoff_bytes
                            ),
                        });
                    }
                }
            }
        }
        if queued_total != self.buffered {
            a.report(Violation {
                family: InvariantFamily::BufferAccounting,
                t: now,
                node: self.id,
                port: u16::MAX,
                prio: u8::MAX,
                message: format!(
                    "shared-buffer counter {} != queued bytes {queued_total}",
                    self.buffered
                ),
            });
        }
        if ingress_total != self.buffered {
            a.report(Violation {
                family: InvariantFamily::BufferAccounting,
                t: now,
                node: self.id,
                port: u16::MAX,
                prio: u8::MAX,
                message: format!(
                    "per-ingress PFC counters sum to {ingress_total} but occupancy is {}",
                    self.buffered
                ),
            });
        }
    }
}
