//! Host (endpoint) model: a rate-pacing NIC, sender-side congestion
//! controllers, and receiver-side feedback generation.
//!
//! The NIC mirrors how RDMA NICs schedule queue pairs: there is no deep
//! per-packet egress queue; instead each active flow has a paced
//! next-transmission time, and whenever the wire is free the NIC picks the
//! most overdue eligible flow and puts one MTU on the wire. Hop-by-hop flow
//! control gates eligibility (PFC pause per priority in CEE; per-VL credits
//! in InfiniBand), so a paused host naturally backlogs without modelling an
//! unbounded NIC queue.
//!
//! On the receive side the host sinks data at line rate (granting CBFC
//! credits back immediately in IB mode), accounts flow completion, and
//! generates feedback per the configured [`FeedbackMode`]: DCQCN-style CNPs
//! for marked packets, per-packet ACKs for TIMELY, or nothing.

use crate::cchooks::{CcAction, CcEvent, RateController};
use crate::config::{FeedbackMode, FlowControlMode};
use crate::event::{Event, TxGate};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::sim::Ctx;
use crate::topology::NodeId;
use lossless_flowctl::cbfc::{CbfcReceiver, CbfcSender};
use lossless_flowctl::pfc::{PfcCommand, PfcEgress, PfcIngress};
use lossless_flowctl::units::{CTRL_FRAME_BYTES, FCCL_FRAME_BYTES};
use lossless_flowctl::{Rate, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use tcd_core::CodePoint;

/// Reserved timer id for the go-back-N retransmission timeout (lossy
/// mode); controllers must not use it.
const RTO_TIMER: u32 = u32::MAX;

/// Sender-side state of one active flow.
struct SenderFlow {
    id: FlowId,
    dst: NodeId,
    size: u64,
    /// Next byte offset to put on the wire (rewound on loss recovery).
    sent: u64,
    /// Cumulatively acknowledged bytes (lossy mode; unused in lossless
    /// modes, where delivery is guaranteed).
    acked: u64,
    /// Consecutive duplicate cumulative ACKs (fast-retransmit trigger).
    dup_acks: u32,
    prio: u8,
    next_tx: SimTime,
    cc: Box<dyn RateController>,
    /// Expected fire time per timer id (stale-timer guard). A `BTreeMap`
    /// so any future iteration is in timer-id order — hash-order must
    /// never leak into event scheduling.
    timers: BTreeMap<u32, SimTime>,
}

/// Receiver-side state of one flow.
#[derive(Debug, Default)]
struct RxFlow {
    bytes: u64,
    last_cnp: Option<SimTime>,
    completed: bool,
}

/// A host endpoint.
pub struct Host {
    id: NodeId,
    line_rate: Rate,
    gate: TxGate,
    /// CEE: PFC pause state per priority (set by PAUSE frames from the ToR).
    pfc_paused: Vec<PfcEgress>,
    /// IB: credit senders per VL towards the ToR.
    cbfc_tx: Vec<CbfcSender>,
    /// IB: per-VL "wanted to send but had no credits" flag.
    blocked_vl: Vec<bool>,
    /// IB: credit receivers per VL (the host's own ingress buffer; drained
    /// instantly, so it mainly advertises credits back upstream).
    cbfc_rx: Vec<CbfcReceiver>,
    /// Outgoing link-local control frames (FCCL), sent before anything else.
    ctrl: VecDeque<Box<Packet>>,
    /// Outgoing end-to-end feedback packets awaiting the NIC.
    feedback_q: VecDeque<Box<Packet>>,
    /// Active sender flows (small; linear scans are fine).
    active: Vec<SenderFlow>,
    /// Receiver-side per-flow state, keyed in flow-id order (a
    /// `BTreeMap`, for the same determinism reason as `SenderFlow::timers`).
    rx: BTreeMap<FlowId, RxFlow>,
    /// Slow-receiver processing queue per priority (packet sizes awaiting
    /// host processing); empty and unused when `host_rx_rate` is `None`.
    rx_q: Vec<VecDeque<u64>>,
    /// Whether a `HostDrain` event is outstanding.
    rx_draining: bool,
    /// CEE slow receiver: PFC accounting for the host's own receive
    /// buffer, so an overwhelmed host pauses its ToR.
    rx_pfc: Vec<PfcIngress>,
    /// Cumulative data bytes transmitted (trace sampling).
    pub tx_bytes: u64,
}

impl Host {
    /// Create a host attached to a link of `line_rate`, configured per
    /// `fc` with `num_prios` priorities/VLs.
    pub fn new(id: NodeId, line_rate: Rate, fc: &FlowControlMode, num_prios: u8) -> Host {
        let n = num_prios as usize;
        let (cbfc_tx, cbfc_rx) = match fc {
            FlowControlMode::Cbfc(c) => (
                (0..n).map(|_| CbfcSender::new(*c)).collect(),
                (0..n).map(|_| CbfcReceiver::new(*c)).collect(),
            ),
            _ => (Vec::new(), Vec::new()),
        };
        let rx_pfc = match fc {
            FlowControlMode::Pfc(p) => (0..n).map(|_| PfcIngress::new(*p)).collect(),
            _ => Vec::new(),
        };
        Host {
            id,
            line_rate,
            gate: TxGate::new(),
            pfc_paused: (0..n).map(|_| PfcEgress::new()).collect(),
            cbfc_tx,
            blocked_vl: vec![false; n],
            cbfc_rx,
            ctrl: VecDeque::new(),
            feedback_q: VecDeque::new(),
            active: Vec::new(),
            rx: BTreeMap::new(),
            rx_q: (0..n).map(|_| VecDeque::new()).collect(),
            rx_draining: false,
            rx_pfc,
            tx_bytes: 0,
        }
    }

    /// The NIC's line rate.
    pub fn line_rate(&self) -> Rate {
        self.line_rate
    }

    /// Number of flows currently sending.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// The current CC rate of an active flow, if still sending.
    pub fn flow_rate(&self, flow: FlowId) -> Option<Rate> {
        self.active
            .iter()
            .find(|f| f.id == flow)
            .map(|f| f.cc.rate())
    }

    /// Start a flow: install its controller and kick the NIC.
    pub fn start_flow(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: FlowId,
        dst: NodeId,
        size: u64,
        prio: u8,
        mut cc: Box<dyn RateController>,
    ) {
        let action = cc.start(ctx.now, self.line_rate);
        let mut flow = SenderFlow {
            id,
            dst,
            size,
            sent: 0,
            acked: 0,
            dup_acks: 0,
            prio,
            next_tx: ctx.now,
            cc,
            // simlint: allow(hot-path-alloc) -- one-time flow-start setup, not per-packet steady state
            timers: BTreeMap::new(),
        };
        Self::apply_action(ctx, self.id, &mut flow, action);
        if ctx.cfg.is_lossy() {
            // Arm the retransmission timeout.
            let at = ctx.now + ctx.cfg.rto;
            flow.timers.insert(RTO_TIMER, at);
            ctx.q.schedule(
                at,
                Event::CcTimer {
                    node: self.id,
                    flow: id,
                    timer: RTO_TIMER,
                },
            );
        }
        self.active.push(flow);
        self.kick(ctx);
    }

    fn apply_action(ctx: &mut Ctx<'_>, host: NodeId, flow: &mut SenderFlow, action: CcAction) {
        for (id, delay) in action.timers {
            let at = ctx.now + delay;
            flow.timers.insert(id, at);
            ctx.q.schedule(
                at,
                Event::CcTimer {
                    node: host,
                    flow: flow.id,
                    timer: id,
                },
            );
        }
    }

    /// Deliver a CC timer expiry.
    // simlint: allow(hot-path-panic) -- flow index comes from position() on the same vec
    pub fn on_cc_timer(&mut self, ctx: &mut Ctx<'_>, flow_id: FlowId, timer: u32) {
        let Some(idx) = self.active.iter().position(|f| f.id == flow_id) else {
            return; // flow finished sending; stale timer
        };
        let flow = &mut self.active[idx];
        if flow.timers.get(&timer) != Some(&ctx.now) {
            return; // superseded
        }
        flow.timers.remove(&timer);
        if timer == RTO_TIMER {
            // Go-back-N: rewind to the last acknowledged byte and re-arm.
            if flow.acked < flow.size {
                flow.sent = flow.acked;
                flow.next_tx = ctx.now;
                let at = ctx.now + ctx.cfg.rto;
                flow.timers.insert(RTO_TIMER, at);
                ctx.q.schedule(
                    at,
                    Event::CcTimer {
                        node: self.id,
                        flow: flow_id,
                        timer: RTO_TIMER,
                    },
                );
            }
            self.kick(ctx);
            return;
        }
        let ev = CcEvent::Timer { id: timer };
        ctx.obs.cc_event(self.id.0, ev.kind_name());
        let action = flow.cc.on_event(ctx.now, ev);
        Self::apply_action(ctx, self.id, flow, action);
        self.kick(ctx);
    }

    /// Ask the engine to run `port_tx` as soon as the NIC could usefully
    /// transmit.
    pub fn kick(&mut self, ctx: &mut Ctx<'_>) {
        // A downed link transmits nothing; on_link_state re-kicks on
        // recovery so held queues (and control frames) drain then.
        if !ctx.links.is_up(self.id, 0) {
            return;
        }
        if let Some(at) = self.gate.want(ctx.now) {
            ctx.q.schedule(
                at,
                Event::PortTx {
                    node: self.id,
                    port: 0,
                },
            );
            self.gate.note_scheduled(at);
        }
    }

    // simlint: allow(hot-path-panic) -- prio indexes per-priority arrays sized at construction
    fn can_send_prio(&self, prio: u8, bytes: u64, is_ib: bool) -> bool {
        if is_ib {
            self.cbfc_tx[prio as usize].can_send(bytes)
        } else {
            !self.pfc_paused[prio as usize].is_paused()
        }
    }

    /// The NIC transmitter is (possibly) free: send the next frame.
    // simlint: allow(hot-path-panic) -- pop_front follows a successful front(); flow/prio indices bounded by construction
    pub fn port_tx(&mut self, ctx: &mut Ctx<'_>) {
        if !self.gate.on_event(ctx.now) {
            return;
        }
        // Checked only after the gate consumed the event — returning
        // earlier would leave the gate believing a PortTx is still
        // pending and the NIC would never restart after recovery.
        if !ctx.links.is_up(self.id, 0) {
            return;
        }
        let is_ib = ctx.cfg.is_ib();

        // 1. Link-local control (FCCL) preempts everything and is ungated.
        if let Some(pkt) = self.ctrl.pop_front() {
            self.transmit(ctx, pkt, is_ib, false);
            return;
        }

        // 2. End-to-end feedback next.
        if let Some(pkt) = self.feedback_q.front() {
            if self.can_send_prio(pkt.prio, pkt.size, is_ib) {
                let pkt = self.feedback_q.pop_front().unwrap();
                self.transmit(ctx, pkt, is_ib, true);
                return;
            } else if is_ib {
                self.blocked_vl[ctx.cfg.feedback_prio as usize] = true;
            }
        }

        // 3. Data: pick the most overdue eligible flow.
        let mtu = ctx.cfg.mtu;
        let mut best: Option<usize> = None;
        let mut best_key = (SimTime::MAX, u32::MAX);
        let mut pacing_wake: Option<SimTime> = None;
        for (i, f) in self.active.iter().enumerate() {
            if f.sent >= f.size {
                // Lossy mode: everything sent, waiting for ACKs (or an RTO
                // rewind).
                continue;
            }
            let seg = mtu.min(f.size - f.sent);
            if !self.can_send_prio(f.prio, seg, is_ib) {
                if is_ib {
                    self.blocked_vl[f.prio as usize] = true;
                }
                continue;
            }
            if f.cc.rate() == Rate::ZERO {
                continue; // fully throttled; a CC event will re-kick
            }
            if f.next_tx <= ctx.now {
                let key = (f.next_tx, f.id.0);
                if key < best_key {
                    best_key = key;
                    best = Some(i);
                }
            } else {
                pacing_wake = Some(match pacing_wake {
                    Some(w) => w.min(f.next_tx),
                    None => f.next_tx,
                });
            }
        }

        let Some(i) = best else {
            // Nothing due now; wake when the earliest pacer allows.
            if let Some(w) = pacing_wake {
                if let Some(at) = self.gate.want(w) {
                    ctx.q.schedule(
                        at,
                        Event::PortTx {
                            node: self.id,
                            port: 0,
                        },
                    );
                    self.gate.note_scheduled(at);
                }
            }
            return;
        };

        let lossy = ctx.cfg.is_lossy();
        let f = &mut self.active[i];
        let seg = mtu.min(f.size - f.sent);
        let last = f.sent + seg == f.size;
        let mut pkt = ctx.pool.boxed(Packet::data(
            f.id,
            self.id,
            f.dst,
            seg,
            f.prio,
            f.sent,
            last,
            CodePoint::Capable,
        ));
        pkt.sent_at = ctx.now;
        f.sent += seg;
        // Pace the next segment at the CC rate.
        f.next_tx = ctx.now + f.cc.rate().serialize_time(seg);
        let ev = CcEvent::Sent { bytes: seg };
        ctx.obs.cc_event(self.id.0, ev.kind_name());
        let action = f.cc.on_event(ctx.now, ev);
        let fid = f.id;
        {
            let f = &mut self.active[i];
            Self::apply_action(ctx, self.id, f, action);
        }
        // Lossless modes: delivery is guaranteed, the flow leaves the
        // sender once everything is on the wire. Lossy mode: the flow
        // stays until cumulatively acknowledged.
        if last && !lossy {
            self.active.retain(|f| f.id != fid);
        }
        self.tx_bytes += seg;
        self.transmit(ctx, pkt, is_ib, true);
    }

    /// Put a frame on the wire and schedule the next transmitter slot.
    // simlint: allow(hot-path-panic) -- pkt.prio indexes the per-VL credit array sized at construction
    fn transmit(&mut self, ctx: &mut Ctx<'_>, pkt: Box<Packet>, is_ib: bool, credit_gated: bool) {
        if is_ib && credit_gated {
            self.cbfc_tx[pkt.prio as usize].on_send(pkt.size);
        }
        let link = *ctx.topo.link(self.id, 0);
        // Latent-assumption tripwire: reaching here on a downed link
        // means a caller skipped the link gate. Surface it as a
        // structured violation (audited builds) or assert (plain debug
        // builds), then transmit anyway — the packet stays in flight, so
        // conservation holds either way.
        if !ctx.links.is_up(self.id, 0) {
            #[cfg(feature = "audit")]
            ctx.audit.report(crate::audit::Violation {
                family: crate::audit::InvariantFamily::ProtocolLegality,
                t: ctx.now,
                node: self.id,
                port: 0,
                prio: u8::MAX,
                message: "transmit scheduled on a downed link".into(),
            });
            #[cfg(not(feature = "audit"))]
            debug_assert!(false, "transmit scheduled on a downed host link");
        }
        let rate = ctx.links.rate(self.id, 0, link.rate);
        let ser = rate.serialize_time(pkt.size);
        ctx.q.schedule(
            ctx.now + ser + link.delay,
            Event::PacketArrival {
                node: link.peer,
                in_port: link.peer_port,
                pkt,
            },
        );
        let free = self.gate.begin_tx(ctx.now, ser);
        ctx.q.schedule(
            free,
            Event::PortTx {
                node: self.id,
                port: 0,
            },
        );
        self.gate.note_scheduled(free);
    }

    /// A packet finished arriving at this host.
    // simlint: allow(hot-path-panic) -- prio/VL fields index per-priority arrays sized at construction
    pub fn on_packet(&mut self, ctx: &mut Ctx<'_>, mut pkt: Box<Packet>) {
        match pkt.kind {
            PacketKind::Pause { prio, pause } => {
                let changed = self.pfc_paused[prio as usize].on_frame(pause);
                if changed {
                    ctx.obs.pfc_frame_rx(ctx.now, self.id.0, 0, prio, pause);
                    if !pause {
                        self.kick(ctx);
                    }
                }
                ctx.pool.recycle(pkt);
            }
            PacketKind::Fccl { vl, fccl } => {
                let tx = &mut self.cbfc_tx[vl as usize];
                tx.on_fccl(fccl);
                if self.blocked_vl[vl as usize] && tx.available_blocks() > 0 {
                    self.blocked_vl[vl as usize] = false;
                    self.kick(ctx);
                }
                ctx.pool.recycle(pkt);
            }
            PacketKind::Data => self.on_data(ctx, pkt),
            PacketKind::Ack {
                data_sent_at,
                echo,
                acked_bytes,
            } => {
                self.account_feedback_rx(ctx, pkt.prio, pkt.size);
                if ctx.cfg.is_lossy() {
                    self.on_reliable_ack(ctx, pkt.flow, acked_bytes);
                }
                let rtt = ctx.now.saturating_since(data_sent_at);
                let flow = pkt.flow;
                let int = std::mem::take(&mut pkt.int);
                ctx.pool.recycle(pkt);
                self.deliver_cc_event(
                    ctx,
                    flow,
                    CcEvent::Ack {
                        rtt,
                        code: echo,
                        bytes: acked_bytes,
                        int,
                    },
                );
            }
            PacketKind::Cnp { code } => {
                self.account_feedback_rx(ctx, pkt.prio, pkt.size);
                let flow = pkt.flow;
                ctx.pool.recycle(pkt);
                self.deliver_cc_event(ctx, flow, CcEvent::Feedback { code });
            }
        }
    }

    /// IB mode: feedback packets occupy this host's receive buffer like any
    /// other arrival and are freed immediately by NIC-level processing. The
    /// upstream switch paid CBFC credits to deliver them, so skipping this
    /// accounting would let its FCTBS drift ahead of our ABR and slowly
    /// leak credits out of the loop.
    // simlint: allow(hot-path-panic) -- prio indexes the per-VL credit array sized at construction
    fn account_feedback_rx(&mut self, ctx: &Ctx<'_>, prio: u8, bytes: u64) {
        if ctx.cfg.is_ib() {
            let rx = &mut self.cbfc_rx[prio as usize];
            rx.on_packet_received(bytes);
            rx.on_buffer_freed(bytes);
        }
    }

    /// Go-back-N reliability (lossy mode): process a cumulative ACK.
    // simlint: allow(hot-path-panic) -- flow index comes from position() on the same vec
    fn on_reliable_ack(&mut self, ctx: &mut Ctx<'_>, flow_id: FlowId, cum: u64) {
        let Some(idx) = self.active.iter().position(|f| f.id == flow_id) else {
            return;
        };
        let f = &mut self.active[idx];
        if cum > f.acked {
            f.acked = cum;
            f.dup_acks = 0;
            if f.acked >= f.size {
                // Fully acknowledged: the flow is done at the sender.
                self.active.retain(|x| x.id != flow_id);
                return;
            }
            // Progress: push the RTO out.
            let at = ctx.now + ctx.cfg.rto;
            f.timers.insert(RTO_TIMER, at);
            ctx.q.schedule(
                at,
                Event::CcTimer {
                    node: self.id,
                    flow: flow_id,
                    timer: RTO_TIMER,
                },
            );
        } else {
            // Duplicate cumulative ACK: after three, fast-retransmit by
            // rewinding to the hole.
            f.dup_acks += 1;
            if f.dup_acks >= 3 {
                f.dup_acks = 0;
                f.sent = f.acked;
                f.next_tx = ctx.now;
                self.kick(ctx);
            }
        }
    }

    fn deliver_cc_event(&mut self, ctx: &mut Ctx<'_>, flow_id: FlowId, ev: CcEvent) {
        if let Some(f) = self.active.iter_mut().find(|f| f.id == flow_id) {
            ctx.obs.cc_event(self.id.0, ev.kind_name());
            let action = f.cc.on_event(ctx.now, ev);
            Self::apply_action(ctx, self.id, f, action);
            self.kick(ctx);
        }
    }

    // simlint: allow(hot-path-panic) -- prio/flow ids index arrays sized at registration; front() precedes the unwrap
    fn on_data(&mut self, ctx: &mut Ctx<'_>, mut pkt: Box<Packet>) {
        if let Some(rate) = ctx.cfg.host_rx_rate {
            // Slow receiver: packets occupy the host's receive buffer until
            // the host processes them at `rate`; the backlog back-pressures
            // the ToR through the normal hop-by-hop machinery.
            let prio = pkt.prio as usize;
            if ctx.cfg.is_ib() {
                self.cbfc_rx[prio].on_packet_received(pkt.size);
                // freed later, when processed
            } else if let Some(PfcCommand::SendPause) = self.rx_pfc[prio].on_enqueue(pkt.size) {
                #[cfg(feature = "audit")]
                ctx.audit.pfc_pause_sent(
                    ctx.now,
                    self.id,
                    0,
                    pkt.prio,
                    self.rx_pfc[prio].buffered_bytes(),
                    self.rx_pfc[prio].config().xoff_bytes,
                );
                self.ctrl.push_back(ctx.pool.boxed(Packet::link_local(
                    PacketKind::Pause {
                        prio: pkt.prio,
                        pause: true,
                    },
                    CTRL_FRAME_BYTES,
                    0,
                )));
                ctx.trace.pause_frames += 1;
                ctx.obs.pfc_frame_tx(ctx.now, self.id.0, 0, pkt.prio, true);
                self.kick(ctx);
            }
            self.rx_q[prio].push_back(pkt.size);
            if !self.rx_draining {
                self.rx_draining = true;
                let head = *self.rx_q[prio].front().unwrap();
                ctx.q.schedule(
                    ctx.now + rate.serialize_time(head),
                    Event::HostDrain { node: self.id },
                );
            }
        } else if ctx.cfg.is_ib() {
            // Infinitely fast receiver: account and immediately free the
            // host ingress buffer, so the next FCCL advertises the space
            // back upstream.
            let rx = &mut self.cbfc_rx[pkt.prio as usize];
            rx.on_packet_received(pkt.size);
            rx.on_buffer_freed(pkt.size);
        }

        let spec_size = ctx.flows[pkt.flow.0 as usize].size;
        let lossy = ctx.cfg.is_lossy();
        let st = self.rx.entry(pkt.flow).or_default();
        // Lossy mode: accept only the next in-order segment (go-back-N);
        // duplicates and post-gap segments are discarded but still elicit
        // a (duplicate) cumulative ACK. Lossless modes are in-order by
        // construction, so every packet is new.
        let accept = !lossy || pkt.seq == st.bytes;
        if accept {
            ctx.trace
                .on_deliver_at(ctx.now, pkt.flow, pkt.size, pkt.code);
            st.bytes += pkt.size;
            if st.bytes >= spec_size && !st.completed {
                st.completed = true;
                ctx.trace.on_complete(pkt.flow, ctx.now);
            }
        }

        match ctx.cfg.feedback {
            FeedbackMode::None => ctx.pool.recycle(pkt),
            FeedbackMode::CnpOnMarked {
                min_interval,
                notify_ue,
            } => {
                let notify = pkt.code.is_ce() || (notify_ue && pkt.code.is_ue());
                if notify {
                    let due = match st.last_cnp {
                        None => true,
                        Some(t) => ctx.now.saturating_since(t) >= min_interval,
                    };
                    if due {
                        st.last_cnp = Some(ctx.now);
                        let cnp = ctx.pool.boxed(Packet::feedback(
                            pkt.flow,
                            self.id,
                            pkt.src,
                            ctx.cfg.feedback_bytes,
                            ctx.cfg.feedback_prio,
                            PacketKind::Cnp { code: pkt.code },
                        ));
                        self.feedback_q.push_back(cnp);
                        self.kick(ctx);
                    }
                }
                ctx.pool.recycle(pkt);
            }
            FeedbackMode::AckPerPacket => {
                // Lossy mode carries the *cumulative* in-order byte count
                // (the go-back-N ACK); lossless modes carry the segment
                // size (TIMELY only uses the RTT).
                let acked_bytes = if lossy {
                    self.rx[&pkt.flow].bytes
                } else {
                    pkt.size
                };
                let mut ack = Packet::feedback(
                    pkt.flow,
                    self.id,
                    pkt.src,
                    ctx.cfg.feedback_bytes,
                    ctx.cfg.feedback_prio,
                    PacketKind::Ack {
                        data_sent_at: pkt.sent_at,
                        echo: pkt.code,
                        acked_bytes,
                    },
                );
                // Echo the in-band telemetry back to the sender, and reuse
                // the delivered data packet's allocation for its ACK.
                ack.int = std::mem::take(&mut pkt.int);
                *pkt = ack;
                self.feedback_q.push_back(pkt);
                self.kick(ctx);
            }
        }
    }

    /// A slow receiver finished processing its current head-of-queue
    /// packet: release the buffer space (PFC counter / CBFC credits) and
    /// start on the next packet.
    // simlint: allow(hot-path-panic) -- prio found by the non-empty scan just above each use; front()/pop follow that check
    pub fn on_host_drain(&mut self, ctx: &mut Ctx<'_>) {
        let Some(rate) = ctx.cfg.host_rx_rate else {
            return;
        };
        // Strict priority: process the lowest-index non-empty queue.
        let Some(prio) = (0..self.rx_q.len()).find(|&p| !self.rx_q[p].is_empty()) else {
            self.rx_draining = false;
            return;
        };
        let size = self.rx_q[prio].pop_front().unwrap();
        if ctx.cfg.is_ib() {
            self.cbfc_rx[prio].on_buffer_freed(size);
        } else if let Some(PfcCommand::SendResume) = self.rx_pfc[prio].on_dequeue(size) {
            #[cfg(feature = "audit")]
            ctx.audit.pfc_resume_sent(
                ctx.now,
                self.id,
                0,
                prio as u8,
                self.rx_pfc[prio].buffered_bytes(),
                self.rx_pfc[prio].config().xon_bytes,
            );
            self.ctrl.push_back(ctx.pool.boxed(Packet::link_local(
                PacketKind::Pause {
                    prio: prio as u8,
                    pause: false,
                },
                CTRL_FRAME_BYTES,
                0,
            )));
            ctx.obs
                .pfc_frame_tx(ctx.now, self.id.0, 0, prio as u8, false);
            self.kick(ctx);
        }
        // Schedule the next processing completion, if any work remains.
        if let Some(next_prio) = (0..self.rx_q.len()).find(|&p| !self.rx_q[p].is_empty()) {
            let head = *self.rx_q[next_prio].front().unwrap();
            ctx.q.schedule(
                ctx.now + rate.serialize_time(head),
                Event::HostDrain { node: self.id },
            );
        } else {
            self.rx_draining = false;
        }
    }

    /// Periodic CBFC credit update: advertise this host's ingress buffer
    /// upstream and reschedule the tick.
    // simlint: allow(hot-path-panic) -- vl indexes the per-VL credit array sized at construction
    pub fn on_fccl_tick(&mut self, ctx: &mut Ctx<'_>, vl: u8) {
        let rx = &self.cbfc_rx[vl as usize];
        let period = rx.update_period();
        // A dark link carries no credit updates, but the tick train keeps
        // running so advertisement resumes on recovery.
        if ctx.links.is_up(self.id, 0) {
            let msg = ctx.pool.boxed(Packet::link_local(
                PacketKind::Fccl {
                    vl,
                    fccl: rx.fccl(),
                },
                FCCL_FRAME_BYTES,
                ctx.cfg.feedback_prio,
            ));
            self.ctrl.push_back(msg);
            self.kick(ctx);
        }
        ctx.q.schedule(
            ctx.now + period,
            Event::FcclTick {
                node: self.id,
                port: 0,
                vl,
            },
        );
    }

    /// The NIC's link changed state (fault injection). Hosts are held by
    /// the lossless policy on failure; on recovery the kick restarts the
    /// transmitter and held control/feedback/data drain in order.
    pub fn on_link_state(&mut self, ctx: &mut Ctx<'_>, up: bool) {
        if up {
            self.kick(ctx);
        }
    }

    /// Packets currently buffered in this host (control + feedback queue).
    /// The slow-receiver queue holds sizes, not packets, so it does not
    /// contribute to packet conservation.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_queued_packets(&self) -> usize {
        self.ctrl.len() + self.feedback_q.len()
    }

    /// Checkpoint: the host's receive-side accounting (CBFC occupancy or
    /// PFC counters) must match the slow-receiver queue contents, and its
    /// credit senders must respect the switch's advertised limit.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_check(&self, a: &mut crate::audit::Audit, now: SimTime) {
        use crate::audit::{InvariantFamily, Violation};
        use lossless_flowctl::units::bytes_to_blocks;

        let headroom = a.config().pfc_headroom_bytes;
        for prio in 0..self.rx_q.len() {
            if let Some(rx) = self.cbfc_rx.get(prio) {
                let blocks: u64 = self.rx_q[prio].iter().map(|&s| bytes_to_blocks(s)).sum();
                let occ = rx.occupied_blocks();
                if occ != blocks {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: 0,
                        prio: prio as u8,
                        message: format!(
                            "host ingress occupancy {occ} blocks != queued {blocks} blocks"
                        ),
                    });
                }
                let cap = rx.capacity_blocks();
                if occ > cap {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: 0,
                        prio: prio as u8,
                        message: format!(
                            "host receive buffer holds {occ} blocks, capacity is {cap}"
                        ),
                    });
                }
            }
            if let Some(tx) = self.cbfc_tx.get(prio) {
                let (fctbs, fccl) = (tx.fctbs(), tx.fccl_limit());
                if fctbs > fccl {
                    a.report(Violation {
                        family: InvariantFamily::ProtocolLegality,
                        t: now,
                        node: self.id,
                        port: 0,
                        prio: prio as u8,
                        message: format!("FCTBS {fctbs} exceeds the advertised FCCL {fccl}"),
                    });
                }
            }
            if let Some(pin) = self.rx_pfc.get(prio) {
                let bytes: u64 = self.rx_q[prio].iter().sum();
                let b = pin.buffered_bytes();
                let cfg = pin.config();
                if b != bytes {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: 0,
                        prio: prio as u8,
                        message: format!("host PFC counter {b} != queued bytes {bytes}"),
                    });
                }
                if b > cfg.xoff_bytes.saturating_add(headroom) {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: 0,
                        prio: prio as u8,
                        message: format!(
                            "host PFC counter {b} exceeds X_off {} + headroom {headroom}",
                            cfg.xoff_bytes
                        ),
                    });
                }
                if pin.is_pausing_upstream() && b <= cfg.xon_bytes {
                    a.report(Violation {
                        family: InvariantFamily::ProtocolLegality,
                        t: now,
                        node: self.id,
                        port: 0,
                        prio: prio as u8,
                        message: format!(
                            "PAUSE outstanding while counter {b} <= X_on {}",
                            cfg.xon_bytes
                        ),
                    });
                }
                if !pin.is_pausing_upstream() && b > cfg.xoff_bytes {
                    a.report(Violation {
                        family: InvariantFamily::ProtocolLegality,
                        t: now,
                        node: self.id,
                        port: 0,
                        prio: prio as u8,
                        message: format!(
                            "no PAUSE outstanding while counter {b} > X_off {}",
                            cfg.xoff_bytes
                        ),
                    });
                }
            }
        }
    }

    /// Sender-side credit state towards the ToR: `(FCTBS, FCCL)`.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_cbfc_tx(&self, vl: u8) -> Option<(u64, u64)> {
        self.cbfc_tx
            .get(vl as usize)
            .map(|t| (t.fctbs(), t.fccl_limit()))
    }

    /// Receiver-side credit state: `(ABR, occupied, capacity)`.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_cbfc_rx(&self, vl: u8) -> Option<(u64, u64, u64)> {
        self.cbfc_rx
            .get(vl as usize)
            .map(|r| (r.abr(), r.occupied_blocks(), r.capacity_blocks()))
    }
}
