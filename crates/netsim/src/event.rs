//! The deterministic event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties at the same
//! instant execute in the order they were scheduled, so a run is a pure
//! function of its configuration. This property underpins every regression
//! test in the workspace.
//!
//! Two cores implement that total order behind [`QueueKind`]:
//!
//! - **Timing wheel** (default): a hierarchical calendar queue. Time is
//!   quantized into ticks of `2^GRAN_BITS` ps; each of the [`LEVELS`]
//!   levels covers 64× the tick span of the level below, so the wheel
//!   spans `2^(GRAN_BITS + 6·LEVELS)` ps (~9 min of simulated time) and
//!   anything later waits in an overflow list. Inserts and pops are O(1)
//!   amortized — an event cascades down at most once per level as the
//!   clock approaches it.
//! - **Binary heap**: the original `BinaryHeap<Reverse<Scheduled>>`, kept
//!   as a differential reference while the wheel bakes in
//!   (`TCD_EVENT_QUEUE=heap` selects it at runtime).
//!
//! Both cores dispatch same-timestamp groups as a staged batch through
//! [`EventQueue::pop_batched`], so the engine touches the ordering
//! structure once per group instead of once per event. The heap core
//! stages the earliest-timestamp group into a FIFO deque (zero-delay
//! schedules issued while it drains append to the tail, where their
//! fresh, larger sequence numbers belong); the wheel core's staged group
//! is its own sorted current-tick buffer, which serves pops directly and
//! absorbs zero-delay schedules by ordered insertion. Either way a group
//! hands out events in exact `(at, seq)` order, so the pop order is
//! *identical* across cores, event for event — which is what keeps
//! golden traces and fingerprints bit-stable across cores.

use crate::packet::{FlowId, Packet};
use crate::topology::NodeId;
use lossless_flowctl::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A simulation event.
#[derive(Debug)]
pub enum Event {
    /// A packet finished arriving at `node` through `in_port`.
    PacketArrival {
        /// Receiving node.
        node: NodeId,
        /// Ingress port at the receiving node.
        in_port: u16,
        /// The packet. Boxed (and pooled, see
        /// [`PacketPool`](crate::packet::PacketPool)) so the event stays
        /// pointer-sized on the queue's hot paths and the same
        /// allocation travels every hop without re-boxing on requeue.
        pkt: Box<Packet>,
    },
    /// `(node, port)`'s transmitter may start the next transmission.
    PortTx {
        /// The node.
        node: NodeId,
        /// The egress port.
        port: u16,
    },
    /// Periodic CBFC credit update: `(node, port, vl)` should emit an FCCL
    /// message upstream.
    FcclTick {
        /// The node.
        node: NodeId,
        /// The port whose receive buffer is advertised.
        port: u16,
        /// Virtual lane.
        vl: u8,
    },
    /// A congestion detector's trend-check timer expired.
    DetectorTimer {
        /// The node.
        node: NodeId,
        /// The egress port.
        port: u16,
        /// Priority / VL.
        prio: u8,
    },
    /// A flow becomes active at its source host.
    FlowStart {
        /// The flow.
        flow: FlowId,
    },
    /// A congestion-controller timer at a host expired.
    CcTimer {
        /// The host.
        node: NodeId,
        /// The flow whose controller owns the timer.
        flow: FlowId,
        /// Controller-defined timer id.
        timer: u32,
    },
    /// A slow receiver finished processing the packet at the head of its
    /// receive queue.
    HostDrain {
        /// The host.
        node: NodeId,
    },
    /// Periodic trace sampling tick.
    TraceTick,
    /// A scheduled fault takes the link at `(node, port)` down or brings
    /// it back up (both directions; see [`crate::fault::FaultPlan`]).
    LinkState {
        /// The node whose port identifies the link.
        node: NodeId,
        /// The port at `node`.
        port: u16,
        /// `true` = link up, `false` = link down.
        up: bool,
    },
    /// A scheduled fault overrides (or restores) the capacity of the link
    /// at `(node, port)`.
    LinkRate {
        /// The node whose port identifies the link.
        node: NodeId,
        /// The port at `node`.
        port: u16,
        /// `Some` = degraded capacity, `None` = nominal.
        rate: Option<lossless_flowctl::Rate>,
    },
    /// A scheduled fault atomically swaps the routing overrides to the
    /// given route set (`u32::MAX` reverts to the baseline tables).
    RouteUpdate {
        /// Index into [`crate::fault::FaultPlan::route_sets`], or
        /// `u32::MAX` for the baseline.
        set: u32,
    },
}

impl Event {
    /// Dense kind index, used by the observability layer's per-kind
    /// dispatch counters. Indexes into [`Event::KIND_NAMES`].
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            Event::PacketArrival { .. } => 0,
            Event::PortTx { .. } => 1,
            Event::FcclTick { .. } => 2,
            Event::DetectorTimer { .. } => 3,
            Event::FlowStart { .. } => 4,
            Event::CcTimer { .. } => 5,
            Event::HostDrain { .. } => 6,
            Event::TraceTick => 7,
            Event::LinkState { .. } => 8,
            Event::LinkRate { .. } => 9,
            Event::RouteUpdate { .. } => 10,
        }
    }

    /// Metric names of the event kinds, indexed by
    /// [`Event::kind_index`].
    pub const KIND_NAMES: [&'static str; 11] = [
        "engine.dispatch.packet_arrival",
        "engine.dispatch.port_tx",
        "engine.dispatch.fccl_tick",
        "engine.dispatch.detector_timer",
        "engine.dispatch.flow_start",
        "engine.dispatch.cc_timer",
        "engine.dispatch.host_drain",
        "engine.dispatch.trace_tick",
        "engine.dispatch.link_state",
        "engine.dispatch.link_rate",
        "engine.dispatch.route_update",
    ];
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which core backs an [`EventQueue`]. Both produce the exact same pop
/// order, so the choice never affects traces or fingerprints — only
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Resolve from the `TCD_EVENT_QUEUE` environment variable at
    /// construction: `heap` selects the binary heap, anything else
    /// (including unset) the timing wheel.
    #[default]
    Auto,
    /// The hierarchical timing wheel.
    Wheel,
    /// The reference binary heap, kept behind this toggle while the wheel
    /// bakes in.
    Heap,
}

impl QueueKind {
    fn wants_heap(self) -> bool {
        match self {
            QueueKind::Heap => true,
            QueueKind::Wheel => false,
            QueueKind::Auto => std::env::var("TCD_EVENT_QUEUE").is_ok_and(|v| v == "heap"),
        }
    }
}

/// Wheel tick width: `2^GRAN_BITS` ps (8 192 ps ≈ 8 ns). Chosen so a
/// packet serialization delay (200 ns at 40 Gbps) lands level 0: the
/// hot-path churn of arrivals and port wake-ups inserts straight into the
/// bottom level with no cascading, while a tick stays short enough that a
/// same-tick `cur` group is a few dozen events — one cheap sort each.
/// Exactness does not depend on the tick width: a group is extracted by
/// `(at, seq)` order within the tick, never by tick alone.
const GRAN_BITS: u32 = 13;
/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels. Level `l` buckets ticks by bits `[6l, 6l+6)` of
/// their distance-in-ticks from `elapsed`.
const LEVELS: usize = 6;
/// Total tick bits the wheel spans; events further out wait in overflow.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Cap on the audited causality log (entries beyond it are counted, not
/// stored).
#[cfg(feature = "audit")]
pub(crate) const PAST_LOG_CAP: usize = 64;

/// Base of the *provisional* sequence range used by the parallel
/// executor. During a lookahead window each partition worker numbers its
/// schedules `PROV_BASE | local_counter`; at the window barrier the
/// coordinator's replay maps every provisional number to the exact
/// sequence number the serial engine would have assigned (see
/// `crate::par`). Raw comparisons stay correct mid-window because every
/// provisional number exceeds every true number a queue can hold, and
/// within one partition provisional order equals serial order.
pub(crate) const PROV_BASE: u64 = 1 << 63;

/// Outbox routing table installed into a partition worker's queue: any
/// `PacketArrival` scheduled for a node owned by another partition is
/// diverted to the matching outbox instead of the local ordering core.
/// All other node events are partition-local by construction
/// (debug-asserted).
#[derive(Debug)]
pub(crate) struct ParRoute {
    /// `part_of[node] == partition` owning that node.
    pub(crate) part_of: std::sync::Arc<Vec<u32>>,
    /// The partition this queue belongs to.
    pub(crate) me: u32,
    /// Per-destination-partition outboxes of `(at, provisional seq,
    /// event)` triples, drained by the coordinator at every barrier.
    pub(crate) outboxes: Vec<Vec<(SimTime, u64, Event)>>,
}

/// Hierarchical timing wheel over `Scheduled` entries.
///
/// Invariants:
/// - `cur` holds every stored event with `tick ≤ elapsed`, sorted
///   *descending* by `(at, seq)` — the queue head pops from the back
///   with no shifting, and a rare insert at-or-behind the current tick
///   binary-searches its position;
/// - an occupied slot at level `l` holds events whose tick is greater
///   than `elapsed` and differs from it first in bit range `[6l, 6l+6)`;
///   `overflow` holds events at least `2^WHEEL_BITS` ticks out;
/// - `elapsed` never exceeds the tick of any event stored in
///   `slots`/`overflow`, and only ever advances (to the tick of a
///   then-earliest slot), so slot indices at a level never wrap past the
///   current position — the lowest set bit of the lowest occupied
///   level's bitmap names the slot containing the earliest non-`cur`
///   event.
#[derive(Debug)]
struct Wheel {
    /// Current position, in ticks.
    elapsed: u64,
    /// Per-level occupancy bitmaps: bit `s` set ⇔ `slots[l*SLOTS + s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` buckets, unordered within a bucket.
    slots: Vec<Vec<Scheduled>>,
    /// The staged head group (`tick ≤ elapsed`), sorted descending by
    /// `(at, seq)`.
    cur: Vec<Scheduled>,
    /// Events beyond the wheel horizon.
    overflow: Vec<Scheduled>,
    len: usize,
    /// Dirty tracking for the barrier retag of provisional sequence
    /// numbers: bit `s` of `dirty[l]` set ⇔ `slots[l*SLOTS + s]` may hold
    /// an event with `seq >= PROV_BASE` (likewise the flags for `cur` and
    /// `overflow`). Set on insert, cleared by [`Wheel::retag`]; the
    /// retag therefore visits only buckets touched since the last
    /// barrier, never the bulk of far-future events parked with true
    /// sequence numbers.
    dirty: [u64; LEVELS],
    dirty_cur: bool,
    dirty_overflow: bool,
}

impl Wheel {
    fn new() -> Wheel {
        Wheel {
            elapsed: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            cur: Vec::new(),
            overflow: Vec::new(),
            len: 0,
            dirty: [0; LEVELS],
            dirty_cur: false,
            dirty_overflow: false,
        }
    }

    // simlint: allow(hot-path-panic) -- level < LEVELS because x fits in
    // WHEEL_BITS = 6*LEVELS bits on that branch, and slot is masked to
    // SLOTS - 1, so every index is in bounds by construction.
    fn insert(&mut self, s: Scheduled) {
        let prov = s.seq >= PROV_BASE;
        let tick = s.at.as_ps() >> GRAN_BITS;
        self.len += 1;
        if tick <= self.elapsed {
            // Into the staged group: binary-insert to keep it sorted.
            // Descending order makes the common case (a zero-delay event
            // at the head timestamp, fresh = largest seq) an insert next
            // to the back, i.e. a tiny memmove.
            let pos = self.cur.partition_point(|e| (e.at, e.seq) > (s.at, s.seq));
            self.cur.insert(pos, s);
            self.dirty_cur |= prov;
            return;
        }
        let x = tick ^ self.elapsed;
        if x >> WHEEL_BITS != 0 {
            self.overflow.push(s);
            self.dirty_overflow |= prov;
        } else {
            let level = ((63 - x.leading_zeros()) / SLOT_BITS) as usize;
            let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.slots[level * SLOTS + slot].push(s);
            self.occupied[level] |= 1 << slot;
            if prov {
                self.dirty[level] |= 1 << slot;
            }
        }
    }

    /// Timestamp of the earliest stored event. Pure: never advances the
    /// wheel, so it is safe to call with a `limit` in hand and walk away.
    // simlint: allow(hot-path-panic) -- level is yielded by the 0..LEVELS
    // range and slot comes from trailing_zeros of a non-zero 64-bit mask.
    fn peek_min(&self) -> Option<SimTime> {
        if let Some(s) = self.cur.last() {
            return Some(s.at);
        }
        for level in 0..LEVELS {
            if self.occupied[level] != 0 {
                let slot = self.occupied[level].trailing_zeros() as usize;
                // Slot tick ranges are disjoint and ordered, so the
                // earliest event wheel-wide lives in this bucket.
                return self.slots[level * SLOTS + slot].iter().map(|s| s.at).min();
            }
        }
        self.overflow.iter().map(|s| s.at).min()
    }

    /// Pop the earliest event if its timestamp is ≤ `limit`.
    fn pop_next(&mut self, limit: SimTime) -> Option<Scheduled> {
        if self.cur.is_empty() && !self.advance() {
            return None;
        }
        if self.cur.last().is_some_and(|s| s.at > limit) {
            return None;
        }
        let s = self.cur.pop()?;
        self.len -= 1;
        Some(s)
    }

    /// Pop the earliest event if its `(at, seq)` key is lexicographically
    /// below `cut` — the parallel executor's window bound, which can
    /// split a same-timestamp group exactly at a coordinator-dispatched
    /// engine event's sequence number.
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    fn pop_cut(&mut self, cut: (SimTime, u64)) -> Option<Scheduled> {
        if self.cur.is_empty() && !self.advance() {
            return None;
        }
        if self.cur.last().is_some_and(|s| (s.at, s.seq) >= cut) {
            return None;
        }
        let s = self.cur.pop()?;
        self.len -= 1;
        Some(s)
    }

    /// Stage the earliest pending tick group into `cur`, cascading upper
    /// levels down as the position advances. Returns whether any event is
    /// staged. Advancing `elapsed` eagerly — possibly past a caller's
    /// time limit — is safe because `insert` routes anything at or
    /// behind the new position into the sorted `cur` group.
    // simlint: allow(hot-path-panic) -- indices are bounded exactly as in
    // insert/peek_min: level < LEVELS from the range, slot < SLOTS from
    // trailing_zeros of a u64.
    fn advance(&mut self) -> bool {
        loop {
            if !self.cur.is_empty() {
                return true;
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                if self.overflow.is_empty() {
                    return false;
                }
                self.rebase_overflow();
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            let idx = level * SLOTS + slot;
            if level == 0 {
                // A level-0 bucket holds exactly one tick: it becomes the
                // new staged group (swap recycles cur's old allocation).
                self.elapsed = (self.elapsed & !(SLOTS as u64 - 1)) | slot as u64;
                std::mem::swap(&mut self.cur, &mut self.slots[idx]);
                self.occupied[0] &= !(1u64 << slot);
                // The staged group inherits the bucket's dirty flag (the
                // bucket itself is now empty — it received the old,
                // drained `cur`).
                self.dirty_cur |= self.dirty[0] & (1u64 << slot) != 0;
                self.dirty[0] &= !(1u64 << slot);
                // Descending, so the earliest (at, seq) pops from the
                // back without shifting. Keys are unique, so unstable is
                // safe.
                self.cur.sort_unstable_by_key(|s| Reverse((s.at, s.seq)));
                return true;
            }
            // Cascade: advance to the start of this bucket's tick range
            // and re-insert its events, which now land at a strictly
            // lower level (or in `cur`).
            let shift = SLOT_BITS * level as u32;
            self.elapsed =
                (self.elapsed & !((1u64 << (shift + SLOT_BITS)) - 1)) | ((slot as u64) << shift);
            let mut drained = std::mem::take(&mut self.slots[idx]);
            self.occupied[level] &= !(1u64 << slot);
            // Re-inserting below recomputes dirty flags for wherever the
            // events land.
            self.dirty[level] &= !(1u64 << slot);
            self.len -= drained.len();
            for s in drained.drain(..) {
                self.insert(s);
            }
            // Hand the emptied buffer back to the bucket.
            self.slots[idx] = drained;
        }
    }

    /// The wheel is empty but overflow is not: jump `elapsed` to the
    /// earliest overflow tick and re-distribute.
    fn rebase_overflow(&mut self) {
        let min_tick = self
            .overflow
            .iter()
            .map(|s| s.at.as_ps() >> GRAN_BITS)
            .min()
            .unwrap_or(self.elapsed);
        debug_assert!(min_tick >= self.elapsed);
        self.elapsed = min_tick;
        let mut drained = std::mem::take(&mut self.overflow);
        self.dirty_overflow = false;
        self.len -= drained.len();
        for s in drained.drain(..) {
            self.insert(s);
        }
        if self.overflow.is_empty() {
            self.overflow = drained;
        }
    }

    /// Rewrite every provisional sequence number through `map`
    /// (`map[p]` is the true number of provisional `PROV_BASE | p`).
    /// Only dirty buckets are visited. The map is strictly monotone and
    /// every true number it assigns exceeds every true number already
    /// stored, so the rewrite preserves all `(at, seq)` comparisons —
    /// nothing needs re-sorting.
    ///
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    /// Called only from the window barrier, which runs once per window,
    /// never per event.
    #[cfg_attr(feature = "audit", allow(dead_code))]
    fn retag(&mut self, map: &[u64]) {
        fn fix(events: &mut [Scheduled], map: &[u64]) {
            for s in events {
                if s.seq >= PROV_BASE {
                    s.seq = map[(s.seq - PROV_BASE) as usize];
                }
            }
        }
        if self.dirty_cur {
            fix(&mut self.cur, map);
            self.dirty_cur = false;
        }
        for level in 0..LEVELS {
            while self.dirty[level] != 0 {
                let slot = self.dirty[level].trailing_zeros() as usize;
                self.dirty[level] &= !(1u64 << slot);
                fix(&mut self.slots[level * SLOTS + slot], map);
            }
        }
        if self.dirty_overflow {
            fix(&mut self.overflow, map);
            self.dirty_overflow = false;
        }
    }

    /// Drain every stored event, in no particular order (callers re-sort
    /// or re-insert by the embedded `(at, seq)` keys).
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    fn take_all(&mut self) -> Vec<Scheduled> {
        let mut out = std::mem::take(&mut self.cur);
        for b in &mut self.slots {
            out.append(b);
        }
        out.append(&mut self.overflow);
        self.occupied = [0; LEVELS];
        self.dirty = [0; LEVELS];
        self.dirty_cur = false;
        self.dirty_overflow = false;
        self.len = 0;
        out
    }

    #[cfg(feature = "audit")]
    fn iter(&self) -> impl Iterator<Item = &Scheduled> {
        self.cur
            .iter()
            .chain(self.slots.iter().flatten())
            .chain(self.overflow.iter())
    }
}

/// One of the two interchangeable ordering cores.
#[derive(Debug)]
enum Core {
    Wheel(Box<Wheel>),
    Heap(BinaryHeap<Reverse<Scheduled>>),
}

impl Core {
    fn insert(&mut self, s: Scheduled) {
        match self {
            Core::Wheel(w) => w.insert(s),
            Core::Heap(h) => h.push(Reverse(s)),
        }
    }

    fn peek_min(&self) -> Option<SimTime> {
        match self {
            Core::Wheel(w) => w.peek_min(),
            Core::Heap(h) => h.peek().map(|Reverse(s)| s.at),
        }
    }

    /// Full `(at, seq)` key of the earliest event. Heap core only (the
    /// wheel path of [`EventQueue::pop_cut`] bounds pops inside the
    /// sorted `cur` group instead).
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        match self {
            Core::Wheel(w) => w.cur.last().map(|s| (s.at, s.seq)),
            Core::Heap(h) => h.peek().map(|Reverse(s)| (s.at, s.seq)),
        }
    }

    /// Move the whole earliest-timestamp group into `batch` in `(at, seq)`
    /// order — the shared contract both cores honour. Only the heap path
    /// of [`EventQueue::pop_batched`] stages through here; the wheel's
    /// sorted `cur` group serves pops directly.
    fn refill(&mut self, batch: &mut VecDeque<Scheduled>) {
        match self {
            Core::Wheel(w) => {
                let Some(first) = w.pop_next(SimTime::MAX) else {
                    return;
                };
                let t = first.at;
                batch.push_back(first);
                while w.peek_min() == Some(t) {
                    if let Some(s) = w.pop_next(SimTime::MAX) {
                        batch.push_back(s);
                    }
                }
            }
            Core::Heap(h) => {
                let Some(Reverse(first)) = h.pop() else {
                    return;
                };
                let t = first.at;
                batch.push_back(first);
                while h.peek().is_some_and(|Reverse(s)| s.at == t) {
                    if let Some(Reverse(s)) = h.pop() {
                        batch.push_back(s);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Core::Wheel(w) => w.len,
            Core::Heap(h) => h.len(),
        }
    }
}

/// Pending-event set with deterministic `(time, seq)` total order and
/// batched same-timestamp extraction.
#[derive(Debug)]
pub struct EventQueue {
    core: Core,
    /// The group of events at the current head timestamp, staged by
    /// [`Core::refill`] and handed out FIFO. Heap path only: the wheel
    /// serves pops straight from its sorted `cur` group.
    batch: VecDeque<Scheduled>,
    /// Set from the moment a batch is staged until the next refill. While
    /// set, `schedule(now, …)` appends to the batch tail: the core holds
    /// no events at `now` (refill took the whole group), and a fresh
    /// sequence number is larger than every staged one, so tail order is
    /// exactly `(at, seq)` order. Never set on the wheel path.
    in_batch: bool,
    seq: u64,
    now: SimTime,
    /// Cross-partition outbox routing, installed only on partition-worker
    /// queues by the parallel executor; `None` (and cost-free beyond one
    /// branch per schedule) in serial runs.
    route: Option<Box<ParRoute>>,
    /// How many past-scheduled events were clamped to `now` (release
    /// builds); surfaced as the `event.clamped_past` metric so causality
    /// bugs are visible outside audit builds.
    clamped_past: u64,
    /// Causality-violation log: `(requested time, clock at request)` for
    /// every attempt to schedule into the past. Drained by the auditor at
    /// checkpoints.
    #[cfg(feature = "audit")]
    past_schedules: Vec<(SimTime, SimTime)>,
    /// Entries not stored in `past_schedules` because the log was at
    /// [`PAST_LOG_CAP`]; reported (not silently lost) by the auditor.
    #[cfg(feature = "audit")]
    past_dropped: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// Empty queue at t = 0, core chosen per [`QueueKind::Auto`].
    pub fn new() -> Self {
        EventQueue::with_kind(QueueKind::Auto)
    }

    /// Empty queue at t = 0 with an explicit core.
    pub fn with_kind(kind: QueueKind) -> Self {
        let core = if kind.wants_heap() {
            Core::Heap(BinaryHeap::new())
        } else {
            Core::Wheel(Box::new(Wheel::new()))
        };
        EventQueue {
            core,
            batch: VecDeque::new(),
            in_batch: false,
            seq: 0,
            now: SimTime::ZERO,
            route: None,
            clamped_past: 0,
            #[cfg(feature = "audit")]
            past_schedules: Vec::new(),
            #[cfg(feature = "audit")]
            past_dropped: 0,
        }
    }

    /// Which core backs this queue: `"wheel"` or `"heap"`.
    pub fn kind(&self) -> &'static str {
        match self.core {
            Core::Wheel(_) => "wheel",
            Core::Heap(_) => "heap",
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at absolute time `at`. Scheduling in the past is a
    /// logic error: audited builds log it for the auditor's causality
    /// check, plain debug builds assert, and release builds clamp to
    /// `now` to stay monotonic — counting every clamp in
    /// [`clamped_past`](EventQueue::clamped_past).
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        #[cfg(feature = "audit")]
        if at < self.now {
            if self.past_schedules.len() < PAST_LOG_CAP {
                self.past_schedules.push((at, self.now));
            } else {
                self.past_dropped += 1;
            }
        }
        #[cfg(not(feature = "audit"))]
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = if at < self.now {
            self.clamped_past += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        // Partition-worker queues divert cross-partition arrivals to the
        // outbox for the owning partition; the sequence number assigned
        // above travels with the event, so the barrier replay can place
        // it exactly. Only `PacketArrival` ever crosses: every other node
        // event is scheduled by (and for) the node that owns it.
        if let Some(r) = &mut self.route {
            let dest = match &ev {
                // simlint: allow(hot-path-panic) -- part_of is built over this
                // topology's node table, so every event node id indexes in bounds
                Event::PacketArrival { node, .. } => r.part_of[node.index()],
                Event::PortTx { node, .. }
                | Event::FcclTick { node, .. }
                | Event::DetectorTimer { node, .. }
                | Event::CcTimer { node, .. }
                | Event::HostDrain { node } => {
                    debug_assert_eq!(
                        // simlint: allow(hot-path-panic) -- same node-table bound as above
                        r.part_of[node.index()],
                        r.me,
                        "non-arrival node event scheduled across partitions"
                    );
                    r.me
                }
                _ => {
                    debug_assert!(
                        false,
                        "engine-global event scheduled inside a partition window"
                    );
                    r.me
                }
            };
            if dest != r.me {
                // simlint: allow(hot-path-panic) -- dest came out of part_of,
                // whose entries all name one of the `outboxes.len()` partitions
                r.outboxes[dest as usize].push((at, seq, ev));
                return;
            }
        }
        let s = Scheduled { at, seq, ev };
        if self.in_batch && at == self.now {
            self.batch.push_back(s);
        } else {
            self.core.insert(s);
        }
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_batched(SimTime::MAX)
    }

    /// Pop the next event if its timestamp is ≤ `limit`, advancing the
    /// clock; `None` past the limit or when empty. The first pop at a new
    /// head group stages the whole group in `(at, seq)` order (the
    /// wheel's sorted `cur`, or the heap's staged `batch`), so
    /// consecutive same-time pops bypass the ordering structure.
    pub fn pop_batched(&mut self, limit: SimTime) -> Option<(SimTime, Event)> {
        let s = if let Core::Wheel(w) = &mut self.core {
            // The sorted `cur` group plays the batch role directly, and
            // zero-delay schedules binary-insert into it in `(at, seq)`
            // position, so the VecDeque staging layer (and the
            // `in_batch` routing) is bypassed entirely.
            w.pop_next(limit)?
        } else {
            if self.batch.is_empty() {
                self.in_batch = false;
                let t = self.core.peek_min()?;
                if t > limit {
                    return None;
                }
                self.core.refill(&mut self.batch);
                self.in_batch = true;
            } else if self.batch.front().is_some_and(|s| s.at > limit) {
                // A previous run stopped mid-batch and this run's bound
                // is earlier than the staged timestamp.
                return None;
            }
            self.batch.pop_front()?
        };
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.ev))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.batch.front() {
            return Some(s.at);
        }
        self.core.peek_min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.core.len() + self.batch.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many past-scheduled events were silently clamped to `now`.
    /// Always 0 in a causally sound run.
    pub fn clamped_past(&self) -> u64 {
        self.clamped_past
    }

    /// Fold a partition worker's clamp count into this queue's (gather).
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn add_clamped_past(&mut self, n: u64) {
        self.clamped_past += n;
    }

    /// Occupancy snapshot for the self-profiler: `(pending, staged,
    /// overflow)` — total pending events, events staged in the current
    /// same-timestamp group, and events parked on the timing wheel's
    /// overflow list (always 0 on the heap core). Pure reads, so sampling
    /// it never perturbs the queue.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        match &self.core {
            Core::Wheel(w) => (self.len(), w.cur.len(), w.overflow.len()),
            Core::Heap(_) => (self.len(), self.batch.len(), 0),
        }
    }

    // --- Parallel-executor interface (crate-internal) -----------------
    //
    // The conservative-PDES executor (`crate::par`) drives partition
    // queues through lookahead windows: `begin_window` switches schedules
    // to provisional numbering, `pop_cut` bounds execution at the window
    // cut, and at each barrier the coordinator translates outboxes,
    // `retag`s provisional numbers to the exact serial sequence numbers,
    // and (on gathers) rebuilds one serial queue via `take_all` +
    // `schedule_with_seq`.

    /// Install (or clear) the cross-partition outbox routing table.
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn set_route(&mut self, route: Option<Box<ParRoute>>) {
        self.route = route;
    }

    /// The routing table installed by [`EventQueue::set_route`], for
    /// draining outboxes at a barrier.
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn route_mut(&mut self) -> Option<&mut ParRoute> {
        self.route.as_deref_mut()
    }

    /// Enter a lookahead window: subsequent schedules take provisional
    /// sequence numbers `PROV_BASE | n` with `n` counted from zero.
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn begin_window(&mut self) {
        self.seq = PROV_BASE;
    }

    /// How many provisional numbers this window has assigned so far.
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn prov_count(&self) -> u64 {
        debug_assert!(self.seq >= PROV_BASE);
        self.seq - PROV_BASE
    }

    /// The raw sequence counter (true numbering; used when rebuilding the
    /// serial queue at a gather).
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn seq_counter(&self) -> u64 {
        self.seq
    }

    /// Overwrite the sequence counter (true numbering).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn set_seq_counter(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Force the clock (used when handing dispatch duty between the
    /// coordinator and partition workers; never rewinds in practice).
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Insert an event with a caller-supplied sequence number, bypassing
    /// the counter (outbox deliveries and queue rebuilds, where the
    /// number was assigned elsewhere). The caller guarantees `at` is not
    /// in the receiver's past.
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn schedule_with_seq(&mut self, at: SimTime, seq: u64, ev: Event) {
        self.core.insert(Scheduled { at, seq, ev });
    }

    /// Pop the next event if its `(at, seq)` key is lexicographically
    /// below `cut`, returning the key alongside the event; `None` at or
    /// past the cut. Comparing raw keys is exact even mid-window: true
    /// numbers sort below every provisional number, exactly as the serial
    /// engine would order pre-window events before window schedules.
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn pop_cut(&mut self, cut: (SimTime, u64)) -> Option<(SimTime, u64, Event)> {
        let s = if let Core::Wheel(w) = &mut self.core {
            w.pop_cut(cut)?
        } else {
            if self.batch.is_empty() {
                self.in_batch = false;
                // Refill only when the head will actually pop, preserving
                // the invariant that a staged batch sits at the clock's
                // current timestamp (zero-delay schedules append to it).
                if self.core.peek_key()? >= cut {
                    return None;
                }
                self.core.refill(&mut self.batch);
                self.in_batch = true;
            }
            if self.batch.front().is_some_and(|s| (s.at, s.seq) >= cut) {
                return None;
            }
            self.batch.pop_front()?
        };
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.seq, s.ev))
    }

    /// Rewrite every provisional sequence number through `map` (index =
    /// provisional number minus `PROV_BASE`). The wheel visits only dirty
    /// buckets; the heap rebuilds when it holds provisional entries. Map
    /// lookups are total: the barrier replay assigned a true number to
    /// every provisional one. Called only from the once-per-window
    /// barrier, never per event.
    ///
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn retag(&mut self, map: &[u64]) {
        for s in &mut self.batch {
            if s.seq >= PROV_BASE {
                s.seq = map[(s.seq - PROV_BASE) as usize];
            }
        }
        match &mut self.core {
            Core::Wheel(w) => w.retag(map),
            Core::Heap(h) => {
                if h.iter().any(|Reverse(s)| s.seq >= PROV_BASE) {
                    let mut v = std::mem::take(h).into_vec();
                    for Reverse(s) in &mut v {
                        if s.seq >= PROV_BASE {
                            s.seq = map[(s.seq - PROV_BASE) as usize];
                        }
                    }
                    *h = BinaryHeap::from(v);
                }
            }
        }
    }

    /// Drain every pending event (staged batch included) as raw
    /// `(at, seq, event)` triples, in no particular order.
    /// Parallel-executor hook; unused in audit builds (serial fallback).
    #[cfg_attr(feature = "audit", allow(dead_code))]
    pub(crate) fn take_all(&mut self) -> Vec<(SimTime, u64, Event)> {
        let mut out: Vec<(SimTime, u64, Event)> =
            self.batch.drain(..).map(|s| (s.at, s.seq, s.ev)).collect();
        self.in_batch = false;
        match &mut self.core {
            Core::Wheel(w) => out.extend(w.take_all().into_iter().map(|s| (s.at, s.seq, s.ev))),
            Core::Heap(h) => out.extend(
                std::mem::take(h)
                    .into_vec()
                    .into_iter()
                    .map(|Reverse(s)| (s.at, s.seq, s.ev)),
            ),
        }
        out
    }

    /// Drain the log of attempts to schedule into the past.
    #[cfg(feature = "audit")]
    pub(crate) fn take_past_schedules(&mut self) -> Vec<(SimTime, SimTime)> {
        std::mem::take(&mut self.past_schedules)
    }

    /// Number of causality-log entries dropped beyond [`PAST_LOG_CAP`]
    /// since the last drain; resets on read.
    #[cfg(feature = "audit")]
    pub(crate) fn take_past_dropped(&mut self) -> u64 {
        std::mem::take(&mut self.past_dropped)
    }

    /// All pending entries, staged batch included (those are scheduled
    /// but not yet dispatched, so e.g. their packets are still in
    /// flight).
    #[cfg(feature = "audit")]
    fn iter_scheduled(&self) -> impl Iterator<Item = &Scheduled> {
        let core: Box<dyn Iterator<Item = &Scheduled> + '_> = match &self.core {
            Core::Wheel(w) => Box::new(w.iter()),
            Core::Heap(h) => Box::new(h.iter().map(|Reverse(s)| s)),
        };
        self.batch.iter().chain(core)
    }

    /// Number of pending `PacketArrival` events (packets on the wire).
    #[cfg(feature = "audit")]
    pub(crate) fn packets_in_flight(&self) -> usize {
        self.iter_scheduled()
            .filter(|s| matches!(s.ev, Event::PacketArrival { .. }))
            .count()
    }

    /// Iterate pending packet arrivals as `(receiver, in_port, packet)`.
    #[cfg(feature = "audit")]
    pub(crate) fn packet_arrivals(&self) -> impl Iterator<Item = (NodeId, u16, &Packet)> {
        self.iter_scheduled().filter_map(|s| match &s.ev {
            Event::PacketArrival { node, in_port, pkt } => Some((*node, *in_port, &**pkt)),
            _ => None,
        })
    }
}

/// Transmission gate of one egress port: tracks when the transmitter is
/// free and deduplicates pending `PortTx` wake-ups so each port keeps at
/// most a couple of outstanding events regardless of how often it is
/// kicked.
///
/// Protocol:
/// 1. at the top of a `PortTx` handler call [`on_event`](TxGate::on_event);
///    proceed only if it returns `true`;
/// 2. after starting a transmission call [`begin_tx`](TxGate::begin_tx) and
///    schedule the follow-up `PortTx` at the returned time (then
///    [`note_scheduled`](TxGate::note_scheduled));
/// 3. to kick the port from anywhere, consult [`want`](TxGate::want) and
///    schedule + [`note_scheduled`](TxGate::note_scheduled) if it returns a
///    time.
///
/// Handlers must tolerate spurious wake-ups (they re-check all send
/// conditions), which keeps the bookkeeping simple and robust.
#[derive(Debug, Clone, Default)]
pub struct TxGate {
    free_at: SimTime,
    pending_at: Option<SimTime>,
}

impl TxGate {
    /// A gate that is free immediately.
    pub fn new() -> Self {
        TxGate::default()
    }

    /// Enter a `PortTx` handler. Returns whether the transmitter is free.
    pub fn on_event(&mut self, now: SimTime) -> bool {
        if let Some(p) = self.pending_at {
            if p <= now {
                self.pending_at = None;
            }
        }
        now >= self.free_at
    }

    /// Record the start of a transmission lasting `ser`; returns the time
    /// the transmitter frees up (schedule the next `PortTx` there).
    pub fn begin_tx(&mut self, now: SimTime, ser: lossless_flowctl::SimDuration) -> SimTime {
        debug_assert!(now >= self.free_at);
        self.free_at = now + ser;
        self.free_at
    }

    /// When the port would next need a `PortTx` event if kicked at `at`;
    /// `None` if an earlier-or-equal event is already pending.
    pub fn want(&self, at: SimTime) -> Option<SimTime> {
        let at = at.max(self.free_at);
        match self.pending_at {
            Some(p) if p <= at => None,
            _ => Some(at),
        }
    }

    /// Record that a `PortTx` was scheduled at `at`.
    pub fn note_scheduled(&mut self, at: SimTime) {
        self.pending_at = Some(at);
    }

    /// When the transmitter frees up.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(node: u32, port: u16) -> Event {
        Event::PortTx {
            node: NodeId(node),
            port,
        }
    }

    fn both_kinds() -> [EventQueue; 2] {
        [
            EventQueue::with_kind(QueueKind::Wheel),
            EventQueue::with_kind(QueueKind::Heap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_us(3), tx(3, 0));
            q.schedule(SimTime::from_us(1), tx(1, 0));
            q.schedule(SimTime::from_us(2), tx(2, 0));
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::PortTx { node, .. } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, [1, 2, 3]);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut q in both_kinds() {
            let t = SimTime::from_us(5);
            for i in 0..10 {
                q.schedule(t, tx(i, 0));
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::PortTx { node, .. } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    #[cfg(feature = "audit")]
    #[test]
    fn schedules_into_the_past_are_logged_for_the_auditor() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), tx(0, 0));
        let _ = q.pop(); // clock is now at 10us
        q.schedule(SimTime::from_us(5), tx(1, 0));
        let past = q.take_past_schedules();
        assert_eq!(past, vec![(SimTime::from_us(5), SimTime::from_us(10))]);
        // The log is drained by the take.
        assert!(q.take_past_schedules().is_empty());
    }

    #[cfg(feature = "audit")]
    #[test]
    fn past_log_overflow_is_counted_not_lost() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), tx(0, 0));
        let _ = q.pop();
        for i in 0..(PAST_LOG_CAP as u32 + 7) {
            q.schedule(SimTime::from_us(5), tx(i, 0));
        }
        assert_eq!(q.take_past_schedules().len(), PAST_LOG_CAP);
        assert_eq!(q.take_past_dropped(), 7);
        // Both reset on drain.
        assert_eq!(q.take_past_dropped(), 0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_clamps_are_counted() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), tx(0, 0));
        let _ = q.pop();
        q.schedule(SimTime::from_us(5), tx(1, 0));
        assert_eq!(q.clamped_past(), 1);
        // The clamped event runs at `now`, not in the past.
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_us(10));
    }

    #[test]
    fn clock_advances_monotonically() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_us(2), tx(0, 0));
            q.schedule(SimTime::from_us(2), tx(1, 0));
            q.schedule(SimTime::from_us(7), tx(2, 0));
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
            assert_eq!(q.now(), SimTime::from_us(7));
        }
    }

    #[test]
    fn peek_does_not_advance() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_us(4), tx(0, 0));
            assert_eq!(q.peek_time(), Some(SimTime::from_us(4)));
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn pop_batched_respects_limit_and_resumes() {
        for mut q in both_kinds() {
            q.schedule(SimTime::from_us(1), tx(0, 0));
            q.schedule(SimTime::from_us(3), tx(1, 0));
            assert!(q.pop_batched(SimTime::from_us(2)).is_some());
            // Next event is past the limit: peeking must not advance the
            // clock or lose the event.
            assert!(q.pop_batched(SimTime::from_us(2)).is_none());
            assert_eq!(q.now(), SimTime::from_us(1));
            assert_eq!(q.len(), 1);
            // A later bound picks it up.
            let (t, _) = q.pop_batched(SimTime::from_us(5)).unwrap();
            assert_eq!(t, SimTime::from_us(3));
        }
    }

    #[test]
    fn zero_delay_schedules_during_a_batch_keep_fifo_order() {
        for mut q in both_kinds() {
            let t = SimTime::from_us(1);
            q.schedule(t, tx(0, 0));
            q.schedule(t, tx(1, 0));
            // Pop the first of the pair; the group is now staged.
            let (now, _) = q.pop().unwrap();
            assert_eq!(now, t);
            // A zero-delay schedule lands after the staged remainder.
            q.schedule(t, tx(2, 0));
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::PortTx { node, .. } => node.0,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, [1, 2]);
        }
    }

    #[test]
    fn far_future_events_cross_wheel_levels() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        // One event per wheel level, plus one beyond the ~9 min horizon.
        let mut expect = Vec::new();
        for lvl in 0..7u32 {
            let at = SimTime::from_ps(1u64 << (GRAN_BITS + SLOT_BITS * lvl));
            q.schedule(at, tx(lvl, 0));
            expect.push(at);
        }
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn txgate_busy_until_serialization_done() {
        use lossless_flowctl::SimDuration;
        let mut g = TxGate::new();
        assert!(g.on_event(SimTime::ZERO));
        let free = g.begin_tx(SimTime::ZERO, SimDuration::from_ns(200));
        assert_eq!(free, SimTime::from_ns(200));
        assert!(!g.on_event(SimTime::from_ns(100)));
        assert!(g.on_event(SimTime::from_ns(200)));
    }

    #[test]
    fn txgate_deduplicates_kicks() {
        let mut g = TxGate::new();
        // First kick schedules...
        let at = g.want(SimTime::from_us(1)).unwrap();
        g.note_scheduled(at);
        // ...an equal-or-later kick is suppressed...
        assert_eq!(g.want(SimTime::from_us(1)), None);
        assert_eq!(g.want(SimTime::from_us(2)), None);
        // ...but an earlier need is not.
        assert_eq!(g.want(SimTime::from_ns(500)), Some(SimTime::from_ns(500)));
        let mut g2 = TxGate::new();
        g2.note_scheduled(SimTime::from_us(10)); // a pacing wake far out
        assert_eq!(g2.want(SimTime::from_us(1)), Some(SimTime::from_us(1)));
    }

    #[test]
    fn txgate_kick_while_busy_lands_at_free_time() {
        use lossless_flowctl::SimDuration;
        let mut g = TxGate::new();
        assert!(g.on_event(SimTime::ZERO));
        let free = g.begin_tx(SimTime::ZERO, SimDuration::from_us(1));
        g.note_scheduled(free);
        // A kick mid-transmission is absorbed by the pending completion
        // event.
        assert_eq!(g.want(SimTime::from_ns(300)), None);
    }
}
