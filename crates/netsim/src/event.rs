//! The deterministic event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties at the same
//! instant execute in the order they were scheduled, so a run is a pure
//! function of its configuration. This property underpins every regression
//! test in the workspace.

use crate::packet::{FlowId, Packet};
use crate::topology::NodeId;
use lossless_flowctl::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Debug)]
pub enum Event {
    /// A packet finished arriving at `node` through `in_port`.
    PacketArrival {
        /// Receiving node.
        node: NodeId,
        /// Ingress port at the receiving node.
        in_port: u16,
        /// The packet. Boxed (and pooled, see
        /// [`PacketPool`](crate::packet::PacketPool)) so the event stays
        /// pointer-sized on the heap's hot sift paths and the same
        /// allocation travels every hop without re-boxing on requeue.
        pkt: Box<Packet>,
    },
    /// `(node, port)`'s transmitter may start the next transmission.
    PortTx {
        /// The node.
        node: NodeId,
        /// The egress port.
        port: u16,
    },
    /// Periodic CBFC credit update: `(node, port, vl)` should emit an FCCL
    /// message upstream.
    FcclTick {
        /// The node.
        node: NodeId,
        /// The port whose receive buffer is advertised.
        port: u16,
        /// Virtual lane.
        vl: u8,
    },
    /// A congestion detector's trend-check timer expired.
    DetectorTimer {
        /// The node.
        node: NodeId,
        /// The egress port.
        port: u16,
        /// Priority / VL.
        prio: u8,
    },
    /// A flow becomes active at its source host.
    FlowStart {
        /// The flow.
        flow: FlowId,
    },
    /// A congestion-controller timer at a host expired.
    CcTimer {
        /// The host.
        node: NodeId,
        /// The flow whose controller owns the timer.
        flow: FlowId,
        /// Controller-defined timer id.
        timer: u32,
    },
    /// A slow receiver finished processing the packet at the head of its
    /// receive queue.
    HostDrain {
        /// The host.
        node: NodeId,
    },
    /// Periodic trace sampling tick.
    TraceTick,
}

impl Event {
    /// Dense kind index, used by the observability layer's per-kind
    /// dispatch counters. Indexes into [`Event::KIND_NAMES`].
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            Event::PacketArrival { .. } => 0,
            Event::PortTx { .. } => 1,
            Event::FcclTick { .. } => 2,
            Event::DetectorTimer { .. } => 3,
            Event::FlowStart { .. } => 4,
            Event::CcTimer { .. } => 5,
            Event::HostDrain { .. } => 6,
            Event::TraceTick => 7,
        }
    }

    /// Metric names of the event kinds, indexed by
    /// [`Event::kind_index`].
    pub const KIND_NAMES: [&'static str; 8] = [
        "engine.dispatch.packet_arrival",
        "engine.dispatch.port_tx",
        "engine.dispatch.fccl_tick",
        "engine.dispatch.detector_timer",
        "engine.dispatch.flow_start",
        "engine.dispatch.cc_timer",
        "engine.dispatch.host_drain",
        "engine.dispatch.trace_tick",
    ];
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of scheduled events with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: SimTime,
    /// Causality-violation log: `(requested time, clock at request)` for
    /// every attempt to schedule into the past. Drained by the auditor at
    /// checkpoints.
    #[cfg(feature = "audit")]
    past_schedules: Vec<(SimTime, SimTime)>,
}

impl EventQueue {
    /// Empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            #[cfg(feature = "audit")]
            past_schedules: Vec::new(),
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at absolute time `at`. Scheduling in the past is a
    /// logic error: audited builds log it for the auditor's causality
    /// check, plain debug builds assert, and release builds clamp to
    /// `now` to stay monotonic.
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        #[cfg(feature = "audit")]
        if at < self.now && self.past_schedules.len() < 64 {
            self.past_schedules.push((at, self.now));
        }
        #[cfg(not(feature = "audit"))]
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, ev }));
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.ev))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain the log of attempts to schedule into the past.
    #[cfg(feature = "audit")]
    pub(crate) fn take_past_schedules(&mut self) -> Vec<(SimTime, SimTime)> {
        std::mem::take(&mut self.past_schedules)
    }

    /// Number of pending `PacketArrival` events (packets on the wire).
    #[cfg(feature = "audit")]
    pub(crate) fn packets_in_flight(&self) -> usize {
        self.heap
            .iter()
            .filter(|Reverse(s)| matches!(s.ev, Event::PacketArrival { .. }))
            .count()
    }

    /// Iterate pending packet arrivals as `(receiver, in_port, packet)`.
    #[cfg(feature = "audit")]
    pub(crate) fn packet_arrivals(&self) -> impl Iterator<Item = (NodeId, u16, &Packet)> {
        self.heap.iter().filter_map(|Reverse(s)| match &s.ev {
            Event::PacketArrival { node, in_port, pkt } => Some((*node, *in_port, &**pkt)),
            _ => None,
        })
    }
}

/// Transmission gate of one egress port: tracks when the transmitter is
/// free and deduplicates pending `PortTx` wake-ups so each port keeps at
/// most a couple of outstanding events regardless of how often it is
/// kicked.
///
/// Protocol:
/// 1. at the top of a `PortTx` handler call [`on_event`](TxGate::on_event);
///    proceed only if it returns `true`;
/// 2. after starting a transmission call [`begin_tx`](TxGate::begin_tx) and
///    schedule the follow-up `PortTx` at the returned time (then
///    [`note_scheduled`](TxGate::note_scheduled));
/// 3. to kick the port from anywhere, consult [`want`](TxGate::want) and
///    schedule + [`note_scheduled`](TxGate::note_scheduled) if it returns a
///    time.
///
/// Handlers must tolerate spurious wake-ups (they re-check all send
/// conditions), which keeps the bookkeeping simple and robust.
#[derive(Debug, Clone, Default)]
pub struct TxGate {
    free_at: SimTime,
    pending_at: Option<SimTime>,
}

impl TxGate {
    /// A gate that is free immediately.
    pub fn new() -> Self {
        TxGate::default()
    }

    /// Enter a `PortTx` handler. Returns whether the transmitter is free.
    pub fn on_event(&mut self, now: SimTime) -> bool {
        if let Some(p) = self.pending_at {
            if p <= now {
                self.pending_at = None;
            }
        }
        now >= self.free_at
    }

    /// Record the start of a transmission lasting `ser`; returns the time
    /// the transmitter frees up (schedule the next `PortTx` there).
    pub fn begin_tx(&mut self, now: SimTime, ser: lossless_flowctl::SimDuration) -> SimTime {
        debug_assert!(now >= self.free_at);
        self.free_at = now + ser;
        self.free_at
    }

    /// When the port would next need a `PortTx` event if kicked at `at`;
    /// `None` if an earlier-or-equal event is already pending.
    pub fn want(&self, at: SimTime) -> Option<SimTime> {
        let at = at.max(self.free_at);
        match self.pending_at {
            Some(p) if p <= at => None,
            _ => Some(at),
        }
    }

    /// Record that a `PortTx` was scheduled at `at`.
    pub fn note_scheduled(&mut self, at: SimTime) {
        self.pending_at = Some(at);
    }

    /// When the transmitter frees up.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(node: u32, port: u16) -> Event {
        Event::PortTx {
            node: NodeId(node),
            port,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3), tx(3, 0));
        q.schedule(SimTime::from_us(1), tx(1, 0));
        q.schedule(SimTime::from_us(2), tx(2, 0));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::PortTx { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..10 {
            q.schedule(t, tx(i, 0));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::PortTx { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[cfg(feature = "audit")]
    #[test]
    fn schedules_into_the_past_are_logged_for_the_auditor() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), tx(0, 0));
        let _ = q.pop(); // clock is now at 10us
        q.schedule(SimTime::from_us(5), tx(1, 0));
        let past = q.take_past_schedules();
        assert_eq!(past, vec![(SimTime::from_us(5), SimTime::from_us(10))]);
        // The log is drained by the take.
        assert!(q.take_past_schedules().is_empty());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(2), tx(0, 0));
        q.schedule(SimTime::from_us(2), tx(1, 0));
        q.schedule(SimTime::from_us(7), tx(2, 0));
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), SimTime::from_us(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(4), tx(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_us(4)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn txgate_busy_until_serialization_done() {
        use lossless_flowctl::SimDuration;
        let mut g = TxGate::new();
        assert!(g.on_event(SimTime::ZERO));
        let free = g.begin_tx(SimTime::ZERO, SimDuration::from_ns(200));
        assert_eq!(free, SimTime::from_ns(200));
        assert!(!g.on_event(SimTime::from_ns(100)));
        assert!(g.on_event(SimTime::from_ns(200)));
    }

    #[test]
    fn txgate_deduplicates_kicks() {
        let mut g = TxGate::new();
        // First kick schedules...
        let at = g.want(SimTime::from_us(1)).unwrap();
        g.note_scheduled(at);
        // ...an equal-or-later kick is suppressed...
        assert_eq!(g.want(SimTime::from_us(1)), None);
        assert_eq!(g.want(SimTime::from_us(2)), None);
        // ...but an earlier need is not.
        assert_eq!(g.want(SimTime::from_ns(500)), Some(SimTime::from_ns(500)));
        let mut g2 = TxGate::new();
        g2.note_scheduled(SimTime::from_us(10)); // a pacing wake far out
        assert_eq!(g2.want(SimTime::from_us(1)), Some(SimTime::from_us(1)));
    }

    #[test]
    fn txgate_kick_while_busy_lands_at_free_time() {
        use lossless_flowctl::SimDuration;
        let mut g = TxGate::new();
        assert!(g.on_event(SimTime::ZERO));
        let free = g.begin_tx(SimTime::ZERO, SimDuration::from_us(1));
        g.note_scheduled(free);
        // A kick mid-transmission is absorbed by the pending completion
        // event.
        assert_eq!(g.want(SimTime::from_ns(300)), None);
    }
}
