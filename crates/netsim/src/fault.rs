//! Deterministic fault injection: link flaps, link-rate degradation and
//! routing changes, scheduled up front and dispatched through the normal
//! event queue.
//!
//! A [`FaultPlan`] is part of [`crate::config::SimConfig`]; at
//! construction time the simulator turns every [`FaultEvent`] into a
//! regular engine event (`LinkState` / `LinkRate` / `RouteUpdate`), so
//! fault timing obeys the same `(time, seq)` total order as everything
//! else and runs are bit-reproducible. The runtime side is a
//! [`LinkState`] table consulted by switches and hosts before putting a
//! frame on the wire: a downed port holds its queues (the lossless
//! policy — nothing is dropped, PFC/CBFC state is synchronized by the
//! held control frames once the port recovers), and a degraded port
//! serializes at the overridden rate.
//!
//! Faults are modelled on DCFIT's methodology: injected link/route churn
//! is what drives lossless fabrics into the pathological regimes (pause
//! storms, cyclic back-pressure, deadlock) that a static healthy-fabric
//! scenario can never reach.

use crate::topology::{NodeId, Topology};
use lossless_flowctl::{Rate, SimTime};

/// What a single fault event does to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Take the link attached to `(node, port)` down, in both directions.
    /// In-flight frames already on the wire still arrive; queued frames
    /// are held at the dark port.
    LinkDown,
    /// Bring the link back up; both endpoints immediately re-arm their
    /// transmitters (held PFC/CBFC control frames go out first, which
    /// resynchronizes flow-control state).
    LinkUp,
    /// Degrade the link to the given capacity, in both directions.
    Degrade(Rate),
    /// Restore the link's nominal capacity.
    Restore,
    /// Atomically swap the routing overrides to route set `set` of
    /// [`FaultPlan::route_sets`]; `None` reverts to the baseline tables.
    RouteChange(Option<usize>),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub at: SimTime,
    /// The node whose port identifies the affected link (ignored for
    /// [`FaultKind::RouteChange`]).
    pub node: NodeId,
    /// The port at `node` (the peer end is affected symmetrically).
    pub port: u16,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, immutable schedule of faults, carried in
/// [`crate::config::SimConfig`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The scheduled faults (any order; the event queue orders them).
    pub events: Vec<FaultEvent>,
    /// Named sets of pinned paths (`[src, hop, .., dst]` node sequences)
    /// that [`FaultKind::RouteChange`] can swap in atomically.
    pub route_sets: Vec<Vec<Vec<NodeId>>>,
}

impl FaultPlan {
    /// True when the plan schedules nothing (the default for every
    /// pre-existing scenario, keeping their event sequences — and hence
    /// golden fingerprints — untouched).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedule a link flap: down at `down_at`, back up at `up_at`.
    pub fn flap(&mut self, node: NodeId, port: u16, down_at: SimTime, up_at: SimTime) -> &mut Self {
        assert!(down_at < up_at, "flap must go down before it comes up");
        self.events.push(FaultEvent {
            at: down_at,
            node,
            port,
            kind: FaultKind::LinkDown,
        });
        self.events.push(FaultEvent {
            at: up_at,
            node,
            port,
            kind: FaultKind::LinkUp,
        });
        self
    }

    /// Schedule a rate degradation window: `rate` from `at`, nominal
    /// again at `restore_at`.
    pub fn degrade(
        &mut self,
        node: NodeId,
        port: u16,
        rate: Rate,
        at: SimTime,
        restore_at: SimTime,
    ) -> &mut Self {
        assert!(at < restore_at, "degradation must end after it starts");
        self.events.push(FaultEvent {
            at,
            node,
            port,
            kind: FaultKind::Degrade(rate),
        });
        self.events.push(FaultEvent {
            at: restore_at,
            node,
            port,
            kind: FaultKind::Restore,
        });
        self
    }

    /// Schedule an atomic routing swap to `route_sets[set]` (or back to
    /// the baseline tables with `None`).
    pub fn route_change(&mut self, at: SimTime, set: Option<usize>) -> &mut Self {
        self.events.push(FaultEvent {
            at,
            node: NodeId(0),
            port: 0,
            kind: FaultKind::RouteChange(set),
        });
        self
    }

    /// A seeded random plan over the candidate `(node, port)` links:
    /// `n` flap/degrade windows inside `[0, horizon)`, every one paired
    /// with its recovery so the fabric is healthy again before the
    /// horizon. Deterministic in `seed` (splitmix64), for property tests.
    pub fn random(
        seed: u64,
        candidates: &[(NodeId, u16)],
        horizon: SimTime,
        n: usize,
    ) -> FaultPlan {
        let mut plan = FaultPlan::default();
        if candidates.is_empty() || horizon == SimTime::ZERO {
            return plan;
        }
        let mut s = seed;
        let mut next = move || {
            // splitmix64, same generator family the engine seeds
            // detectors with.
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let span = horizon.as_ps();
        for _ in 0..n {
            let (node, port) = candidates[(next() % candidates.len() as u64) as usize];
            // A window somewhere in the first ~3/4, recovering before the
            // horizon; at least 1 ps wide.
            let a = next() % (span * 3 / 4).max(1);
            let b = a + 1 + next() % (span - a - 1).max(1);
            let (at, to) = (SimTime::from_ps(a), SimTime::from_ps(b.min(span - 1)));
            if to <= at {
                continue;
            }
            if next() % 2 == 0 {
                plan.flap(node, port, at, to);
            } else {
                plan.degrade(node, port, Rate::from_gbps(1 + next() % 10), at, to);
            }
        }
        plan
    }
}

/// The runtime link table: which ports are currently dark and which
/// carry a degraded rate. Owned by the simulator and visible to every
/// node through [`crate::sim::Ctx`].
#[derive(Debug, Clone)]
pub struct LinkState {
    /// `up[node][port]`.
    up: Vec<Vec<bool>>,
    /// `rate[node][port]`: `Some` overrides the topology's nominal rate.
    rate: Vec<Vec<Option<Rate>>>,
}

impl LinkState {
    /// All links up at nominal rate.
    pub fn new(topo: &Topology) -> LinkState {
        let up = (0..topo.node_count() as u32)
            .map(|n| vec![true; topo.ports(NodeId(n)).len()])
            .collect();
        let rate = (0..topo.node_count() as u32)
            .map(|n| vec![None; topo.ports(NodeId(n)).len()])
            .collect();
        LinkState { up, rate }
    }

    /// Is `(node, port)` currently able to transmit?
    // simlint: allow(hot-path-panic) -- matrices are sized per node/port from the same topology
    pub fn is_up(&self, n: NodeId, port: u16) -> bool {
        self.up[n.index()][port as usize]
    }

    /// The current capacity of `(node, port)` given its `nominal` rate.
    // simlint: allow(hot-path-panic) -- matrices are sized per node/port from the same topology
    pub fn rate(&self, n: NodeId, port: u16, nominal: Rate) -> Rate {
        self.rate[n.index()][port as usize].unwrap_or(nominal)
    }

    /// True when every link is up at nominal rate.
    pub fn all_healthy(&self) -> bool {
        self.up.iter().all(|p| p.iter().all(|&u| u))
            && self.rate.iter().all(|p| p.iter().all(|r| r.is_none()))
    }

    // simlint: allow(hot-path-panic) -- matrices are sized per node/port from the same topology
    pub(crate) fn set_up(&mut self, n: NodeId, port: u16, up: bool) {
        self.up[n.index()][port as usize] = up;
    }

    // simlint: allow(hot-path-panic) -- matrices are sized per node/port from the same topology
    pub(crate) fn set_rate(&mut self, n: NodeId, port: u16, rate: Option<Rate>) {
        self.rate[n.index()][port as usize] = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lossless_flowctl::SimDuration;

    fn tiny_topo() -> Topology {
        let mut b = Topology::builder();
        let s = b.switch("s0");
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.link(h0, s, Rate::from_gbps(40), SimDuration::from_us(4));
        b.link(h1, s, Rate::from_gbps(40), SimDuration::from_us(4));
        b.build()
    }

    #[test]
    fn link_state_tracks_overrides() {
        let topo = tiny_topo();
        let mut ls = LinkState::new(&topo);
        assert!(ls.all_healthy());
        ls.set_up(NodeId(0), 1, false);
        assert!(!ls.is_up(NodeId(0), 1));
        assert!(ls.is_up(NodeId(0), 0));
        assert!(!ls.all_healthy());
        ls.set_up(NodeId(0), 1, true);
        ls.set_rate(NodeId(0), 0, Some(Rate::from_gbps(10)));
        assert_eq!(
            ls.rate(NodeId(0), 0, Rate::from_gbps(40)),
            Rate::from_gbps(10)
        );
        assert_eq!(
            ls.rate(NodeId(0), 1, Rate::from_gbps(40)),
            Rate::from_gbps(40)
        );
        ls.set_rate(NodeId(0), 0, None);
        assert!(ls.all_healthy());
    }

    #[test]
    fn random_plans_pair_every_fault_with_recovery() {
        let cands: Vec<(NodeId, u16)> = vec![(NodeId(0), 0), (NodeId(0), 1)];
        let horizon = SimTime::from_ms(2);
        for seed in 0..32 {
            let plan = FaultPlan::random(seed, &cands, horizon, 6);
            let mut downs = 0i64;
            let mut degrades = 0i64;
            for ev in &plan.events {
                assert!(ev.at < horizon, "fault scheduled past the horizon");
                match ev.kind {
                    FaultKind::LinkDown => downs += 1,
                    FaultKind::LinkUp => downs -= 1,
                    FaultKind::Degrade(_) => degrades += 1,
                    FaultKind::Restore => degrades -= 1,
                    FaultKind::RouteChange(_) => {}
                }
            }
            assert_eq!(downs, 0, "every down must pair with an up");
            assert_eq!(degrades, 0, "every degrade must pair with a restore");
            // Determinism: the same seed reproduces the same plan.
            let again = FaultPlan::random(seed, &cands, horizon, 6);
            assert_eq!(plan.events, again.events);
        }
    }
}
