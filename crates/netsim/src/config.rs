//! Simulation configuration: network mode (CEE vs InfiniBand), congestion
//! detector selection, endpoint feedback mode, priorities and tracing.

use crate::event::QueueKind;
use crate::topology::NodeId;
use lossless_flowctl::cbfc::CbfcConfig;
use lossless_flowctl::pfc::PfcConfig;
use lossless_flowctl::{SimDuration, SimTime};
use tcd_core::baseline::{EcnRed, IbFecn, RedConfig};
use tcd_core::detector::{CongestionDetector, DequeueContext, LegacyScheme};
use tcd_core::{CodePoint, TcdConfig, TcdDetector, TernaryState};

/// Which hop-by-hop flow control — and therefore which switch
/// architecture — the network uses.
#[derive(Debug, Clone, Copy)]
pub enum FlowControlMode {
    /// Converged Enhanced Ethernet: shared-buffer switches + PFC.
    Pfc(PfcConfig),
    /// InfiniBand: input-buffered VoQ switches + CBFC. The config applies
    /// per (port, VL).
    Cbfc(CbfcConfig),
    /// A traditional *lossy* Ethernet: drop-tail egress queues, no
    /// hop-by-hop flow control. The baseline the paper's premise rests on
    /// (§1: packet loss devastates tail latency); hosts must use reliable
    /// (go-back-N) transport, enabled automatically in this mode with
    /// [`FeedbackMode::AckPerPacket`].
    Lossy {
        /// Per-(egress, priority) drop-tail buffer limit, bytes.
        egress_buffer_bytes: u64,
    },
}

/// Which congestion detector every egress (port, data-priority) pair runs.
#[derive(Debug, Clone, Copy)]
pub enum DetectorKind {
    /// No marking at all.
    None,
    /// RED/ECN dequeue marking (DCQCN's CP) — the CEE baseline.
    EcnRed(RedConfig),
    /// The IB CC FECN root/victim rule — the InfiniBand baseline.
    IbFecn {
        /// Output-queue threshold in bytes (paper: 50 KB).
        threshold_bytes: u64,
    },
    /// Ternary Congestion Detection, marking per the given legacy scheme
    /// while the port is in a determined state.
    Tcd(TcdConfig),
    /// TCD deferring to RED/ECN marking in determined states (the CEE
    /// deployment: the switch keeps its existing CP behaviour).
    TcdRed(TcdConfig, RedConfig),
    /// TCD deferring to the IB CC FECN rule in determined states.
    TcdFecn(TcdConfig, u64),
    /// NP-ECN (PCN, NSDI'20 — the paper's §7 related work): ECN marking
    /// that skips packets whose wait overlapped a PAUSE, i.e. the FECN
    /// root/victim rule applied to CEE. An additional baseline beyond the
    /// paper's own comparison set.
    NpEcn {
        /// Queue threshold in bytes.
        threshold_bytes: u64,
    },
}

impl DetectorKind {
    /// Instantiate a detector for one egress (port, priority). `seed`
    /// decorrelates RED's marking coin across ports deterministically.
    pub fn build(&self, seed: u64) -> Box<dyn CongestionDetector> {
        match *self {
            DetectorKind::None => Box::new(NullDetector),
            DetectorKind::EcnRed(cfg) => Box::new(EcnRed::new(cfg, seed)),
            DetectorKind::IbFecn { threshold_bytes } => Box::new(IbFecn::new(threshold_bytes)),
            DetectorKind::Tcd(cfg) => Box::new(TcdDetector::new(cfg)),
            DetectorKind::TcdRed(cfg, red) => Box::new(TcdDetector::with_legacy(
                cfg,
                LegacyScheme::Red(EcnRed::new(red, seed)),
            )),
            DetectorKind::TcdFecn(cfg, threshold) => Box::new(TcdDetector::with_legacy(
                cfg,
                LegacyScheme::Fecn(IbFecn::new(threshold)),
            )),
            DetectorKind::NpEcn { threshold_bytes } => Box::new(IbFecn::new(threshold_bytes)),
        }
    }
}

/// A detector that never marks (for `DetectorKind::None`).
#[derive(Debug, Clone, Copy)]
pub struct NullDetector;

impl CongestionDetector for NullDetector {
    fn on_dequeue(&mut self, _ctx: &DequeueContext) -> Option<CodePoint> {
        None
    }
    fn on_pause(&mut self, _now: SimTime) {}
    fn on_resume(&mut self, _now: SimTime) {}
    fn port_state(&self) -> TernaryState {
        TernaryState::NonCongestion
    }
}

/// How receivers feed congestion information back to senders.
#[derive(Debug, Clone, Copy)]
pub enum FeedbackMode {
    /// No feedback (uncontrolled experiments).
    None,
    /// Send a CNP when a marked data packet arrives, at most one per
    /// `min_interval` per flow (DCQCN's NP behaviour; also used for the IB
    /// BECN echo). With `notify_ue`, UE-marked packets also elicit CNPs
    /// carrying the UE code point (the TCD extension).
    CnpOnMarked {
        /// Minimum gap between CNPs of one flow (DCQCN: 50 µs).
        min_interval: SimDuration,
        /// Whether UE marks are echoed too (TCD-aware endpoints).
        notify_ue: bool,
    },
    /// Acknowledge every data packet, echoing its code point and carrying
    /// its wire timestamp (TIMELY's RTT feedback).
    AckPerPacket,
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Maximum transmission unit for data segments, bytes (paper: 1000 B).
    pub mtu: u64,
    /// Number of priority classes / virtual lanes. Priority 0 is reserved
    /// for end-to-end feedback (ACK/CNP); data flows default to priority 1.
    pub num_prios: u8,
    /// Priority used by data flows unless the flow says otherwise.
    pub data_prio: u8,
    /// Priority used by feedback packets.
    pub feedback_prio: u8,
    /// Hop-by-hop flow control (selects the switch architecture).
    pub flow_control: FlowControlMode,
    /// Congestion detector on every egress (port, data priority).
    pub detector: DetectorKind,
    /// Receiver feedback behaviour.
    pub feedback: FeedbackMode,
    /// Size of feedback packets on the wire, bytes.
    pub feedback_bytes: u64,
    /// Hard stop time for the run.
    pub end_time: SimTime,
    /// Master seed (decorrelates RED coins and any randomized choices).
    pub seed: u64,
    /// Queue-length/rate sampling period for traces; `None` disables.
    pub trace_interval: Option<SimDuration>,
    /// Egress `(node, port, prio)` triples to sample each trace tick.
    pub sample_ports: Vec<(NodeId, u16, u8)>,
    /// InfiniBand VL arbitration weights (paper §4.5: "each VL is
    /// configured with a weight ... the proportion of link bandwidth that
    /// the VL is allowed to use"). `None` keeps strict priority across
    /// VLs. When set, the feedback VL keeps absolute priority and the
    /// remaining VLs share the link by weighted round-robin; the entry for
    /// the feedback VL is ignored. Length must equal `num_prios`.
    pub vl_weights: Option<Vec<u32>>,
    /// Per-priority detector overrides (e.g. per-VL `max(T_on)` scaled by
    /// the VL's bandwidth share, §4.5). Unlisted priorities use
    /// [`detector`](SimConfig::detector).
    pub detector_overrides: Vec<(u8, DetectorKind)>,
    /// Retransmission timeout for reliable (lossy-mode) transport.
    pub rto: SimDuration,
    /// In-band network telemetry: switches append per-hop (queue, txBytes,
    /// timestamp, rate) records to data packets and receivers echo them in
    /// ACKs — the substrate HPCC needs (§7 related work).
    pub int_telemetry: bool,
    /// Receive-processing rate of hosts. `None` (default) models an
    /// infinitely fast receiver; `Some(rate)` models a slow receiver whose
    /// backlog exerts hop-by-hop back-pressure on its ToR — the classic
    /// edge-originated pause-storm pathology of production RoCE fabrics.
    pub host_rx_rate: Option<lossless_flowctl::Rate>,
    /// Observability: metrics registry + flight recorder knobs. The
    /// default level records everything; `ObsLevel::Off` compiles every
    /// instrumentation call down to an early return. Neither setting
    /// affects simulation behaviour or fingerprints.
    pub obs: lossless_obs::ObsConfig,
    /// Upper bound on retained [`MarkEvent`](crate::trace::MarkEvent)s.
    /// `None` (default) keeps every record; with a cap, excess records are
    /// dropped *and counted* (`Trace::dropped_marks`, surfaced in the
    /// metrics dump as `trace.dropped_marks`).
    pub max_marks: Option<usize>,
    /// Upper bound on retained port samples, with the same counted-drop
    /// semantics (`Trace::dropped_port_samples`). `None` by default: the
    /// run fingerprint includes the sample count, so capping is opt-in.
    pub max_port_samples: Option<usize>,
    /// Which event-queue core drives the run. Both cores produce the
    /// exact same dispatch order (see [`QueueKind`]), so this affects
    /// throughput only, never traces or fingerprints.
    pub queue: QueueKind,
    /// Intra-run partition workers for the conservative-parallel
    /// executor (see `crate::par`): `0` (default) defers to the
    /// `TCD_PARTITIONS` environment variable (absent → serial), `1`
    /// forces serial, `n > 1` requests `n` workers. Any value produces
    /// bit-identical traces and fingerprints; this affects wall-clock
    /// throughput only.
    pub partitions: usize,
    /// Scheduled fault injection (link flaps, degradation, route
    /// changes). Empty by default — an empty plan schedules no events,
    /// so fault-free runs are bit-identical to builds without the
    /// subsystem.
    pub fault_plan: crate::fault::FaultPlan,
}

impl SimConfig {
    /// A CEE configuration with the paper's §3 defaults: 1000 B MTU, PFC at
    /// 320 KB/318 KB, ECN-RED detection, no feedback, 2 priorities.
    pub fn cee_baseline(end_time: SimTime) -> SimConfig {
        SimConfig {
            mtu: 1000,
            num_prios: 2,
            data_prio: 1,
            feedback_prio: 0,
            flow_control: FlowControlMode::Pfc(PfcConfig::paper_simulation()),
            detector: DetectorKind::EcnRed(RedConfig::dcqcn_40g()),
            feedback: FeedbackMode::None,
            feedback_bytes: 64,
            end_time,
            seed: 1,
            trace_interval: None,
            sample_ports: Vec::new(),
            vl_weights: None,
            detector_overrides: Vec::new(),
            rto: SimDuration::from_us(500),
            int_telemetry: false,
            host_rx_rate: None,
            obs: lossless_obs::ObsConfig::default(),
            max_marks: None,
            max_port_samples: None,
            queue: QueueKind::Auto,
            partitions: 0,
            fault_plan: crate::fault::FaultPlan::default(),
        }
    }

    /// An InfiniBand configuration with the paper's §3 defaults: 280 KB
    /// per-port ingress buffers, FECN at 50 KB, no feedback.
    pub fn ib_baseline(end_time: SimTime) -> SimConfig {
        SimConfig {
            mtu: 1000,
            num_prios: 2,
            data_prio: 1,
            feedback_prio: 0,
            flow_control: FlowControlMode::Cbfc(CbfcConfig::paper_simulation()),
            detector: DetectorKind::IbFecn {
                threshold_bytes: 50 * 1024,
            },
            feedback: FeedbackMode::None,
            feedback_bytes: 64,
            end_time,
            seed: 1,
            trace_interval: None,
            sample_ports: Vec::new(),
            vl_weights: None,
            detector_overrides: Vec::new(),
            rto: SimDuration::from_us(500),
            int_telemetry: false,
            host_rx_rate: None,
            obs: lossless_obs::ObsConfig::default(),
            max_marks: None,
            max_port_samples: None,
            queue: QueueKind::Auto,
            partitions: 0,
            fault_plan: crate::fault::FaultPlan::default(),
        }
    }

    /// The detector for a given priority, honouring the overrides.
    pub fn detector_for(&self, prio: u8) -> &DetectorKind {
        self.detector_overrides
            .iter()
            .find(|(p, _)| *p == prio)
            .map(|(_, d)| d)
            .unwrap_or(&self.detector)
    }

    /// Whether this is an InfiniBand (CBFC) configuration.
    pub fn is_ib(&self) -> bool {
        matches!(self.flow_control, FlowControlMode::Cbfc(_))
    }

    /// Whether this is the lossy (drop-tail) configuration.
    pub fn is_lossy(&self) -> bool {
        matches!(self.flow_control, FlowControlMode::Lossy { .. })
    }

    /// A traditional lossy Ethernet configuration: drop-tail switches with
    /// `buffer_bytes` per egress queue, per-packet ACKs and go-back-N
    /// retransmission at the hosts (RTO per
    /// [`SimConfig::rto`]).
    pub fn lossy_baseline(end_time: SimTime, buffer_bytes: u64) -> SimConfig {
        let mut cfg = SimConfig::cee_baseline(end_time);
        cfg.flow_control = FlowControlMode::Lossy {
            egress_buffer_bytes: buffer_bytes,
        };
        cfg.feedback = FeedbackMode::AckPerPacket;
        cfg.detector = DetectorKind::None;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cee = SimConfig::cee_baseline(SimTime::from_ms(3));
        assert!(!cee.is_ib());
        assert!(cee.data_prio < cee.num_prios);
        assert!(cee.feedback_prio < cee.num_prios);
        let ib = SimConfig::ib_baseline(SimTime::from_ms(5));
        assert!(ib.is_ib());
    }

    #[test]
    fn detector_factory_builds_all_kinds() {
        let ctx = DequeueContext {
            now: SimTime::from_us(1),
            queue_bytes: 10_000_000,
            delayed_by_fc: false,
        };
        let mut null = DetectorKind::None.build(1);
        assert_eq!(null.on_dequeue(&ctx), None);
        let mut red = DetectorKind::EcnRed(RedConfig::dcqcn_40g()).build(1);
        assert_eq!(red.on_dequeue(&ctx), Some(CodePoint::CE));
        let mut fecn = DetectorKind::IbFecn {
            threshold_bytes: 50 * 1024,
        }
        .build(1);
        assert_eq!(fecn.on_dequeue(&ctx), Some(CodePoint::CE));
        let mut tcd = DetectorKind::Tcd(TcdConfig::new(
            SimDuration::from_us(30),
            200 * 1024,
            10 * 1024,
        ))
        .build(1);
        assert_eq!(tcd.on_dequeue(&ctx), Some(CodePoint::CE));
    }

    #[test]
    fn null_detector_is_inert() {
        let mut n = NullDetector;
        n.on_pause(SimTime::ZERO);
        n.on_resume(SimTime::ZERO);
        assert_eq!(n.timer_deadline(), None);
        assert_eq!(n.port_state(), TernaryState::NonCongestion);
    }
}
