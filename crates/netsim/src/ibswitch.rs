//! The InfiniBand switch: virtual cut-through, input buffering with virtual
//! output queues (VoQ), per-VL credit-based flow control, and a congestion
//! detector on every egress (port, VL) — the architecture the paper's IB
//! simulations use (§5.2.2).
//!
//! Each input port owns a receive buffer (paper: 280 KB) organised as VoQs
//! per (VL, output port). The buffer is paid for with CBFC credits: the
//! upstream node may only send while it holds credits, and this switch
//! advertises fresh credits (FCCL) every `T_c` as packets leave the input
//! buffer. Each egress arbitrates round-robin over the input VoQs destined
//! to it; a head packet that cannot leave for lack of *downstream* credits
//! is flagged `delayed_by_fc` — the IB CC FECN "victim" signal — and the
//! egress registers an OFF period for the TCD detector.

use crate::config::FlowControlMode;
use crate::event::{Event, TxGate};
use crate::packet::{Packet, PacketKind};
use crate::sim::Ctx;
use crate::topology::NodeId;
use lossless_flowctl::cbfc::{CbfcReceiver, CbfcSender};
use lossless_flowctl::units::FCCL_FRAME_BYTES;
use lossless_flowctl::SimTime;
use std::collections::VecDeque;
use tcd_core::detector::{CongestionDetector, DequeueContext};
use tcd_core::TernaryState;

/// One port of an InfiniBand switch.
pub struct IbPort {
    /// Ingress: credit receivers per VL (this port's receive buffer).
    rx: Vec<CbfcReceiver>,
    /// Ingress: VoQs `[vl][out_port]` holding packets that arrived here.
    voq: Vec<Vec<VecDeque<Box<Packet>>>>,
    /// Egress: credit senders per VL (towards this port's peer).
    tx: Vec<CbfcSender>,
    /// Egress: wanted to send but lacked credits, per VL.
    blocked: Vec<bool>,
    /// Egress: number of times `blocked` transitioned to true, per VL.
    /// Packets stamp this at enqueue; an advance during their wait marks
    /// them "delayed due to lack of credits" (the FECN victim input).
    block_epochs: Vec<u64>,
    /// Egress: link-local FCCL frames to emit.
    ctrl: VecDeque<Box<Packet>>,
    /// Egress: detector per VL.
    det: Vec<Box<dyn CongestionDetector>>,
    /// Earliest pending detector-timer event per VL.
    det_timer: Vec<Option<SimTime>>,
    /// Last detector state observed per VL, used to detect Fig.-6
    /// transitions for the observability layer without polling.
    last_state: Vec<TernaryState>,
    /// Egress: round-robin pointer over input ports, per VL.
    rr: Vec<usize>,
    /// Egress: remaining weighted-round-robin quantum per VL, in bytes
    /// (only used when the switch has VL weights configured).
    wrr_deficit: Vec<i64>,
    /// Egress: WRR pointer over VLs.
    wrr_next: usize,
    /// Egress: total backlog destined to this output, per VL (sum over all
    /// input VoQs) — the "output queue length" of the IB CC rule.
    out_backlog: Vec<u64>,
    gate: TxGate,
    /// Cumulative data bytes transmitted (trace sampling).
    pub tx_bytes: u64,
}

impl IbPort {
    /// Output backlog in bytes for `vl` (the IB "output queue length").
    // simlint: allow(hot-path-panic) -- vl < num_vls is validated at config build; out_backlog is sized num_vls at construction
    pub fn queue_bytes(&self, vl: u8) -> u64 {
        self.out_backlog[vl as usize]
    }

    /// Whether this egress is currently credit-blocked for `vl`.
    // simlint: allow(hot-path-panic) -- vl < num_vls is validated at config build; blocked is sized num_vls at construction
    pub fn is_blocked(&self, vl: u8) -> bool {
        self.blocked[vl as usize]
    }

    /// The detector's current belief for `vl`.
    // simlint: allow(hot-path-panic) -- vl < num_vls is validated at config build; det is sized num_vls at construction
    pub fn port_state(&self, vl: u8) -> TernaryState {
        self.det[vl as usize].port_state()
    }

    /// Ingress buffer occupancy high-water mark in blocks, summed over VLs.
    pub fn max_rx_occupied_blocks(&self) -> u64 {
        self.rx.iter().map(|r| r.max_occupied()).sum()
    }

    /// Whether this port's ingress is currently credit-constraining its
    /// upstream for `vl`: the free space is below what a sender at
    /// `line_rate` would need per credit-update period.
    pub fn is_constraining_upstream(&self, vl: u8, line_rate: lossless_flowctl::Rate) -> bool {
        let rx = &self.rx[vl as usize];
        let line_blocks =
            lossless_flowctl::units::bytes_to_blocks(line_rate.bytes_in(rx.update_period()));
        rx.free_blocks() < line_blocks
    }
}

/// An input-buffered VoQ InfiniBand switch.
pub struct IbSwitch {
    id: NodeId,
    ports: Vec<IbPort>,
    /// VL arbitration weights (paper §4.5); `None` = strict priority.
    vl_weights: Option<Vec<u32>>,
    /// The VL with absolute priority (feedback), exempt from WRR.
    feedback_vl: u8,
}

impl IbSwitch {
    /// Build a switch with one [`IbPort`] per topology port. `mk_det`
    /// builds the detector for each `(port, vl)`.
    pub fn new(
        id: NodeId,
        n_ports: usize,
        num_vls: u8,
        fc: &FlowControlMode,
        vl_weights: Option<Vec<u32>>,
        feedback_vl: u8,
        mut mk_det: impl FnMut(u16, u8) -> Box<dyn CongestionDetector>,
    ) -> IbSwitch {
        let FlowControlMode::Cbfc(cbfc_cfg) = fc else {
            panic!("IbSwitch requires CBFC flow control");
        };
        if let Some(w) = &vl_weights {
            assert_eq!(w.len(), num_vls as usize, "one weight per VL");
            assert!(w.iter().any(|&x| x > 0), "at least one positive VL weight");
        }
        let nvl = num_vls as usize;
        let ports = (0..n_ports)
            .map(|p| {
                let det: Vec<Box<dyn CongestionDetector>> =
                    (0..nvl).map(|vl| mk_det(p as u16, vl as u8)).collect();
                let last_state = det.iter().map(|d| d.port_state()).collect();
                IbPort {
                    rx: (0..nvl).map(|_| CbfcReceiver::new(*cbfc_cfg)).collect(),
                    voq: (0..nvl)
                        .map(|_| (0..n_ports).map(|_| VecDeque::new()).collect())
                        .collect(),
                    tx: (0..nvl).map(|_| CbfcSender::new(*cbfc_cfg)).collect(),
                    blocked: vec![false; nvl],
                    block_epochs: vec![0; nvl],
                    ctrl: VecDeque::new(),
                    det,
                    det_timer: vec![None; nvl],
                    last_state,
                    rr: vec![0; nvl],
                    wrr_deficit: vec![0; nvl],
                    wrr_next: 0,
                    out_backlog: vec![0; nvl],
                    gate: TxGate::new(),
                    tx_bytes: 0,
                }
            })
            .collect();
        IbSwitch {
            id,
            ports,
            vl_weights,
            feedback_vl,
        }
    }

    /// Pick the order in which VLs are offered the transmitter: the
    /// feedback VL always first; the data VLs in strict index order
    /// (default) or weighted round-robin (per-VL byte quanta proportional
    /// to their weights, refilled when all eligible quanta are exhausted).
    // simlint: allow(hot-path-panic, hot-path-alloc) -- port echoes back from this switch's events; VL indices scan 0..nvl; weights length asserted == num_vls in new(); the order list is at most nvl entries per dequeue
    fn vl_order(&mut self, port: u16, mtu: u64) -> Vec<usize> {
        let nvl = self.ports[port as usize].out_backlog.len();
        let fb = self.feedback_vl as usize;
        let Some(weights) = self.vl_weights.clone() else {
            return (0..nvl).collect();
        };
        let p = &mut self.ports[port as usize];
        let mut order = vec![fb];
        // Data VLs with backlog and remaining quantum, starting from the
        // WRR pointer.
        let data_vls: Vec<usize> = (0..nvl).filter(|&v| v != fb).collect();
        let eligible = |p: &IbPort, v: usize| p.out_backlog[v] > 0;
        let quantum_left = |p: &IbPort, v: usize| p.wrr_deficit[v] > 0;
        // Refill when no backlogged VL has quantum left.
        if !data_vls
            .iter()
            .any(|&v| eligible(p, v) && quantum_left(p, v))
        {
            for &v in &data_vls {
                let w = weights[v] as i64;
                p.wrr_deficit[v] = w * mtu as i64;
            }
        }
        let start = p.wrr_next;
        let n = data_vls.len().max(1);
        for i in 0..data_vls.len() {
            let v = data_vls[(start + i) % n];
            if quantum_left(p, v) {
                order.push(v);
            }
        }
        // Fall back to any remaining data VLs so the link never idles
        // while work exists.
        for &v in &data_vls {
            if !order.contains(&v) {
                order.push(v);
            }
        }
        order
    }

    /// Charge a WRR transmission to `vl`'s quantum and advance the pointer.
    // simlint: allow(hot-path-panic) -- vl comes from vl_order, which only yields indices in 0..num_vls
    fn wrr_charge(&mut self, port: u16, vl: usize, bytes: u64) {
        if self.vl_weights.is_none() || vl == self.feedback_vl as usize {
            return;
        }
        let nvl = self.ports[port as usize].out_backlog.len();
        let p = &mut self.ports[port as usize];
        p.wrr_deficit[vl] -= bytes as i64;
        if p.wrr_deficit[vl] <= 0 {
            // Move on to the next data VL.
            let data_count = nvl.saturating_sub(1).max(1);
            p.wrr_next = (p.wrr_next + 1) % data_count;
        }
    }

    /// Access a port (for traces and tests).
    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    pub fn port(&self, p: u16) -> &IbPort {
        &self.ports[p as usize]
    }

    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    fn kick(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        // A downed link transmits nothing; on_link_state re-kicks on
        // recovery so held VoQs (and FCCL frames) drain then.
        if !ctx.links.is_up(self.id, port) {
            return;
        }
        let gate = &mut self.ports[port as usize].gate;
        if let Some(at) = gate.want(ctx.now) {
            ctx.q.schedule(
                at,
                Event::PortTx {
                    node: self.id,
                    port,
                },
            );
            gate.note_scheduled(at);
        }
    }

    /// Report a detector state change for `(port, vl)` to the
    /// observability layer (cheap two-byte compare when nothing changed).
    // simlint: allow(hot-path-panic) -- (port, vl) validated by the callers' invariants; vecs sized at construction
    fn obs_note_state(&mut self, ctx: &mut Ctx<'_>, port: u16, vl: u8) {
        let p = &mut self.ports[port as usize];
        let cur = p.det[vl as usize].port_state();
        let prev = p.last_state[vl as usize];
        if cur != prev {
            p.last_state[vl as usize] = cur;
            ctx.obs.transition(ctx.now, self.id.0, port, vl, prev, cur);
        }
    }

    // simlint: allow(hot-path-panic) -- (port, vl) pairs originate from this switch's own event scheduling; vecs sized at construction
    fn sync_det_timer(&mut self, ctx: &mut Ctx<'_>, port: u16, vl: u8) {
        let p = &mut self.ports[port as usize];
        let want = p.det[vl as usize].timer_deadline();
        let pend = &mut p.det_timer[vl as usize];
        if let Some(dl) = want {
            if pend.is_none_or(|t| dl < t) {
                ctx.q.schedule(
                    dl,
                    Event::DetectorTimer {
                        node: self.id,
                        port,
                        prio: vl,
                    },
                );
                *pend = Some(dl);
            }
        }
    }

    /// A detector trend timer fired.
    // simlint: allow(hot-path-panic) -- (port, vl) echo back from events this switch scheduled; vecs sized at construction
    pub fn on_detector_timer(&mut self, ctx: &mut Ctx<'_>, port: u16, vl: u8) {
        // Back-pressure signal: some input holding traffic for this egress
        // is credit-constrained by us. Under CBFC an input in steady state
        // equilibrates with free space equal to the upstream's granted
        // share per credit period, so "constrained" means the free space
        // is below what a line-rate sender would need per period
        // (C · T_c): the upstream is being held under its line rate.
        let backpressured = self.ports.iter().enumerate().any(|(i, ip)| {
            if ip.voq[vl as usize][port as usize].is_empty() {
                return false;
            }
            let rx = &ip.rx[vl as usize];
            let line = ctx.topo.link(self.id, i as u16).rate;
            let line_blocks =
                lossless_flowctl::units::bytes_to_blocks(line.bytes_in(rx.update_period()));
            rx.free_blocks() < line_blocks
        });
        {
            let p = &mut self.ports[port as usize];
            let pend = &mut p.det_timer[vl as usize];
            if *pend == Some(ctx.now) {
                *pend = None;
            }
            if p.det[vl as usize].timer_deadline() == Some(ctx.now) {
                let q = p.out_backlog[vl as usize];
                p.det[vl as usize].on_timer(ctx.now, q, backpressured);
            }
        }
        self.obs_note_state(ctx, port, vl);
        #[cfg(feature = "audit")]
        self.audit_note_state(ctx, port, vl);
        self.sync_det_timer(ctx, port, vl);
    }

    /// Periodic credit update for `(port, vl)`: advertise the input
    /// buffer's FCCL upstream and reschedule.
    // simlint: allow(hot-path-panic) -- (port, vl) echo back from FcclTick events this switch scheduled; vecs sized at construction
    pub fn on_fccl_tick(&mut self, ctx: &mut Ctx<'_>, port: u16, vl: u8) {
        let p = &mut self.ports[port as usize];
        let period = p.rx[vl as usize].update_period();
        // A dark port emits no credit updates (nothing crosses a downed
        // link), but the tick train keeps running so advertisement
        // resumes on recovery.
        if ctx.links.is_up(self.id, port) {
            let fccl = p.rx[vl as usize].fccl();
            let frame = ctx.pool.boxed(Packet::link_local(
                PacketKind::Fccl { vl, fccl },
                FCCL_FRAME_BYTES,
                0,
            ));
            p.ctrl.push_back(frame);
            ctx.obs.fccl_tx(ctx.now, self.id.0, port, vl, fccl);
            self.kick(ctx, port);
        }
        ctx.q.schedule(
            ctx.now + period,
            Event::FcclTick {
                node: self.id,
                port,
                vl,
            },
        );
    }

    /// A packet finished arriving through `in_port`.
    // simlint: allow(hot-path-panic) -- in_port/out come from the topology and routing table, both sized with the ports vec; vl validated at config build; the one unwrap reads back the element push_back just appended
    pub fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: u16, mut pkt: Box<Packet>) {
        if let PacketKind::Fccl { vl, fccl } = pkt.kind {
            // Fresh credits for our egress on this link.
            let p = &mut self.ports[in_port as usize];
            p.tx[vl as usize].on_fccl(fccl);
            if p.blocked[vl as usize] && p.tx[vl as usize].available_blocks() > 0 {
                p.blocked[vl as usize] = false;
                p.det[vl as usize].on_resume(ctx.now);
                ctx.obs.credit_stall(ctx.now, self.id.0, in_port, vl, false);
                self.obs_note_state(ctx, in_port, vl);
                #[cfg(feature = "audit")]
                self.audit_note_state(ctx, in_port, vl);
                self.sync_det_timer(ctx, in_port, vl);
                self.kick(ctx, in_port);
            }
            ctx.pool.recycle(pkt);
            return;
        }
        if pkt.kind.is_link_local() {
            // A PAUSE frame can only reach an InfiniBand switch through a
            // wiring bug: report it (audited builds), assert (plain debug
            // builds), and consume the frame instead of mis-forwarding it.
            #[cfg(feature = "audit")]
            ctx.audit.misrouted_control_frame(
                ctx.now,
                self.id,
                in_port,
                "PAUSE at an InfiniBand switch",
            );
            #[cfg(not(feature = "audit"))]
            debug_assert!(false, "PAUSE frame at an InfiniBand switch");
            ctx.pool.recycle(pkt);
            return;
        }

        // Buffer at this input; route to a VoQ.
        let vl = pkt.prio as usize;
        let out = ctx.routing.out_port(self.id, pkt.dst, pkt.flow);
        pkt.in_port = in_port;
        pkt.enq_epoch = self.ports[out as usize].block_epochs[vl];
        {
            let p = &mut self.ports[in_port as usize];
            p.rx[vl].on_packet_received(pkt.size);
            p.voq[vl][out as usize].push_back(pkt);
        }
        let size = self.ports[in_port as usize].voq[vl][out as usize]
            .back()
            .unwrap()
            .size;
        self.ports[out as usize].out_backlog[vl] += size;
        self.kick(ctx, out);
    }

    /// The egress transmitter of `port` is (possibly) free.
    // simlint: allow(hot-path-panic) -- port echoes back from this switch's events; VL/input indices come from vl_order and 0..n_ports scans; head unwraps follow an is_empty check on the same VoQ with no intervening mutation
    pub fn port_tx(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        if !self.ports[port as usize].gate.on_event(ctx.now) {
            return;
        }
        // Checked only after the gate consumed the event — returning
        // earlier would leave the gate believing a PortTx is still
        // pending and the port would never restart after recovery.
        if !ctx.links.is_up(self.id, port) {
            return;
        }

        // FCCL frames preempt data and are not credit-gated (real IB
        // reserves dedicated credits for flow-control packets).
        if let Some(frame) = self.ports[port as usize].ctrl.pop_front() {
            self.transmit(ctx, port, frame);
            return;
        }

        // VL order: strict priority, or WRR when weights are configured
        // (§4.5); round-robin across input ports within a VL.
        let vl_order = self.vl_order(port, ctx.cfg.mtu);
        let n_ports = self.ports.len();
        for vl in vl_order {
            if self.ports[port as usize].out_backlog[vl] == 0 {
                continue;
            }
            // Find the next input holding a head packet for (vl, port).
            let start = self.ports[port as usize].rr[vl];
            let mut found: Option<usize> = None;
            for step in 0..n_ports {
                let i = (start + step) % n_ports;
                if !self.ports[i].voq[vl][port as usize].is_empty() {
                    found = Some(i);
                    break;
                }
            }
            let Some(i) = found else {
                // A positive backlog counter with every VoQ empty means the
                // accounting diverged: structured violation instead of an
                // opaque panic.
                #[cfg(feature = "audit")]
                ctx.audit.empty_dequeue(
                    ctx.now,
                    self.id,
                    port,
                    vl as u8,
                    self.ports[port as usize].out_backlog[vl],
                );
                #[cfg(not(feature = "audit"))]
                debug_assert!(false, "backlog without a VoQ head");
                continue;
            };
            let head_size = self.ports[i].voq[vl][port as usize].front().unwrap().size;
            if !self.ports[port as usize].tx[vl].can_send(head_size) {
                // Out of credits: the head is a flow-control victim and
                // this egress enters an OFF period.
                self.ports[i].voq[vl][port as usize]
                    .front_mut()
                    .unwrap()
                    .delayed_by_fc = true;
                let p = &mut self.ports[port as usize];
                p.tx[vl].note_credit_stall();
                if !p.blocked[vl] {
                    p.blocked[vl] = true;
                    p.block_epochs[vl] += 1;
                    p.det[vl].on_pause(ctx.now);
                    ctx.obs
                        .credit_stall(ctx.now, self.id.0, port, vl as u8, true);
                    self.obs_note_state(ctx, port, vl as u8);
                    #[cfg(feature = "audit")]
                    self.audit_note_state(ctx, port, vl as u8);
                }
                continue; // other VLs may still have credits
            }

            // Dequeue. The VoQ was verified non-empty when `found` was
            // set; an empty pop here is corrupted accounting, reported as
            // a structured violation rather than an `unwrap` panic.
            let Some(mut pkt) = self.ports[i].voq[vl][port as usize].pop_front() else {
                #[cfg(feature = "audit")]
                ctx.audit.empty_dequeue(
                    ctx.now,
                    self.id,
                    port,
                    vl as u8,
                    self.ports[port as usize].out_backlog[vl],
                );
                #[cfg(not(feature = "audit"))]
                debug_assert!(false, "VoQ emptied between scan and dequeue");
                continue;
            };
            self.ports[i].rx[vl].on_buffer_freed(pkt.size);
            let q_incl = self.ports[port as usize].out_backlog[vl];
            {
                let p = &mut self.ports[port as usize];
                p.out_backlog[vl] -= pkt.size;
                p.rr[vl] = (i + 1) % n_ports;
                p.tx[vl].on_send(pkt.size);
            }

            if pkt.is_data() && pkt.prio == ctx.cfg.data_prio {
                // "Delayed due to lack of credits": the packet was at the
                // head during a stall, or the egress stalled at any point
                // while it waited (the block epoch advanced).
                let delayed =
                    pkt.delayed_by_fc || self.ports[port as usize].block_epochs[vl] > pkt.enq_epoch;
                let dctx = DequeueContext {
                    now: ctx.now,
                    queue_bytes: q_incl,
                    delayed_by_fc: delayed,
                };
                let decision = self.ports[port as usize].det[vl].on_dequeue(&dctx);
                if let Some(mark) = decision {
                    pkt.code = pkt.code.apply(mark);
                    ctx.trace.on_mark(ctx.now, self.id, port, pkt.flow, mark);
                    ctx.obs
                        .mark(ctx.now, self.id.0, port, vl as u8, mark, q_incl);
                    #[cfg(feature = "audit")]
                    ctx.audit.note_mark(
                        ctx.now,
                        self.id,
                        port,
                        vl as u8,
                        mark,
                        self.ports[port as usize].det[vl].port_state(),
                    );
                }
                self.obs_note_state(ctx, port, vl as u8);
                #[cfg(feature = "audit")]
                self.audit_note_state(ctx, port, vl as u8);
                self.sync_det_timer(ctx, port, vl as u8);
            }

            pkt.in_port = u16::MAX;
            pkt.delayed_by_fc = false;
            ctx.trace.forwarded_pkts += 1;
            self.ports[port as usize].tx_bytes += pkt.size;
            self.wrr_charge(port, vl, pkt.size);
            self.transmit(ctx, port, pkt);
            return;
        }
        // Nothing sendable: idle until a kick (enqueue or FCCL arrival).
    }

    // simlint: allow(hot-path-panic) -- port indices come from the topology, which sized the ports vec
    fn transmit(&mut self, ctx: &mut Ctx<'_>, port: u16, pkt: Box<Packet>) {
        let link = *ctx.topo.link(self.id, port);
        // Latent-assumption tripwire: reaching here on a downed link
        // means a caller skipped the link gate. Surface it as a
        // structured violation (audited builds) or assert (plain debug
        // builds), then transmit anyway — the packet stays in flight, so
        // conservation holds either way.
        if !ctx.links.is_up(self.id, port) {
            #[cfg(feature = "audit")]
            ctx.audit.report(crate::audit::Violation {
                family: crate::audit::InvariantFamily::ProtocolLegality,
                t: ctx.now,
                node: self.id,
                port,
                prio: u8::MAX,
                message: "transmit scheduled on a downed link".into(),
            });
            #[cfg(not(feature = "audit"))]
            debug_assert!(false, "transmit scheduled on a downed link at port {port}");
        }
        let rate = ctx.links.rate(self.id, port, link.rate);
        let ser = rate.serialize_time(pkt.size);
        ctx.q.schedule(
            ctx.now + ser + link.delay,
            Event::PacketArrival {
                node: link.peer,
                in_port: link.peer_port,
                pkt,
            },
        );
        let gate = &mut self.ports[port as usize].gate;
        let free = gate.begin_tx(ctx.now, ser);
        ctx.q.schedule(
            free,
            Event::PortTx {
                node: self.id,
                port,
            },
        );
        gate.note_scheduled(free);
    }

    /// The link on `port` changed state (fault injection). IB is always
    /// lossless: on failure every VoQ holds its contents and the credit
    /// machinery simply stops advertising; on recovery the next FCCL
    /// tick re-arms the peer and the kick restarts the transmitter.
    pub fn on_link_state(&mut self, ctx: &mut Ctx<'_>, port: u16, up: bool) {
        if up {
            self.kick(ctx, port);
        }
    }

    /// Blocked channels for the runtime deadlock watchdog: egress ports
    /// with backlog they are not allowed to transmit (credit-blocked on
    /// a VL with queued bytes). Downed links are excluded — they resolve
    /// on recovery and are not a wait-for dependency.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_blocked_channels(&self) -> Vec<u16> {
        let mut v = Vec::new();
        for (pi, p) in self.ports.iter().enumerate() {
            let blocked = (0..p.blocked.len()).any(|vl| p.blocked[vl] && p.out_backlog[vl] > 0);
            if blocked {
                v.push(pi as u16);
            }
        }
        v
    }

    /// Wait-for successors of the upstream channel feeding `ingress`:
    /// the upstream is out of credits because this ingress buffer cannot
    /// drain, and the bytes occupying it sit in VoQs — indexed by
    /// ingress structurally — in front of credit-blocked egresses.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_wait_successors(&self, ingress: u16) -> Vec<u16> {
        let mut v = Vec::new();
        let ip = &self.ports[ingress as usize];
        for vl in 0..ip.voq.len() {
            for (out, q) in ip.voq[vl].iter().enumerate() {
                if !q.is_empty() && self.ports[out].blocked[vl] {
                    v.push(out as u16);
                }
            }
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Record the detector's current belief for `(port, vl)` with the
    /// auditor, which validates the transition against Fig. 6.
    #[cfg(feature = "audit")]
    fn audit_note_state(&self, ctx: &mut Ctx<'_>, port: u16, vl: u8) {
        let p = &self.ports[port as usize];
        ctx.audit.note_state(
            ctx.now,
            self.id,
            port,
            vl,
            p.det[vl as usize].port_state(),
            p.block_epochs[vl as usize],
        );
    }

    /// Packets currently buffered in this switch (control + all VoQs).
    #[cfg(feature = "audit")]
    pub(crate) fn audit_queued_packets(&self) -> usize {
        self.ports
            .iter()
            .map(|p| {
                p.ctrl.len()
                    + p.voq
                        .iter()
                        .flat_map(|per_out| per_out.iter())
                        .map(|q| q.len())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Checkpoint: VoQ contents vs. credit-receiver occupancy, receive
    /// buffers within capacity, senders within their advertised limit, and
    /// egress backlog counters vs. the VoQs feeding them.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_check(&self, a: &mut crate::audit::Audit, now: SimTime) {
        use crate::audit::{InvariantFamily, Violation};
        use lossless_flowctl::units::bytes_to_blocks;

        let n_ports = self.ports.len();
        for (pi, p) in self.ports.iter().enumerate() {
            for vl in 0..p.rx.len() {
                // Ingress: the receive buffer is exactly the VoQ contents.
                let blocks: u64 = p.voq[vl]
                    .iter()
                    .flat_map(|q| q.iter())
                    .map(|k| bytes_to_blocks(k.size))
                    .sum();
                let occ = p.rx[vl].occupied_blocks();
                if occ != blocks {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: pi as u16,
                        prio: vl as u8,
                        message: format!(
                            "ingress occupancy {occ} blocks != VoQ contents {blocks} blocks"
                        ),
                    });
                }
                let cap = p.rx[vl].capacity_blocks();
                if occ > cap {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: pi as u16,
                        prio: vl as u8,
                        message: format!("receive buffer holds {occ} blocks, capacity is {cap}"),
                    });
                }
                // Egress: a sender must never have consumed past its limit.
                let fctbs = p.tx[vl].fctbs();
                let fccl = p.tx[vl].fccl_limit();
                if fctbs > fccl {
                    a.report(Violation {
                        family: InvariantFamily::ProtocolLegality,
                        t: now,
                        node: self.id,
                        port: pi as u16,
                        prio: vl as u8,
                        message: format!("FCTBS {fctbs} exceeds the advertised FCCL {fccl}"),
                    });
                }
                // Egress: backlog counter vs. the VoQs that feed it.
                let fed: u64 = (0..n_ports)
                    .map(|ip| {
                        self.ports[ip].voq[vl][pi]
                            .iter()
                            .map(|k| k.size)
                            .sum::<u64>()
                    })
                    .sum();
                if fed != p.out_backlog[vl] {
                    a.report(Violation {
                        family: InvariantFamily::BufferAccounting,
                        t: now,
                        node: self.id,
                        port: pi as u16,
                        prio: vl as u8,
                        message: format!(
                            "egress backlog counter {} != queued bytes {fed}",
                            p.out_backlog[vl]
                        ),
                    });
                }
            }
        }
    }

    /// Sender-side credit state towards `port`'s peer: `(FCTBS, FCCL)`.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_cbfc_tx(&self, port: u16, vl: u8) -> (u64, u64) {
        let tx = &self.ports[port as usize].tx[vl as usize];
        (tx.fctbs(), tx.fccl_limit())
    }

    /// Receiver-side credit state at `port`: `(ABR, occupied, capacity)`.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_cbfc_rx(&self, port: u16, vl: u8) -> (u64, u64, u64) {
        let rx = &self.ports[port as usize].rx[vl as usize];
        (rx.abr(), rx.occupied_blocks(), rx.capacity_blocks())
    }
}
