//! Static shortest-path routing with ECMP or deterministic D-mod-k path
//! selection.
//!
//! For every destination host a reverse BFS computes, at every node, the
//! set of egress ports that lie on a shortest path. Packet forwarding then
//! selects one candidate:
//!
//! * **ECMP** — a deterministic hash of `(flow, node)`, keeping each flow
//!   on a single path (per-flow ECMP, as deployed in CEE data centers);
//! * **D-mod-k** — the destination-modulo selection used by InfiniBand
//!   fat-trees (Gomez et al., IPDPS'07), which the paper's Fig. 17 setup
//!   prescribes.

use crate::packet::FlowId;
use crate::topology::{NodeId, Topology};
use std::collections::{BTreeSet, VecDeque};

/// A directed channel: the egress buffer of `(node, port)`, feeding the
/// link towards `topo.link(node, port).peer`. The unit of hop-by-hop
/// back-pressure, and therefore the node set of the buffer-dependency
/// graph used for static PFC-deadlock analysis.
pub type Channel = (NodeId, u16);

/// Path selection discipline among equal-cost candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSelect {
    /// Per-flow hash (CEE).
    Ecmp,
    /// Destination-modulo (InfiniBand fat-tree D-mod-k).
    DModK,
}

/// Precomputed next-hop tables for a topology.
#[derive(Debug, Clone)]
pub struct Routing {
    /// `table[node][dst_dense] -> sorted candidate egress ports`.
    table: Vec<Vec<Vec<u16>>>,
    /// Dense index per destination host (`usize::MAX` for non-hosts).
    dst_index: Vec<usize>,
    select: RouteSelect,
}

impl Routing {
    /// Build next-hop tables for all destination hosts of `topo`.
    pub fn new(topo: &Topology, select: RouteSelect) -> Self {
        let n = topo.node_count();
        let hosts = topo.hosts();
        let mut dst_index = vec![usize::MAX; n];
        for (i, h) in hosts.iter().enumerate() {
            dst_index[h.index()] = i;
        }
        let mut table = vec![vec![Vec::new(); hosts.len()]; n];

        // Reverse BFS from each destination host.
        let mut dist = vec![u32::MAX; n];
        for (di, &dst) in hosts.iter().enumerate() {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[dst.index()] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                let du = dist[u.index()];
                for l in topo.ports(u) {
                    let v = l.peer;
                    if dist[v.index()] == u32::MAX {
                        dist[v.index()] = du + 1;
                        q.push_back(v);
                    }
                }
            }
            // Candidates at each node: ports leading to a strictly closer
            // neighbour.
            for u in 0..n {
                if dist[u] == u32::MAX || dist[u] == 0 {
                    continue;
                }
                let node = NodeId(u as u32);
                let mut cands: Vec<u16> = topo
                    .ports(node)
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| dist[l.peer.index()] + 1 == dist[u])
                    .map(|(p, _)| p as u16)
                    .collect();
                cands.sort_unstable();
                table[u][di] = cands;
            }
        }

        Routing {
            table,
            dst_index,
            select,
        }
    }

    /// The egress port `node` should use to forward `flow` towards `dst`.
    ///
    /// Panics if `dst` is unreachable from `node` (a topology bug).
    // simlint: allow(hot-path-panic) -- node/dst ids index tables built for this topology; the
    // explicit assert documents the unreachable-destination bug case, and idx is % cands.len()
    pub fn out_port(&self, node: NodeId, dst: NodeId, flow: FlowId) -> u16 {
        let di = self.dst_index[dst.index()];
        debug_assert!(di != usize::MAX, "destination {dst:?} is not a host");
        let cands = &self.table[node.index()][di];
        assert!(
            !cands.is_empty(),
            "no route from node {:?} to host {:?}",
            node,
            dst
        );
        if cands.len() == 1 {
            return cands[0];
        }
        let idx = match self.select {
            RouteSelect::Ecmp => {
                // SplitMix64 over (flow, node) — deterministic and
                // well-mixed so parallel flows spread across paths.
                let mut x = ((flow.0 as u64) << 32) ^ node.0 as u64 ^ 0x9E37_79B9_7F4A_7C15;
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                (x % cands.len() as u64) as usize
            }
            RouteSelect::DModK => di % cands.len(),
        };
        cands[idx]
    }

    /// All equal-cost candidate ports from `node` towards `dst` (tests and
    /// diagnostics).
    pub fn candidates(&self, node: NodeId, dst: NodeId) -> &[u16] {
        &self.table[node.index()][self.dst_index[dst.index()]]
    }

    /// The path a given flow takes from `src` to `dst`, as a list of
    /// `(node, egress port)` hops. Useful for assertions in tests.
    pub fn path(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
    ) -> Vec<(NodeId, u16)> {
        let mut hops = Vec::new();
        let mut cur = src;
        while cur != dst {
            let p = self.out_port(cur, dst, flow);
            hops.push((cur, p));
            cur = topo.link(cur, p).peer;
            assert!(hops.len() <= topo.node_count(), "routing loop detected");
        }
        hops
    }

    /// The selection discipline.
    pub fn select(&self) -> RouteSelect {
        self.select
    }

    /// Pin the route towards `path.last()` along the explicit node
    /// sequence `path` (`[src, hop, .., dst]`): at every node on the
    /// path, the candidate set for that destination collapses to the
    /// single port facing the next hop. Other destinations are
    /// untouched, so several pinned paths (one per destination) compose.
    /// This is how fault-injected route changes (and the deadlock
    /// scenarios' deliberately cyclic routes) are installed at runtime.
    ///
    /// Panics if consecutive path nodes are not directly linked or the
    /// path's last node is not a host.
    // simlint: allow(hot-path-panic, hot-path-alloc) -- validated statically by topolint's
    // fault-route checks before any plan runs; the panics are the documented contract, and the
    // single-port vec replaces a candidate set only when a fault event rewires routing
    pub fn apply_path(&mut self, topo: &Topology, path: &[NodeId]) {
        let Some(&dst) = path.last() else { return };
        let di = self.dst_index[dst.index()];
        assert!(di != usize::MAX, "pinned path must end at a host");
        for w in path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let p = topo
                .port_towards(u, v)
                .unwrap_or_else(|| panic!("pinned path hop {u:?} -> {v:?} is not a link"));
            self.table[u.index()][di] = vec![p];
        }
    }

    /// The directed buffer-dependency relation induced by these tables
    /// (DCFIT's channel-dependency graph): channel `a = (u, p)` depends on
    /// channel `b = (v, q)` when `p` delivers into node `v` and, for some
    /// destination, both `p` at `u` and `q` at `v` are candidate next hops.
    /// Under a lossless flow control, back-pressure on `b` can then
    /// propagate to `a`; a cycle in this relation is a potential PFC/CBFC
    /// deadlock. The union over *all* candidate ports (not the concrete
    /// ECMP/D-mod-k choice) makes the analysis conservative: any selectable
    /// path is considered.
    pub fn channel_dependencies(&self, topo: &Topology) -> BTreeSet<(Channel, Channel)> {
        let mut deps = BTreeSet::new();
        let n_dsts = topo.hosts().len();
        for di in 0..n_dsts {
            for u in 0..topo.node_count() {
                let cands = &self.table[u][di];
                if cands.is_empty() {
                    continue;
                }
                let node = NodeId(u as u32);
                for &p in cands {
                    let v = topo.link(node, p).peer;
                    for &q in &self.table[v.index()][di] {
                        deps.insert(((node, p), (v, q)));
                    }
                }
            }
        }
        deps
    }
}

/// Validate that every host can reach every other host (used by builders in
/// tests).
pub fn fully_connected(topo: &Topology, routing: &Routing) -> bool {
    let hosts = topo.hosts();
    for &s in &hosts {
        for &d in &hosts {
            if s != d && routing.candidates(s, d).is_empty() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{dumbbell, fat_tree, figure2, leaf_spine, Figure2Options, NodeId};
    use lossless_flowctl::{Rate, SimDuration};

    fn r() -> Rate {
        Rate::from_gbps(40)
    }
    fn d() -> SimDuration {
        SimDuration::from_us(4)
    }

    #[test]
    fn dumbbell_routes_through_switch() {
        let db = dumbbell(r(), d());
        let rt = Routing::new(&db.topo, RouteSelect::Ecmp);
        let path = rt.path(&db.topo, db.h0, db.h1, FlowId(1));
        assert_eq!(path.len(), 2); // h0 -> sw -> h1
        assert_eq!(path[0].0, db.h0);
        assert_eq!(path[1].0, db.sw);
    }

    #[test]
    fn figure2_f1_path_traverses_p0_p1_p2_p3() {
        let f = figure2(Figure2Options::default());
        let rt = Routing::new(&f.topo, RouteSelect::Ecmp);
        let path = rt.path(&f.topo, f.s1, f.r1, FlowId(1));
        // S1 -> T0 -> T1 -> T2 -> T3 -> R1: the switch hops use exactly
        // ports P0..P3.
        assert_eq!(path.len(), 5);
        assert_eq!(&path[1..], &[f.p0, f.p1, f.p2, f.p3]);
    }

    #[test]
    fn figure2_f0_exits_at_t3_to_r0() {
        let f = figure2(Figure2Options::default());
        let rt = Routing::new(&f.topo, RouteSelect::Ecmp);
        let path = rt.path(&f.topo, f.s0, f.r0, FlowId(2));
        // F0 shares P0, P1, P2 with F1 but diverges at T3.
        assert_eq!(&path[1..4], &[f.p0, f.p1, f.p2]);
        let last = path.last().unwrap();
        assert_eq!(last.0, f.t[3]);
        assert_ne!(*last, f.p3);
    }

    #[test]
    fn fat_tree_all_pairs_reachable() {
        let ft = fat_tree(4, r(), d());
        let rt = Routing::new(&ft.topo, RouteSelect::Ecmp);
        assert!(fully_connected(&ft.topo, &rt));
    }

    #[test]
    fn fat_tree_paths_have_expected_lengths() {
        let ft = fat_tree(4, r(), d());
        let rt = Routing::new(&ft.topo, RouteSelect::Ecmp);
        // Same edge switch: 2 hops (host->edge->host).
        let p = rt.path(&ft.topo, ft.hosts[0], ft.hosts[1], FlowId(7));
        assert_eq!(p.len(), 2);
        // Different pods: host->edge->agg->core->agg->edge->host = 6 hops.
        let far = *ft.hosts.last().unwrap();
        let p = rt.path(&ft.topo, ft.hosts[0], far, FlowId(7));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn ecmp_is_per_flow_deterministic_and_spreads() {
        let ft = fat_tree(4, r(), d());
        let rt = Routing::new(&ft.topo, RouteSelect::Ecmp);
        let src = ft.hosts[0];
        let dst = *ft.hosts.last().unwrap();
        let p1 = rt.path(&ft.topo, src, dst, FlowId(1));
        assert_eq!(p1, rt.path(&ft.topo, src, dst, FlowId(1)), "deterministic");
        // Many flows should use more than one distinct path.
        let mut distinct = std::collections::BTreeSet::new();
        for f in 0..64u32 {
            distinct.insert(rt.path(&ft.topo, src, dst, FlowId(f)));
        }
        assert!(distinct.len() > 1, "ECMP should spread flows");
    }

    #[test]
    fn dmodk_ignores_flow_id() {
        let ft = fat_tree(4, r(), d());
        let rt = Routing::new(&ft.topo, RouteSelect::DModK);
        let src = ft.hosts[0];
        let dst = *ft.hosts.last().unwrap();
        let p1 = rt.path(&ft.topo, src, dst, FlowId(1));
        let p2 = rt.path(&ft.topo, src, dst, FlowId(999));
        assert_eq!(p1, p2, "D-mod-k is destination-deterministic");
    }

    #[test]
    fn dmodk_spreads_destinations() {
        let ft = fat_tree(4, r(), d());
        let rt = Routing::new(&ft.topo, RouteSelect::DModK);
        let src = ft.hosts[0];
        // Destinations in a remote pod should spread over upward ports.
        let mut first_hops = std::collections::BTreeSet::new();
        for &dst in ft.hosts.iter().skip(8) {
            let edge_port = rt.path(&ft.topo, src, dst, FlowId(0))[1].1;
            first_hops.insert(edge_port);
        }
        assert!(first_hops.len() > 1, "D-mod-k should spread destinations");
    }

    #[test]
    fn leaf_spine_routes() {
        let ls = leaf_spine(3, 2, 4, r(), d());
        let rt = Routing::new(&ls.topo, RouteSelect::Ecmp);
        assert!(fully_connected(&ls.topo, &rt));
        let p = rt.path(&ls.topo, ls.hosts[0], *ls.hosts.last().unwrap(), FlowId(3));
        assert_eq!(p.len(), 4); // host->leaf->spine->leaf->host
    }

    #[test]
    #[should_panic]
    fn unreachable_destination_panics() {
        // Two disconnected hosts.
        let mut b = crate::topology::Topology::builder();
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        let h1 = b.host("h1");
        let h2 = b.host("h2");
        b.link(h1, s1, r(), d());
        b.link(h2, s2, r(), d());
        let topo = b.build();
        let rt = Routing::new(&topo, RouteSelect::Ecmp);
        let _ = rt.out_port(h1, h2, FlowId(0));
    }

    #[test]
    fn channel_dependencies_are_link_adjacent_and_acyclic_on_trees() {
        let db = dumbbell(r(), d());
        let rt = Routing::new(&db.topo, RouteSelect::Ecmp);
        let deps = rt.channel_dependencies(&db.topo);
        assert!(!deps.is_empty());
        // Every dependency follows a physical link: the first channel's
        // link must terminate at the second channel's node.
        for &((u, p), (v, _q)) in &deps {
            assert_eq!(db.topo.link(u, p).peer, v);
        }
        // A dumbbell is a tree: no channel can transitively depend on
        // itself. Check via DFS from every channel.
        let chans: std::collections::BTreeSet<_> = deps.iter().map(|&(a, _)| a).collect();
        for &start in &chans {
            let mut stack = vec![start];
            let mut seen = std::collections::BTreeSet::new();
            while let Some(c) = stack.pop() {
                for &(a, b) in &deps {
                    if a == c && seen.insert(b) {
                        assert_ne!(b, start, "cycle through {start:?}");
                        stack.push(b);
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_are_sorted_and_minimal() {
        let ft = fat_tree(4, r(), d());
        let rt = Routing::new(&ft.topo, RouteSelect::Ecmp);
        let src_edge = ft.edges[0];
        let far_host = *ft.hosts.last().unwrap();
        let cands = rt.candidates(src_edge, far_host);
        // From an edge switch to a remote pod: both aggregation uplinks.
        assert_eq!(cands.len(), 2);
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        let _ = NodeId(0);
    }
}
