//! Packets and control frames.
//!
//! One [`Packet`] struct models every unit the simulator moves: data
//! segments, end-to-end feedback (ACK / CNP), and link-local control frames
//! (PFC PAUSE/RESUME, CBFC FCCL). Link-local frames are never routed; the
//! switch consumes them on arrival.

use crate::topology::NodeId;
use lossless_flowctl::{Rate, SimTime};
use tcd_core::CodePoint;

/// Identifier of a flow (CEE) or message/QP (InfiniBand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// One hop's in-band network telemetry record (HPCC, SIGCOMM'19 — the
/// paper's §7 switch+endpoint collaborative detection example). Appended
/// by each switch egress when INT is enabled; echoed to the sender in the
/// ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntHop {
    /// Egress queue length at dequeue, bytes.
    pub qlen_bytes: u64,
    /// Cumulative bytes transmitted by the egress.
    pub tx_bytes: u64,
    /// Timestamp of the record.
    pub ts: SimTime,
    /// Egress link capacity.
    pub rate: Rate,
}

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment of a flow.
    Data,
    /// End-to-end acknowledgement (generated per data packet when the
    /// feedback mode asks for it). Carries the data packet's wire
    /// timestamp for RTT measurement and echoes its code point.
    Ack {
        /// When the acknowledged data packet was put on the wire by the
        /// sending NIC.
        data_sent_at: SimTime,
        /// Code point observed on the acknowledged data packet.
        echo: CodePoint,
        /// Payload bytes acknowledged.
        acked_bytes: u64,
    },
    /// Congestion notification packet (DCQCN CNP / InfiniBand BECN).
    /// Carries the code point that triggered it — CE, or UE under TCD.
    Cnp {
        /// The triggering code point.
        code: CodePoint,
    },
    /// Link-local PFC PAUSE (`pause = true`) or RESUME (`pause = false`)
    /// for one priority.
    Pause {
        /// Priority class being paused/resumed.
        prio: u8,
        /// true = PAUSE, false = RESUME.
        pause: bool,
    },
    /// Link-local CBFC credit update for one virtual lane.
    Fccl {
        /// Virtual lane.
        vl: u8,
        /// The advertised Flow Control Credit Limit, in 64-byte blocks.
        fccl: u64,
    },
}

impl PacketKind {
    /// Link-local control frames are consumed by the adjacent node and
    /// never routed.
    pub fn is_link_local(&self) -> bool {
        matches!(self, PacketKind::Pause { .. } | PacketKind::Fccl { .. })
    }
}

/// A packet in flight or buffered.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Flow this packet belongs to (meaningless for link-local frames,
    /// where it is `FlowId(u32::MAX)`).
    pub flow: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host (routing key).
    pub dst: NodeId,
    /// Size on the wire, bytes.
    pub size: u64,
    /// Priority class (CEE) / virtual lane (InfiniBand).
    pub prio: u8,
    /// Payload kind.
    pub kind: PacketKind,
    /// TCD / ECN code point, updated by switches on dequeue.
    pub code: CodePoint,
    /// Byte offset of this segment within the flow (data packets).
    pub seq: u64,
    /// True when this is the flow's final data segment.
    pub last: bool,
    /// When the sending NIC put the packet on the wire (set by the host at
    /// transmission; used for RTT measurement).
    pub sent_at: SimTime,
    /// Per-hop metadata: the ingress port through which the packet entered
    /// the node currently buffering it. Maintained by switches for PFC
    /// accounting and VoQ bookkeeping.
    pub in_port: u16,
    /// Per-hop metadata: set while the packet waits at the head of an
    /// InfiniBand VoQ without credits; the IB CC FECN "victim" input.
    pub delayed_by_fc: bool,
    /// Per-hop metadata: the egress's credit-block epoch at enqueue time.
    /// If the egress blocks at any point while the packet waits, the epoch
    /// advances and the packet counts as "delayed due to lack of credits"
    /// even if it was not at the head during the stall.
    pub enq_epoch: u64,
    /// In-band telemetry records, one per traversed switch egress (empty
    /// unless `SimConfig::int_telemetry` is on; ACKs carry the data
    /// packet's records back to the sender).
    pub int: Vec<IntHop>,
}

/// Sentinel flow id for link-local control frames.
pub const CTRL_FLOW: FlowId = FlowId(u32::MAX);

impl Packet {
    /// Build a data segment.
    // simlint: allow(hot-path-alloc) -- Vec::new() is allocation-free; INT capacity arrives via PacketPool recycling
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        size: u64,
        prio: u8,
        seq: u64,
        last: bool,
        code: CodePoint,
    ) -> Packet {
        Packet {
            flow,
            src,
            dst,
            size,
            prio,
            kind: PacketKind::Data,
            code,
            seq,
            last,
            sent_at: SimTime::ZERO,
            in_port: u16::MAX,
            delayed_by_fc: false,
            enq_epoch: 0,
            int: Vec::new(),
        }
    }

    /// Build a link-local control frame (PAUSE or FCCL).
    // simlint: allow(hot-path-alloc) -- Vec::new() is allocation-free; INT capacity arrives via PacketPool recycling
    pub fn link_local(kind: PacketKind, size: u64, prio: u8) -> Packet {
        debug_assert!(kind.is_link_local());
        Packet {
            flow: CTRL_FLOW,
            src: NodeId(u32::MAX),
            dst: NodeId(u32::MAX),
            size,
            prio,
            kind,
            code: CodePoint::NotCapable,
            seq: 0,
            last: false,
            sent_at: SimTime::ZERO,
            in_port: u16::MAX,
            delayed_by_fc: false,
            enq_epoch: 0,
            int: Vec::new(),
        }
    }

    /// Build an end-to-end feedback packet (ACK or CNP) from `src` to
    /// `dst` for `flow`.
    // simlint: allow(hot-path-alloc) -- Vec::new() is allocation-free; INT capacity arrives via PacketPool recycling
    pub fn feedback(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        size: u64,
        prio: u8,
        kind: PacketKind,
    ) -> Packet {
        debug_assert!(matches!(
            kind,
            PacketKind::Ack { .. } | PacketKind::Cnp { .. }
        ));
        Packet {
            flow,
            src,
            dst,
            size,
            prio,
            kind,
            code: CodePoint::NotCapable,
            seq: 0,
            last: false,
            sent_at: SimTime::ZERO,
            in_port: u16::MAX,
            delayed_by_fc: false,
            enq_epoch: 0,
            int: Vec::new(),
        }
    }

    /// Whether this is a data segment.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data)
    }
}

/// Upper bound on retained free boxes, so the pool cannot outgrow the
/// peak number of packets simultaneously in flight by much.
const MAX_POOLED: usize = 4096;

/// Recycling allocator for the packets that ride the event queue.
///
/// Packets move through the engine as `Box<Packet>`: a box is allocated
/// once when the source NIC (or a switch's control plane) creates the
/// packet, travels every hop by moving the 8-byte pointer through events
/// and queues — never re-boxed on requeue — and returns here when the
/// packet is consumed. `boxed` then reuses the allocation (and the INT
/// vector's capacity) for the next packet, so steady-state forwarding
/// performs no per-event heap allocation.
#[derive(Debug, Default)]
pub struct PacketPool {
    // The boxes themselves are the resource being pooled: events hold
    // `Box<Packet>`, so recycling must keep each allocation intact.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Packet>>,
    /// Live packets: boxed and not yet recycled. The auditor's packet
    /// conservation check compares this against what the event queue and
    /// the nodes are actually holding.
    #[cfg(feature = "audit")]
    outstanding: u64,
    /// `boxed` calls served from a recycled allocation.
    hits: u64,
    /// `boxed` calls that had to allocate fresh.
    misses: u64,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// Number of boxes currently available for reuse.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Live packets: boxed through this pool and not yet recycled.
    #[cfg(feature = "audit")]
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Box `pkt`, reusing a recycled allocation when one is available.
    // simlint: allow(hot-path-alloc) -- pool miss path: allocates only until the pool warms to the in-flight peak
    pub fn boxed(&mut self, pkt: Packet) -> Box<Packet> {
        #[cfg(feature = "audit")]
        {
            self.outstanding += 1;
        }
        match self.free.pop() {
            Some(mut b) => {
                self.hits += 1;
                let mut spare = std::mem::take(&mut b.int);
                *b = pkt;
                // Keep the recycled INT vector's capacity unless the new
                // packet brought its own records (an ACK echoing INT).
                if b.int.is_empty() && spare.capacity() > 0 {
                    spare.clear();
                    b.int = spare;
                }
                b
            }
            None => {
                self.misses += 1;
                Box::new(pkt)
            }
        }
    }

    /// Allocation statistics as `(hits, misses)`: how many `boxed` calls
    /// reused a recycled allocation vs. allocated fresh.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Return a consumed packet's allocation for reuse.
    pub fn recycle(&mut self, pkt: Box<Packet>) {
        // Saturating: tests may recycle boxes that never went through
        // `boxed`, which must not poison the conservation counter.
        #[cfg(feature = "audit")]
        {
            self.outstanding = self.outstanding.saturating_sub(1);
        }
        if self.free.len() < MAX_POOLED {
            self.free.push(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_fields() {
        let p = Packet::data(
            FlowId(3),
            NodeId(0),
            NodeId(1),
            1000,
            1,
            4000,
            false,
            CodePoint::Capable,
        );
        assert!(p.is_data());
        assert!(!p.kind.is_link_local());
        assert_eq!(p.size, 1000);
        assert_eq!(p.seq, 4000);
        assert!(!p.delayed_by_fc);
    }

    #[test]
    fn control_frames_are_link_local() {
        let pause = Packet::link_local(
            PacketKind::Pause {
                prio: 1,
                pause: true,
            },
            64,
            0,
        );
        assert!(pause.kind.is_link_local());
        assert_eq!(pause.flow, CTRL_FLOW);
        let fccl = Packet::link_local(PacketKind::Fccl { vl: 1, fccl: 42 }, 64, 0);
        assert!(fccl.kind.is_link_local());
    }

    #[test]
    fn pool_reuses_allocations_and_int_capacity() {
        let mut pool = PacketPool::new();
        let mut p = pool.boxed(Packet::data(
            FlowId(0),
            NodeId(0),
            NodeId(1),
            1000,
            1,
            0,
            false,
            CodePoint::Capable,
        ));
        p.int.push(IntHop {
            qlen_bytes: 1,
            tx_bytes: 2,
            ts: SimTime::ZERO,
            rate: Rate::from_gbps(40),
        });
        let cap = p.int.capacity();
        let addr = &*p as *const Packet as usize;
        pool.recycle(p);
        assert_eq!(pool.pooled(), 1);
        let q = pool.boxed(Packet::link_local(
            PacketKind::Pause {
                prio: 1,
                pause: true,
            },
            64,
            0,
        ));
        assert_eq!(&*q as *const Packet as usize, addr, "allocation not reused");
        assert!(q.int.is_empty());
        assert!(q.int.capacity() >= cap, "INT capacity not retained");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_keeps_incoming_int_records() {
        let mut pool = PacketPool::new();
        pool.recycle(Box::new(Packet::link_local(
            PacketKind::Pause {
                prio: 0,
                pause: true,
            },
            64,
            0,
        )));
        let mut ack = Packet::feedback(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            64,
            0,
            PacketKind::Ack {
                data_sent_at: SimTime::ZERO,
                echo: CodePoint::Capable,
                acked_bytes: 1000,
            },
        );
        ack.int.push(IntHop {
            qlen_bytes: 7,
            tx_bytes: 8,
            ts: SimTime::ZERO,
            rate: Rate::from_gbps(100),
        });
        let b = pool.boxed(ack);
        assert_eq!(b.int.len(), 1, "echoed INT records must survive pooling");
        assert_eq!(b.int[0].qlen_bytes, 7);
    }

    #[test]
    fn feedback_kinds() {
        let cnp = Packet::feedback(
            FlowId(1),
            NodeId(5),
            NodeId(6),
            64,
            0,
            PacketKind::Cnp {
                code: CodePoint::CE,
            },
        );
        assert!(!cnp.is_data());
        assert!(!cnp.kind.is_link_local());
    }
}
