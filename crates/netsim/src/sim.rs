//! The simulation engine: node construction, flow registration, the event
//! loop, and trace sampling.

use crate::cchooks::RateController;
use crate::config::{FlowControlMode, SimConfig};
use crate::event::{Event, EventQueue};
use crate::host::Host;
use crate::ibswitch::IbSwitch;
use crate::packet::{FlowId, PacketPool};
use crate::routing::{RouteSelect, Routing};
use crate::switch::EthSwitch;
use crate::topology::{NodeId, NodeKind, Topology};
use crate::trace::{Delivered, FlowRecord, PortSample, Trace};
use lossless_flowctl::{SimDuration, SimTime};

/// Static description of a flow (message), registered before the run.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// The flow id (index into the spec table).
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Size in bytes.
    pub size: u64,
    /// Start time.
    pub start: SimTime,
    /// Priority / VL.
    pub prio: u8,
}

/// Shared context handed to node handlers. Splitting the simulator's fields
/// this way lets a handler mutate its node and the context simultaneously.
pub struct Ctx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The event queue.
    pub q: &'a mut EventQueue,
    /// The network topology.
    pub topo: &'a Topology,
    /// Routing tables.
    pub routing: &'a Routing,
    /// Run configuration.
    pub cfg: &'a SimConfig,
    /// Measurement sink.
    pub trace: &'a mut Trace,
    /// Flow specs (indexed by `FlowId.0`).
    pub flows: &'a [FlowSpec],
    /// Recycling allocator for packets; handlers box new packets through
    /// it and return consumed ones to it.
    pub pool: &'a mut PacketPool,
    /// The observability layer (always compiled; inert at
    /// [`ObsLevel::Off`](lossless_obs::ObsLevel)): handlers feed it
    /// control frames, marks, stalls and state transitions.
    pub obs: &'a mut lossless_obs::Obs,
    /// Runtime link health (fault injection): nodes consult it before
    /// scheduling a transmission — a downed port holds its queues, a
    /// degraded one serializes at the overridden rate.
    pub links: &'a crate::fault::LinkState,
    /// The invariant auditor (audit builds only); handlers feed it state
    /// transitions, marks, and PFC threshold crossings.
    #[cfg(feature = "audit")]
    pub audit: &'a mut crate::audit::Audit,
}

// Hosts are by far the largest variant, but the node table is tiny (one
// entry per network element), so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Node {
    Host(Host),
    Eth(EthSwitch),
    Ib(IbSwitch),
}

/// Attribute a dispatched event to the class of network element whose
/// handler does the work; engine-level events (flow starts, trace ticks,
/// fault and route updates) go to [`NodeClass::Engine`]. Read-only — used
/// solely by the self-profiler's span attribution.
///
/// [`NodeClass::Engine`]: lossless_obs::prof::NodeClass::Engine
pub(crate) fn node_class(nodes: &[Option<Node>], ev: &Event) -> lossless_obs::prof::NodeClass {
    use lossless_obs::prof::NodeClass;
    let node = match ev {
        Event::PacketArrival { node, .. }
        | Event::PortTx { node, .. }
        | Event::FcclTick { node, .. }
        | Event::DetectorTimer { node, .. }
        | Event::CcTimer { node, .. }
        | Event::HostDrain { node } => *node,
        _ => return NodeClass::Engine,
    };
    match nodes.get(node.index()).and_then(|n| n.as_ref()) {
        Some(Node::Host(_)) => NodeClass::Host,
        Some(Node::Eth(_)) => NodeClass::EthSwitch,
        Some(Node::Ib(_)) => NodeClass::IbSwitch,
        None => NodeClass::Engine,
    }
}

/// Dispatch a node-targeted event (everything except the engine-global
/// trace / fault / route events) against a node table. Shared verbatim by
/// the serial loop and the parallel workers in [`crate::par`], so both
/// execute the exact same handler code and the bit-identity argument
/// reduces to event *order* alone.
// simlint: allow(hot-path-panic) -- node/flow ids index in bounds by construction; a `None`
// node here would mean an event crossed partitions without going through an outbox, which
// the queue's routing interception rules out
pub(crate) fn dispatch_node_event(
    nodes: &mut [Option<Node>],
    pending_cc: &mut [Option<Box<dyn RateController>>],
    ctx: &mut Ctx,
    ev: Event,
) {
    const RESIDENT: &str = "event dispatched to a node owned by another partition";
    match ev {
        Event::PacketArrival { node, in_port, pkt } => {
            match nodes[node.index()].as_mut().expect(RESIDENT) {
                Node::Host(h) => h.on_packet(ctx, pkt),
                Node::Eth(s) => s.on_packet(ctx, in_port, pkt),
                Node::Ib(s) => s.on_packet(ctx, in_port, pkt),
            }
        }
        Event::PortTx { node, port } => match nodes[node.index()].as_mut().expect(RESIDENT) {
            Node::Host(h) => h.port_tx(ctx),
            Node::Eth(s) => s.port_tx(ctx, port),
            Node::Ib(s) => s.port_tx(ctx, port),
        },
        Event::FcclTick { node, port, vl } => match nodes[node.index()].as_mut().expect(RESIDENT) {
            Node::Host(h) => h.on_fccl_tick(ctx, vl),
            Node::Ib(s) => s.on_fccl_tick(ctx, port, vl),
            Node::Eth(_) => unreachable!("FCCL tick in CEE mode"),
        },
        Event::DetectorTimer { node, port, prio } => {
            match nodes[node.index()].as_mut().expect(RESIDENT) {
                Node::Eth(s) => s.on_detector_timer(ctx, port, prio),
                Node::Ib(s) => s.on_detector_timer(ctx, port, prio),
                Node::Host(_) => unreachable!("detector timer at a host"),
            }
        }
        Event::FlowStart { flow } => {
            let spec = ctx.flows[flow.0 as usize];
            let cc = pending_cc[flow.0 as usize]
                .take()
                .expect("flow started twice");
            match nodes[spec.src.index()].as_mut().expect(RESIDENT) {
                Node::Host(h) => h.start_flow(ctx, flow, spec.dst, spec.size, spec.prio, cc),
                _ => unreachable!("flow source is not a host"),
            }
        }
        Event::CcTimer { node, flow, timer } => {
            match nodes[node.index()].as_mut().expect(RESIDENT) {
                Node::Host(h) => h.on_cc_timer(ctx, flow, timer),
                _ => unreachable!("CC timer at a switch"),
            }
        }
        Event::HostDrain { node } => match nodes[node.index()].as_mut().expect(RESIDENT) {
            Node::Host(h) => h.on_host_drain(ctx),
            _ => unreachable!("HostDrain at a switch"),
        },
        _ => unreachable!("engine-global event routed to dispatch_node_event"),
    }
}

/// The simulator: topology + nodes + flows + event loop.
pub struct Simulator {
    pub(crate) topo: Topology,
    pub(crate) routing: Routing,
    pub(crate) cfg: SimConfig,
    pub(crate) queue: EventQueue,
    /// The node table. Entries are `None` only *during* a parallel
    /// window, while a worker owns the node; every public entry point
    /// sees them all resident.
    pub(crate) nodes: Vec<Option<Node>>,
    pub(crate) flows: Vec<FlowSpec>,
    /// Controllers waiting for their flow's start event.
    pub(crate) pending_cc: Vec<Option<Box<dyn RateController>>>,
    /// Packet allocation pool shared by all nodes.
    pub(crate) pool: PacketPool,
    /// Runtime link health table, mutated by fault events.
    pub(crate) links: crate::fault::LinkState,
    /// Events delivered across a partition barrier before their window
    /// floor (see [`crate::par`]); always 0 when the lookahead argument
    /// holds.
    pub(crate) par_causality: u64,
    /// Baseline routing tables, captured lazily at the first
    /// `RouteUpdate` so route sets always compose from (and revert to)
    /// the pristine tables.
    base_routing: Option<Routing>,
    /// The invariant auditor (audit builds only).
    #[cfg(feature = "audit")]
    audit: crate::audit::Audit,
    /// Violation count already handed to the flight recorder, so each new
    /// violation triggers exactly one history dump (audit builds only).
    #[cfg(feature = "audit")]
    audit_obs_seen: u64,
    /// Collected measurements.
    pub trace: Trace,
    /// The observability layer: metrics registry + flight recorder.
    pub obs: lossless_obs::Obs,
    /// The wall-clock self-profiler. Read-only with respect to simulation
    /// state: it samples dispatch spans and queue/pool occupancy but
    /// never schedules events or feeds a wall-clock value back, so runs
    /// are bit-identical with it on or off.
    pub(crate) profiler: lossless_obs::prof::Prof,
}

impl Simulator {
    /// Build a simulator over `topo` with routing discipline `select`.
    pub fn new(topo: Topology, cfg: SimConfig, select: RouteSelect) -> Simulator {
        assert!(cfg.data_prio < cfg.num_prios && cfg.feedback_prio < cfg.num_prios);
        assert!(
            !(cfg.is_lossy() && cfg.host_rx_rate.is_some()),
            "slow receivers are modelled for lossless modes only"
        );
        assert!(
            !cfg.is_lossy() || matches!(cfg.feedback, crate::config::FeedbackMode::AckPerPacket),
            "lossy mode requires AckPerPacket feedback for go-back-N reliability"
        );
        let routing = Routing::new(&topo, select);
        let mut nodes = Vec::with_capacity(topo.node_count());
        let mut queue = EventQueue::with_kind(cfg.queue);
        let seed = cfg.seed;

        for n in 0..topo.node_count() as u32 {
            let id = NodeId(n);
            match topo.kind(id) {
                NodeKind::Host => {
                    let line_rate = topo.link(id, 0).rate;
                    nodes.push(Some(Node::Host(Host::new(
                        id,
                        line_rate,
                        &cfg.flow_control,
                        cfg.num_prios,
                    ))));
                }
                NodeKind::Switch => {
                    let n_ports = topo.ports(id).len();
                    let mk = |p: u16, pr: u8| {
                        cfg.detector_for(pr).build(splitmix(
                            seed ^ ((n as u64) << 24) ^ ((p as u64) << 8) ^ pr as u64,
                        ))
                    };
                    match cfg.flow_control {
                        FlowControlMode::Pfc(_) | FlowControlMode::Lossy { .. } => {
                            nodes.push(Some(Node::Eth(EthSwitch::new(
                                id,
                                n_ports,
                                cfg.num_prios,
                                &cfg.flow_control,
                                mk,
                            ))));
                        }
                        FlowControlMode::Cbfc(_) => {
                            nodes.push(Some(Node::Ib(IbSwitch::new(
                                id,
                                n_ports,
                                cfg.num_prios,
                                &cfg.flow_control,
                                cfg.vl_weights.clone(),
                                cfg.feedback_prio,
                                mk,
                            ))));
                        }
                    }
                }
            }
        }

        // In IB mode every (node, port, vl) emits periodic credit updates.
        // Stagger the first tick deterministically to avoid a synchronized
        // FCCL storm at t = 0.
        if let FlowControlMode::Cbfc(c) = cfg.flow_control {
            let mut stagger: u64 = 0;
            for n in 0..topo.node_count() as u32 {
                let id = NodeId(n);
                let n_ports = topo.ports(id).len();
                for p in 0..n_ports as u16 {
                    for vl in 0..cfg.num_prios {
                        let offset = SimDuration::from_ps(
                            stagger.wrapping_mul(7919) % c.update_period.as_ps().max(1),
                        );
                        queue.schedule(
                            SimTime::ZERO + offset,
                            Event::FcclTick {
                                node: id,
                                port: p,
                                vl,
                            },
                        );
                        stagger += 1;
                    }
                }
            }
        }

        let mut trace = Trace::new(false);
        trace.max_marks = cfg.max_marks;
        trace.max_port_samples = cfg.max_port_samples;
        // Trace ticks only do per-sample-port work; with nothing to
        // sample they would be pure event-loop overhead, so skip the
        // whole tick train.
        if cfg.trace_interval.is_some() && !cfg.sample_ports.is_empty() {
            queue.schedule(SimTime::ZERO, Event::TraceTick);
        }
        // Fault plan: turn every scheduled fault into a regular engine
        // event so flaps, degradations and route changes dispatch in the
        // same deterministic (time, seq) order as everything else. An
        // empty plan schedules nothing, keeping fault-free sequence
        // numbers (and hence fingerprints) bit-identical.
        for f in &cfg.fault_plan.events {
            use crate::fault::FaultKind;
            let ev = match f.kind {
                FaultKind::LinkDown => Event::LinkState {
                    node: f.node,
                    port: f.port,
                    up: false,
                },
                FaultKind::LinkUp => Event::LinkState {
                    node: f.node,
                    port: f.port,
                    up: true,
                },
                FaultKind::Degrade(r) => Event::LinkRate {
                    node: f.node,
                    port: f.port,
                    rate: Some(r),
                },
                FaultKind::Restore => Event::LinkRate {
                    node: f.node,
                    port: f.port,
                    rate: None,
                },
                FaultKind::RouteChange(set) => {
                    let set = set.map_or(u32::MAX, |s| {
                        assert!(
                            s < cfg.fault_plan.route_sets.len(),
                            "route change references undefined route set {s}"
                        );
                        s as u32
                    });
                    Event::RouteUpdate { set }
                }
            };
            queue.schedule(f.at, ev);
        }
        let links = crate::fault::LinkState::new(&topo);
        let obs = lossless_obs::Obs::new(cfg.obs);

        Simulator {
            topo,
            routing,
            cfg,
            queue,
            nodes,
            flows: Vec::new(),
            pending_cc: Vec::new(),
            pool: PacketPool::new(),
            links,
            par_causality: 0,
            base_routing: None,
            #[cfg(feature = "audit")]
            audit: crate::audit::Audit::default(),
            #[cfg(feature = "audit")]
            audit_obs_seen: 0,
            trace,
            obs,
            profiler: lossless_obs::prof::Prof::from_env(),
        }
    }

    /// The invariant auditor (audit builds only).
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> &crate::audit::Audit {
        &self.audit
    }

    /// Mutable access to the invariant auditor (audit builds only), e.g.
    /// to switch it to [`AuditMode::Record`](crate::audit::AuditMode)
    /// before a run that deliberately provokes violations.
    #[cfg(feature = "audit")]
    pub fn audit_mut(&mut self) -> &mut crate::audit::Audit {
        &mut self.audit
    }

    /// Runtime link health (fault injection): which ports are up and
    /// which carry a degraded-rate override.
    pub fn links(&self) -> &crate::fault::LinkState {
        &self.links
    }

    /// Arm the wall-clock self-profiler for subsequent `run*` calls,
    /// discarding any previously collected profile. Profiling never
    /// perturbs the run: fingerprints and traces are bit-identical with
    /// it on or off.
    pub fn enable_profiler(&mut self, cfg: lossless_obs::prof::ProfConfig) {
        self.profiler.enable(cfg);
    }

    /// Snapshot the wall-clock profile collected so far; `None` unless
    /// the profiler was armed via [`Simulator::enable_profiler`] or
    /// `TCD_PROF=1`.
    pub fn profile(&self) -> Option<lossless_obs::prof::ProfSummary> {
        self.profiler.summary(&Event::KIND_NAMES)
    }

    /// Switch the auditor (when compiled in) from panicking on the first
    /// invariant violation to recording violations for inspection. A
    /// no-op without the `audit` feature, so scenario code that
    /// deliberately provokes violations — e.g. driving a CDC-cyclic
    /// fabric into PFC deadlock — can call it unconditionally.
    pub fn record_violations(&mut self) {
        #[cfg(feature = "audit")]
        {
            self.audit.config_mut().mode = crate::audit::AuditMode::Record;
        }
    }

    /// Record individual [`MarkEvent`](crate::trace::MarkEvent)s (off by
    /// default; voluminous).
    pub fn record_marks(&mut self, on: bool) {
        self.trace.record_marks = on;
    }

    /// Record individual [`DeliveryEvent`](crate::trace::DeliveryEvent)s
    /// (off by default; voluminous).
    pub fn record_deliveries(&mut self, on: bool) {
        self.trace.record_deliveries = on;
    }

    /// Register a flow; it starts automatically at `start`.
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: u64,
        start: SimTime,
        cc: Box<dyn RateController>,
    ) -> FlowId {
        self.add_flow_prio(src, dst, size, start, self.cfg.data_prio, cc)
    }

    /// Register a flow on an explicit priority/VL.
    pub fn add_flow_prio(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: u64,
        start: SimTime,
        prio: u8,
        cc: Box<dyn RateController>,
    ) -> FlowId {
        assert_eq!(
            self.topo.kind(src),
            NodeKind::Host,
            "flow source must be a host"
        );
        assert_eq!(
            self.topo.kind(dst),
            NodeKind::Host,
            "flow destination must be a host"
        );
        assert!(size > 0, "flows must carry at least one byte");
        assert!(prio < self.cfg.num_prios);
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowSpec {
            id,
            src,
            dst,
            size,
            start,
            prio,
        });
        self.pending_cc.push(Some(cc));
        self.trace.flows.push(FlowRecord {
            flow: id,
            src,
            dst,
            size,
            start,
            end: None,
            delivered: Delivered::default(),
        });
        self.queue.schedule(start, Event::FlowStart { flow: id });
        id
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing tables.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Flow specs registered so far.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// A host's current CC rate for a flow (None once it finished sending).
    pub fn flow_rate(&self, flow: FlowId) -> Option<lossless_flowctl::Rate> {
        let spec = &self.flows[flow.0 as usize];
        match self.node(spec.src) {
            Node::Host(h) => h.flow_rate(flow),
            _ => None,
        }
    }

    /// Events that crossed a partition barrier earlier than the window
    /// floor would allow. Always 0 when the conservative lookahead
    /// argument holds (and trivially 0 for serial runs); the parallel
    /// determinism suite asserts on it.
    pub fn par_causality_violations(&self) -> u64 {
        self.par_causality
    }

    /// The node table entry for `id`, which must be resident (all nodes
    /// are, except from inside a parallel window — nodes are only taken
    /// out while a worker owns them, and every public entry point runs
    /// between windows, when all are resident).
    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.index()]
            .as_ref()
            .expect("node owned by a parallel worker")
    }

    /// The single inner event loop every `run*` entry point drives:
    /// dispatch events at or before `until` (clamped to the configured
    /// end time), optionally stopping early once all registered flows
    /// have completed.
    fn drive(&mut self, until: SimTime, stop_when_complete: bool) {
        let end = until.min(self.cfg.end_time);
        // Conservative-parallel fast path. Falls back to this serial loop
        // when lookahead is unavailable (zero-delay cross link, single
        // partition) or the mode demands per-event global state
        // (stop-when-complete polls a global counter; audit builds walk
        // the whole network at checkpoints).
        #[cfg(not(feature = "audit"))]
        if !stop_when_complete {
            let p = self.effective_partitions();
            if p > 1 && crate::par::drive_parallel(self, end, p) {
                return;
            }
        }
        let total = self.flows.len();
        #[cfg(feature = "audit")]
        let checkpoint_every = self.audit.config().checkpoint_every.max(1);
        while !(stop_when_complete && self.trace.completed_count >= total) {
            // The batched pop stages the whole same-timestamp group on its
            // first call at a new time, so the ordering core is consulted
            // once per distinct timestamp, not once per event; the pop
            // order is identical either way.
            let Some((now, ev)) = self.queue.pop_batched(end) else {
                break;
            };
            // Self-profiler span: `arm_span` is a pure dispatch-counter
            // check (no clock read), so which branch runs is a
            // deterministic function of the event sequence — and both
            // branches perform the identical `dispatch` call. The clock
            // reads in `span_open`/`span_close` surround dispatch without
            // feeding anything back into simulation state.
            // simlint: allow(prof-leak) -- sanctioned drive() wiring: arm_span is a deterministic counter check and both branches dispatch identically
            if self.profiler.arm_span() {
                let kind = ev.kind_index();
                let class = node_class(&self.nodes, &ev);
                self.profiler.span_open();
                self.dispatch(now, ev);
                self.profiler.span_close(kind, class);
            } else {
                self.dispatch(now, ev);
            }
            // The flight recorder's checkpoint cadence is driven by the
            // dispatch count (always compiled), so recorder contents are
            // identical with or without the auditor.
            self.obs.maybe_checkpoint(now, self.trace.events);
            // Timeline tick: cadence is a pure function of the dispatch
            // count; the queue/pool occupancy reads flow *into* the
            // profiler only.
            // simlint: allow(prof-leak) -- sanctioned drive() wiring: tick_due is a deterministic counter check, occupancy/pool reads only flow into the profiler
            if self.profiler.tick_due(self.trace.events) {
                let (pending, staged, overflow) = self.queue.occupancy();
                let (hit, miss) = self.pool.stats();
                self.profiler.record_tick(
                    now,
                    self.trace.events,
                    pending,
                    staged,
                    overflow,
                    hit,
                    miss,
                );
            }
            // Checkpoints run between dispatches, never as scheduled
            // events, so event counts and fingerprints are identical with
            // the auditor on or off.
            #[cfg(feature = "audit")]
            if self.trace.events.is_multiple_of(checkpoint_every) {
                self.checked_audit_checkpoint();
            }
        }
        #[cfg(feature = "audit")]
        self.checked_audit_checkpoint();
    }

    /// Run an audit checkpoint and, if it surfaced new violations (Record
    /// mode — Panic mode never returns), hand the flight-recorder history
    /// window to the observability layer next to the violation snapshot.
    #[cfg(feature = "audit")]
    fn checked_audit_checkpoint(&mut self) {
        self.audit_checkpoint();
        // A watermark (not a before/after delta) so violations raised by
        // per-event hooks between checkpoints are dumped too.
        let total = self.audit.total_violations();
        if total > self.audit_obs_seen {
            self.audit_obs_seen = total;
            self.obs.on_violation(self.queue.now(), total);
        }
    }

    /// Verify every simulation invariant against the current state: packet
    /// conservation, per-node buffer accounting, hop-by-hop protocol
    /// legality (including a global CBFC credit ledger per link), and
    /// event-queue causality. Runs automatically every
    /// [`AuditConfig::checkpoint_every`](crate::audit::AuditConfig) events
    /// and once at the end of each `run*` call; it never schedules events,
    /// so traces and fingerprints are identical with the auditor on or off.
    #[cfg(feature = "audit")]
    pub fn audit_checkpoint(&mut self) {
        use crate::audit::{InvariantFamily, Violation};

        let now = self.queue.now();
        let engine = NodeId(u32::MAX);

        // (e) Causality: the queue logs any schedule into the past.
        for (at, then) in self.queue.take_past_schedules() {
            self.audit.report(Violation {
                family: InvariantFamily::Causality,
                t: then,
                node: engine,
                port: u16::MAX,
                prio: u8::MAX,
                message: format!("event scheduled at {at}, before the clock ({then})"),
            });
        }
        let past_dropped = self.queue.take_past_dropped();
        if past_dropped > 0 {
            self.audit.report(Violation {
                family: InvariantFamily::Causality,
                t: now,
                node: engine,
                port: u16::MAX,
                prio: u8::MAX,
                message: format!(
                    "{past_dropped} further past-schedules dropped from the causality log \
                     (cap {})",
                    crate::event::PAST_LOG_CAP
                ),
            });
        }
        self.audit.note_check(InvariantFamily::Causality);

        // (a) Packet conservation: every packet the pool handed out is
        // either on a wire (in-flight event) or queued in some node.
        let outstanding = self.pool.outstanding();
        let in_flight = self.queue.packets_in_flight() as u64;
        let queued: u64 = self
            .nodes
            .iter()
            .flatten()
            .map(|n| {
                let q = match n {
                    Node::Host(h) => h.audit_queued_packets(),
                    Node::Eth(s) => s.audit_queued_packets(),
                    Node::Ib(s) => s.audit_queued_packets(),
                };
                q as u64
            })
            .sum();
        if outstanding != in_flight + queued {
            self.audit.report(Violation {
                family: InvariantFamily::Conservation,
                t: now,
                node: engine,
                port: u16::MAX,
                prio: u8::MAX,
                message: format!(
                    "packet conservation broken: {outstanding} live != \
                     {in_flight} in-flight + {queued} queued"
                ),
            });
        }
        if !self.cfg.is_lossy() && self.trace.drops > 0 {
            self.audit.report(Violation {
                family: InvariantFamily::Conservation,
                t: now,
                node: engine,
                port: u16::MAX,
                prio: u8::MAX,
                message: format!("lossless mode dropped {} packets", self.trace.drops),
            });
        }
        self.audit.note_check(InvariantFamily::Conservation);

        // (b) Per-node buffer accounting and local protocol state.
        for node in self.nodes.iter().flatten() {
            match node {
                Node::Host(h) => h.audit_check(&mut self.audit, now),
                Node::Eth(s) => s.audit_check(&mut self.audit, now),
                Node::Ib(s) => s.audit_check(&mut self.audit, now),
            }
        }
        self.audit.note_check(InvariantFamily::BufferAccounting);

        // (c) Global CBFC credit ledger: along every directed link, the
        // sender's consumed credits equal the receiver's accepted credits
        // plus the blocks currently on the wire, and the advertised limit
        // never exceeds what the receive buffer could absorb.
        if self.cfg.is_ib() {
            use lossless_flowctl::units::bytes_to_blocks;
            use std::collections::BTreeMap;

            let mut inflight: BTreeMap<(u32, u16, u8), u64> = BTreeMap::new();
            for (node, in_port, pkt) in self.queue.packet_arrivals() {
                if pkt.kind.is_link_local() {
                    continue; // credit-exempt by construction
                }
                *inflight.entry((node.0, in_port, pkt.prio)).or_default() +=
                    bytes_to_blocks(pkt.size);
            }
            for n in 0..self.topo.node_count() as u32 {
                let id = NodeId(n);
                for p in 0..self.topo.ports(id).len() as u16 {
                    let lnk = self.topo.link(id, p);
                    for vl in 0..self.cfg.num_prios {
                        let tx = match self.node(id) {
                            Node::Ib(s) => Some(s.audit_cbfc_tx(p, vl)),
                            Node::Host(h) => h.audit_cbfc_tx(vl),
                            Node::Eth(_) => None,
                        };
                        let rx = match self.node(lnk.peer) {
                            Node::Ib(s) => Some(s.audit_cbfc_rx(lnk.peer_port, vl)),
                            Node::Host(h) => h.audit_cbfc_rx(vl),
                            Node::Eth(_) => None,
                        };
                        let (Some((fctbs, fccl)), Some((abr, _occ, cap))) = (tx, rx) else {
                            continue;
                        };
                        let fly = inflight
                            .get(&(lnk.peer.0, lnk.peer_port, vl))
                            .copied()
                            .unwrap_or(0);
                        if fctbs != abr + fly {
                            self.audit.report(Violation {
                                family: InvariantFamily::ProtocolLegality,
                                t: now,
                                node: id,
                                port: p,
                                prio: vl,
                                message: format!(
                                    "CBFC credits not conserved towards node {} port {}: \
                                     FCTBS {fctbs} != ABR {abr} + {fly} blocks in flight",
                                    lnk.peer.0, lnk.peer_port
                                ),
                            });
                        }
                        if fccl > abr + cap {
                            self.audit.report(Violation {
                                family: InvariantFamily::ProtocolLegality,
                                t: now,
                                node: id,
                                port: p,
                                prio: vl,
                                message: format!(
                                    "FCCL {fccl} exceeds ABR {abr} + buffer capacity {cap} blocks"
                                ),
                            });
                        }
                    }
                }
            }
        }
        self.audit.note_check(InvariantFamily::ProtocolLegality);

        // (f) Liveness: if no packet was forwarded or delivered since the
        // previous checkpoint, the network may be wedged. Walk the
        // hop-by-hop wait-for graph over blocked channels; a cycle is a
        // genuine PFC/CBFC deadlock (DCFIT-style runtime detection).
        let progress = self.trace.forwarded_pkts
            + self
                .trace
                .flows
                .iter()
                .map(|f| f.delivered.pkts)
                .sum::<u64>();
        if self.audit.note_progress(progress) {
            if let Some(cycle) = self.find_blocked_cycle() {
                let topo = &self.topo;
                self.audit
                    .report_deadlock(now, cycle, |n, p| format!("{}[{p}]", topo.name(n)));
            }
        }
        self.audit.note_check(InvariantFamily::Liveness);
    }

    /// Search the wait-for graph of *blocked channels* for a cycle.
    ///
    /// A blocked channel `(u, p)` is a switch egress holding data it is
    /// not allowed to transmit (PFC-paused, or out of CBFC credits). It
    /// waits on a downstream channel `(v, q)` — where `v` is the peer of
    /// `(u, p)` — iff the buffer `v` is accounting against that ingress
    /// sits in front of `v`'s blocked egress `q`. For CEE the packets
    /// remember their ingress (`Packet::in_port`); for IB the VoQ is
    /// indexed by ingress structurally. A cycle means every channel on it
    /// waits, transitively, on itself: no event can ever drain them.
    #[cfg(feature = "audit")]
    fn find_blocked_cycle(&self) -> Option<Vec<(NodeId, u16)>> {
        use std::collections::{BTreeMap, BTreeSet};
        let mut chans: BTreeSet<(NodeId, u16)> = BTreeSet::new();
        for n in 0..self.topo.node_count() as u32 {
            let id = NodeId(n);
            let ports = match self.node(id) {
                Node::Eth(s) => s.audit_blocked_channels(),
                Node::Ib(s) => s.audit_blocked_channels(),
                Node::Host(_) => Vec::new(),
            };
            chans.extend(ports.into_iter().map(|p| (id, p)));
        }
        if chans.is_empty() {
            return None;
        }
        let mut adj: BTreeMap<(NodeId, u16), Vec<(NodeId, u16)>> = BTreeMap::new();
        for &(u, p) in &chans {
            let l = self.topo.link(u, p);
            let succ = match self.node(l.peer) {
                Node::Eth(s) => s.audit_wait_successors(l.peer_port),
                Node::Ib(s) => s.audit_wait_successors(l.peer_port),
                Node::Host(_) => Vec::new(),
            };
            adj.insert(
                (u, p),
                succ.into_iter()
                    .map(|q| (l.peer, q))
                    .filter(|c| chans.contains(c))
                    .collect(),
            );
        }
        // Deterministic iterative DFS (white/grey/black) over the sorted
        // channel set; the first back edge found yields the cycle.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color: BTreeMap<(NodeId, u16), u8> = BTreeMap::new();
        for &start in &chans {
            if color.get(&start).copied().unwrap_or(WHITE) != WHITE {
                continue;
            }
            // Stack of (channel, index of next successor to try).
            let mut stack: Vec<((NodeId, u16), usize)> = vec![(start, 0)];
            color.insert(start, GREY);
            while let Some(&(c, i)) = stack.last() {
                let succs = &adj[&c];
                if i < succs.len() {
                    let nxt = succs[i];
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    match color.get(&nxt).copied().unwrap_or(WHITE) {
                        WHITE => {
                            color.insert(nxt, GREY);
                            stack.push((nxt, 0));
                        }
                        GREY => {
                            // Back edge: the cycle is the stack suffix
                            // from `nxt` to the top.
                            let from = stack
                                .iter()
                                .position(|&(ch, _)| ch == nxt)
                                .expect("grey channel must be on the DFS stack");
                            return Some(stack[from..].iter().map(|&(ch, _)| ch).collect());
                        }
                        _ => {}
                    }
                } else {
                    color.insert(c, BLACK);
                    stack.pop();
                }
            }
        }
        None
    }

    /// Run until the configured end time (or the event queue drains).
    pub fn run(&mut self) {
        self.drive(SimTime::MAX, false);
    }

    /// Run only the events at or before `until` (which must not exceed the
    /// configured end time). Lets callers interleave simulation with
    /// inspection — e.g. taking congestion-tree snapshots mid-run — and
    /// then continue with another `run_until`/`run` call.
    pub fn run_until(&mut self, until: SimTime) {
        self.drive(until, false);
    }

    /// Snapshot the network's detection state for `prio`: every switch
    /// egress port's ternary state, plus the pause edges for
    /// [`tcd_core::tree`] congestion-tree reconstruction.
    ///
    /// Edge semantics: when a switch is back-pressuring (pausing /
    /// credit-constraining) an upstream egress `U`, the paper attributes
    /// that pressure to the congested (or still-undetermined) egress ports
    /// of the pausing switch — the buffer the ingress is accounting for
    /// sits in front of them. Shared-buffer switches cannot attribute the
    /// pressure to a single egress, so every non-idle egress of the
    /// pausing switch gains an edge to `U`; on tree-shaped pause patterns
    /// this reconstructs exactly the paper's trees.
    ///
    /// Port keys are encoded as `node_index << 16 | port_index`.
    pub fn congestion_snapshot(&self, prio: u8) -> tcd_core::tree::Snapshot {
        let key = |n: NodeId, p: u16| ((n.0 as u64) << 16) | p as u64;
        let mut snap = tcd_core::tree::Snapshot::new();
        for n in 0..self.topo.node_count() as u32 {
            let id = NodeId(n);
            let n_ports = self.topo.ports(id).len() as u16;
            // (state per egress, upstream egresses we are pausing)
            let mut states = Vec::with_capacity(n_ports as usize);
            let mut paused_upstreams = Vec::new();
            match self.node(id) {
                Node::Eth(sw) => {
                    for p in 0..n_ports {
                        states.push(sw.port(p).port_state(prio));
                        if sw.port(p).is_pausing_upstream(prio) {
                            let l = self.topo.link(id, p);
                            if self.topo.kind(l.peer) == NodeKind::Switch {
                                paused_upstreams.push(key(l.peer, l.peer_port));
                            }
                        }
                    }
                }
                Node::Ib(sw) => {
                    for p in 0..n_ports {
                        states.push(sw.port(p).port_state(prio));
                        let l = self.topo.link(id, p);
                        if self.topo.kind(l.peer) == NodeKind::Switch
                            && sw.port(p).is_constraining_upstream(prio, l.rate)
                        {
                            paused_upstreams.push(key(l.peer, l.peer_port));
                        }
                    }
                }
                Node::Host(_) => continue,
            }
            for (p, &st) in states.iter().enumerate() {
                let me = key(id, p as u16);
                snap.state(me, st);
                if st != tcd_core::TernaryState::NonCongestion {
                    for &u in &paused_upstreams {
                        if u != me {
                            snap.pause(me, u);
                        }
                    }
                }
            }
        }
        snap
    }

    /// Run until every registered flow has completed, or the configured
    /// end time is reached (whichever comes first). Returns `true` if all
    /// flows completed.
    pub fn run_until_all_complete(&mut self) -> bool {
        self.drive(SimTime::MAX, true);
        self.trace.completed_count == self.flows.len()
    }

    /// How many intra-run partition workers this run should use:
    /// [`SimConfig::partitions`] when nonzero, else the `TCD_PARTITIONS`
    /// environment variable, else 1 (serial).
    #[cfg(not(feature = "audit"))]
    fn effective_partitions(&self) -> usize {
        if self.cfg.partitions != 0 {
            return self.cfg.partitions;
        }
        std::env::var("TCD_PARTITIONS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&p| p >= 1)
            .unwrap_or(1)
    }

    // simlint: allow(hot-path-panic) -- event node/flow ids are created against this topology at
    // setup, so they index nodes/flows in bounds; pending_cc and the RouteUpdate baseline are
    // invariants the expect() messages document
    pub(crate) fn dispatch(&mut self, now: SimTime, ev: Event) {
        self.trace.events += 1;
        self.obs.dispatched(ev.kind_index());
        // Split borrows: nodes vs the rest of the context.
        macro_rules! ctx {
            () => {
                Ctx {
                    now,
                    q: &mut self.queue,
                    topo: &self.topo,
                    routing: &self.routing,
                    cfg: &self.cfg,
                    trace: &mut self.trace,
                    flows: &self.flows,
                    pool: &mut self.pool,
                    obs: &mut self.obs,
                    links: &self.links,
                    #[cfg(feature = "audit")]
                    audit: &mut self.audit,
                }
            };
        }
        match ev {
            Event::TraceTick => {
                self.sample_ports(now);
                if let Some(dt) = self.cfg.trace_interval {
                    if now + dt <= self.cfg.end_time {
                        self.queue.schedule(now + dt, Event::TraceTick);
                    }
                }
            }
            Event::LinkState { node, port, up } => {
                // A link fault affects both directions: mark both
                // endpoints, then give each a chance to react (shed a
                // dark egress in lossy mode, restart transmission on
                // recovery). Frames already serialized onto the wire
                // still arrive — only new transmissions are gated.
                let l = *self.topo.link(node, port);
                self.links.set_up(node, port, up);
                self.links.set_up(l.peer, l.peer_port, up);
                self.obs.fault(
                    now,
                    node.0,
                    port,
                    if up {
                        "fault.link_up"
                    } else {
                        "fault.link_down"
                    },
                );
                let mut ctx = ctx!();
                for (n, p) in [(node, port), (l.peer, l.peer_port)] {
                    match self.nodes[n.index()]
                        .as_mut()
                        .expect("faulted node owned by a parallel worker")
                    {
                        Node::Host(h) => h.on_link_state(&mut ctx, up),
                        Node::Eth(s) => s.on_link_state(&mut ctx, p, up),
                        Node::Ib(s) => s.on_link_state(&mut ctx, p, up),
                    }
                }
            }
            Event::LinkRate { node, port, rate } => {
                // Rate overrides apply to the next transmission on each
                // side; in-flight serializations keep the rate they
                // started with (as on real hardware, where a frame's
                // clocking is fixed once it starts).
                let l = *self.topo.link(node, port);
                self.links.set_rate(node, port, rate);
                self.links.set_rate(l.peer, l.peer_port, rate);
                self.obs.fault(
                    now,
                    node.0,
                    port,
                    if rate.is_some() {
                        "fault.degrade"
                    } else {
                        "fault.restore"
                    },
                );
            }
            Event::RouteUpdate { set } => {
                // Swap routing tables atomically at the event boundary:
                // packets already queued keep flowing, lookups after this
                // instant see the new tables. Sets always compose from
                // the pristine baseline so updates never stack.
                if self.base_routing.is_none() {
                    self.base_routing = Some(self.routing.clone());
                }
                let base = self
                    .base_routing
                    .as_ref()
                    .expect("baseline routing captured above");
                let mut r = base.clone();
                if set != u32::MAX {
                    for path in &self.cfg.fault_plan.route_sets[set as usize] {
                        r.apply_path(&self.topo, path);
                    }
                }
                self.routing = r;
                self.obs
                    .fault(now, u32::MAX, u16::MAX, "fault.route_update");
            }
            ev => {
                let mut ctx = ctx!();
                dispatch_node_event(&mut self.nodes, &mut self.pending_cc, &mut ctx, ev);
            }
        }
    }

    // simlint: allow(hot-path-panic) -- sample_ports entries are validated node ids at config time
    fn sample_ports(&mut self, now: SimTime) {
        for &(node, port, prio) in &self.cfg.sample_ports {
            let s = match self.nodes[node.index()]
                .as_ref()
                .expect("sampled node owned by a parallel worker")
            {
                Node::Eth(sw) => {
                    let p = sw.port(port);
                    PortSample {
                        t: now,
                        node,
                        port,
                        prio,
                        queue_bytes: p.queue_bytes(prio),
                        tx_bytes: p.tx_bytes,
                        state: p.port_state(prio),
                        paused: p.is_paused(prio),
                    }
                }
                Node::Ib(sw) => {
                    let p = sw.port(port);
                    PortSample {
                        t: now,
                        node,
                        port,
                        prio,
                        queue_bytes: p.queue_bytes(prio),
                        tx_bytes: p.tx_bytes,
                        state: p.port_state(prio),
                        paused: p.is_blocked(prio),
                    }
                }
                Node::Host(h) => PortSample {
                    t: now,
                    node,
                    port,
                    prio,
                    queue_bytes: 0,
                    tx_bytes: h.tx_bytes,
                    state: tcd_core::TernaryState::NonCongestion,
                    paused: false,
                },
            };
            self.trace.push_port_sample(s);
        }
    }

    /// A snapshot of the metrics registry with the engine-side counters
    /// that live outside it (per-kind dispatch counts, trace drop
    /// counters) folded in. Pure read — safe to call
    /// at any point, typically once after `run*`. Empty when observability
    /// is off.
    pub fn obs_registry(&self) -> lossless_obs::Registry {
        use lossless_obs::Key;
        let mut reg = self.obs.reg.clone();
        if self.obs.on() {
            for (i, name) in Event::KIND_NAMES.iter().enumerate() {
                reg.set_counter(Key::global(name), self.obs.dispatch_count(i));
            }
            // Packet-pool hit/miss counters are deliberately NOT exported:
            // they depend on global allocation order, which partitioned
            // runs (each shard pools privately) cannot reproduce.
            reg.set_counter(Key::global("trace.dropped_marks"), self.trace.dropped_marks);
            reg.set_counter(
                Key::global("trace.dropped_port_samples"),
                self.trace.dropped_port_samples,
            );
            reg.set_counter(Key::global("engine.events"), self.trace.events);
            // Zero in every causally sound run; emitted only when set so
            // clean-run registry fingerprints are unchanged.
            if self.queue.clamped_past() > 0 {
                reg.set_counter(Key::global("event.clamped_past"), self.queue.clamped_past());
            }
        }
        reg
    }
}

/// SplitMix64 — derives decorrelated per-detector seeds from the master
/// seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cchooks::FixedRate;
    use crate::config::SimConfig;
    use crate::topology::dumbbell;
    use lossless_flowctl::Rate;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix(1), splitmix(1));
        assert_ne!(splitmix(1), splitmix(2));
        // Nearby seeds produce far-apart outputs.
        let d = splitmix(100) ^ splitmix(101);
        assert!(d.count_ones() > 16, "poor mixing: {d:b}");
    }

    #[test]
    fn empty_simulation_terminates_immediately() {
        let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let mut sim = Simulator::new(
            db.topo.clone(),
            SimConfig::cee_baseline(SimTime::from_ms(1)),
            crate::routing::RouteSelect::Ecmp,
        );
        sim.run();
        assert_eq!(sim.now(), SimTime::ZERO);
        assert!(sim.trace.flows.is_empty());
    }

    #[test]
    fn congestion_snapshot_of_idle_network_has_no_trees() {
        let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let sim = Simulator::new(
            db.topo.clone(),
            SimConfig::cee_baseline(SimTime::from_ms(1)),
            crate::routing::RouteSelect::Ecmp,
        );
        let snap = sim.congestion_snapshot(1);
        assert!(tcd_core::tree::trees(&snap).is_empty());
        assert!(snap.pause_edges.is_empty());
    }

    #[test]
    fn run_until_respects_the_boundary() {
        let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let mut sim = Simulator::new(
            db.topo.clone(),
            SimConfig::cee_baseline(SimTime::from_ms(10)),
            crate::routing::RouteSelect::Ecmp,
        );
        sim.add_flow(
            db.h0,
            db.h1,
            10_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
        sim.run_until(SimTime::from_ms(1));
        assert!(sim.now() <= SimTime::from_ms(1));
        let partial = sim.trace.flows[0].delivered.bytes;
        assert!(
            partial > 0 && partial < 10_000_000,
            "mid-flight at 1 ms: {partial}"
        );
        sim.run();
        assert_eq!(sim.trace.flows[0].delivered.bytes, 10_000_000);
    }

    #[test]
    #[should_panic]
    fn flow_from_switch_is_rejected() {
        let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let mut sim = Simulator::new(
            db.topo.clone(),
            SimConfig::cee_baseline(SimTime::from_ms(1)),
            crate::routing::RouteSelect::Ecmp,
        );
        let _ = sim.add_flow(
            db.sw,
            db.h1,
            1000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
}
