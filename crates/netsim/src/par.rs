//! Conservative parallel execution: one run, many cores, bit-identical.
//!
//! The topology is cut into node groups ([`crate::partition`]); each group
//! ("shard") gets a private node table, event queue, packet pool, trace and
//! observability slice, and runs on its own worker thread. Execution
//! proceeds in lock-step *windows* of width `L`, the minimum cross-partition
//! link delay: inside one window no shard can affect another (a packet sent
//! at `t` lands at `t + delay ≥ t + L`, beyond the window), so all shards
//! dispatch their window concurrently with zero coordination — the
//! classical conservative-PDES lookahead argument, with the null messages
//! replaced by a barrier because windows are computed globally.
//!
//! Bit-identity with the serial engine rests on three mechanisms:
//!
//! 1. **Shared handlers.** Workers call the same
//!    [`dispatch_node_event`] the serial loop calls, so per-event behaviour
//!    is byte-identical and only event *order* is at stake.
//! 2. **Provisional sequence replay.** Event order is `(time, seq)` where
//!    `seq` is the serial engine's global schedule counter. A worker cannot
//!    know its true counter values mid-window, so it stamps schedules with
//!    provisional numbers (`PROV_BASE | n`, shard-local). At the barrier
//!    the coordinator *replays* the merged dispatch logs in serial order
//!    and hands out true counter values exactly as the serial engine would
//!    have, then retags every pending event. Raw comparisons stay correct
//!    mid-window because provisional numbers sort after all true numbers
//!    and shard-local provisional order equals serial order restricted to
//!    that shard.
//! 3. **Outbox delivery.** The only runtime cross-shard event is
//!    `PacketArrival`; the queue's routing hook diverts foreign arrivals to
//!    per-destination outboxes, which the barrier translates and delivers.
//!    Lookahead guarantees every delivery lands at or beyond the next
//!    window's floor; anything earlier is counted in
//!    [`Simulator::par_causality_violations`] (always 0 when the lookahead
//!    argument holds).
//!
//! Engine-global events (trace ticks, faults, route swaps) need the whole
//! network, so they end the *epoch*: the cut stops exactly at the global's
//! `(time, seq)`, shards are gathered back into the serial simulator, the
//! global dispatches through the ordinary serial path, and the next epoch
//! re-scatters. Runs without faults or trace sampling never gather.
//!
//! Serial fallbacks (handled by the caller or by returning `false` from
//! [`drive_parallel`]): a single partition, a zero-delay cross link (no
//! lookahead), `run_until_all_complete` (polls a global counter per event)
//! and audit builds (checkpoints walk the whole network).

use std::sync::{mpsc, Arc};
use std::thread;

use crate::cchooks::RateController;
use crate::config::SimConfig;
use crate::event::{Event, EventQueue, ParRoute, PROV_BASE};
use crate::packet::PacketPool;
use crate::partition::{partition, PartitionStrategy};
use crate::routing::Routing;
use crate::sim::{dispatch_node_event, node_class, Ctx, FlowSpec, Node, Simulator};
use crate::topology::Topology;
use crate::trace::{DeliveryEvent, FlowRecord, MarkEvent, Trace};
use lossless_flowctl::{SimDuration, SimTime};

/// One dispatched event in a worker's window log: the event's key as
/// popped (seq may be provisional) and the shard's provisional-schedule
/// count *after* the dispatch ran, so the barrier replay knows exactly
/// which provisional numbers this dispatch handed out.
#[derive(Debug, Clone, Copy)]
struct DispatchRec {
    at: SimTime,
    seq: u64,
    prov_after: u64,
}

/// Everything one worker owns: its slice of the node table, the
/// controllers of flows sourced in it, a private queue/pool/trace/obs, and
/// the window dispatch log.
struct Shard {
    id: u32,
    nodes: Vec<Option<Node>>,
    pending_cc: Vec<Option<Box<dyn RateController>>>,
    queue: EventQueue,
    trace: Trace,
    pool: PacketPool,
    obs: lossless_obs::Obs,
    prof: lossless_obs::prof::Prof,
    log: Vec<DispatchRec>,
    /// Dispatch seq of the event that recorded `trace.marks[i]` /
    /// `trace.deliveries[i]` — the key that lets the gather merge
    /// reconstruct the exact serial interleaving of same-timestamp
    /// records. Provisional entries are translated at each barrier;
    /// `tagged_marks` / `tagged_deliveries` mark the already-final
    /// prefix.
    mark_tags: Vec<u64>,
    delivery_tags: Vec<u64>,
    tagged_marks: usize,
    tagged_deliveries: usize,
}

/// A window assignment sent to a worker: its shard and the exclusive
/// `(time, seq)` cut to dispatch up to.
struct Cmd {
    shard: Shard,
    cut: (SimTime, u64),
}

/// Immutable simulation state shared by all workers for one epoch. Globals
/// (which mutate routing and link health) only ever dispatch *between*
/// epochs, so plain shared references suffice.
#[derive(Clone, Copy)]
struct Shared<'a> {
    topo: &'a Topology,
    routing: &'a Routing,
    cfg: &'a SimConfig,
    flows: &'a [FlowSpec],
    links: &'a crate::fault::LinkState,
}

/// `t + d` without wrapping at the far end of the clock.
fn plus(t: SimTime, d: SimDuration) -> SimTime {
    SimTime::from_ps(t.as_ps().saturating_add(d.as_ps()))
}

/// Wall-clock accounting for one parallel run, printed to stderr at the
/// end of [`drive_parallel`] when `TCD_PAR_STATS=1`. Purely diagnostic:
/// reads `Instant` only, never feeds simulation state.
#[derive(Default)]
struct ParStats {
    epochs: u64,
    windows: u64,
    scatter: std::time::Duration,
    wait: std::time::Duration,
    barrier: std::time::Duration,
    gather: std::time::Duration,
}

impl ParStats {
    fn armed() -> Option<Self> {
        std::env::var("TCD_PAR_STATS")
            .is_ok_and(|v| v != "0")
            .then(Self::default)
    }

    fn report(&self, wall: std::time::Duration) {
        eprintln!(
            "par-stats: {} epochs, {} windows | scatter {:?} | worker-wait {:?} | \
             barrier {:?} | gather {:?} | total {:?}",
            self.epochs, self.windows, self.scatter, self.wait, self.barrier, self.gather, wall
        );
    }
}

/// Map a possibly-provisional sequence number through a shard's replay map.
/// The lookup is total: every provisional number was assigned by a logged
/// dispatch the barrier replay has already consumed. Called only from the
/// once-per-window barrier, never per event.
fn translate(seq: u64, map: &[u64]) -> u64 {
    if seq >= PROV_BASE {
        map[(seq - PROV_BASE) as usize]
    } else {
        seq
    }
}

/// Run `sim` up to `end` on `workers` cores. Returns `false` (having done
/// nothing) when the topology yields no usable lookahead, in which case
/// the caller falls back to the serial loop.
pub(crate) fn drive_parallel(sim: &mut Simulator, end: SimTime, workers: usize) -> bool {
    let pm = partition(&sim.topo, workers, PartitionStrategy::Auto);
    let Some(la) = pm.lookahead else {
        return false;
    };
    if pm.parts < 2 {
        return false;
    }
    let part_of = Arc::new(pm.part_of);
    let mut stats = ParStats::armed();
    // simlint: allow(wall-clock) -- opt-in diagnostics: measures the executor, never feeds sim state
    let start = stats.as_ref().map(|_| std::time::Instant::now());
    loop {
        match sim.queue.peek_time() {
            Some(t) if t <= end => {}
            _ => break,
        }
        run_epoch(sim, end, la, &part_of, pm.parts, &mut stats);
    }
    if let (Some(st), Some(t0)) = (&mut stats, start) {
        st.report(t0.elapsed());
    }
    true
}

/// One scatter → window loop → gather cycle. Ends at `end`, at queue
/// exhaustion, or at the first engine-global event (which then dispatches
/// serially, along with any immediately following globals).
// simlint: allow(hot-path-panic) -- shard slots are taken and returned in lock-step; a missing
// shard or dead worker is an engine bug, not a simulation state
fn run_epoch(
    sim: &mut Simulator,
    end: SimTime,
    la: SimDuration,
    part_of: &Arc<Vec<u32>>,
    parts: usize,
    stats: &mut Option<ParStats>,
) {
    // simlint: allow(wall-clock) -- opt-in diagnostics: measures the executor, never feeds sim state
    let t0 = stats.as_ref().map(|_| std::time::Instant::now());
    let (mut shards, mut globals, mut counter) = scatter(sim, part_of, parts);
    if let (Some(st), Some(t)) = (stats.as_mut(), t0) {
        st.epochs += 1;
        st.scatter += t.elapsed();
    }
    // Replay-map scratch, reused across windows so per-window counter
    // assignment never reallocates after warmup.
    // simlint: allow(hot-path-alloc) -- one allocation per epoch, reused by every window barrier
    let mut maps: Vec<Vec<u64>> = vec![Vec::new(); parts];
    let mut causality = 0u64;
    let mut g_pending = false;
    {
        let shared = Shared {
            topo: &sim.topo,
            routing: &sim.routing,
            cfg: &sim.cfg,
            flows: &sim.flows,
            links: &sim.links,
        };
        thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<(usize, Shard)>();
            // simlint: allow(hot-path-alloc) -- once-per-epoch worker-channel
            // setup; amortized over every event the epoch dispatches
            let mut cmd_txs = Vec::with_capacity(parts);
            for _ in 0..parts {
                let (tx, rx) = mpsc::channel::<Cmd>();
                cmd_txs.push(tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok(mut cmd) = rx.recv() {
                        let id = cmd.shard.id as usize;
                        run_window(&mut cmd.shard, cmd.cut, shared);
                        if res_tx.send((id, cmd.shard)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            loop {
                let tmin = shards
                    .iter()
                    .filter_map(|s| s.as_ref().and_then(|s| s.queue.peek_time()))
                    .min();
                let g_head = globals.first().map(|&(at, seq, _)| (at, seq));
                let node_due = tmin.is_some_and(|t| t <= end);
                let g_due = g_head.is_some_and(|(t, _)| t <= end);
                if !node_due && !g_due {
                    break;
                }
                // The cut is the lexicographic minimum of the three
                // window-enders: lookahead horizon, next global, end time.
                let mut cut = (end, u64::MAX);
                if let Some(t) = tmin {
                    let w = (plus(t, la), 0u64);
                    if w < cut {
                        cut = w;
                    }
                }
                if let Some(k) = g_head {
                    if k < cut {
                        cut = k;
                        g_pending = true;
                    }
                }
                // simlint: allow(wall-clock) -- opt-in diagnostics: measures the executor, never feeds sim state
                let t0 = stats.as_ref().map(|_| std::time::Instant::now());
                for (s, slot) in shards.iter_mut().enumerate() {
                    let shard = slot.take().expect("shard resident between windows");
                    cmd_txs[s].send(Cmd { shard, cut }).expect("worker alive");
                }
                for _ in 0..parts {
                    let (id, shard) = res_rx.recv().expect("worker returns its shard");
                    shards[id] = Some(shard);
                }
                // simlint: allow(wall-clock) -- opt-in diagnostics: measures the executor, never feeds sim state
                let t1 = stats.as_ref().map(|_| std::time::Instant::now());
                causality += barrier(&mut shards, &mut counter, cut.0, &mut maps);
                if let (Some(st), Some(a), Some(b)) = (stats.as_mut(), t0, t1) {
                    st.windows += 1;
                    st.wait += b - a;
                    st.barrier += b.elapsed();
                }
                if g_pending {
                    break;
                }
            }
            drop(cmd_txs);
        });
    }
    // simlint: allow(wall-clock) -- opt-in diagnostics: measures the executor, never feeds sim state
    let t0 = stats.as_ref().map(|_| std::time::Instant::now());
    gather(sim, shards, counter, causality, part_of);
    if let (Some(st), Some(t)) = (stats.as_mut(), t0) {
        st.gather += t.elapsed();
    }
    if g_pending {
        // The cut stopped exactly at the first global's key, so it is now
        // the queue head; dispatch it — and any directly following
        // globals — through the ordinary serial path. A node event at the
        // same timestamp forces a re-scatter, because only the seq (which
        // `peek_time` cannot see) decides who goes first; the next
        // epoch's cut resolves the tie exactly.
        let (at, _, ev) = globals.remove(0);
        dispatch_gathered(sim, at, ev);
        while let Some(&(gt, _, _)) = globals.first() {
            if gt > end || sim.queue.peek_time().is_some_and(|t| t <= gt) {
                break;
            }
            let (at, _, ev) = globals.remove(0);
            dispatch_gathered(sim, at, ev);
        }
    }
    for (at, seq, ev) in globals {
        sim.queue.schedule_with_seq(at, seq, ev);
    }
}

/// Split the simulator into shards: drain the master queue into per-shard
/// queues (globals held back, sorted), move node and controller ownership,
/// split the observability layer, fork the profiler. Returns the shards,
/// the pending globals, and the master schedule counter.
// simlint: cold -- runs once per epoch (scatter/gather bracket the window loop); its
// allocations and ownership moves are amortized over every event the epoch dispatches
fn scatter(
    sim: &mut Simulator,
    part_of: &Arc<Vec<u32>>,
    parts: usize,
) -> (Vec<Option<Shard>>, Vec<(SimTime, u64, Event)>, u64) {
    let counter = sim.queue.seq_counter();
    let qnow = sim.queue.now();
    let mut per: Vec<Vec<(SimTime, u64, Event)>> = (0..parts).map(|_| Vec::new()).collect();
    let mut globals = Vec::new();
    for (at, seq, ev) in sim.queue.take_all() {
        match event_partition(&ev, part_of, &sim.flows) {
            Some(p) => per[p].push((at, seq, ev)),
            None => globals.push((at, seq, ev)),
        }
    }
    globals.sort_by_key(|&(at, seq, _)| (at, seq));
    let mut shards = Vec::with_capacity(parts);
    for (s, events) in per.into_iter().enumerate() {
        let mut queue = EventQueue::with_kind(sim.cfg.queue);
        queue.set_now(qnow);
        for (at, seq, ev) in events {
            queue.schedule_with_seq(at, seq, ev);
        }
        queue.set_route(Some(Box::new(ParRoute {
            part_of: Arc::clone(part_of),
            me: s as u32,
            outboxes: (0..parts).map(|_| Vec::new()).collect(),
        })));
        let nodes: Vec<Option<Node>> = sim
            .nodes
            .iter_mut()
            .enumerate()
            .map(|(i, n)| {
                if part_of[i] == s as u32 {
                    n.take()
                } else {
                    None
                }
            })
            .collect();
        // Blank controller table; one pass below moves each unstarted
        // controller to its owner (cheaper than a scan per shard at
        // large flow counts).
        let pending_cc: Vec<Option<Box<dyn RateController>>> = std::iter::repeat_with(|| None)
            .take(sim.pending_cc.len())
            .collect();
        let mut trace = Trace::new(sim.trace.record_marks);
        trace.record_deliveries = sim.trace.record_deliveries;
        // Shards carry the full flow table (destination hosts update their
        // flows' records); retention caps stay master-side so the merge
        // applies them over the *global* order.
        trace.flows = sim.trace.flows.clone();
        let obs = sim.obs.split_for_nodes(|n| part_of[n as usize] == s as u32);
        // simlint: allow(prof-leak) -- sanctioned fork point: each worker
        // profiles into its own arena, merged back at gather
        let prof = sim.profiler.fork();
        shards.push(Some(Shard {
            id: s as u32,
            nodes,
            pending_cc,
            queue,
            trace,
            pool: PacketPool::new(),
            obs,
            prof,
            log: Vec::new(),
            mark_tags: Vec::new(),
            delivery_tags: Vec::new(),
            tagged_marks: 0,
            tagged_deliveries: 0,
        }));
    }
    // One pass over the flow table moves every unstarted controller to
    // its source's shard. Flows already started skip the ownership
    // lookup entirely, so post-start epochs touch almost nothing.
    for (i, c) in sim.pending_cc.iter_mut().enumerate() {
        if c.is_some() {
            let owner = part_of[sim.flows[i].src.index()] as usize;
            shards[owner].as_mut().expect("just built").pending_cc[i] = c.take();
        }
    }
    (shards, globals, counter)
}

/// Which shard dispatches this event, or `None` for engine-globals.
/// Node and flow ids index in bounds by construction. Called only from
/// the cold scatter/gather bracket, never per dispatched event.
fn event_partition(ev: &Event, part_of: &[u32], flows: &[FlowSpec]) -> Option<usize> {
    let node = match ev {
        Event::PacketArrival { node, .. }
        | Event::PortTx { node, .. }
        | Event::FcclTick { node, .. }
        | Event::DetectorTimer { node, .. }
        | Event::CcTimer { node, .. }
        | Event::HostDrain { node } => *node,
        Event::FlowStart { flow } => flows[flow.0 as usize].src,
        _ => return None,
    };
    Some(part_of[node.index()] as usize)
}

/// Dispatch one shard's window: pop every event with key below `cut`,
/// running the exact serial per-event wiring (profiler span, obs dispatch
/// counter, recorder checkpoint, timeline tick) against shard-local state,
/// and log each dispatch for the barrier replay.
fn run_window(shard: &mut Shard, cut: (SimTime, u64), sh: Shared<'_>) {
    shard.queue.begin_window();
    while let Some((at, seq, ev)) = shard.queue.pop_cut(cut) {
        shard.trace.events += 1;
        shard.obs.dispatched(ev.kind_index());
        // simlint: allow(prof-leak) -- sanctioned worker wiring, mirrors drive(): arm_span is a
        // deterministic counter check and both branches dispatch identically
        if shard.prof.arm_span() {
            let kind = ev.kind_index();
            let class = node_class(&shard.nodes, &ev);
            shard.prof.span_open();
            dispatch_in_shard(shard, sh, at, ev);
            shard.prof.span_close(kind, class);
        } else {
            dispatch_in_shard(shard, sh, at, ev);
        }
        shard.obs.maybe_checkpoint(at, shard.trace.events);
        // simlint: allow(prof-leak) -- tick cadence is a deterministic counter check;
        // occupancy/pool reads only flow into the profiler
        if shard.prof.tick_due(shard.trace.events) {
            let (pending, staged, overflow) = shard.queue.occupancy();
            let (hit, miss) = shard.pool.stats();
            shard
                .prof
                .record_tick(at, shard.trace.events, pending, staged, overflow, hit, miss);
        }
        // Tag every record this dispatch appended with its seq: the
        // serial engine pops by (time, seq), so (t, tag) is exactly the
        // serial append order of the merged streams.
        shard.mark_tags.resize(shard.trace.marks.len(), seq);
        shard
            .delivery_tags
            .resize(shard.trace.deliveries.len(), seq);
        // Only dispatches that handed out provisional numbers matter to
        // the barrier replay: consuming a zero-schedule record advances
        // no counter, so logging it would only fatten the merge.
        let prov_after = shard.queue.prov_count();
        if shard
            .log
            .last()
            .map_or(prov_after > 0, |r| r.prov_after < prov_after)
        {
            shard.log.push(DispatchRec {
                at,
                seq,
                prov_after,
            });
        }
    }
}

/// Build a [`Ctx`] over the shard's private state and run the shared
/// node-event dispatcher.
fn dispatch_in_shard(shard: &mut Shard, sh: Shared<'_>, now: SimTime, ev: Event) {
    let mut ctx = Ctx {
        now,
        q: &mut shard.queue,
        topo: sh.topo,
        routing: sh.routing,
        cfg: sh.cfg,
        trace: &mut shard.trace,
        flows: sh.flows,
        pool: &mut shard.pool,
        obs: &mut shard.obs,
        links: sh.links,
    };
    dispatch_node_event(&mut shard.nodes, &mut shard.pending_cc, &mut ctx, ev);
}

/// The window barrier: replay the merged dispatch logs in serial order to
/// assign true sequence numbers to every provisional schedule, deliver the
/// outboxes (checking the lookahead floor), and retag pending events.
/// Returns the number of causality violations (deliveries below the floor).
// simlint: cold -- runs once per lock-step window, between (not inside) the workers'
// dispatch loops; replay-map lookups resolve because a provisional seq's scheduling
// dispatch always precedes it in the same shard log
fn barrier(
    shards: &mut [Option<Shard>],
    counter: &mut u64,
    ceiling: SimTime,
    maps: &mut [Vec<u64>],
) -> u64 {
    let n = shards.len();
    for m in maps.iter_mut() {
        m.clear();
    }
    let mut idx = vec![0usize; n];
    let mut prov_done = vec![0u64; n];
    // Phase 1: k-way merge of the logs by (time, translated seq) — the
    // exact order the serial engine would have dispatched — assigning
    // counter values for each dispatch's schedules as it is consumed.
    //
    // Two things keep this O(records), not O(records × shards): each
    // shard's head key is computed once per advance and cached (`heads`),
    // and after picking the winning shard we drain a *run* of its records
    // while they stay below the runner-up key, so same-shard bursts — the
    // common case, since a window's same-partition traffic never
    // interleaves with another shard at packet granularity — cost one
    // comparison each instead of a full head scan.
    let mut heads: Vec<Option<(SimTime, u64)>> = (0..n)
        .map(|s| {
            let sh = shards[s].as_ref()?;
            sh.log.first().map(|r| (r.at, translate(r.seq, &maps[s])))
        })
        .collect();
    loop {
        let mut best: Option<((SimTime, u64), usize)> = None;
        let mut next_best: Option<(SimTime, u64)> = None;
        for (s, head) in heads.iter().enumerate() {
            let Some(key) = *head else { continue };
            match best {
                Some((bk, _)) if key >= bk => {
                    if next_best.is_none_or(|nk| key < nk) {
                        next_best = Some(key);
                    }
                }
                _ => {
                    if let Some((bk, _)) = best {
                        next_best = Some(bk);
                    }
                    best = Some((key, s));
                }
            }
        }
        let Some((_, s)) = best else { break };
        let log = &shards[s].as_ref().expect("shard resident").log;
        loop {
            let rec = log[idx[s]];
            idx[s] += 1;
            while prov_done[s] < rec.prov_after {
                maps[s].push(*counter);
                *counter += 1;
                prov_done[s] += 1;
            }
            let Some(next) = log.get(idx[s]) else {
                heads[s] = None;
                break;
            };
            let key = (next.at, translate(next.seq, &maps[s]));
            if next_best.is_some_and(|nk| key >= nk) {
                heads[s] = Some(key);
                break;
            }
        }
    }
    // Phase 2: deliver the outboxes with translated seqs, counting any
    // delivery below the next window's floor.
    let mut violations = 0u64;
    for s in 0..n {
        let boxes = {
            let sh = shards[s].as_mut().expect("shard resident");
            let r = sh
                .queue
                .route_mut()
                .expect("window route installed at scatter");
            std::mem::replace(&mut r.outboxes, (0..n).map(|_| Vec::new()).collect())
        };
        for (d, events) in boxes.into_iter().enumerate() {
            for (at, seq, ev) in events {
                if at < ceiling {
                    violations += 1;
                }
                let t = translate(seq, &maps[s]);
                shards[d]
                    .as_mut()
                    .expect("shard resident")
                    .queue
                    .schedule_with_seq(at, t, ev);
            }
        }
    }
    // Phase 3: retag every pending provisional seq to its true value,
    // including the mark/delivery tags recorded this window.
    for (s, slot) in shards.iter_mut().enumerate() {
        let sh = slot.as_mut().expect("shard resident");
        sh.queue.retag(&maps[s]);
        for t in &mut sh.mark_tags[sh.tagged_marks..] {
            *t = translate(*t, &maps[s]);
        }
        sh.tagged_marks = sh.mark_tags.len();
        for t in &mut sh.delivery_tags[sh.tagged_deliveries..] {
            *t = translate(*t, &maps[s]);
        }
        sh.tagged_deliveries = sh.delivery_tags.len();
        sh.log.clear();
    }
    violations
}

/// Merge the shards back into the serial simulator: nodes and controllers
/// home, queues drain into the master queue (all seqs true by now), trace
/// counters sum, per-flow records come from the destination's shard, marks
/// and deliveries merge in deterministic content order, obs and profiler
/// absorb. Restores the master schedule counter and clock.
// simlint: cold -- runs once per epoch, after every worker has returned its shard;
// the merge sorts and re-homing touch each record once, off the per-event path
fn gather(
    sim: &mut Simulator,
    shards: Vec<Option<Shard>>,
    counter: u64,
    causality: u64,
    part_of: &[u32],
) {
    let mut marks: Vec<(u64, MarkEvent)> = Vec::new();
    let mut deliveries: Vec<(u64, DeliveryEvent)> = Vec::new();
    let mut flow_tables: Vec<Vec<FlowRecord>> = Vec::with_capacity(part_of.len());
    let mut max_now = sim.queue.now();
    for slot in shards {
        let mut sh = slot.expect("every shard returned at epoch end");
        for (i, n) in sh.nodes.iter_mut().enumerate() {
            if let Some(n) = n.take() {
                sim.nodes[i] = Some(n);
            }
        }
        // A controller lives in exactly one shard's table (its source's),
        // so every `Some` homes unconditionally — no ownership lookups.
        for (i, c) in sh.pending_cc.iter_mut().enumerate() {
            if c.is_some() {
                sim.pending_cc[i] = c.take();
            }
        }
        max_now = max_now.max(sh.queue.now());
        sim.queue.add_clamped_past(sh.queue.clamped_past());
        sh.queue.set_route(None);
        for (at, seq, ev) in sh.queue.take_all() {
            debug_assert!(seq < PROV_BASE, "provisional seq survived the barrier");
            sim.queue.schedule_with_seq(at, seq, ev);
        }
        let tr = sh.trace;
        sim.trace.events += tr.events;
        sim.trace.pause_frames += tr.pause_frames;
        sim.trace.forwarded_pkts += tr.forwarded_pkts;
        sim.trace.drops += tr.drops;
        sim.trace.completed_count += tr.completed_count;
        marks.extend(sh.mark_tags.iter().copied().zip(tr.marks));
        deliveries.extend(sh.delivery_tags.iter().copied().zip(tr.deliveries));
        flow_tables.push(tr.flows);
        sim.obs.absorb(sh.obs);
        // simlint: allow(prof-leak) -- the matching merge for scatter's
        // fork: shard span counts fold back into the master profiler
        sim.profiler.absorb(&sh.prof);
    }
    // Per-flow records are mutated only at the destination host
    // (`on_deliver_at` / `on_complete`), so one indexed pass over the
    // flow table pulls each record from its destination's shard.
    for i in 0..sim.trace.flows.len() {
        let owner = part_of[sim.flows[i].dst.index()] as usize;
        sim.trace.flows[i] = flow_tables[owner][i];
    }
    // Mark and delivery streams merge by (time, dispatch seq) — the
    // serial engine's pop order — so the merged vectors are bit-identical
    // to a serial run, same-timestamp interleavings included. Records
    // from one dispatch share a key and stay in shard (= append) order
    // because the sort is stable. The master retention cap applies here,
    // over the merged order, exactly where serial would have applied it.
    marks.sort_by_key(|(tag, m)| (m.t, *tag));
    for (tag, m) in marks {
        debug_assert!(tag < PROV_BASE, "provisional mark tag survived the barrier");
        sim.trace.on_mark(m.t, m.node, m.port, m.flow, m.code);
    }
    deliveries.sort_by_key(|(tag, d)| (d.t, *tag));
    sim.trace
        .deliveries
        .extend(deliveries.into_iter().map(|(_, d)| d));
    sim.queue.set_seq_counter(counter);
    sim.queue.set_now(max_now);
    sim.par_causality += causality;
}

/// Dispatch a gathered engine-global event through the serial path, with
/// the serial loop's exact per-event wiring.
fn dispatch_gathered(sim: &mut Simulator, at: SimTime, ev: Event) {
    sim.queue.set_now(at);
    // simlint: allow(prof-leak) -- sanctioned wiring, mirrors drive(): arm_span is a
    // deterministic counter check and both branches dispatch identically
    if sim.profiler.arm_span() {
        let kind = ev.kind_index();
        let class = node_class(&sim.nodes, &ev);
        sim.profiler.span_open();
        sim.dispatch(at, ev);
        sim.profiler.span_close(kind, class);
    } else {
        sim.dispatch(at, ev);
    }
    sim.obs.maybe_checkpoint(at, sim.trace.events);
    // simlint: allow(prof-leak) -- tick cadence is a deterministic counter check;
    // occupancy/pool reads only flow into the profiler
    if sim.profiler.tick_due(sim.trace.events) {
        let (pending, staged, overflow) = sim.queue.occupancy();
        let (hit, miss) = sim.pool.stats();
        sim.profiler
            .record_tick(at, sim.trace.events, pending, staged, overflow, hit, miss);
    }
}
