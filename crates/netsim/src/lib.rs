//! `lossless-netsim` — a deterministic, packet-level, discrete-event
//! simulator for lossless networks.
//!
//! This is the substrate on which the TCD paper's experiments run. It
//! models:
//!
//! * **CEE mode**: shared-buffer Ethernet switches with per-ingress PFC
//!   accounting (the architecture of the ns-3 RDMA simulator the paper
//!   builds on) — see [`switch`];
//! * **InfiniBand mode**: input-buffered virtual-output-queue switches with
//!   per-VL credit-based flow control and periodic FCCL credit updates —
//!   see [`ibswitch`];
//! * **hosts** with per-flow rate-paced NICs, receiver-side feedback
//!   generation (CNP / per-packet ACK / BECN) and pluggable end-to-end
//!   congestion controllers — see [`host`] and the [`cchooks`] traits;
//! * congestion detectors ([`tcd_core::CongestionDetector`]) attached to
//!   every egress (port, priority/VL) pair — TCD or the binary baselines.
//!
//! The engine ([`sim`]) is single-threaded and totally deterministic:
//! events are ordered by `(time, sequence)`, time is integer picoseconds,
//! and all randomness comes from seeded generators. Two runs with the same
//! configuration produce bit-identical traces, which the test suite relies
//! on. (A discrete-event simulator is pure CPU-bound computation, so per
//! the async-Rust guidance there is deliberately no async runtime here.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod cchooks;
pub mod config;
pub mod event;
pub mod fault;
pub mod host;
pub mod ibswitch;
pub mod packet;
#[cfg(not(feature = "audit"))]
mod par;
pub mod partition;
pub mod routing;
pub mod sim;
pub mod switch;
pub mod topology;
pub mod trace;

#[cfg(feature = "audit")]
pub use audit::{Audit, AuditConfig, AuditMode, InvariantFamily, Violation};
pub use cchooks::{CcAction, CcEvent, RateController};
pub use config::{DetectorKind, FeedbackMode, SimConfig};
pub use event::QueueKind;
pub use fault::{FaultEvent, FaultKind, FaultPlan, LinkState};
pub use packet::{FlowId, Packet, PacketKind};
pub use partition::{partition, PartitionMap, PartitionStrategy};
pub use sim::Simulator;
pub use topology::{NodeId, NodeKind, Topology};

// Re-export base quantities for downstream convenience.
pub use lossless_flowctl::{Rate, SimDuration, SimTime};
pub use tcd_core::{CodePoint, TernaryState};
