//! Property-based tests of the statistics utilities.

use lossless_flowctl::SimTime;
use lossless_stats::fct::SizeBuckets;
use lossless_stats::timeseries::{downsample, rate_series};
use lossless_stats::{mean, percentile};
use proptest::prelude::*;

proptest! {
    /// Percentiles lie within [min, max] and are monotone in p.
    #[test]
    fn percentile_bounds_and_monotonicity(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = percentile(&values, p).unwrap();
            prop_assert!(v >= min && v <= max);
            prop_assert!(v >= prev, "percentile not monotone at p={p}");
            prev = v;
        }
    }

    /// The mean lies within [min, max].
    #[test]
    fn mean_within_range(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let m = mean(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }

    /// Size buckets partition: every size maps to exactly one bucket, and
    /// grouping preserves the total count.
    #[test]
    fn buckets_partition(sizes in proptest::collection::vec(0u64..100_000_000, 0..300)) {
        let b = SizeBuckets::hadoop_buckets();
        let flows: Vec<(u64, f64)> = sizes.iter().map(|&s| (s, 1.0)).collect();
        let groups = b.group(&flows);
        prop_assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), flows.len());
        for &s in &sizes {
            prop_assert!(b.index(s) < b.len());
        }
    }

    /// Differentiating a non-decreasing cumulative byte counter never
    /// yields a negative rate.
    #[test]
    fn rate_series_is_non_negative(increments in proptest::collection::vec((1u64..100, 0u64..1_000_000), 2..100)) {
        let mut t = 0u64;
        let mut bytes = 0u64;
        let mut samples = Vec::new();
        for (dt, db) in increments {
            t += dt;
            bytes += db;
            samples.push((SimTime::from_us(t), bytes));
        }
        let series = rate_series(&samples);
        prop_assert_eq!(series.len(), samples.len() - 1);
        for p in &series {
            prop_assert!(p.gbps >= 0.0);
        }
    }

    /// Downsampling keeps endpoints, never exceeds the requested size and
    /// preserves order.
    #[test]
    fn downsample_contract(n in 1usize..2000, k in 2usize..50) {
        let series: Vec<usize> = (0..n).collect();
        let d = downsample(&series, k);
        prop_assert!(d.len() <= n.min(k.max(2)).max(2) || d.len() == n);
        prop_assert_eq!(d[0], 0);
        prop_assert_eq!(*d.last().unwrap(), n - 1);
        prop_assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }
}
