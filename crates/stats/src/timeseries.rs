//! Timeseries helpers: turn the simulator's cumulative port samples into
//! sending-rate series (the Figures 3/4/12/13/20 plots).

use lossless_flowctl::SimTime;

/// One point of a rate series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Interval end time.
    pub t: SimTime,
    /// Average sending rate over the preceding interval, in Gbit/s.
    pub gbps: f64,
}

/// Differentiate cumulative `(t, tx_bytes)` samples into per-interval
/// rates. Consecutive samples that share a timestamp (a sample taken at an
/// exact `trace_interval` boundary is emitted for both the closing and the
/// opening interval) are coalesced to the *last* cumulative value first, so
/// the boundary sample is neither double-counted nor silently dropped.
pub fn rate_series(samples: &[(SimTime, u64)]) -> Vec<RatePoint> {
    let mut dedup: Vec<(SimTime, u64)> = Vec::with_capacity(samples.len());
    for &(t, b) in samples {
        match dedup.last_mut() {
            Some(last) if last.0 == t => last.1 = b,
            _ => dedup.push((t, b)),
        }
    }
    let mut out = Vec::new();
    for w in dedup.windows(2) {
        let (t0, b0) = w[0];
        let (t1, b1) = w[1];
        if t1 <= t0 {
            continue;
        }
        let dt = t1.saturating_since(t0).as_secs_f64();
        let db = b1.saturating_sub(b0) as f64;
        out.push(RatePoint {
            t: t1,
            gbps: db * 8.0 / dt / 1e9,
        });
    }
    out
}

/// Downsample a series of `(t, value)` to at most `n` evenly spaced points
/// (keeping the first and last); used when printing long traces as a table.
pub fn downsample<T: Copy>(series: &[T], n: usize) -> Vec<T> {
    assert!(n >= 2, "need at least the endpoints");
    if series.len() <= n {
        return series.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = i * (series.len() - 1) / (n - 1);
        out.push(series[idx]);
    }
    out
}

/// The fraction of intervals during which the port was actively sending at
/// more than `threshold_gbps` — a crude ON-fraction measure for rate plots.
pub fn on_fraction(rates: &[RatePoint], threshold_gbps: f64) -> f64 {
    if rates.is_empty() {
        return 0.0;
    }
    rates.iter().filter(|r| r.gbps > threshold_gbps).count() as f64 / rates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differentiation() {
        // 5000 bytes over 1 µs = 40 Gbps.
        let s = vec![
            (SimTime::from_us(0), 0u64),
            (SimTime::from_us(1), 5_000),
            (SimTime::from_us(2), 5_000),
            (SimTime::from_us(3), 10_000),
        ];
        let r = rate_series(&s);
        assert_eq!(r.len(), 3);
        assert!((r[0].gbps - 40.0).abs() < 1e-9);
        assert!((r[1].gbps - 0.0).abs() < 1e-9);
        assert!((r[2].gbps - 40.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_timestamps_skipped() {
        let s = vec![
            (SimTime::from_us(1), 0u64),
            (SimTime::from_us(1), 100),
            (SimTime::from_us(2), 5_100),
        ];
        let r = rate_series(&s);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn boundary_sample_conserves_bytes() {
        // A sample emitted twice at an exact interval boundary (cumulative
        // counter advanced in between) must not lose the delta: the total
        // bytes across all intervals equal the cumulative span.
        let s = vec![
            (SimTime::from_us(0), 0u64),
            (SimTime::from_us(1), 0),
            (SimTime::from_us(1), 100),
            (SimTime::from_us(2), 5_100),
        ];
        let r = rate_series(&s);
        assert_eq!(r.len(), 2);
        let total_bytes: f64 = r.iter().map(|p| p.gbps * 1e9 / 8.0 * 1e-6).sum();
        assert!((total_bytes - 5_100.0).abs() < 1e-6, "{total_bytes}");
        // An exact duplicate (same time, same value) is a no-op.
        let dup = vec![
            (SimTime::from_us(0), 0u64),
            (SimTime::from_us(1), 5_000),
            (SimTime::from_us(1), 5_000),
            (SimTime::from_us(2), 5_000),
        ];
        let rd = rate_series(&dup);
        assert_eq!(rd.len(), 2);
        assert!((rd[0].gbps - 40.0).abs() < 1e-9);
        assert!((rd[1].gbps - 0.0).abs() < 1e-9);
    }

    #[test]
    fn downsampling_keeps_endpoints() {
        let series: Vec<u32> = (0..1000).collect();
        let d = downsample(&series, 11);
        assert_eq!(d.len(), 11);
        assert_eq!(d[0], 0);
        assert_eq!(*d.last().unwrap(), 999);
        let short = downsample(&series[..5], 11);
        assert_eq!(short.len(), 5);
    }

    #[test]
    fn on_fraction_counts_active_intervals() {
        let r = vec![
            RatePoint {
                t: SimTime::from_us(1),
                gbps: 40.0,
            },
            RatePoint {
                t: SimTime::from_us(2),
                gbps: 0.0,
            },
            RatePoint {
                t: SimTime::from_us(3),
                gbps: 40.0,
            },
            RatePoint {
                t: SimTime::from_us(4),
                gbps: 0.0,
            },
        ];
        assert!((on_fraction(&r, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(on_fraction(&[], 1.0), 0.0);
    }
}
