//! Flow completion time (FCT) slowdown — the paper's headline metric.
//!
//! "FCT slowdown is calculated by the ratio between real FCT and baseline
//! FCT" (§5.2.1), where the baseline is the FCT the flow would achieve
//! alone on an idle network: serialization at the line rate plus the base
//! (propagation + per-hop store-and-forward) latency.

use crate::percentile::{mean, percentile};
use lossless_flowctl::{Rate, SimDuration};

/// The idle-network FCT of a `size`-byte flow on a path with line rate
/// `rate` and one-way base latency `base_latency` (propagation plus
/// per-hop store-and-forward delays).
pub fn ideal_fct(size: u64, rate: Rate, base_latency: SimDuration) -> SimDuration {
    rate.serialize_time(size) + base_latency
}

/// Slowdown of one flow.
pub fn slowdown(fct: SimDuration, ideal: SimDuration) -> f64 {
    assert!(ideal > SimDuration::ZERO);
    fct.as_secs_f64() / ideal.as_secs_f64()
}

/// Summary statistics of a set of slowdowns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownSummary {
    /// Number of flows.
    pub count: usize,
    /// Mean slowdown.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl SlowdownSummary {
    /// Summarize a set of slowdowns; `None` if empty.
    pub fn of(slowdowns: &[f64]) -> Option<SlowdownSummary> {
        Some(SlowdownSummary {
            count: slowdowns.len(),
            mean: mean(slowdowns)?,
            p50: percentile(slowdowns, 50.0)?,
            p95: percentile(slowdowns, 95.0)?,
            p99: percentile(slowdowns, 99.0)?,
        })
    }
}

/// Per-size-bucket breakdown: `(upper bound exclusive, label)` pairs define
/// the buckets; flows above the last bound land in a final "larger" bucket.
#[derive(Debug, Clone)]
pub struct SizeBuckets {
    bounds: Vec<u64>,
    labels: Vec<String>,
}

impl SizeBuckets {
    /// Buckets with upper bounds `bounds` (strictly increasing). Labels are
    /// generated as `<X`, plus a final `>=last`.
    pub fn new(bounds: &[u64]) -> SizeBuckets {
        assert!(!bounds.is_empty());
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must increase"
        );
        let mut labels: Vec<String> = bounds.iter().map(|b| format!("<{}", human(*b))).collect();
        labels.push(format!(">={}", human(*bounds.last().unwrap())));
        SizeBuckets {
            bounds: bounds.to_vec(),
            labels,
        }
    }

    /// The paper's small/medium/large split for Hadoop-like workloads.
    pub fn hadoop_buckets() -> SizeBuckets {
        SizeBuckets::new(&[10_000, 50_000, 80_000, 120_000, 1_000_000])
    }

    /// Buckets for WebSearch-like workloads.
    pub fn websearch_buckets() -> SizeBuckets {
        SizeBuckets::new(&[50_000, 500_000, 1_000_000, 5_000_000])
    }

    /// Bucket index of a flow size.
    pub fn index(&self, size: u64) -> usize {
        self.bounds
            .iter()
            .position(|&b| size < b)
            .unwrap_or(self.bounds.len())
    }

    /// Number of buckets (bounds + the overflow bucket).
    pub fn len(&self) -> usize {
        self.bounds.len() + 1
    }

    /// Whether there are no buckets (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bucket label.
    pub fn label(&self, idx: usize) -> &str {
        &self.labels[idx]
    }

    /// Group `(size, slowdown)` pairs into per-bucket slowdown vectors.
    pub fn group(&self, flows: &[(u64, f64)]) -> Vec<Vec<f64>> {
        let mut out = vec![Vec::new(); self.len()];
        for &(size, s) in flows {
            out[self.index(size)].push(s);
        }
        out
    }
}

fn human(bytes: u64) -> String {
    if bytes >= 1_000_000 {
        format!("{}MB", bytes / 1_000_000)
    } else if bytes >= 1_000 {
        format!("{}KB", bytes / 1_000)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_fct_composition() {
        let f = ideal_fct(100_000, Rate::from_gbps(40), SimDuration::from_us(8));
        // 100 KB at 40G = 20 µs, + 8 µs base.
        assert_eq!(f, SimDuration::from_us(28));
    }

    #[test]
    fn slowdown_of_ideal_flow_is_one() {
        let ideal = ideal_fct(1000, Rate::from_gbps(40), SimDuration::from_us(4));
        assert!((slowdown(ideal, ideal) - 1.0).abs() < 1e-12);
        assert!((slowdown(ideal * 3, ideal) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let s: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let sum = SlowdownSummary::of(&s).unwrap();
        assert_eq!(sum.count, 100);
        assert_eq!(sum.p50, 50.0);
        assert_eq!(sum.p99, 99.0);
        assert!(SlowdownSummary::of(&[]).is_none());
    }

    #[test]
    fn buckets_classify_and_label() {
        let b = SizeBuckets::new(&[10_000, 100_000]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.index(500), 0);
        assert_eq!(b.index(10_000), 1);
        assert_eq!(b.index(99_999), 1);
        assert_eq!(b.index(5_000_000), 2);
        assert_eq!(b.label(0), "<10KB");
        assert_eq!(b.label(2), ">=100KB");
    }

    #[test]
    fn grouping_partitions_all_flows() {
        let b = SizeBuckets::hadoop_buckets();
        let flows: Vec<(u64, f64)> = (0..1000)
            .map(|i| (i * 1500, 1.0 + i as f64 / 100.0))
            .collect();
        let groups = b.group(&flows);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), flows.len());
    }

    #[test]
    #[should_panic]
    fn buckets_reject_unsorted_bounds() {
        let _ = SizeBuckets::new(&[100, 100]);
    }
}
