//! Measurement post-processing: FCT slowdown, exact percentiles,
//! per-size-bucket breakdowns, and timeseries helpers for queue length and
//! sending rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod fct;
pub mod percentile;
pub mod timeseries;

pub use fct::{ideal_fct, SizeBuckets, SlowdownSummary};
pub use percentile::{mean, median, percentile};
pub use timeseries::RatePoint;
