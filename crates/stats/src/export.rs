//! CSV and JSON export primitives for post-processing in external tools.
//!
//! Deliberately minimal: plain RFC-4180-ish quoting and hand-rolled JSON
//! literals, no dependencies. The experiment binaries use this (via
//! `tcd_repro::report`) when asked to dump raw series next to their
//! printed tables; the sweep harness and observability exporters share the
//! JSON helpers so every emitted report escapes identically.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// Quote a CSV field if needed (commas, quotes, newlines).
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Render rows as CSV text.
pub fn to_csv<R, F>(headers: &[&str], rows: R) -> String
where
    R: IntoIterator<Item = F>,
    F: IntoIterator<Item = String>,
{
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        let cells: Vec<String> = row.into_iter().map(|c| quote(&c)).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Write rows to a CSV file, creating parent directories as needed.
pub fn write_csv<P, R, F>(path: P, headers: &[&str], rows: R) -> io::Result<()>
where
    P: AsRef<Path>,
    R: IntoIterator<Item = F>,
    F: IntoIterator<Item = String>,
{
    if let Some(dir) = path.as_ref().parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(headers, rows).as_bytes())
}

/// Render `s` as a JSON string literal with standard escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON-safe float formatting (JSON has no NaN/Inf; `{:?}` keeps full
/// round-trip precision for finite values).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let csv = to_csv(
            &["t", "value"],
            vec![
                vec!["1".to_string(), "2.5".to_string()],
                vec!["2".to_string(), "3.5".to_string()],
            ],
        );
        assert_eq!(csv, "t,value\n1,2.5\n2,3.5\n");
    }

    #[test]
    fn quotes_special_fields() {
        let csv = to_csv(
            &["name"],
            vec![vec!["a,b".to_string()], vec!["he said \"hi\"".to_string()]],
        );
        assert_eq!(csv, "name\n\"a,b\"\n\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn writes_file_with_parents() {
        let dir = std::env::temp_dir().join("tcd_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub").join("out.csv");
        write_csv(&path, &["a"], vec![vec!["1".to_string()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_rows_ok() {
        let csv = to_csv(&["x"], Vec::<Vec<String>>::new());
        assert_eq!(csv, "x\n");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
