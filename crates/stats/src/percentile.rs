//! Exact order statistics.

/// The `p`-th percentile (0–100) of `values` by the nearest-rank method.
/// Returns `None` on an empty slice. Does not require the input to be
/// sorted.
///
/// ```
/// use lossless_stats::percentile;
/// let v: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(percentile(&v, 99.0), Some(99.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut v: Vec<f64> = values.to_vec();
    // total_cmp: NaN sorts last instead of panicking, so exporter inputs
    // with a stray NaN degrade gracefully.
    v.sort_by(|a, b| a.total_cmp(b));
    if p == 0.0 {
        return Some(v[0]);
    }
    let rank = (p / 100.0 * v.len() as f64).ceil() as usize;
    Some(v[rank.clamp(1, v.len()) - 1])
}

/// Arithmetic mean; `None` on an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Median shorthand.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn known_values() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 95.0), Some(95.0));
        assert_eq!(percentile(&v, 99.0), Some(99.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(mean(&v), Some(50.5));
    }

    #[test]
    fn unsorted_input_is_fine() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&v), Some(3.0));
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 100.0), Some(7.0));
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn nan_input_does_not_panic() {
        // NaN sorts last under total_cmp; finite percentiles still come
        // from the finite prefix.
        let v = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 101.0);
    }
}
