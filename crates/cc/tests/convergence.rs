//! Closed-loop convergence tests: each controller driving real flows
//! through the simulator must (a) throttle under congestion, (b) recover
//! toward line rate when congestion ends, and (c) share a bottleneck
//! fairly between identical flows.

use lossless_cc::{Dcqcn, IbCc, Timely};
use lossless_netsim::cchooks::{FixedRate, RateController};
use lossless_netsim::config::{FeedbackMode, SimConfig};
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::figure2;
use lossless_netsim::Simulator;
use lossless_netsim::{Rate, SimDuration, SimTime};

fn cee_cfg(end: SimTime, feedback: FeedbackMode) -> SimConfig {
    let mut cfg = SimConfig::cee_baseline(end);
    cfg.feedback = feedback;
    cfg
}

fn cnp_feedback() -> FeedbackMode {
    FeedbackMode::CnpOnMarked {
        min_interval: SimDuration::from_us(50),
        notify_ue: false,
    }
}

/// Long flow vs. incast at the same receiver: the controller must give up
/// most of its bandwidth while the incast runs.
fn throttles_under_congestion(mk: impl Fn() -> Box<dyn RateController>, feedback: FeedbackMode) {
    let f2 = figure2(Default::default());
    let mut sim = Simulator::new(
        f2.topo.clone(),
        cee_cfg(SimTime::from_ms(3), feedback),
        RouteSelect::Ecmp,
    );
    let f1 = sim.add_flow(f2.s1, f2.r1, 100_000_000, SimTime::ZERO, mk());
    for &a in &f2.bursters {
        sim.add_flow(
            a,
            f2.r1,
            2_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    let rate = sim.flow_rate(f1).expect("flow still active");
    assert!(
        rate < Rate::from_gbps(20),
        "controller failed to throttle under a 15:1 incast: {rate:?}"
    );
}

#[test]
fn dcqcn_throttles_under_congestion() {
    throttles_under_congestion(|| Box::new(Dcqcn::standard()), cnp_feedback());
}

#[test]
fn ibcc_throttles_under_congestion() {
    // IB CC on the CEE substrate still reacts to CNPs; the full IB path is
    // exercised by the scenario tests. Here we check the controller loop.
    throttles_under_congestion(|| Box::new(IbCc::standard()), cnp_feedback());
}

#[test]
fn timely_throttles_under_congestion() {
    throttles_under_congestion(|| Box::new(Timely::standard()), FeedbackMode::AckPerPacket);
}

/// Two identical controllers sharing one bottleneck end up with similar
/// throughput (within 3:1 — packet-level fairness is approximate over a
/// short horizon) and their combined goodput approaches the line rate.
fn shares_bottleneck(mk: impl Fn() -> Box<dyn RateController>, feedback: FeedbackMode) {
    let f2 = figure2(Default::default());
    let end = SimTime::from_ms(12);
    let mut sim = Simulator::new(f2.topo.clone(), cee_cfg(end, feedback), RouteSelect::Ecmp);
    // Two bursters into R1 give a clean 2:1 bottleneck at P3.
    let a = sim.add_flow(f2.bursters[0], f2.r1, 1_000_000_000, SimTime::ZERO, mk());
    let b = sim.add_flow(f2.bursters[1], f2.r1, 1_000_000_000, SimTime::ZERO, mk());
    sim.run();
    // Converged CC rates must fill the bottleneck (controllers overshoot
    // then recover, so judge the end state, not the whole-run average).
    let ra = sim.flow_rate(a).expect("flow a active").as_gbps_f64();
    let rb = sim.flow_rate(b).expect("flow b active").as_gbps_f64();
    assert!(
        ra + rb > 25.0,
        "bottleneck underutilized at end: {ra:.1} + {rb:.1} Gbps"
    );
    let da = sim.trace.flows[a.0 as usize].delivered.bytes as f64;
    let db = sim.trace.flows[b.0 as usize].delivered.bytes as f64;
    let ratio = da.max(db) / da.min(db).max(1.0);
    assert!(ratio < 3.0, "grossly unfair split: {da} vs {db}");
}

#[test]
fn dcqcn_shares_a_bottleneck() {
    shares_bottleneck(|| Box::new(Dcqcn::standard()), cnp_feedback());
}

#[test]
fn timely_shares_a_bottleneck() {
    shares_bottleneck(|| Box::new(Timely::standard()), FeedbackMode::AckPerPacket);
}

#[test]
fn ibcc_shares_a_bottleneck() {
    shares_bottleneck(|| Box::new(IbCc::standard()), cnp_feedback());
}

/// After the competing incast ends, the controller recovers: its rate at
/// the end of the run is meaningfully above its rate right after the
/// incast.
#[test]
fn dcqcn_recovers_after_congestion() {
    let f2 = figure2(Default::default());
    let mut sim = Simulator::new(
        f2.topo.clone(),
        cee_cfg(SimTime::from_ms(30), cnp_feedback()),
        RouteSelect::Ecmp,
    );
    let f1 = sim.add_flow(
        f2.s1,
        f2.r1,
        1_000_000_000,
        SimTime::ZERO,
        Box::new(Dcqcn::standard()),
    );
    for &a in &f2.bursters {
        sim.add_flow(
            a,
            f2.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    let rate = sim.flow_rate(f1).expect("still active");
    assert!(
        rate > Rate::from_gbps(2),
        "DCQCN failed to recover 25+ ms after the incast: {rate:?}"
    );
}

#[test]
fn timely_recovers_after_congestion() {
    let f2 = figure2(Default::default());
    let mut sim = Simulator::new(
        f2.topo.clone(),
        cee_cfg(SimTime::from_ms(20), FeedbackMode::AckPerPacket),
        RouteSelect::Ecmp,
    );
    let f1 = sim.add_flow(
        f2.s1,
        f2.r1,
        1_000_000_000,
        SimTime::ZERO,
        Box::new(Timely::standard()),
    );
    for &a in &f2.bursters {
        sim.add_flow(
            a,
            f2.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run();
    let rate = sim.flow_rate(f1).expect("still active");
    assert!(
        rate > Rate::from_gbps(10),
        "TIMELY failed to recover: {rate:?}"
    );
}

#[test]
fn hpcc_throttles_and_shares_with_int() {
    // End-to-end HPCC: INT-enabled fabric, two line-rate-capable flows on
    // a 2:1 bottleneck must converge near the target utilization and split
    // fairly.
    use lossless_cc::Hpcc;
    let f2 = figure2(Default::default());
    let end = SimTime::from_ms(12);
    let mut cfg = cee_cfg(end, FeedbackMode::AckPerPacket);
    cfg.int_telemetry = true;
    let mut sim = Simulator::new(f2.topo.clone(), cfg, RouteSelect::Ecmp);
    let a = sim.add_flow(
        f2.bursters[0],
        f2.r1,
        1_000_000_000,
        SimTime::ZERO,
        Box::new(Hpcc::standard()),
    );
    let b = sim.add_flow(
        f2.bursters[1],
        f2.r1,
        1_000_000_000,
        SimTime::ZERO,
        Box::new(Hpcc::standard()),
    );
    sim.run();
    let ra = sim.flow_rate(a).expect("active").as_gbps_f64();
    let rb = sim.flow_rate(b).expect("active").as_gbps_f64();
    assert!(ra + rb > 25.0, "HPCC underutilizes: {ra:.1}+{rb:.1}");
    assert!(
        ra + rb < 48.0,
        "HPCC must not exceed the bottleneck by much"
    );
    let da = sim.trace.flows[a.0 as usize].delivered.bytes as f64;
    let db = sim.trace.flows[b.0 as usize].delivered.bytes as f64;
    assert!(
        da.max(db) / da.min(db).max(1.0) < 3.0,
        "unfair: {da} vs {db}"
    );
    // HPCC's selling point: short queues. The bottleneck never pauses.
    assert_eq!(
        sim.trace.pause_frames, 0,
        "HPCC should keep queues below PFC thresholds"
    );
}
