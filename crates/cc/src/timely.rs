//! TIMELY (Mittal et al., SIGCOMM 2015) — RTT-gradient rate control, the
//! paper's delay-based case study (§5.2.3).
//!
//! Per acknowledged packet the controller computes the smoothed RTT
//! difference, normalizes it by the minimum RTT, and:
//!
//! * `rtt < T_low` → additive increase (no gradient reaction);
//! * `rtt > T_high` → multiplicative decrease
//!   `rate ← rate·(1 − β·(1 − T_high/rtt))`;
//! * otherwise: gradient ≤ 0 → additive increase (×N in HAI mode after
//!   five consecutive non-positive-gradient completions), gradient > 0 →
//!   `rate ← rate·(1 − β·min(gradient, 1))`.
//!
//! The problem in lossless networks (paper §5.2.3): RTT inflation caused by
//! PAUSE frames is indistinguishable from congestion, so TIMELY throttles
//! victim flows. The TCD-aware variant uses the UE code point echoed in
//! ACKs: when the gradient is positive but the packet only encountered
//! undetermined ports (`T_low < rtt < T_high` and UE), the sender holds its
//! rate; CE-marked decreases use the aggressive β = 1.6 instead of 0.8.

use lossless_netsim::cchooks::{CcAction, CcEvent, RateController};
use lossless_netsim::{Rate, SimDuration, SimTime};
use tcd_core::CodePoint;

/// TIMELY parameters; defaults follow the TIMELY paper, with the additive
/// step scaled for 40 Gbps fabrics.
#[derive(Debug, Clone, Copy)]
pub struct TimelyConfig {
    /// EWMA weight for the RTT-difference filter (paper: α = 0.875 applied
    /// as `d ← (1 − α)·d + α·new` — i.e. heavily weighting the new sample).
    pub ewma_alpha: f64,
    /// Additive increase step δ (default 40 Mbps).
    pub delta: Rate,
    /// Multiplicative decrease factor β (default 0.8).
    pub beta: f64,
    /// β used when the acknowledged packet carries CE — a genuinely
    /// congested flow (TCD variant: 1.6, clamped so the rate stays
    /// positive). Equal to `beta` in standard TIMELY.
    pub beta_ce: f64,
    /// Below this RTT, always increase (default 50 µs).
    pub t_low: SimDuration,
    /// Above this RTT, always decrease (default 500 µs).
    pub t_high: SimDuration,
    /// The propagation-level minimum RTT used to normalize gradients.
    pub min_rtt: SimDuration,
    /// Consecutive non-positive-gradient completions before hyper-active
    /// increase (default 5).
    pub hai_threshold: u32,
    /// Rate floor (default 10 Mbps).
    pub min_rate: Rate,
    /// Minimum spacing between rate updates (default 25 µs ≈ one base
    /// RTT). TIMELY reacts per completion event, not per packet; with
    /// per-MTU ACKs an ungated additive increase would erase every
    /// decrease within microseconds.
    pub update_interval: SimDuration,
    /// TCD awareness: hold when the ACK echoes UE and the gradient is
    /// positive within the (T_low, T_high) band.
    pub hold_on_ue: bool,
}

impl Default for TimelyConfig {
    fn default() -> Self {
        TimelyConfig {
            ewma_alpha: 0.875,
            delta: Rate::from_mbps(40),
            beta: 0.8,
            beta_ce: 0.8,
            t_low: SimDuration::from_us(50),
            t_high: SimDuration::from_us(500),
            min_rtt: SimDuration::from_us(20),
            hai_threshold: 5,
            min_rate: Rate::from_mbps(10),
            update_interval: SimDuration::from_us(25),
            hold_on_ue: false,
        }
    }
}

impl TimelyConfig {
    /// The TCD-aware variant of §5.2.3: hold when UE with a positive
    /// gradient; cut with the aggressive β only on CE (the real
    /// contributors), keeping the standard β for unmarked/pause-inflated
    /// RTT samples.
    pub fn tcd() -> Self {
        TimelyConfig {
            beta_ce: 1.6,
            hold_on_ue: true,
            ..Default::default()
        }
    }
}

/// A TIMELY controller for one flow.
#[derive(Debug, Clone)]
pub struct Timely {
    cfg: TimelyConfig,
    line_rate: Rate,
    rate: Rate,
    prev_rtt: Option<SimDuration>,
    /// Smoothed RTT difference, in seconds (may be negative).
    rtt_diff: f64,
    /// Consecutive completions with non-positive gradient.
    neg_gradient_streak: u32,
    /// Last time the rate was updated (per-RTT gating).
    last_update: Option<SimTime>,
    decreases: u64,
    holds: u64,
}

impl Timely {
    /// New controller with `cfg`.
    pub fn new(cfg: TimelyConfig) -> Timely {
        assert!(cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0);
        assert!(cfg.t_low < cfg.t_high);
        assert!(cfg.min_rtt > SimDuration::ZERO);
        Timely {
            cfg,
            line_rate: Rate::ZERO,
            rate: Rate::ZERO,
            prev_rtt: None,
            rtt_diff: 0.0,
            neg_gradient_streak: 0,
            last_update: None,
            decreases: 0,
            holds: 0,
        }
    }

    /// Standard TIMELY.
    pub fn standard() -> Timely {
        Timely::new(TimelyConfig::default())
    }

    /// TCD-aware TIMELY.
    pub fn with_tcd() -> Timely {
        Timely::new(TimelyConfig::tcd())
    }

    /// Multiplicative decreases taken.
    pub fn decreases(&self) -> u64 {
        self.decreases
    }

    /// UE holds taken (TCD variant).
    pub fn holds(&self) -> u64 {
        self.holds
    }

    fn clamp(&self, r: Rate) -> Rate {
        r.max(self.cfg.min_rate).min(self.line_rate)
    }

    fn on_rtt(&mut self, rtt: SimDuration, code: CodePoint) {
        // Update the gradient filter.
        let new_diff = match self.prev_rtt {
            Some(prev) => rtt.as_secs_f64() - prev.as_secs_f64(),
            None => 0.0,
        };
        self.prev_rtt = Some(rtt);
        let a = self.cfg.ewma_alpha;
        self.rtt_diff = (1.0 - a) * self.rtt_diff + a * new_diff;
        let gradient = self.rtt_diff / self.cfg.min_rtt.as_secs_f64();

        let beta = if code.is_ce() {
            self.cfg.beta_ce
        } else {
            self.cfg.beta
        };
        if rtt < self.cfg.t_low {
            self.additive_increase(1);
            return;
        }
        if rtt > self.cfg.t_high {
            // RTT far too high: decrease regardless of gradient, bounded
            // so the factor stays in (0, 1).
            let f = beta * (1.0 - self.cfg.t_high.as_secs_f64() / rtt.as_secs_f64());
            self.decrease(f);
            return;
        }
        if gradient <= 0.0 {
            self.neg_gradient_streak += 1;
            let n = if self.neg_gradient_streak >= self.cfg.hai_threshold {
                5
            } else {
                1
            };
            self.additive_increase(n);
        } else {
            // Positive gradient inside the band: this is where PAUSEs and
            // congestion are indistinguishable by delay alone.
            if self.cfg.hold_on_ue && code.is_ue() {
                self.holds += 1;
                self.neg_gradient_streak = 0;
                return;
            }
            let f = beta * gradient.min(1.0);
            self.decrease(f);
        }
    }

    fn additive_increase(&mut self, n: u64) {
        self.rate = self.clamp(
            self.rate
                .saturating_add(Rate::from_bps(self.cfg.delta.as_bps() * n)),
        );
    }

    fn decrease(&mut self, factor: f64) {
        let f = factor.clamp(0.0, 0.9);
        self.rate = self.clamp(self.rate.scale(1.0 - f));
        self.neg_gradient_streak = 0;
        self.decreases += 1;
    }
}

impl RateController for Timely {
    fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
        self.line_rate = line_rate;
        self.rate = line_rate;
        CcAction::none()
    }

    fn on_event(&mut self, now: SimTime, ev: CcEvent) -> CcAction {
        if let CcEvent::Ack { rtt, code, .. } = ev {
            let due = match self.last_update {
                None => true,
                Some(t) => now.saturating_since(t) >= self.cfg.update_interval,
            };
            if due {
                self.last_update = Some(now);
                self.on_rtt(rtt, code);
            }
        }
        CcAction::none()
    }

    fn rate(&self) -> Rate {
        self.rate
    }

    fn name(&self) -> &'static str {
        if self.cfg.hold_on_ue {
            "timely+tcd"
        } else {
            "timely"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(cfg: TimelyConfig) -> Timely {
        let mut t = Timely::new(cfg);
        let _ = t.start(SimTime::ZERO, Rate::from_gbps(40));
        t
    }

    /// Deliver an ACK, advancing a private clock far enough that the
    /// per-RTT update gate never suppresses it.
    fn ack(t: &mut Timely, rtt_us: u64, code: CodePoint) {
        let now = SimTime::from_us(
            t.last_update
                .map(|u| u.as_ps() / 1_000_000 + 30)
                .unwrap_or(0),
        );
        let _ = t.on_event(
            now,
            CcEvent::Ack {
                rtt: SimDuration::from_us(rtt_us),
                code,
                bytes: 1000,
                int: vec![],
            },
        );
    }

    #[test]
    fn updates_are_gated_per_rtt() {
        let mut t = started(TimelyConfig::default());
        // Two high-RTT acks within the update interval: only one decrease.
        let _ = t.on_event(
            SimTime::from_us(1),
            CcEvent::Ack {
                rtt: SimDuration::from_us(1000),
                code: CodePoint::Capable,
                bytes: 1000,
                int: vec![],
            },
        );
        let _ = t.on_event(
            SimTime::from_us(2),
            CcEvent::Ack {
                rtt: SimDuration::from_us(1000),
                code: CodePoint::Capable,
                bytes: 1000,
                int: vec![],
            },
        );
        assert_eq!(t.decreases(), 1);
        // After the interval, updates resume.
        let _ = t.on_event(
            SimTime::from_us(40),
            CcEvent::Ack {
                rtt: SimDuration::from_us(1000),
                code: CodePoint::Capable,
                bytes: 1000,
                int: vec![],
            },
        );
        assert_eq!(t.decreases(), 2);
    }

    #[test]
    fn starts_at_line_rate() {
        let t = started(TimelyConfig::default());
        assert_eq!(t.rate(), Rate::from_gbps(40));
    }

    #[test]
    fn low_rtt_increases_rate() {
        let mut t = started(TimelyConfig::default());
        // First bring the rate down so increases are visible.
        ack(&mut t, 1000, CodePoint::Capable);
        let r0 = t.rate();
        ack(&mut t, 10, CodePoint::Capable);
        assert!(t.rate() > r0);
    }

    #[test]
    fn rtt_above_thigh_decreases() {
        let mut t = started(TimelyConfig::default());
        ack(&mut t, 1000, CodePoint::Capable);
        assert!(t.rate() < Rate::from_gbps(40));
        assert_eq!(t.decreases(), 1);
    }

    #[test]
    fn rising_rtt_in_band_decreases() {
        let mut t = started(TimelyConfig::default());
        // RTTs rising within (T_low, T_high): positive gradient.
        ack(&mut t, 60, CodePoint::Capable);
        ack(&mut t, 120, CodePoint::Capable);
        ack(&mut t, 200, CodePoint::Capable);
        assert!(t.decreases() >= 1, "positive gradient must decrease");
        assert!(t.rate() < Rate::from_gbps(40));
    }

    #[test]
    fn falling_rtt_in_band_increases() {
        let mut t = started(TimelyConfig::default());
        ack(&mut t, 1000, CodePoint::Capable); // come off the ceiling
        let r0 = t.rate();
        ack(&mut t, 300, CodePoint::Capable);
        ack(&mut t, 200, CodePoint::Capable);
        ack(&mut t, 100, CodePoint::Capable);
        assert!(t.rate() > r0, "negative gradient must increase");
    }

    #[test]
    fn hai_kicks_in_after_streak() {
        let cfg = TimelyConfig::default();
        let mut t = started(cfg);
        ack(&mut t, 1000, CodePoint::Capable);
        let base = t.rate();
        // Feed a long falling-RTT streak; the later steps must be larger
        // (HAI: 5× delta) than the early ones.
        let mut increments = Vec::new();
        let mut prev = base;
        for i in 0..10 {
            ack(&mut t, 400 - i * 20, CodePoint::Capable);
            increments.push(t.rate().as_bps() - prev.as_bps());
            prev = t.rate();
        }
        assert!(increments.last().unwrap() > increments.first().unwrap());
    }

    #[test]
    fn tcd_holds_on_ue_with_positive_gradient() {
        let mut t = started(TimelyConfig::tcd());
        ack(&mut t, 60, CodePoint::UE);
        let r = t.rate();
        ack(&mut t, 150, CodePoint::UE); // rising RTT but only UE
        ack(&mut t, 250, CodePoint::UE);
        assert_eq!(t.rate(), r, "UE + positive gradient must hold");
        assert!(t.holds() >= 1);
    }

    #[test]
    fn tcd_still_decreases_on_ce() {
        let mut t = started(TimelyConfig::tcd());
        ack(&mut t, 60, CodePoint::CE);
        ack(&mut t, 150, CodePoint::CE);
        ack(&mut t, 250, CodePoint::CE);
        assert!(t.decreases() >= 1, "CE must still decrease");
    }

    #[test]
    fn tcd_beta_cuts_harder() {
        let mut std = started(TimelyConfig::default());
        let mut tcd = started(TimelyConfig::tcd());
        for t in [&mut std, &mut tcd] {
            ack(t, 60, CodePoint::CE);
            ack(t, 150, CodePoint::CE);
            ack(t, 300, CodePoint::CE);
        }
        assert!(tcd.rate() < std.rate());
    }

    #[test]
    fn plain_timely_throttles_victims_on_pause_inflation() {
        // The §5.2.3 flaw: UE-marked (pause-inflated) RTTs still reduce a
        // non-TCD TIMELY.
        let mut t = started(TimelyConfig::default());
        ack(&mut t, 60, CodePoint::UE);
        ack(&mut t, 200, CodePoint::UE);
        ack(&mut t, 400, CodePoint::UE);
        assert!(t.decreases() >= 1);
    }

    #[test]
    fn rate_floor_respected() {
        let mut t = started(TimelyConfig::default());
        for _ in 0..500 {
            ack(&mut t, 5000, CodePoint::Capable);
        }
        assert_eq!(t.rate(), TimelyConfig::default().min_rate);
    }

    #[test]
    fn names() {
        assert_eq!(Timely::standard().name(), "timely");
        assert_eq!(Timely::with_tcd().name(), "timely+tcd");
    }
}
