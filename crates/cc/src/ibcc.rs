//! IB CC — the InfiniBand congestion-control annex (IB spec vol. 1, annex
//! A10), the paper's InfiniBand case study (§5.2.2).
//!
//! The switch marks FECN on root ports; the destination channel adapter
//! echoes a BECN back; the source CA maintains a *congestion control table
//! index* (CCTI):
//!
//! * BECN → `CCTI += step` (spec default step 1; the TCD variant uses 2);
//! * every `CCTI_timer` without increase → `CCTI -= 1`;
//! * the CCT maps CCTI to an inter-packet delay (IPD). The spec leaves the
//!   table contents to the operator; following the common configuration in
//!   the IB CC literature (Gran et al., IPDPS'10) we use a linearly growing
//!   IPD: `rate(CCTI) = line_rate / (1 + CCTI · ird_unit)`, with
//!   `ird_unit = 1/8` so CCTI = 8 halves the rate.
//!
//! The TCD-aware variant holds the rate when the BECN carries UE, and uses
//! the aggressive `CCTI` step 2 on CE (paper §5.2.2).

use lossless_netsim::cchooks::{CcAction, CcEvent, RateController};
use lossless_netsim::{Rate, SimDuration, SimTime};
use tcd_core::CodePoint;

/// Timer id: CCTI decrease.
const TIMER_CCTI: u32 = 0;

/// IB CC parameters.
#[derive(Debug, Clone, Copy)]
pub struct IbCcConfig {
    /// CCTI increase per BECN (spec default 1; TCD variant 2).
    pub ccti_increase: u16,
    /// Maximum CCTI (CCT size − 1; default 127).
    pub ccti_max: u16,
    /// CCTI decrease period (default 150 µs).
    pub ccti_timer: SimDuration,
    /// Inter-packet-delay unit per CCTI step (default 1/8: CCTI = 8 halves
    /// the rate).
    pub ird_unit: f64,
    /// Rate floor (default 10 Mbps).
    pub min_rate: Rate,
    /// TCD awareness: hold on UE BECNs.
    pub hold_on_ue: bool,
}

impl Default for IbCcConfig {
    fn default() -> Self {
        IbCcConfig {
            ccti_increase: 1,
            ccti_max: 127,
            ccti_timer: SimDuration::from_us(150),
            ird_unit: 1.0 / 8.0,
            min_rate: Rate::from_mbps(10),
            hold_on_ue: false,
        }
    }
}

impl IbCcConfig {
    /// The TCD-aware variant of §5.2.2: hold on UE, step 2 on CE.
    pub fn tcd() -> Self {
        IbCcConfig {
            ccti_increase: 2,
            hold_on_ue: true,
            ..Default::default()
        }
    }
}

/// An IB CC source channel adapter for one flow (queue pair).
#[derive(Debug, Clone)]
pub struct IbCc {
    cfg: IbCcConfig,
    line_rate: Rate,
    ccti: u16,
    becns: u64,
    holds: u64,
}

impl IbCc {
    /// New controller with `cfg`.
    pub fn new(cfg: IbCcConfig) -> IbCc {
        assert!(cfg.ccti_increase >= 1);
        assert!(cfg.ird_unit > 0.0);
        IbCc {
            cfg,
            line_rate: Rate::ZERO,
            ccti: 0,
            becns: 0,
            holds: 0,
        }
    }

    /// Standard IB CC.
    pub fn standard() -> IbCc {
        IbCc::new(IbCcConfig::default())
    }

    /// TCD-aware IB CC.
    pub fn with_tcd() -> IbCc {
        IbCc::new(IbCcConfig::tcd())
    }

    /// The current table index.
    pub fn ccti(&self) -> u16 {
        self.ccti
    }

    /// BECNs acted on.
    pub fn becns(&self) -> u64 {
        self.becns
    }

    /// UE holds taken (TCD variant).
    pub fn holds(&self) -> u64 {
        self.holds
    }

    fn current_rate(&self) -> Rate {
        let f = 1.0 + self.cfg.ird_unit * self.ccti as f64;
        self.line_rate.scale(1.0 / f).max(self.cfg.min_rate)
    }
}

impl RateController for IbCc {
    fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
        self.line_rate = line_rate;
        self.ccti = 0;
        CcAction::timer(TIMER_CCTI, self.cfg.ccti_timer)
    }

    fn on_event(&mut self, _now: SimTime, ev: CcEvent) -> CcAction {
        match ev {
            CcEvent::Feedback { code } => {
                match code {
                    CodePoint::CongestionEncountered => {
                        self.ccti = (self.ccti + self.cfg.ccti_increase).min(self.cfg.ccti_max);
                        self.becns += 1;
                    }
                    CodePoint::UndeterminedEncountered if self.cfg.hold_on_ue => {
                        self.holds += 1;
                    }
                    CodePoint::UndeterminedEncountered => {
                        // A legacy CA treats any BECN as congestion.
                        self.ccti = (self.ccti + self.cfg.ccti_increase).min(self.cfg.ccti_max);
                        self.becns += 1;
                    }
                    _ => {}
                }
                CcAction::none()
            }
            CcEvent::Timer { id: TIMER_CCTI } => {
                self.ccti = self.ccti.saturating_sub(1);
                CcAction::timer(TIMER_CCTI, self.cfg.ccti_timer)
            }
            _ => CcAction::none(),
        }
    }

    fn rate(&self) -> Rate {
        self.current_rate()
    }

    fn name(&self) -> &'static str {
        if self.cfg.hold_on_ue {
            "ibcc+tcd"
        } else {
            "ibcc"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(cfg: IbCcConfig) -> IbCc {
        let mut c = IbCc::new(cfg);
        let _ = c.start(SimTime::ZERO, Rate::from_gbps(40));
        c
    }

    fn becn(c: &mut IbCc, code: CodePoint) {
        let _ = c.on_event(SimTime::ZERO, CcEvent::Feedback { code });
    }

    #[test]
    fn starts_uncongested_at_line_rate() {
        let c = started(IbCcConfig::default());
        assert_eq!(c.ccti(), 0);
        assert_eq!(c.rate(), Rate::from_gbps(40));
    }

    #[test]
    fn becn_throttles_injection() {
        let mut c = started(IbCcConfig::default());
        becn(&mut c, CodePoint::CE);
        assert_eq!(c.ccti(), 1);
        assert!(c.rate() < Rate::from_gbps(40));
        // CCTI = 8 halves the rate with the default table.
        for _ in 0..7 {
            becn(&mut c, CodePoint::CE);
        }
        assert_eq!(c.ccti(), 8);
        assert_eq!(c.rate(), Rate::from_gbps(20));
    }

    #[test]
    fn ccti_timer_recovers() {
        let mut c = started(IbCcConfig::default());
        for _ in 0..4 {
            becn(&mut c, CodePoint::CE);
        }
        let throttled = c.rate();
        for _ in 0..4 {
            let _ = c.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_CCTI });
        }
        assert_eq!(c.ccti(), 0);
        assert!(c.rate() > throttled);
        assert_eq!(c.rate(), Rate::from_gbps(40));
        // Timer below zero saturates.
        let _ = c.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_CCTI });
        assert_eq!(c.ccti(), 0);
    }

    #[test]
    fn ccti_saturates_at_max() {
        let mut c = started(IbCcConfig {
            ccti_max: 10,
            ..Default::default()
        });
        for _ in 0..100 {
            becn(&mut c, CodePoint::CE);
        }
        assert_eq!(c.ccti(), 10);
        assert!(c.rate() >= IbCcConfig::default().min_rate);
    }

    #[test]
    fn tcd_variant_holds_on_ue_and_steps_double_on_ce() {
        let mut c = started(IbCcConfig::tcd());
        becn(&mut c, CodePoint::UE);
        assert_eq!(c.ccti(), 0, "UE must not throttle");
        assert_eq!(c.holds(), 1);
        becn(&mut c, CodePoint::CE);
        assert_eq!(c.ccti(), 2, "TCD step is 2");
    }

    #[test]
    fn legacy_ca_throttles_on_any_becn() {
        let mut c = started(IbCcConfig::default());
        becn(&mut c, CodePoint::UE);
        assert_eq!(c.ccti(), 1, "legacy CA cannot distinguish UE");
    }

    #[test]
    fn timer_reschedules_itself() {
        let mut c = started(IbCcConfig::default());
        let a = c.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_CCTI });
        assert_eq!(
            a.timers,
            vec![(TIMER_CCTI, IbCcConfig::default().ccti_timer)]
        );
    }

    #[test]
    fn names() {
        assert_eq!(IbCc::standard().name(), "ibcc");
        assert_eq!(IbCc::with_tcd().name(), "ibcc+tcd");
    }
}
