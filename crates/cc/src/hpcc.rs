//! HPCC (Li et al., SIGCOMM 2019) — high-precision congestion control
//! driven by in-band network telemetry, the §7 related-work alternative
//! the paper contrasts TCD with ("both NP-ECN and INT are not independent
//! congestion detection mechanisms in switches").
//!
//! Per acknowledged packet the sender receives each hop's (queue length,
//! cumulative txBytes, timestamp, capacity). It estimates every link's
//! normalized utilization
//!
//! ```text
//! U_j = qlen_j / (B_j · T) + txRate_j / B_j
//! ```
//!
//! where `txRate_j` is differentiated from successive telemetry of the
//! same hop and `T` is the base RTT. The most utilized hop drives a
//! multiplicative-increase/multiplicative-decrease window update around
//! the target utilization `η` (default 0.95), with `maxStage` additive
//! probing rounds, exactly following the HPCC paper's pseudocode; the
//! window converts to a pacing rate as `W/T`.
//!
//! HPCC is included here as an extra baseline: unlike TCD it needs INT
//! support in every switch (`SimConfig::int_telemetry`), and — as the
//! ablation shows — utilization telemetry alone cannot distinguish a
//! paused victim port from a congested one either (a paused port's queue
//! is large while its txRate collapses, driving U up).

use lossless_netsim::cchooks::{CcAction, CcEvent, RateController};
use lossless_netsim::packet::IntHop;
use lossless_netsim::{Rate, SimDuration, SimTime};

/// HPCC parameters (defaults follow the HPCC paper).
#[derive(Debug, Clone, Copy)]
pub struct HpccConfig {
    /// Target link utilization η (default 0.95).
    pub eta: f64,
    /// Additive-increase stages before a forced MD (default 5).
    pub max_stage: u32,
    /// Additive increase per update, bytes of window (default: one MTU).
    pub wai_bytes: f64,
    /// Base RTT `T` used to normalize queues and convert window → rate.
    pub base_rtt: SimDuration,
    /// Minimum spacing between window updates (per-RTT granularity).
    pub update_interval: SimDuration,
    /// Rate floor.
    pub min_rate: Rate,
}

impl Default for HpccConfig {
    fn default() -> Self {
        HpccConfig {
            eta: 0.95,
            max_stage: 5,
            wai_bytes: 1000.0,
            base_rtt: SimDuration::from_us(50),
            update_interval: SimDuration::from_us(25),
            min_rate: Rate::from_mbps(10),
        }
    }
}

/// An HPCC sender for one flow.
#[derive(Debug, Clone)]
pub struct Hpcc {
    cfg: HpccConfig,
    line_rate: Rate,
    /// Current window, bytes.
    w: f64,
    /// Reference window for the per-RTT MIMD update.
    wc: f64,
    inc_stage: u32,
    /// Last telemetry per hop index (for txRate differentiation).
    last_int: Vec<IntHop>,
    last_update: Option<SimTime>,
    updates: u64,
}

impl Hpcc {
    /// New controller with `cfg`.
    pub fn new(cfg: HpccConfig) -> Hpcc {
        assert!(cfg.eta > 0.0 && cfg.eta <= 1.0);
        assert!(cfg.base_rtt > SimDuration::ZERO);
        Hpcc {
            cfg,
            line_rate: Rate::ZERO,
            w: 0.0,
            wc: 0.0,
            inc_stage: 0,
            last_int: Vec::new(),
            last_update: None,
            updates: 0,
        }
    }

    /// HPCC with the default parameters.
    pub fn standard() -> Hpcc {
        Hpcc::new(HpccConfig::default())
    }

    /// Window updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The maximum normalized utilization across the path, from fresh
    /// telemetry differentiated against the stored previous records.
    fn max_utilization(&mut self, int: &[IntHop]) -> Option<f64> {
        if int.is_empty() {
            return None;
        }
        let t = self.cfg.base_rtt.as_secs_f64();
        let mut u_max: Option<f64> = None;
        for (j, hop) in int.iter().enumerate() {
            let b = hop.rate.as_bps() as f64 / 8.0; // bytes/s
            let q_term = hop.qlen_bytes as f64 / (b * t);
            let rate_term = match self.last_int.get(j) {
                Some(prev) if hop.ts > prev.ts && hop.tx_bytes >= prev.tx_bytes => {
                    let dt = hop.ts.saturating_since(prev.ts).as_secs_f64();
                    let db = (hop.tx_bytes - prev.tx_bytes) as f64;
                    (db / dt) / b
                }
                // First sample of this hop (or a path change): fall back
                // to the queue term only.
                _ => 0.0,
            };
            let u = q_term + rate_term;
            u_max = Some(u_max.map_or(u, |m: f64| m.max(u)));
        }
        // simlint: allow(hot-path-alloc) -- per-ACK INT snapshot copy, bounded by path length; HPCC needs last-hop deltas
        self.last_int = int.to_vec();
        u_max
    }

    fn window_to_rate(&self) -> Rate {
        let bps = self.w * 8.0 / self.cfg.base_rtt.as_secs_f64();
        Rate::from_bps(bps as u64)
            .max(self.cfg.min_rate)
            .min(self.line_rate)
    }
}

impl RateController for Hpcc {
    fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
        self.line_rate = line_rate;
        // Start at one BDP: W = line_rate * T.
        self.w = line_rate.as_bps() as f64 / 8.0 * self.cfg.base_rtt.as_secs_f64();
        self.wc = self.w;
        CcAction::none()
    }

    fn on_event(&mut self, now: SimTime, ev: CcEvent) -> CcAction {
        let CcEvent::Ack { int, .. } = ev else {
            return CcAction::none();
        };
        let due = match self.last_update {
            None => true,
            Some(t) => now.saturating_since(t) >= self.cfg.update_interval,
        };
        let Some(u) = self.max_utilization(&int) else {
            return CcAction::none();
        };
        if !due {
            return CcAction::none();
        }
        self.last_update = Some(now);
        self.updates += 1;
        if u >= self.cfg.eta || self.inc_stage >= self.cfg.max_stage {
            // Multiplicative adjustment around the target utilization.
            self.w = self.wc / (u / self.cfg.eta).max(0.2) + self.cfg.wai_bytes;
            self.wc = self.w;
            self.inc_stage = 0;
        } else {
            // Additive probing stage.
            self.w = self.wc + self.cfg.wai_bytes;
            self.inc_stage += 1;
        }
        // Clamp to [min, line-rate BDP].
        let w_max = self.line_rate.as_bps() as f64 / 8.0 * self.cfg.base_rtt.as_secs_f64();
        self.w = self.w.clamp(1.0, w_max);
        CcAction::none()
    }

    fn rate(&self) -> Rate {
        self.window_to_rate()
    }

    fn name(&self) -> &'static str {
        "hpcc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcd_core::CodePoint;

    fn hop(q: u64, tx: u64, ts_us: u64) -> IntHop {
        IntHop {
            qlen_bytes: q,
            tx_bytes: tx,
            ts: SimTime::from_us(ts_us),
            rate: Rate::from_gbps(40),
        }
    }

    fn ack_at(h: &mut Hpcc, now_us: u64, int: Vec<IntHop>) {
        let _ = h.on_event(
            SimTime::from_us(now_us),
            CcEvent::Ack {
                rtt: SimDuration::from_us(50),
                code: CodePoint::Capable,
                bytes: 1000,
                int,
            },
        );
    }

    fn started() -> Hpcc {
        let mut h = Hpcc::standard();
        let _ = h.start(SimTime::ZERO, Rate::from_gbps(40));
        h
    }

    #[test]
    fn starts_at_line_rate_window() {
        let h = started();
        assert_eq!(h.rate(), Rate::from_gbps(40));
    }

    #[test]
    fn overutilized_link_shrinks_the_window() {
        let mut h = started();
        // Two samples of a saturated hop: 40G over 25us = 125000 bytes,
        // with a big standing queue.
        ack_at(&mut h, 0, vec![hop(400_000, 1_000_000, 0)]);
        ack_at(&mut h, 30, vec![hop(400_000, 1_125_000, 25)]);
        assert!(
            h.rate() < Rate::from_gbps(30),
            "must back off: {:?}",
            h.rate()
        );
    }

    #[test]
    fn idle_path_keeps_full_rate() {
        let mut h = started();
        // Low queue, low measured rate: utilization far below eta, so the
        // multiplicative term pushes the window back up after probing.
        for i in 0..20u64 {
            ack_at(&mut h, i * 30, vec![hop(0, i * 1000, (i * 30).max(1) - 1)]);
        }
        assert!(
            h.rate() > Rate::from_gbps(30),
            "should stay fast: {:?}",
            h.rate()
        );
    }

    #[test]
    fn updates_are_gated_per_interval() {
        let mut h = started();
        ack_at(&mut h, 0, vec![hop(0, 0, 0)]);
        let n0 = h.updates();
        ack_at(&mut h, 1, vec![hop(0, 100, 1)]); // within 25us: gated
        assert_eq!(h.updates(), n0);
        ack_at(&mut h, 30, vec![hop(0, 200, 30)]);
        assert_eq!(h.updates(), n0 + 1);
    }

    #[test]
    fn no_telemetry_means_no_reaction() {
        let mut h = started();
        let before = h.rate();
        ack_at(&mut h, 30, vec![]);
        assert_eq!(h.rate(), before);
        assert_eq!(h.updates(), 0);
    }

    #[test]
    fn paused_hop_inflates_utilization() {
        // The §7 point: a *paused* victim port shows a big queue and zero
        // tx progress — HPCC reads that as overutilization and throttles,
        // exactly like a congested port. INT cannot tell them apart.
        let mut h = started();
        ack_at(&mut h, 0, vec![hop(300_000, 500_000, 0)]);
        ack_at(&mut h, 30, vec![hop(300_000, 500_000, 25)]); // no tx progress
        ack_at(&mut h, 60, vec![hop(300_000, 500_000, 55)]);
        ack_at(&mut h, 90, vec![hop(300_000, 500_000, 85)]);
        assert!(
            h.rate() < Rate::from_gbps(20),
            "paused hop must look congested"
        );
    }
}
