//! End-to-end congestion control for lossless networks: the three
//! algorithms the paper studies (§5.2), each in its standard form and in a
//! TCD-aware variant.
//!
//! | algorithm | signal | standard reaction | TCD-aware change (paper §5.2) |
//! |-----------|--------|-------------------|-------------------------------|
//! | [`dcqcn::Dcqcn`]   | ECN → CNP       | `Rc ← Rc(1 − α/2)` | hold on UE; reduction factor 0.5 → 1.2 on CE |
//! | [`timely::Timely`] | RTT gradient    | gradient MD        | hold when UE and gradient > 0; β 0.8 → 1.6 |
//! | [`ibcc::IbCc`]     | FECN → BECN     | CCTI += 1          | hold on UE; CCTI step 1 → 2 |
//!
//! [`hpcc::Hpcc`] (INT-driven, SIGCOMM'19) is additionally provided as the
//! §7 related-work baseline; it has no TCD variant — the point of including
//! it is that utilization telemetry alone cannot separate paused victims
//! from congested culprits.
//!
//! All three implement
//! [`RateController`](lossless_netsim::cchooks::RateController), so an
//! experiment switches algorithm (or TCD-awareness) by constructing a
//! different controller per flow — nothing else in the simulator changes.
//!
//! The rate-adjustment principles for the TCD variants follow the paper:
//! *congested* flows (CE) decrease aggressively because they are the real
//! contributors; *undetermined* flows (UE) hold their rate — they may be
//! victims that should not back off, but blindly increasing could worsen
//! congestion spreading.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dcqcn;
pub mod hpcc;
pub mod ibcc;
pub mod timely;

pub use dcqcn::{Dcqcn, DcqcnConfig};
pub use hpcc::{Hpcc, HpccConfig};
pub use ibcc::{IbCc, IbCcConfig};
pub use timely::{Timely, TimelyConfig};
