//! DCQCN (Zhu et al., SIGCOMM 2015) — the ECN-based rate control deployed
//! in CEE/RoCEv2 networks, and the paper's primary CEE case study (§5.2.1).
//!
//! Reaction point (RP) summary:
//!
//! * On each CNP: remember the target `Rt ← Rc`, cut
//!   `Rc ← Rc·(1 − F·α)` (standard `F = 0.5`, i.e. `Rc(1 − α/2)`), raise
//!   the congestion estimate `α ← (1 − g)·α + g`, and reset the increase
//!   machinery.
//! * α decays by `(1 − g)` every `alpha_timer` without CNPs.
//! * Rate increase runs in stages counted by a timer and a byte counter:
//!   *fast recovery* (`Rc ← (Rt + Rc)/2`) for the first `F` rounds, then
//!   *additive* (`Rt += R_AI`), then *hyper* (`Rt += R_HAI`) increase.
//!
//! The TCD-aware variant differs exactly as the paper prescribes: a CNP
//! carrying **UE** leaves the rate untouched ("keep the flow rate until it
//! becomes uncongested or congested"), and a CNP carrying **CE** uses the
//! aggressive reduction factor 1.2 instead of 0.5. We read "rate reduction
//! factor α from default 0.5 to 1.2" as the multiplier `F` in
//! `Rc ← Rc·(1 − clamp(F·α, 0, 0.9))`, clamped so the rate stays positive
//! (documented in DESIGN.md).

use lossless_netsim::cchooks::{CcAction, CcEvent, RateController};
use lossless_netsim::{Rate, SimDuration, SimTime};
use tcd_core::CodePoint;

/// Timer id: α decay.
const TIMER_ALPHA: u32 = 0;
/// Timer id: rate-increase stage.
const TIMER_INCREASE: u32 = 1;

/// DCQCN parameters. Defaults follow the DCQCN paper's recommended values
/// for 40 Gbps fabrics (also used by the TCD paper's simulations).
#[derive(Debug, Clone, Copy)]
pub struct DcqcnConfig {
    /// EWMA gain `g` for α (default 1/256).
    pub g: f64,
    /// α decay timer (default 55 µs).
    pub alpha_timer: SimDuration,
    /// Rate-increase timer (default 300 µs, the Mellanox/ns3-rdma
    /// deployment default; the DCQCN paper's fluid model uses 55 µs but
    /// deployed reaction points recover much more slowly, which is what
    /// sustains the congestion the TCD paper observes).
    pub increase_timer: SimDuration,
    /// Rate-increase byte counter (default 10 MB).
    pub byte_counter: u64,
    /// Fast-recovery rounds `F` before additive increase (default 5).
    pub fr_stages: u32,
    /// Additive increase step `R_AI` (default 40 Mbps).
    pub rai: Rate,
    /// Hyper increase step `R_HAI` (default 200 Mbps).
    pub rhai: Rate,
    /// Floor for the sending rate (default 10 Mbps).
    pub min_rate: Rate,
    /// Rate reduction factor `F` in `Rc ← Rc·(1 − clamp(F·α, 0, 0.9))`.
    /// 0.5 reproduces the standard `Rc(1 − α/2)`; the TCD variant uses 1.2.
    pub reduction_factor: f64,
    /// TCD awareness: hold the rate when a CNP carries UE.
    pub hold_on_ue: bool,
}

impl Default for DcqcnConfig {
    fn default() -> Self {
        DcqcnConfig {
            g: 1.0 / 256.0,
            alpha_timer: SimDuration::from_us(55),
            increase_timer: SimDuration::from_us(300),
            byte_counter: 10 * 1024 * 1024,
            fr_stages: 5,
            rai: Rate::from_mbps(40),
            rhai: Rate::from_mbps(200),
            min_rate: Rate::from_mbps(10),
            reduction_factor: 0.5,
            hold_on_ue: false,
        }
    }
}

impl DcqcnConfig {
    /// The TCD-aware variant of §5.2.1: hold on UE, cut aggressively on
    /// CE. The paper says "change the rate reduction factor α from default
    /// 0.5 to 1.2"; we read this as scaling DCQCN's reduction term
    /// `α/2` by 1.2 (maximum cut 50% → 60% of the current rate). The
    /// harsher reading — `Rc(1 − 1.2·α)`, a 90% cut — starves congested
    /// flows at the minimum rate for tens of milliseconds under DCQCN's
    /// slow recovery, which contradicts the paper's "comparable
    /// performance for large flows"; see DESIGN.md.
    pub fn tcd() -> Self {
        DcqcnConfig {
            reduction_factor: 0.6,
            hold_on_ue: true,
            ..Default::default()
        }
    }
}

/// A DCQCN reaction point for one flow.
#[derive(Debug, Clone)]
pub struct Dcqcn {
    cfg: DcqcnConfig,
    line_rate: Rate,
    /// Current rate `Rc`.
    rc: Rate,
    /// Target rate `Rt`.
    rt: Rate,
    alpha: f64,
    /// CNP seen since the last α-timer expiry.
    cnp_since_alpha: bool,
    /// Bytes sent since the last byte-counter stage.
    bytes: u64,
    /// Increase stages driven by the byte counter / timer.
    byte_stage: u32,
    time_stage: u32,
    /// Counts CNPs processed (diagnostics).
    cuts: u64,
    holds: u64,
}

impl Dcqcn {
    /// New controller with `cfg`.
    pub fn new(cfg: DcqcnConfig) -> Dcqcn {
        assert!(cfg.g > 0.0 && cfg.g < 1.0);
        assert!(cfg.reduction_factor > 0.0);
        Dcqcn {
            cfg,
            line_rate: Rate::ZERO,
            rc: Rate::ZERO,
            rt: Rate::ZERO,
            alpha: 1.0,
            cnp_since_alpha: false,
            bytes: 0,
            byte_stage: 0,
            time_stage: 0,
            cuts: 0,
            holds: 0,
        }
    }

    /// Standard DCQCN.
    pub fn standard() -> Dcqcn {
        Dcqcn::new(DcqcnConfig::default())
    }

    /// TCD-aware DCQCN.
    pub fn with_tcd() -> Dcqcn {
        Dcqcn::new(DcqcnConfig::tcd())
    }

    /// Current α estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of multiplicative cuts taken.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// Number of UE notifications held (TCD variant only).
    pub fn holds(&self) -> u64 {
        self.holds
    }

    fn clamp(&self, r: Rate) -> Rate {
        r.max(self.cfg.min_rate).min(self.line_rate)
    }

    fn cut(&mut self) {
        self.rt = self.rc;
        let f = (self.cfg.reduction_factor * self.alpha).clamp(0.0, 0.9);
        self.rc = self.clamp(self.rc.scale(1.0 - f));
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.cnp_since_alpha = true;
        self.byte_stage = 0;
        self.time_stage = 0;
        self.bytes = 0;
        self.cuts += 1;
    }

    fn increase(&mut self) {
        let fr = self.cfg.fr_stages;
        if self.byte_stage >= fr && self.time_stage >= fr {
            // Hyper increase.
            self.rt = self.rt.saturating_add(self.cfg.rhai).min(self.line_rate);
        } else if self.byte_stage >= fr || self.time_stage >= fr {
            // Additive increase.
            self.rt = self.rt.saturating_add(self.cfg.rai).min(self.line_rate);
        }
        // Fast recovery (and every stage): move halfway to the target.
        self.rc = self.clamp(Rate::from_bps((self.rt.as_bps() + self.rc.as_bps()) / 2));
    }
}

impl RateController for Dcqcn {
    fn start(&mut self, _now: SimTime, line_rate: Rate) -> CcAction {
        self.line_rate = line_rate;
        self.rc = line_rate;
        self.rt = line_rate;
        CcAction {
            // simlint: allow(hot-path-alloc) -- one-time flow-start setup
            timers: vec![
                (TIMER_ALPHA, self.cfg.alpha_timer),
                (TIMER_INCREASE, self.cfg.increase_timer),
            ],
        }
    }

    fn on_event(&mut self, _now: SimTime, ev: CcEvent) -> CcAction {
        match ev {
            CcEvent::Feedback { code } => {
                match code {
                    CodePoint::CongestionEncountered => {
                        self.cut();
                        // Restart both timers after a cut.
                        CcAction {
                            // simlint: allow(hot-path-alloc) -- two-element timer list per rate cut, bounded by feedback frequency
                            timers: vec![
                                (TIMER_ALPHA, self.cfg.alpha_timer),
                                (TIMER_INCREASE, self.cfg.increase_timer),
                            ],
                        }
                    }
                    CodePoint::UndeterminedEncountered if self.cfg.hold_on_ue => {
                        // TCD: an undetermined flow keeps its rate.
                        self.holds += 1;
                        CcAction::none()
                    }
                    CodePoint::UndeterminedEncountered => {
                        // A non-TCD-aware RP treats any congestion
                        // notification as CE (it cannot see UE).
                        self.cut();
                        CcAction {
                            // simlint: allow(hot-path-alloc) -- two-element timer list per rate cut, bounded by feedback frequency
                            timers: vec![
                                (TIMER_ALPHA, self.cfg.alpha_timer),
                                (TIMER_INCREASE, self.cfg.increase_timer),
                            ],
                        }
                    }
                    _ => CcAction::none(),
                }
            }
            CcEvent::Timer { id: TIMER_ALPHA } => {
                if !self.cnp_since_alpha {
                    self.alpha *= 1.0 - self.cfg.g;
                }
                self.cnp_since_alpha = false;
                CcAction::timer(TIMER_ALPHA, self.cfg.alpha_timer)
            }
            CcEvent::Timer { id: TIMER_INCREASE } => {
                self.time_stage += 1;
                self.increase();
                CcAction::timer(TIMER_INCREASE, self.cfg.increase_timer)
            }
            CcEvent::Timer { .. } => CcAction::none(),
            CcEvent::Sent { bytes } => {
                self.bytes += bytes;
                if self.bytes >= self.cfg.byte_counter {
                    self.bytes -= self.cfg.byte_counter;
                    self.byte_stage += 1;
                    self.increase();
                }
                CcAction::none()
            }
            CcEvent::Ack { .. } => CcAction::none(),
        }
    }

    fn rate(&self) -> Rate {
        self.rc
    }

    fn name(&self) -> &'static str {
        if self.cfg.hold_on_ue {
            "dcqcn+tcd"
        } else {
            "dcqcn"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(cfg: DcqcnConfig) -> Dcqcn {
        let mut d = Dcqcn::new(cfg);
        let _ = d.start(SimTime::ZERO, Rate::from_gbps(40));
        d
    }

    fn cnp(d: &mut Dcqcn, code: CodePoint) {
        let _ = d.on_event(SimTime::ZERO, CcEvent::Feedback { code });
    }

    #[test]
    fn starts_at_line_rate_with_timers() {
        let mut d = Dcqcn::standard();
        let a = d.start(SimTime::ZERO, Rate::from_gbps(40));
        assert_eq!(d.rate(), Rate::from_gbps(40));
        assert_eq!(a.timers.len(), 2);
    }

    #[test]
    fn first_cnp_halves_rate() {
        // α starts at 1, so the first cut is Rc(1 − 0.5) = Rc/2.
        let mut d = started(DcqcnConfig::default());
        cnp(&mut d, CodePoint::CE);
        assert_eq!(d.rate(), Rate::from_gbps(20));
        assert_eq!(d.cuts(), 1);
    }

    #[test]
    fn repeated_cnps_decrease_geometrically() {
        let mut d = started(DcqcnConfig::default());
        let mut last = d.rate();
        for _ in 0..10 {
            cnp(&mut d, CodePoint::CE);
            assert!(d.rate() < last);
            last = d.rate();
        }
        assert!(d.rate() >= DcqcnConfig::default().min_rate);
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut d = started(DcqcnConfig::default());
        cnp(&mut d, CodePoint::CE);
        let a0 = d.alpha();
        // First alpha-timer expiry after the CNP: flag set, no decay.
        let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_ALPHA });
        assert_eq!(d.alpha(), a0);
        // Subsequent expiries decay.
        let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_ALPHA });
        assert!(d.alpha() < a0);
    }

    #[test]
    fn fast_recovery_moves_halfway_to_target() {
        let mut d = started(DcqcnConfig::default());
        cnp(&mut d, CodePoint::CE); // Rt = 40G, Rc = 20G
        let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_INCREASE });
        assert_eq!(d.rate(), Rate::from_gbps(30));
        let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_INCREASE });
        assert_eq!(d.rate(), Rate::from_gbps(35));
    }

    #[test]
    fn additive_then_hyper_increase_raise_target() {
        let cfg = DcqcnConfig::default();
        let mut d = started(cfg);
        cnp(&mut d, CodePoint::CE);
        // Exhaust fast recovery via the timer.
        for _ in 0..cfg.fr_stages {
            let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_INCREASE });
        }
        let r_fr = d.rate();
        // Next stage: additive increase (timer stage >= F, byte stage < F).
        let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_INCREASE });
        assert!(d.rate() > r_fr);
        // Drive the byte counter to reach hyper increase.
        for _ in 0..cfg.fr_stages {
            let _ = d.on_event(
                SimTime::ZERO,
                CcEvent::Sent {
                    bytes: cfg.byte_counter,
                },
            );
        }
        let before = d.rate();
        let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_INCREASE });
        assert!(d.rate() > before);
    }

    #[test]
    fn rate_never_exceeds_line_rate() {
        let mut d = started(DcqcnConfig::default());
        for _ in 0..10_000 {
            let _ = d.on_event(SimTime::ZERO, CcEvent::Timer { id: TIMER_INCREASE });
        }
        assert!(d.rate() <= Rate::from_gbps(40));
        assert_eq!(d.rate(), Rate::from_gbps(40), "converges back to line rate");
    }

    #[test]
    fn tcd_variant_holds_on_ue() {
        let mut d = started(DcqcnConfig::tcd());
        cnp(&mut d, CodePoint::UE);
        assert_eq!(d.rate(), Rate::from_gbps(40), "UE must not cut");
        assert_eq!(d.holds(), 1);
        assert_eq!(d.cuts(), 0);
    }

    #[test]
    fn tcd_variant_cuts_harder_on_ce() {
        let mut std = started(DcqcnConfig::default());
        let mut tcd = started(DcqcnConfig::tcd());
        cnp(&mut std, CodePoint::CE);
        cnp(&mut tcd, CodePoint::CE);
        assert!(tcd.rate() < std.rate(), "factor 0.6 cuts deeper than 0.5");
        // With α = 1 the TCD cut is 60%: 40 G → 16 Gbps (f64 rounding).
        let diff = tcd.rate().as_bps().abs_diff(Rate::from_gbps(16).as_bps());
        assert!(diff <= 8, "expected ~16 Gbps, got {:?}", tcd.rate());
    }

    #[test]
    fn non_tcd_rp_treats_ue_as_ce() {
        // A legacy RP cannot distinguish: any CNP cuts.
        let mut d = started(DcqcnConfig::default());
        cnp(&mut d, CodePoint::UE);
        assert_eq!(d.cuts(), 1);
    }

    #[test]
    fn rate_floor_is_respected() {
        let mut d = started(DcqcnConfig::default());
        for _ in 0..200 {
            cnp(&mut d, CodePoint::CE);
        }
        assert_eq!(d.rate(), DcqcnConfig::default().min_rate);
    }

    #[test]
    fn names() {
        assert_eq!(Dcqcn::standard().name(), "dcqcn");
        assert_eq!(Dcqcn::with_tcd().name(), "dcqcn+tcd");
    }
}
