//! Spec-conformance pass: pin the implemented TCD state machine to the
//! paper's Fig. 6, statically.
//!
//! A committed machine-readable transition table
//! ([`SPEC_TABLE_PATH`], `fig6.spec`) is the source of truth: three
//! ternary states with their paper symbols and the six legal transitions.
//! This pass extracts, from tokens alone,
//!
//! * the `TernaryState` and `Transition` enum variants, the
//!   `symbol()`/`from_symbol()` arms and the `classify()`/`endpoints()`
//!   arms of `crates/core/src/state.rs`, and
//! * every `set_state(TernaryState::X)` call in
//!   `crates/core/src/detector.rs`,
//!
//! and diffs them against the table. Any divergence — an extra or missing
//! transition, a swapped endpoint, a renamed state, a wrong paper symbol,
//! or a runtime detector that can no longer enter one of the states — is
//! a `spec-mismatch` finding. Changing the state machine deliberately
//! means re-blessing `fig6.spec` in the same commit.

use crate::codelint::{Diagnostic, Rule};
use crate::lexer::{lex, TokKind, Token};
use crate::symbols::matching_brace;

/// Workspace-relative path of the committed Fig. 6 table.
pub const SPEC_TABLE_PATH: &str = "crates/simlint/fig6.spec";
/// The file defining the state/transition enums and their maps.
pub const STATE_FILE: &str = "crates/core/src/state.rs";
/// The runtime detector whose `set_state` targets must cover every state.
pub const DETECTOR_FILE: &str = "crates/core/src/detector.rs";

/// One transition row of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecTransition {
    pub number: u32,
    pub from: String,
    pub to: String,
    pub variant: String,
}

/// The parsed Fig. 6 table.
#[derive(Debug, Clone, Default)]
pub struct SpecTable {
    /// `(variant name, paper symbol)` in table order.
    pub states: Vec<(String, char)>,
    pub transitions: Vec<SpecTransition>,
}

impl SpecTable {
    fn has_state(&self, name: &str) -> bool {
        self.states.iter().any(|(n, _)| n == name)
    }
}

/// Parse the `fig6.spec` format (`#` comments, `state`/`transition` rows).
pub fn parse_table(text: &str) -> Result<SpecTable, String> {
    let mut table = SpecTable::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: &str| Err(format!("{SPEC_TABLE_PATH}:{}: {msg}: `{line}`", i + 1));
        match fields.as_slice() {
            ["state", name, sym] => {
                let mut chars = sym.chars();
                let (Some(c), None) = (chars.next(), chars.next()) else {
                    return err("state symbol must be one character");
                };
                table.states.push((name.to_string(), c));
            }
            ["transition", n, from, to, variant] => {
                let Ok(number) = n.parse() else {
                    return err("transition number must be an integer");
                };
                table.transitions.push(SpecTransition {
                    number,
                    from: from.to_string(),
                    to: to.to_string(),
                    variant: variant.to_string(),
                });
            }
            _ => {
                return err(
                    "expected `state <name> <symbol>` or `transition <n> <from> <to> <variant>`",
                )
            }
        }
    }
    for t in &table.transitions {
        if !table.has_state(&t.from) || !table.has_state(&t.to) {
            return Err(format!(
                "{SPEC_TABLE_PATH}: transition {} references an undeclared state",
                t.number
            ));
        }
    }
    if table.states.is_empty() || table.transitions.is_empty() {
        return Err(format!(
            "{SPEC_TABLE_PATH}: table declares no states or no transitions"
        ));
    }
    Ok(table)
}

/// Diff the state-machine sources against `table`. `state_src` is the
/// content of [`STATE_FILE`], `detector_src` of [`DETECTOR_FILE`].
pub fn check(table: &SpecTable, state_src: &str, detector_src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let push = |diags: &mut Vec<Diagnostic>, file: &str, line: u32, message: String| {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: Rule::SpecMismatch,
            message,
        });
    };

    let toks = lex(state_src).tokens;
    let norm = normalize(&toks);

    // --- State set ------------------------------------------------------
    match enum_variants(&norm, "TernaryState") {
        Some((variants, line)) => {
            diff_sets(
                &mut diags,
                STATE_FILE,
                line,
                "TernaryState variant",
                &variants.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
                &table
                    .states
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>(),
            );
        }
        None => push(
            &mut diags,
            STATE_FILE,
            1,
            "cannot find `enum TernaryState` to check against the Fig. 6 table".into(),
        ),
    }

    // --- Paper symbols (symbol / from_symbol) ---------------------------
    if let Some((body, line)) = fn_body(&norm, "symbol") {
        let arms = symbol_arms(body);
        for (name, sym) in &table.states {
            match arms.iter().find(|(v, _, _)| v == name) {
                Some((_, c, _)) if c == sym => {}
                Some((_, c, aline)) => push(
                    &mut diags,
                    STATE_FILE,
                    *aline,
                    format!("`symbol()` maps {name} to '{c}' but the Fig. 6 table says '{sym}'"),
                ),
                None => push(
                    &mut diags,
                    STATE_FILE,
                    line,
                    format!("`symbol()` has no arm for state {name}"),
                ),
            }
        }
    } else {
        push(
            &mut diags,
            STATE_FILE,
            1,
            "cannot find `fn symbol` to check paper symbols".into(),
        );
    }
    if let Some((body, line)) = fn_body(&norm, "from_symbol") {
        let arms = from_symbol_arms(body);
        for (name, sym) in &table.states {
            match arms.iter().find(|(c, _, _)| c == sym) {
                Some((_, v, _)) if v == name => {}
                Some((_, v, aline)) => push(
                    &mut diags,
                    STATE_FILE,
                    *aline,
                    format!("`from_symbol()` maps '{sym}' to {v} but the Fig. 6 table says {name}"),
                ),
                None => push(
                    &mut diags,
                    STATE_FILE,
                    line,
                    format!("`from_symbol()` has no arm for symbol '{sym}'"),
                ),
            }
        }
    } else {
        push(
            &mut diags,
            STATE_FILE,
            1,
            "cannot find `fn from_symbol`".into(),
        );
    }

    // --- Transition set -------------------------------------------------
    match enum_variants(&norm, "Transition") {
        Some((variants, line)) => diff_sets(
            &mut diags,
            STATE_FILE,
            line,
            "Transition variant",
            &variants.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            &table
                .transitions
                .iter()
                .map(|t| t.variant.clone())
                .collect::<Vec<_>>(),
        ),
        None => push(
            &mut diags,
            STATE_FILE,
            1,
            "cannot find `enum Transition` to check against the Fig. 6 table".into(),
        ),
    }

    // --- classify(): (from, to) -> Some(variant) ------------------------
    if let Some((body, line)) = fn_body(&norm, "classify") {
        let arms = classify_arms(body);
        for t in &table.transitions {
            match arms
                .iter()
                .find(|(f, to, _, _)| f == &t.from && to == &t.to)
            {
                Some((_, _, v, _)) if *v == t.variant => {}
                Some((_, _, v, aline)) => push(
                    &mut diags,
                    STATE_FILE,
                    *aline,
                    format!(
                        "`classify({} -> {})` yields {v} but Fig. 6 transition {} is {}",
                        t.from, t.to, t.number, t.variant
                    ),
                ),
                None => push(
                    &mut diags,
                    STATE_FILE,
                    line,
                    format!(
                        "`classify()` has no arm for Fig. 6 transition {} ({} -> {})",
                        t.number, t.from, t.to
                    ),
                ),
            }
        }
        for (f, to, v, aline) in &arms {
            if !table
                .transitions
                .iter()
                .any(|t| t.from == *f && t.to == *to)
            {
                push(
                    &mut diags,
                    STATE_FILE,
                    *aline,
                    format!(
                        "`classify()` accepts {f} -> {to} (as {v}) but Fig. 6 \
                         defines no such transition"
                    ),
                );
            }
        }
    } else {
        push(
            &mut diags,
            STATE_FILE,
            1,
            "cannot find `fn classify`".into(),
        );
    }

    // --- endpoints(): variant -> (from, to) -----------------------------
    if let Some((body, line)) = fn_body(&norm, "endpoints") {
        let arms = endpoint_arms(body);
        for t in &table.transitions {
            match arms.iter().find(|(v, _, _, _)| *v == t.variant) {
                Some((_, f, to, _)) if *f == t.from && *to == t.to => {}
                Some((_, f, to, aline)) => push(
                    &mut diags,
                    STATE_FILE,
                    *aline,
                    format!(
                        "`endpoints({})` yields ({f}, {to}) but Fig. 6 transition {} \
                         is ({}, {})",
                        t.variant, t.number, t.from, t.to
                    ),
                ),
                None => push(
                    &mut diags,
                    STATE_FILE,
                    line,
                    format!("`endpoints()` has no arm for {}", t.variant),
                ),
            }
        }
    } else {
        push(
            &mut diags,
            STATE_FILE,
            1,
            "cannot find `fn endpoints`".into(),
        );
    }

    // --- Runtime detector: set_state coverage ---------------------------
    let det = normalize(&lex(detector_src).tokens);
    let targets = set_state_targets(&det);
    if targets.is_empty() {
        push(
            &mut diags,
            DETECTOR_FILE,
            1,
            "cannot find any `set_state(TernaryState::..)` call — the spec pass \
             no longer sees the runtime detector's transitions"
                .into(),
        );
    }
    for (name, _) in &table.states {
        if !targets.iter().any(|(t, _)| t == name) {
            push(
                &mut diags,
                DETECTOR_FILE,
                1,
                format!(
                    "the runtime detector never enters state {name}: no \
                     `set_state(TernaryState::{name})` call found"
                ),
            );
        }
    }
    for (t, line) in &targets {
        if !table.has_state(t) {
            push(
                &mut diags,
                DETECTOR_FILE,
                *line,
                format!("`set_state(TernaryState::{t})` targets a state the Fig. 6 table does not declare"),
            );
        }
    }

    diags
}

/// Run the pass over a workspace file listing: find the two source files
/// and diff them against `table_text`. Missing inputs become findings
/// (deleting the table or moving the state machine must not silently
/// disable the pass).
pub fn check_workspace(table_text: &str, files: &[(String, String)]) -> Vec<Diagnostic> {
    let table = match parse_table(table_text) {
        Ok(t) => t,
        Err(e) => {
            return vec![Diagnostic {
                file: SPEC_TABLE_PATH.to_string(),
                line: 1,
                rule: Rule::SpecMismatch,
                message: format!("cannot parse the Fig. 6 spec table: {e}"),
            }]
        }
    };
    let src_of = |want: &str| {
        files
            .iter()
            .find(|(rel, _)| rel == want)
            .map(|(_, s)| s.as_str())
    };
    match (src_of(STATE_FILE), src_of(DETECTOR_FILE)) {
        (Some(state), Some(det)) => check(&table, state, det),
        _ => vec![Diagnostic {
            file: SPEC_TABLE_PATH.to_string(),
            line: 1,
            rule: Rule::SpecMismatch,
            message: format!(
                "spec pass expects {STATE_FILE} and {DETECTOR_FILE} to exist; \
                 if the state machine moved, update simlint::spec"
            ),
        }],
    }
}

// --- token helpers ------------------------------------------------------

/// Drop path qualifiers: `TernaryState :: NonCongestion` becomes the bare
/// `NonCongestion`, so arm patterns match with or without `use` imports.
fn normalize(toks: &[Token]) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        let is_qualifier = toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident);
        if is_qualifier {
            i += 3; // drop `Qual ::`, keep scanning from the segment
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// The body tokens (exclusive of braces) and signature line of `fn name`.
fn fn_body<'a>(toks: &'a [Token], name: &str) -> Option<(&'a [Token], u32)> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            let line = toks[i].line;
            let mut k = i + 2;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            let end = matching_brace(toks, k)?;
            return Some((&toks[k + 1..end], line));
        }
        i += 1;
    }
    None
}

/// The unit variants of `enum name` with their lines, plus the enum line.
fn enum_variants(toks: &[Token], name: &str) -> Option<(Vec<(String, u32)>, u32)> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(name) {
            let line = toks[i].line;
            let mut k = i + 2;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            let end = matching_brace(toks, k)?;
            let mut variants = Vec::new();
            let mut j = k + 1;
            while j < end {
                // Skip `#[..]` attribute groups on variants.
                if toks[j].is_punct('#') && toks.get(j + 1).is_some_and(|t| t.is_punct('[')) {
                    let mut depth = 0i64;
                    let mut m = j + 1;
                    while m < end {
                        if toks[m].is_punct('[') {
                            depth += 1;
                        } else if toks[m].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        m += 1;
                    }
                    j = m + 1;
                    continue;
                }
                if toks[j].kind == TokKind::Ident {
                    variants.push((toks[j].text.clone(), toks[j].line));
                }
                j += 1;
            }
            return Some((variants, line));
        }
        i += 1;
    }
    None
}

/// `(from, to) => Some(variant)` arms.
fn classify_arms(body: &[Token]) -> Vec<(String, String, String, u32)> {
    let mut arms = Vec::new();
    for (j, t) in body.iter().enumerate() {
        let ok = t.is_punct('(')
            && matches!(body.get(j + 1), Some(a) if a.kind == TokKind::Ident)
            && body.get(j + 2).is_some_and(|x| x.is_punct(','))
            && matches!(body.get(j + 3), Some(b) if b.kind == TokKind::Ident)
            && body.get(j + 4).is_some_and(|x| x.is_punct(')'))
            && body.get(j + 5).is_some_and(|x| x.is_punct('='))
            && body.get(j + 6).is_some_and(|x| x.is_punct('>'))
            && body.get(j + 7).is_some_and(|x| x.is_ident("Some"))
            && body.get(j + 8).is_some_and(|x| x.is_punct('('))
            && matches!(body.get(j + 9), Some(v) if v.kind == TokKind::Ident)
            && body.get(j + 10).is_some_and(|x| x.is_punct(')'));
        if ok {
            arms.push((
                body[j + 1].text.clone(),
                body[j + 3].text.clone(),
                body[j + 9].text.clone(),
                t.line,
            ));
        }
    }
    arms
}

/// `variant => (from, to)` arms.
fn endpoint_arms(body: &[Token]) -> Vec<(String, String, String, u32)> {
    let mut arms = Vec::new();
    for (j, t) in body.iter().enumerate() {
        let ok = t.kind == TokKind::Ident
            && body.get(j + 1).is_some_and(|x| x.is_punct('='))
            && body.get(j + 2).is_some_and(|x| x.is_punct('>'))
            && body.get(j + 3).is_some_and(|x| x.is_punct('('))
            && matches!(body.get(j + 4), Some(a) if a.kind == TokKind::Ident)
            && body.get(j + 5).is_some_and(|x| x.is_punct(','))
            && matches!(body.get(j + 6), Some(b) if b.kind == TokKind::Ident)
            && body.get(j + 7).is_some_and(|x| x.is_punct(')'));
        if ok {
            arms.push((
                t.text.clone(),
                body[j + 4].text.clone(),
                body[j + 6].text.clone(),
                t.line,
            ));
        }
    }
    arms
}

/// `variant => 'c'` arms (the paper-symbol map).
fn symbol_arms(body: &[Token]) -> Vec<(String, char, u32)> {
    let mut arms = Vec::new();
    for (j, t) in body.iter().enumerate() {
        let ok = t.kind == TokKind::Ident
            && body.get(j + 1).is_some_and(|x| x.is_punct('='))
            && body.get(j + 2).is_some_and(|x| x.is_punct('>'))
            && matches!(body.get(j + 3), Some(l) if l.kind == TokKind::Literal && l.text.chars().count() == 1);
        if ok {
            arms.push((
                t.text.clone(),
                body[j + 3].text.chars().next().expect("one char"),
                t.line,
            ));
        }
    }
    arms
}

/// `'c' => Some(variant)` arms (the inverse symbol map).
fn from_symbol_arms(body: &[Token]) -> Vec<(char, String, u32)> {
    let mut arms = Vec::new();
    for (j, t) in body.iter().enumerate() {
        let ok = t.kind == TokKind::Literal
            && t.text.chars().count() == 1
            && body.get(j + 1).is_some_and(|x| x.is_punct('='))
            && body.get(j + 2).is_some_and(|x| x.is_punct('>'))
            && body.get(j + 3).is_some_and(|x| x.is_ident("Some"))
            && body.get(j + 4).is_some_and(|x| x.is_punct('('))
            && matches!(body.get(j + 5), Some(v) if v.kind == TokKind::Ident);
        if ok {
            arms.push((
                t.text.chars().next().expect("one char"),
                body[j + 5].text.clone(),
                t.line,
            ));
        }
    }
    arms
}

/// Every `set_state(State)` call target (normalized tokens).
fn set_state_targets(toks: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (j, t) in toks.iter().enumerate() {
        let ok = t.is_ident("set_state")
            && toks.get(j + 1).is_some_and(|x| x.is_punct('('))
            && matches!(toks.get(j + 2), Some(v) if v.kind == TokKind::Ident)
            && toks.get(j + 3).is_some_and(|x| x.is_punct(')'));
        if ok {
            out.push((toks[j + 2].text.clone(), t.line));
        }
    }
    out
}

/// Report any element present on one side only.
fn diff_sets(
    diags: &mut Vec<Diagnostic>,
    file: &str,
    line: u32,
    what: &str,
    found: &[String],
    want: &[String],
) {
    for f in found {
        if !want.contains(f) {
            diags.push(Diagnostic {
                file: file.to_string(),
                line,
                rule: Rule::SpecMismatch,
                message: format!("{what} {f} is not in the Fig. 6 spec table"),
            });
        }
    }
    for w in want {
        if !found.contains(w) {
            diags.push(Diagnostic {
                file: file.to_string(),
                line,
                rule: Rule::SpecMismatch,
                message: format!(
                    "the Fig. 6 spec table lists {what} {w} but the code does not define it"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = include_str!("../fig6.spec");

    fn committed_sources() -> (String, String) {
        let root = crate::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        (
            std::fs::read_to_string(root.join(STATE_FILE)).expect("state.rs"),
            std::fs::read_to_string(root.join(DETECTOR_FILE)).expect("detector.rs"),
        )
    }

    #[test]
    fn committed_table_parses_to_three_states_six_transitions() {
        let t = parse_table(TABLE).expect("committed table parses");
        assert_eq!(t.states.len(), 3);
        assert_eq!(t.transitions.len(), 6);
        assert_eq!(t.states[2], ("Undetermined".to_string(), '/'));
    }

    #[test]
    fn committed_state_machine_conforms() {
        let (state, det) = committed_sources();
        let t = parse_table(TABLE).expect("table");
        let diags = check(&t, &state, &det);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn swapped_classify_endpoints_are_caught() {
        let (state, det) = committed_sources();
        // Mutate: swap the targets of T4/T5 in classify — a plausible
        // editing slip that flips which release outcome counts as
        // congestion.
        let mutated = state
            .replace(
                "(Undetermined, NonCongestion) => Some(T4UndeterminedToNonCongestion)",
                "(Undetermined, NonCongestion) => Some(T5UndeterminedToCongestion)",
            )
            .replace(
                "(Undetermined, Congestion) => Some(T5UndeterminedToCongestion)",
                "(Undetermined, Congestion) => Some(T4UndeterminedToNonCongestion)",
            );
        assert_ne!(mutated, state, "mutation must apply");
        let t = parse_table(TABLE).expect("table");
        let diags = check(&t, &mutated, &det);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("T4UndeterminedToNonCongestion")
                    || d.message.contains("T5UndeterminedToCongestion")),
            "{diags:#?}"
        );
    }

    #[test]
    fn illegal_seventh_transition_is_caught() {
        let (state, det) = committed_sources();
        let mutated = state.replace(
            "_ => None,",
            "(NonCongestion, NonCongestion) => Some(T1NonCongestionToCongestion),\n_ => None,",
        );
        assert_ne!(mutated, state);
        let t = parse_table(TABLE).expect("table");
        let diags = check(&t, &mutated, &det);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("defines no such transition")),
            "{diags:#?}"
        );
    }

    #[test]
    fn wrong_paper_symbol_is_caught() {
        let (state, det) = committed_sources();
        let mutated = state.replace(
            "TernaryState::Undetermined => '/',",
            "TernaryState::Undetermined => '?',",
        );
        assert_ne!(mutated, state);
        let t = parse_table(TABLE).expect("table");
        let diags = check(&t, &mutated, &det);
        assert!(
            diags.iter().any(|d| d.message.contains("'?'")),
            "{diags:#?}"
        );
    }

    #[test]
    fn detector_losing_a_state_is_caught() {
        let (state, det) = committed_sources();
        let mutated = det.replace("self.set_state(TernaryState::Undetermined);", "");
        assert_ne!(mutated, det);
        let t = parse_table(TABLE).expect("table");
        let diags = check(&t, &state, &mutated);
        assert!(
            diags.iter().any(|d| d.file == DETECTOR_FILE
                && d.message.contains("never enters state Undetermined")),
            "{diags:#?}"
        );
    }
}
