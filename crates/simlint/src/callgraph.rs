//! Call-graph reachability over the symbol table.
//!
//! Resolution is name-based and conservative, matching the symbol table's
//! over-approximation: a call to `name` resolves to *every* workspace
//! function named `name` (narrowed to a single impl when the call is
//! written `Type::name(..)` and such an impl exists). Dynamic dispatch
//! therefore "just works": `detector.on_dequeue(..)` reaches every
//! `on_dequeue` impl in the workspace, which is exactly what the hot-path
//! rules need — any of them may run per event.
//!
//! The hot set is everything reachable from the engine's dispatch root
//! (`Simulator::drive`, the single event loop every `run*` entry point
//! funnels through), never entering `#[cfg(..)]`-gated definitions or
//! functions declared `// simlint: cold -- <reason>` (per-window/epoch
//! orchestration like the parallel executor's scatter/barrier/gather:
//! reachable from `drive`, but not per-event).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::symbols::FnDef;

/// Indices (into `defs`) of every non-gated definition reachable from the
/// functions named `root`, including the roots themselves.
pub fn reachable(defs: &[FnDef], root: &str) -> BTreeSet<usize> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        by_name.entry(d.name.as_str()).or_default().push(i);
    }
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, d) in defs.iter().enumerate() {
        if d.name == root && !d.cfg_gated && !d.cold {
            seen.insert(i);
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for call in &defs[i].calls {
            let Some(candidates) = by_name.get(call.name.as_str()) else {
                continue;
            };
            // `Type::name(..)`: narrow to that impl when one exists. A
            // CamelCase qualifier owning no workspace impl is an external
            // type (`BTreeMap::new`, `String::from`) — resolving it to
            // every same-named workspace function would drag whole crates
            // into the hot set, so it resolves to nothing. Lowercase
            // qualifiers are module paths (`fault::apply`), where the
            // conservative fan-out is kept.
            let narrowed: Vec<usize> = match &call.qualifier {
                Some(q) => {
                    let owned: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| defs[c].owner.as_deref() == Some(q.as_str()))
                        .collect();
                    if !owned.is_empty() {
                        owned
                    } else if q.chars().next().is_some_and(char::is_uppercase) {
                        Vec::new()
                    } else {
                        candidates.clone()
                    }
                }
                None => candidates.clone(),
            };
            for c in narrowed {
                if !defs[c].cfg_gated && !defs[c].cold && seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
    }
    seen
}

/// Per-file line spans of the hot (event-path-reachable) functions:
/// `file -> [(from_line, to_line)]`, suitable for a "is this line hot?"
/// query during the token lint.
pub fn hot_ranges(defs: &[FnDef], root: &str) -> BTreeMap<String, Vec<(u32, u32)>> {
    let mut out: BTreeMap<String, Vec<(u32, u32)>> = BTreeMap::new();
    for i in reachable(defs, root) {
        let d = &defs[i];
        out.entry(d.file.clone())
            .or_default()
            .push((d.from_line, d.to_line));
    }
    for spans in out.values_mut() {
        spans.sort_unstable();
    }
    out
}

/// The functions the hot set consists of, as `(file, name, from_line)`,
/// sorted — the machine-readable coverage list for `lint --json`.
pub fn hot_functions(defs: &[FnDef], root: &str) -> Vec<(String, String, u32)> {
    let mut out: Vec<(String, String, u32)> = reachable(defs, root)
        .into_iter()
        .map(|i| {
            let d = &defs[i];
            (d.file.clone(), d.name.clone(), d.from_line)
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::extract;

    fn defs_of(files: &[(&str, &str)]) -> Vec<FnDef> {
        files
            .iter()
            .flat_map(|(rel, src)| extract(rel, src))
            .collect()
    }

    #[test]
    fn bfs_reaches_methods_and_cross_file_calls() {
        let defs = defs_of(&[
            (
                "sim.rs",
                "fn drive() { dispatch(); }\nfn dispatch() { x.on_event(1); }\nfn cold() { dispatch(); }\n",
            ),
            (
                "node.rs",
                "impl Node { fn on_event(&mut self, v: u32) { self.push(v) }\n fn push(&mut self, v: u32) {} \n fn unrelated(&self) {} }\n",
            ),
        ]);
        let hot = hot_ranges(&defs, "drive");
        // drive + dispatch hot in sim.rs; cold is not (nothing reaches it).
        assert_eq!(hot["sim.rs"], vec![(1, 1), (2, 2)]);
        // on_event and push hot in node.rs; unrelated is not.
        assert_eq!(hot["node.rs"], vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn qualified_calls_narrow_to_the_owning_impl() {
        let defs = defs_of(&[(
            "a.rs",
            "fn drive() { Fast::go(); }\n\
             impl Fast { fn go() {} }\n\
             impl Slow { fn go() { never(); } }\n\
             fn never() {}\n",
        )]);
        let hot = hot_functions(&defs, "drive");
        let names: Vec<&str> = hot.iter().map(|(_, n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["drive", "go"]);
        // Only Fast::go (line 2), not Slow::go (line 3).
        assert_eq!(hot.iter().find(|(_, n, _)| n == "go").unwrap().2, 2);
    }

    #[test]
    fn gated_defs_are_neither_roots_nor_traversed() {
        let defs = defs_of(&[(
            "a.rs",
            "fn drive() { audit_hook(); }\n\
             #[cfg(feature = \"audit\")]\nfn audit_hook() { deep(); }\n\
             fn deep() {}\n",
        )]);
        let names: Vec<String> = hot_functions(&defs, "drive")
            .into_iter()
            .map(|(_, n, _)| n)
            .collect();
        assert_eq!(names, vec!["drive"]);
    }

    #[test]
    fn unqualified_call_fans_out_to_every_impl() {
        let defs = defs_of(&[(
            "a.rs",
            "fn drive() { d.update(); }\n\
             impl Dcqcn { fn update(&mut self) {} }\n\
             impl Timely { fn update(&mut self) {} }\n",
        )]);
        assert_eq!(hot_functions(&defs, "drive").len(), 3);
    }
}
